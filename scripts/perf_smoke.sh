#!/usr/bin/env bash
# Perf smoke: run the fleet engine on three fixed configs — the dense
# phase-split config in both control modes ("base" with nominal clocks,
# "dvfs" with DVFS clock scaling) and the fleet-scale event-queue config
# ("fleet100k": 100k instances, sparse traffic, the regime the
# event-driven scheduler exists for; plus a "fleet100k_balancer" twin
# with the fleet-scope spill-over balancer at an hourly fleet tick) —
# then emit one commit-stamped BENCH_fleet.json artifact at the repo
# root and fail on a >20% ticks/sec regression of any mode against the
# checked-in baseline (scripts/perf_baseline.json). The job also fails
# outright if the artifact is missing any mode's entry, so no leg can
# silently drop out of the gate. A dedicated balancer gate asserts the
# fleet-tick balancer pass adds at most 5% to the fleet100k entry. The base run carries --profile, so BENCH_fleet.json also
# records the per-phase engine time breakdown. BENCH_fleet.json carries
# the perf trajectory: the committed historical entries (starting with
# the pre-event-queue tick-loop engine) from perf_baseline.json plus the
# entry measured by this run. A final telemetry gate asserts that
# enabling the deterministic telemetry layers costs at most 2%
# ticks/sec against a telemetry-off twin. Shared by ci.sh and
# .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="target/ci-perf"
mkdir -p "$out_dir"
bench="BENCH_fleet.json"

run_mode() { # $1 = artifact path, extra args follow
  local out="$1"; shift
  cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
    --gpu lite --instances 256 --cell-size 16 --hours 2 --accel 20000 \
    --ctrl auto --workload multi --serving split --no-baseline \
    --shards 16 --threads 4 \
    --seed 42 --quiet-json --perf-json "$out" "$@" 2>/dev/null
}

run_fleet() { # $1 = artifact path — the 100k-instance event-queue regime
  local out="$1"; shift
  cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
    --gpu lite --instances 100000 --cell-size 64 --hours 2 --rate 0.0005 \
    --control-interval 300 --ctrl auto --workload multi --serving mono \
    --no-baseline --shards 0 --threads 4 \
    --seed 42 --quiet-json --perf-json "$out" "$@" 2>/dev/null
}

run_mode "$out_dir/BENCH_fleet_base.json" --profile
run_mode "$out_dir/BENCH_fleet_dvfs.json" --dvfs
run_fleet "$out_dir/BENCH_fleet_100k.json"
run_fleet "$out_dir/BENCH_fleet_100k_bal.json" --balancer --balancer-interval 3600

read_field() { grep -o "\"$2\": *[0-9]*" "$1" | head -1 | grep -o '[0-9]*$'; }
measured_base=$(read_field "$out_dir/BENCH_fleet_base.json" ticks_per_sec)
measured_dvfs=$(read_field "$out_dir/BENCH_fleet_dvfs.json" ticks_per_sec)
measured_fleet=$(read_field "$out_dir/BENCH_fleet_100k.json" ticks_per_sec)
measured_bal=$(read_field "$out_dir/BENCH_fleet_100k_bal.json" ticks_per_sec)

# Commit stamp: short hash, with a -dirty suffix when the working tree
# differs from HEAD (so a locally generated artifact is never mistaken
# for a clean CI measurement of that commit).
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if ! git diff --quiet 2>/dev/null; then commit="$commit-dirty"; fi

# One commit-stamped artifact tracking all three modes plus the perf
# trajectory (historical entries from perf_baseline.json + this run).
{
  echo '{'
  echo "  \"commit\": \"$commit\","
  echo '  "engine": "event-queue",'
  echo '  "base":'
  sed 's/^/  /' "$out_dir/BENCH_fleet_base.json" | sed '$ s/$/,/'
  echo '  "dvfs":'
  sed 's/^/  /' "$out_dir/BENCH_fleet_dvfs.json" | sed '$ s/$/,/'
  echo '  "fleet100k":'
  sed 's/^/  /' "$out_dir/BENCH_fleet_100k.json" | sed '$ s/$/,/'
  echo '  "fleet100k_balancer":'
  sed 's/^/  /' "$out_dir/BENCH_fleet_100k_bal.json" | sed '$ s/$/,/'
  sed -n '/"trajectory": \[/,/^  \]/p' scripts/perf_baseline.json | sed '$ d' | sed '$ s/$/,/'
  echo '    {'
  echo "      \"commit\": \"$commit\","
  echo '      "engine": "event-queue",'
  echo "      \"base_ticks_per_sec\": $measured_base,"
  echo "      \"dvfs_ticks_per_sec\": $measured_dvfs,"
  echo "      \"fleet100k_ticks_per_sec\": $measured_fleet,"
  echo "      \"fleet100k_balancer_ticks_per_sec\": $measured_bal"
  echo '    }'
  echo '  ]'
  echo '}'
} > "$bench"

# All JSON files are produced by this repo with stable formatting, so
# grep-based field reads stay dependency-free.
entries=$(grep -c '"ticks_per_sec"' "$bench" || true)
if [ "$entries" -ne 4 ]; then
  echo "PERF ARTIFACT INCOMPLETE: BENCH_fleet.json must carry the base, dvfs, fleet100k and fleet100k_balancer entries (found $entries)" >&2
  exit 1
fi
if ! grep -q '"profile"' "$bench"; then
  echo "PERF ARTIFACT INCOMPLETE: BENCH_fleet.json must carry the per-phase engine profile" >&2
  exit 1
fi

baseline_base=$(read_field scripts/perf_baseline.json ticks_per_sec)
baseline_dvfs=$(read_field scripts/perf_baseline.json ticks_per_sec_dvfs)
baseline_fleet=$(read_field scripts/perf_baseline.json ticks_per_sec_fleet)
if [ -z "$baseline_base" ] || [ -z "$baseline_dvfs" ] || [ -z "$baseline_fleet" ]; then
  echo "PERF BASELINE INCOMPLETE: scripts/perf_baseline.json must carry ticks_per_sec, ticks_per_sec_dvfs and ticks_per_sec_fleet" >&2
  exit 1
fi

cat "$bench"
fail=0
for mode in base dvfs fleet100k; do
  case "$mode" in
    base)      measured=$measured_base;  baseline=$baseline_base ;;
    dvfs)      measured=$measured_dvfs;  baseline=$baseline_dvfs ;;
    fleet100k) measured=$measured_fleet; baseline=$baseline_fleet ;;
  esac
  threshold=$((baseline * 80 / 100))
  echo "    fleet perf ($mode): ${measured} instance-ticks/s (baseline ${baseline}, fail under ${threshold})"
  if [ "$measured" -lt "$threshold" ]; then
    echo "PERF REGRESSION ($mode): ${measured} ticks/s is more than 20% below the baseline ${baseline}" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

# Balancer overhead gate: the fleet-tick balancer pass (snapshot →
# pure planner → directives, at an hourly fleet tick — the cadence
# fleet-scope rebalancing runs at 100k-instance scale) must add at most
# 5% ticks/sec to the fleet100k entry against a balancer-off twin.
# Alternating off/on pairs with a best-of-5 verdict, for the same
# reason as the telemetry gate below: shared-box contention corrupts
# individual pairs by more than the budget in a random direction, and
# the least-corrupted pair is the tightest available estimate — while a
# genuine machinery regression (say a quadratic planner) fails every
# pair; integer arithmetic only.
bal_pairs=""
for _ in 1 2 3 4 5; do
  run_fleet "$out_dir/BENCH_bal_probe.json"
  bal_off=$(read_field "$out_dir/BENCH_bal_probe.json" ticks_per_sec)
  run_fleet "$out_dir/BENCH_bal_probe.json" --balancer --balancer-interval 3600
  bal_on=$(read_field "$out_dir/BENCH_bal_probe.json" ticks_per_sec)
  bal_pairs="$bal_pairs $((bal_on * 1000 / bal_off))"
done
bal_best=$(printf '%s\n' $bal_pairs | sort -n | tail -1)
echo "    balancer overhead: on/off permille per pair [${bal_pairs# }], best ${bal_best} (fail under 950)"
if [ "$bal_best" -lt 950 ]; then
  echo "BALANCER OVERHEAD: best on/off ratio ${bal_best}/1000 is more than 5% below the balancer-off fleet100k twin" >&2
  exit 1
fi

# Telemetry overhead gate: the deterministic layers at operational
# sampling rates (60 s series windows, 1-in-4096 request traces) must
# cost at most 2% ticks/sec against a telemetry-off twin of the same
# config. The probe pins --threads 1 (no scheduler interleaving to
# mis-attribute on oversubscribed CI boxes), runs a longer 4-hour clip
# so the one-shot series/trace merge amortises, and alternates off/on
# runs so clock drift hits both sides equally. The verdict is the BEST
# of the eight per-pair on/off ratios: contention bursts on a shared CI
# box corrupt individual pairs by far more than the 2% budget and in a
# random direction, so the least-corrupted pair is the tightest
# available estimate of the true cost — and a genuine regression (say
# 10%+) still fails every pair; integer arithmetic only.
pair_permille=""
for _ in 1 2 3 4 5 6 7 8; do
  run_mode "$out_dir/BENCH_tel_probe.json" --threads 1 --hours 4
  tel_off=$(read_field "$out_dir/BENCH_tel_probe.json" ticks_per_sec)
  run_mode "$out_dir/BENCH_tel_probe.json" --threads 1 --hours 4 \
    --series "$out_dir/tel_series.jsonl" --series-dt 60000000 \
    --trace "$out_dir/tel_trace.json" --trace-every 4096
  tel_on=$(read_field "$out_dir/BENCH_tel_probe.json" ticks_per_sec)
  pair_permille="$pair_permille $((tel_on * 1000 / tel_off))"
done
best=$(printf '%s\n' $pair_permille | sort -n | tail -1)
echo "    telemetry overhead: on/off permille per pair [${pair_permille# }], best ${best} (fail under 980)"
if [ "$best" -lt 980 ]; then
  echo "TELEMETRY OVERHEAD: best on/off ratio ${best}/1000 is more than 2% below the telemetry-off twin" >&2
  exit 1
fi
echo "    perf smoke passed."

#!/usr/bin/env bash
# Perf smoke: run the fleet engine on a fixed phase-split config, emit
# BENCH_fleet.json (instance-ticks/sec + wall seconds) as a CI artifact,
# and fail on a >2x throughput regression against the checked-in
# baseline (scripts/perf_baseline.json). Shared by ci.sh and
# .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="target/ci-perf"
mkdir -p "$out_dir"
bench="$out_dir/BENCH_fleet.json"

cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
  --gpu lite --instances 256 --cell-size 16 --hours 2 --accel 20000 \
  --ctrl auto --workload multi --serving split --no-baseline \
  --shards 16 --threads 4 \
  --seed 42 --quiet-json --perf-json "$bench" 2>/dev/null

# Both JSON files are produced by this repo with stable formatting, so a
# grep-based field read stays dependency-free.
read_field() { grep -o "\"$2\": *[0-9]*" "$1" | grep -o '[0-9]*'; }
measured=$(read_field "$bench" ticks_per_sec)
baseline=$(read_field scripts/perf_baseline.json ticks_per_sec)
threshold=$((baseline / 2))

echo "    fleet perf: ${measured} instance-ticks/s (baseline ${baseline}, fail under ${threshold})"
cat "$bench"
if [ "$measured" -lt "$threshold" ]; then
  echo "PERF REGRESSION: ${measured} ticks/s is less than half the baseline ${baseline}" >&2
  exit 1
fi
echo "    perf smoke passed."

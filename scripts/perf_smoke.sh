#!/usr/bin/env bash
# Perf smoke: run the fleet engine on a fixed phase-split config in both
# control modes — nominal clocks ("base") and DVFS-enabled clock scaling
# ("dvfs") — emit one combined BENCH_fleet.json artifact, and fail on a
# >2x throughput regression of either mode against the checked-in
# baseline (scripts/perf_baseline.json). The job also fails outright if
# the artifact is missing either mode's entry, so the DVFS leg can never
# silently drop out of the gate. Shared by ci.sh and
# .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="target/ci-perf"
mkdir -p "$out_dir"
bench="$out_dir/BENCH_fleet.json"

run_mode() { # $1 = artifact path, extra args follow
  local out="$1"; shift
  cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
    --gpu lite --instances 256 --cell-size 16 --hours 2 --accel 20000 \
    --ctrl auto --workload multi --serving split --no-baseline \
    --shards 16 --threads 4 \
    --seed 42 --quiet-json --perf-json "$out" "$@" 2>/dev/null
}

run_mode "$out_dir/BENCH_fleet_base.json"
run_mode "$out_dir/BENCH_fleet_dvfs.json" --dvfs

# One artifact tracking both modes, keyed by mode name.
{
  echo '{'
  echo '  "base":'
  sed 's/^/  /' "$out_dir/BENCH_fleet_base.json" | sed '$ s/$/,/'
  echo '  "dvfs":'
  sed 's/^/  /' "$out_dir/BENCH_fleet_dvfs.json"
  echo '}'
} > "$bench"

# Both JSON files are produced by this repo with stable formatting, so a
# grep-based field read stays dependency-free.
entries=$(grep -c '"ticks_per_sec"' "$bench" || true)
if [ "$entries" -ne 2 ]; then
  echo "PERF ARTIFACT INCOMPLETE: BENCH_fleet.json must carry both the base and dvfs entries (found $entries)" >&2
  exit 1
fi

read_field() { grep -o "\"$2\": *[0-9]*" "$1" | head -1 | grep -o '[0-9]*$'; }
measured_base=$(read_field "$out_dir/BENCH_fleet_base.json" ticks_per_sec)
measured_dvfs=$(read_field "$out_dir/BENCH_fleet_dvfs.json" ticks_per_sec)
baseline_base=$(read_field scripts/perf_baseline.json ticks_per_sec)
baseline_dvfs=$(read_field scripts/perf_baseline.json ticks_per_sec_dvfs)
if [ -z "$baseline_base" ] || [ -z "$baseline_dvfs" ]; then
  echo "PERF BASELINE INCOMPLETE: scripts/perf_baseline.json must carry ticks_per_sec and ticks_per_sec_dvfs" >&2
  exit 1
fi

cat "$bench"
fail=0
for mode in base dvfs; do
  if [ "$mode" = base ]; then measured=$measured_base; baseline=$baseline_base; else measured=$measured_dvfs; baseline=$baseline_dvfs; fi
  threshold=$((baseline / 2))
  echo "    fleet perf ($mode): ${measured} instance-ticks/s (baseline ${baseline}, fail under ${threshold})"
  if [ "$measured" -lt "$threshold" ]; then
    echo "PERF REGRESSION ($mode): ${measured} ticks/s is less than half the baseline ${baseline}" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1
echo "    perf smoke passed."

#!/usr/bin/env bash
# Determinism gate: run the controlled 3-tenant fleet at several thread
# counts — across all three serving/control combos (monolithic,
# phase-split, and DVFS-enabled phase-split clock scaling), each also
# under a compiled chaos campaign (rack outages + repair crews for mono,
# cell partitions for split, thermal clock clamps for the DVFS combo) —
# and diff the serialized FleetReport bytes. Byte-identical reports at
# any shard/thread count are the engine's core guarantee, checked end to
# end through the sim_fleet binary. The telemetry layers ride along:
# every run also exports the time-series JSONL and the Chrome trace
# JSON, and those artifact bytes must be identical across thread counts
# too. Shared by ci.sh and .github/workflows/ci.yml (ci.sh invokes this
# script, so the workflow cannot skip it).
set -euo pipefail
cd "$(dirname "$0")/.."

det_dir="target/ci-determinism"
mkdir -p "$det_dir"
for combo in mono split dvfs mono_chaos split_chaos dvfs_chaos balancer; do
  case "$combo" in
    mono)        combo_flags=(--serving mono) ;;
    split)       combo_flags=(--serving split) ;;
    dvfs)        combo_flags=(--serving split --dvfs) ;;
    mono_chaos)  combo_flags=(--serving mono --chaos rack) ;;
    split_chaos) combo_flags=(--serving split --chaos partition) ;;
    dvfs_chaos)  combo_flags=(--serving split --dvfs --chaos thermal) ;;
    # The two-level control plane: fleet-scope spill-over balancer on a
    # skewed demand mix (2 hot cells at 2.5x). Spilled cohorts cross
    # cell (and shard) boundaries, so this combo is the one that would
    # catch a rendezvous ordering bug first.
    balancer)    combo_flags=(--serving mono --balancer --skew 2x2.5) ;;
  esac
  for threads in 1 2 8; do
    cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
      --gpu lite --instances 64 --cell-size 8 --hours 0.5 --accel 50000 \
      --ctrl auto --workload multi "${combo_flags[@]}" --no-baseline \
      --shards 8 --threads "$threads" \
      --series "$det_dir/series_${combo}_t$threads.jsonl" --series-dt 60000000 \
      --trace "$det_dir/trace_${combo}_t$threads.json" --trace-every 16 \
      --quiet-json 2>/dev/null
    cp target/experiments/fleet_lite.json "$det_dir/fleet_lite_${combo}_t$threads.json"
  done
  for artifact in fleet_lite series trace; do
    case "$artifact" in
      fleet_lite) a="$det_dir/fleet_lite_${combo}" ext=json ;;
      series)     a="$det_dir/series_${combo}"     ext=jsonl ;;
      trace)      a="$det_dir/trace_${combo}"      ext=json ;;
    esac
    cmp "${a}_t1.$ext" "${a}_t2.$ext"
    cmp "${a}_t1.$ext" "${a}_t8.$ext"
  done
  echo "    $combo: report, series and trace byte-identical across 1/2/8 threads."
done

# The TCO sweep layers its own parallelism (work-stolen candidates) on
# top of the engine's: the full TcoReport — frontier indices, headline
# and per-point breakdowns — and the frontier CSV must also be
# byte-identical at any --threads setting.
for threads in 1 2 8; do
  cargo run --release -q -p litegpu-bench --bin sim_tco -- \
    --smoke --threads "$threads" \
    --series "$det_dir/tco_frontier_t$threads.csv" \
    --quiet-json 2>/dev/null
  cp target/experiments/tco.json "$det_dir/tco_t$threads.json"
done
for artifact in tco tco_frontier; do
  case "$artifact" in
    tco)          a="$det_dir/tco"          ext=json ;;
    tco_frontier) a="$det_dir/tco_frontier" ext=csv ;;
  esac
  cmp "${a}_t1.$ext" "${a}_t2.$ext"
  cmp "${a}_t1.$ext" "${a}_t8.$ext"
done
echo "    tco: TcoReport and frontier CSV byte-identical across 1/2/8 threads."

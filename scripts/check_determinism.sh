#!/usr/bin/env bash
# Determinism gate: run the controlled 3-tenant fleet at several thread
# counts — in both serving modes (monolithic and phase-split) — and diff
# the serialized FleetReport bytes. Byte-identical reports at any
# shard/thread count are the engine's core guarantee, checked end to end
# through the sim_fleet binary. Shared by ci.sh and
# .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

det_dir="target/ci-determinism"
mkdir -p "$det_dir"
for serving in mono split; do
  for threads in 1 2 8; do
    cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
      --gpu lite --instances 64 --cell-size 8 --hours 0.5 --accel 50000 \
      --ctrl auto --workload multi --serving "$serving" --no-baseline \
      --shards 8 --threads "$threads" \
      --quiet-json 2>/dev/null
    cp target/experiments/fleet_lite.json "$det_dir/fleet_lite_${serving}_t$threads.json"
  done
  cmp "$det_dir/fleet_lite_${serving}_t1.json" "$det_dir/fleet_lite_${serving}_t2.json"
  cmp "$det_dir/fleet_lite_${serving}_t1.json" "$det_dir/fleet_lite_${serving}_t8.json"
  echo "    $serving: byte-identical across 1/2/8 threads."
done

//! Discrete-event LLM-serving simulator over Lite-GPU clusters.
//!
//! §3 of the paper argues at the level of *serving systems*: phase
//! splitting (Splitwise), hot spares, instance-wide blast radii. The
//! roofline model alone cannot test those — they are dynamic behaviours.
//! This crate provides a deterministic discrete-event simulator whose
//! instance timing comes straight from [`litegpu_roofline`], so serving
//! experiments and the paper's analytical model share one source of
//! truth.
//!
//! - [`des`]: the event queue and clock (integer microseconds; fully
//!   deterministic under a seed).
//! - [`request`]: Poisson request generator with configurable
//!   prompt/output lengths (the paper's 1500-token median prompt).
//! - [`server`]: a model instance — a tensor-parallel GPU group with
//!   roofline-priced prefill and decode steps and continuous batching.
//! - [`scheduler`]: monolithic vs. Splitwise-style phase-split serving.
//! - [`failover`]: failure injection and hot-spare pools.
//! - [`stats`]: latency percentiles, SLO attainment, goodput.
//!
//! # Examples
//!
//! ```
//! use litegpu_sim::scheduler::{simulate, ServingConfig, SchedulerKind};
//!
//! let cfg = ServingConfig::splitwise_h100_demo();
//! let report = simulate(&cfg, 42).unwrap();
//! assert!(report.completed > 0);
//! assert!(report.ttft_p50_s > 0.0);
//! ```

pub mod des;
pub mod failover;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod stats;

pub use scheduler::{simulate, SchedulerKind, ServingConfig, ServingReport};

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Underlying roofline error (instance timing).
    Roofline(litegpu_roofline::RooflineError),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::InvalidParameter { name, value } => {
                write!(f, "invalid simulator parameter {name} = {value}")
            }
            SimError::Roofline(e) => write!(f, "roofline error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<litegpu_roofline::RooflineError> for SimError {
    fn from(e: litegpu_roofline::RooflineError) -> Self {
        SimError::Roofline(e)
    }
}

/// Result alias for simulator operations.
pub type Result<T> = core::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::InvalidParameter {
            name: "rate",
            value: -1.0,
        };
        assert!(e.to_string().contains("rate"));
    }
}

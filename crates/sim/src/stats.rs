//! Online statistics: percentiles, counters, SLO attainment.

/// A sample collector with percentile queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.values.push(v);
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// The `p`-th percentile (nearest-rank; `p` in `[0, 100]`; 0 when
    /// empty).
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_sim::stats::Samples;
    /// let mut s = Samples::new();
    /// for v in [1.0, 2.0, 3.0, 4.0] { s.record(v); }
    /// assert_eq!(s.percentile(50.0), 2.0);
    /// assert_eq!(s.percentile(100.0), 4.0);
    /// ```
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    /// Fraction of samples at or below `threshold` (SLO attainment).
    pub fn attainment(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 1.0;
        }
        self.values.iter().filter(|&&v| v <= threshold).count() as f64 / self.values.len() as f64
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zeroes() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.attainment(1.0), 1.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
    }

    #[test]
    fn attainment_counts_threshold() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.attainment(2.0), 0.5);
        assert_eq!(s.attainment(0.5), 0.0);
        assert_eq!(s.attainment(10.0), 1.0);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut s = Samples::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.len(), 1);
    }

    proptest! {
        #[test]
        fn percentile_monotone(vals in proptest::collection::vec(0.0..1e6f64, 1..200),
                               p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
            let mut s = Samples::new();
            for v in vals { s.record(v); }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(s.percentile(lo) <= s.percentile(hi));
        }
    }
}

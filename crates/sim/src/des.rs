//! Deterministic discrete-event core.
//!
//! Time is integer microseconds (`u64`), which keeps event ordering exact
//! and runs reproducible. Ties are broken by insertion sequence, so two
//! events scheduled for the same instant fire in schedule order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in microseconds.
pub type SimTime = u64;

/// Converts seconds to [`SimTime`].
pub fn secs(s: f64) -> SimTime {
    (s.max(0.0) * 1e6).round() as SimTime
}

/// Converts [`SimTime`] to seconds.
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / 1e6
}

/// A deterministic event queue over payload type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
    now: SimTime,
}

/// Wrapper that keeps payloads out of the ordering (only time and
/// sequence number order events).
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, EventSlot(e)))| {
            self.now = t;
            (t, e)
        })
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(secs(1.5), 1_500_000);
        assert!((to_secs(secs(0.05)) - 0.05).abs() < 1e-9);
        assert_eq!(secs(-1.0), 0);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(300, "c");
        q.schedule_at(100, "a");
        q.schedule_at(200, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 1);
        q.schedule_at(100, 2);
        q.schedule_at(100, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn clock_advances_and_past_scheduling_clamps() {
        let mut q = EventQueue::new();
        q.schedule_at(500, "x");
        assert_eq!(q.pop().unwrap().0, 500);
        assert_eq!(q.now(), 500);
        // Scheduling in the past clamps to now.
        q.schedule_at(100, "y");
        assert_eq!(q.pop().unwrap().0, 500);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(1000, "a");
        q.pop();
        q.schedule_in(50, "b");
        assert_eq!(q.pop().unwrap().0, 1050);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}

//! The serving event loop: monolithic vs. Splitwise-style phase-split
//! scheduling, with failure injection and hot spares.

use crate::des::{to_secs, EventQueue, SimTime};
use crate::failover::FailurePlan;
use crate::request::{Request, Workload};
use crate::server::{ActiveSeq, InstanceModel};
use crate::stats::Samples;
use crate::{Result, SimError};
use litegpu_roofline::EngineParams;
use litegpu_specs::GpuSpec;
use litegpu_workload::ModelArch;
use std::collections::VecDeque;

/// How instances divide the two inference phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Every instance interleaves prefill and decode (prefill
    /// prioritized), as in a conventional continuous-batching server.
    Monolithic,
    /// Splitwise/DistServe-style: dedicated prefill instances stream KV
    /// caches to dedicated decode instances.
    PhaseSplit {
        /// Instances reserved for prefill (the rest decode).
        prefill_instances: u32,
    },
}

/// A complete serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// GPU type.
    pub gpu: GpuSpec,
    /// Model served.
    pub arch: ModelArch,
    /// Roofline parameters (timing + SLOs).
    pub params: EngineParams,
    /// Phase scheduling.
    pub scheduler: SchedulerKind,
    /// Total instances.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Largest prompt batch per prefill launch.
    pub max_prefill_batch: u32,
    /// Request workload.
    pub workload: Workload,
    /// Arrival horizon, seconds (the run continues until drained).
    pub horizon_s: f64,
    /// Failure injection.
    pub failures: FailurePlan,
}

impl ServingConfig {
    /// A Splitwise-style demo: Llama3-70B on H100, 2 prefill + 2 decode
    /// instances of 2 GPUs each, 3 req/s for 120 s.
    pub fn splitwise_h100_demo() -> Self {
        Self {
            gpu: litegpu_specs::catalog::h100(),
            arch: litegpu_workload::models::llama3_70b(),
            params: EngineParams::paper_defaults(),
            scheduler: SchedulerKind::PhaseSplit {
                prefill_instances: 2,
            },
            instances: 4,
            gpus_per_instance: 2,
            max_prefill_batch: 4,
            workload: Workload::paper_coding(3.0),
            horizon_s: 120.0,
            failures: FailurePlan::none(),
        }
    }

    /// The Lite-GPU equivalent of [`Self::splitwise_h100_demo`]: same
    /// aggregate silicon, instances of 8 Lite-GPUs.
    pub fn splitwise_lite_demo() -> Self {
        Self {
            gpu: litegpu_specs::catalog::lite_base(),
            gpus_per_instance: 8,
            ..Self::splitwise_h100_demo()
        }
    }

    /// A monolithic variant of the H100 demo.
    pub fn monolithic_h100_demo() -> Self {
        Self {
            scheduler: SchedulerKind::Monolithic,
            ..Self::splitwise_h100_demo()
        }
    }
}

/// Aggregated results of a serving run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingReport {
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests fully served.
    pub completed: usize,
    /// Output tokens generated.
    pub generated_tokens: u64,
    /// Arrival horizon, seconds.
    pub horizon_s: f64,
    /// Wall-clock when the system drained, seconds.
    pub drained_at_s: f64,
    /// Output tokens per second over the drain interval.
    pub throughput_tps: f64,
    /// Median time to first token, seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub ttft_p99_s: f64,
    /// Fraction of requests meeting the TTFT SLO.
    pub ttft_attainment: f64,
    /// Median per-step time between tokens, seconds.
    pub tbt_p50_s: f64,
    /// 99th-percentile TBT, seconds.
    pub tbt_p99_s: f64,
    /// Fraction of decode steps meeting the TBT SLO.
    pub tbt_attainment: f64,
    /// Median end-to-end request latency, seconds.
    pub e2e_p50_s: f64,
    /// Fraction of instance-time up.
    pub availability: f64,
    /// Failures injected.
    pub failures: usize,
    /// Failures absorbed by a hot spare.
    pub spare_hits: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Both,
    Prefill,
    Decode,
}

struct Inst {
    role: Role,
    model: InstanceModel,
    queue: VecDeque<Request>,
    running: Vec<ActiveSeq>,
    in_transit: u32,
    busy: bool,
    up: bool,
    epoch: u64,
    down_since: Option<SimTime>,
    downtime: SimTime,
}

enum Ev {
    Arrival(usize),
    PrefillDone {
        inst: usize,
        epoch: u64,
        seqs: Vec<ActiveSeq>,
    },
    TransferDone {
        inst: usize,
        seqs: Vec<ActiveSeq>,
    },
    StepDone {
        inst: usize,
        epoch: u64,
        step: SimTime,
    },
    Fail(usize),
    Recover(usize),
    SpareBack,
}

/// Runs a serving simulation to completion (all arrivals drained).
pub fn simulate(cfg: &ServingConfig, seed: u64) -> Result<ServingReport> {
    if cfg.instances == 0 || cfg.max_prefill_batch == 0 {
        return Err(SimError::InvalidParameter {
            name: "instances/max_prefill_batch",
            value: 0.0,
        });
    }
    let roles: Vec<Role> = match cfg.scheduler {
        SchedulerKind::Monolithic => vec![Role::Both; cfg.instances as usize],
        SchedulerKind::PhaseSplit { prefill_instances } => {
            if prefill_instances == 0 || prefill_instances >= cfg.instances {
                return Err(SimError::InvalidParameter {
                    name: "prefill_instances",
                    value: prefill_instances as f64,
                });
            }
            (0..cfg.instances)
                .map(|i| {
                    if i < prefill_instances {
                        Role::Prefill
                    } else {
                        Role::Decode
                    }
                })
                .collect()
        }
    };

    let mut insts: Vec<Inst> = Vec::new();
    for role in &roles {
        insts.push(Inst {
            role: *role,
            model: InstanceModel::new(
                cfg.gpu.clone(),
                cfg.gpus_per_instance,
                cfg.arch.clone(),
                cfg.params,
            )?,
            queue: VecDeque::new(),
            running: Vec::new(),
            in_transit: 0,
            busy: false,
            up: true,
            epoch: 0,
            down_since: None,
            downtime: 0,
        });
    }

    let requests = cfg.workload.generate(cfg.horizon_s, seed)?;
    let failures = cfg.failures.generate(insts.len(), cfg.horizon_s, seed)?;

    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, r) in requests.iter().enumerate() {
        q.schedule_at(r.arrival, Ev::Arrival(i));
    }
    for &(t, inst) in &failures {
        q.schedule_at(t, Ev::Fail(inst));
    }

    let mut ttft = Samples::new();
    let mut tbt = Samples::new();
    let mut e2e = Samples::new();
    let mut overflow: VecDeque<Request> = VecDeque::new();
    let mut decode_pending: VecDeque<ActiveSeq> = VecDeque::new();
    let mut completed = 0usize;
    let mut generated: u64 = 0;
    let mut spares_free = cfg.failures.spares as i64;
    let mut failures_seen = 0usize;
    let mut spare_hits = 0usize;
    let mut completion_t: Vec<(u64, SimTime)> = requests.iter().map(|r| (r.id, 0)).collect();

    // Helper closures can't borrow insts mutably twice; use fns instead.
    fn route_request(insts: &mut [Inst], overflow: &mut VecDeque<Request>, r: Request) {
        let target = insts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.up && matches!(s.role, Role::Both | Role::Prefill))
            .min_by_key(|(_, s)| s.queue.len())
            .map(|(i, _)| i);
        match target {
            Some(i) => insts[i].queue.push_back(r),
            None => overflow.push_back(r),
        }
    }

    fn kick(
        insts: &mut [Inst],
        q: &mut EventQueue<Ev>,
        decode_pending: &mut VecDeque<ActiveSeq>,
        i: usize,
        max_prefill_batch: u32,
    ) -> Result<()> {
        // Pull pending decode work into spare capacity first.
        if matches!(insts[i].role, Role::Decode | Role::Both) && insts[i].up {
            while !decode_pending.is_empty()
                && (insts[i].running.len() as u32 + insts[i].in_transit) < insts[i].model.max_batch
            {
                let s = decode_pending.pop_front().expect("non-empty");
                insts[i].running.push(s);
            }
        }
        if !insts[i].up || insts[i].busy {
            return Ok(());
        }
        let can_prefill = matches!(insts[i].role, Role::Both | Role::Prefill)
            && !insts[i].queue.is_empty()
            && (insts[i].role != Role::Both
                || (insts[i].running.len() as u32) < insts[i].model.max_batch);
        if can_prefill {
            let cap = match insts[i].role {
                Role::Both => insts[i].model.max_batch - insts[i].running.len() as u32,
                _ => max_prefill_batch,
            };
            let b = (insts[i].queue.len() as u32)
                .min(max_prefill_batch)
                .min(cap)
                .max(1);
            let mut seqs = Vec::with_capacity(b as usize);
            for _ in 0..b {
                let r = insts[i].queue.pop_front().expect("checked non-empty");
                seqs.push(ActiveSeq {
                    id: r.id,
                    arrival: r.arrival,
                    prompt_len: r.prompt_len,
                    remaining: r.output_len,
                });
            }
            let t = insts[i].model.prefill_time(b)?;
            let epoch = insts[i].epoch;
            insts[i].busy = true;
            q.schedule_in(
                t,
                Ev::PrefillDone {
                    inst: i,
                    epoch,
                    seqs,
                },
            );
            return Ok(());
        }
        if matches!(insts[i].role, Role::Both | Role::Decode) && !insts[i].running.is_empty() {
            let b = insts[i].running.len() as u32;
            let t = insts[i].model.decode_step_time(b)?;
            let epoch = insts[i].epoch;
            insts[i].busy = true;
            q.schedule_in(
                t,
                Ev::StepDone {
                    inst: i,
                    epoch,
                    step: t,
                },
            );
        }
        Ok(())
    }

    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Arrival(idx) => {
                let r = requests[idx];
                route_request(&mut insts, &mut overflow, r);
                for i in 0..insts.len() {
                    kick(
                        &mut insts,
                        &mut q,
                        &mut decode_pending,
                        i,
                        cfg.max_prefill_batch,
                    )?;
                }
            }
            Ev::PrefillDone { inst, epoch, seqs } => {
                if !insts[inst].up || insts[inst].epoch != epoch {
                    // The instance died mid-prefill: treat the batch as
                    // fresh arrivals elsewhere (KV lost).
                    for s in seqs {
                        route_request(
                            &mut insts,
                            &mut overflow,
                            Request {
                                id: s.id,
                                arrival: s.arrival,
                                prompt_len: s.prompt_len,
                                output_len: s.remaining,
                            },
                        );
                    }
                } else {
                    insts[inst].busy = false;
                    for s in &seqs {
                        ttft.record(to_secs(now - s.arrival));
                    }
                    match insts[inst].role {
                        Role::Both => insts[inst].running.extend(seqs),
                        _ => {
                            // Stream KV to the least-loaded decode instance.
                            let t_x = insts[inst].model.kv_transfer_time(
                                seqs.iter().map(|s| s.prompt_len).max().unwrap_or(1),
                            );
                            let target = insts
                                .iter()
                                .enumerate()
                                .filter(|(_, s)| s.up && s.role == Role::Decode)
                                .filter(|(_, s)| {
                                    (s.running.len() as u32 + s.in_transit + seqs.len() as u32)
                                        <= s.model.max_batch
                                })
                                .min_by_key(|(_, s)| s.running.len() + s.in_transit as usize)
                                .map(|(i, _)| i);
                            match target {
                                Some(d) => {
                                    insts[d].in_transit += seqs.len() as u32;
                                    q.schedule_in(t_x, Ev::TransferDone { inst: d, seqs });
                                }
                                None => decode_pending.extend(seqs),
                            }
                        }
                    }
                }
                for i in 0..insts.len() {
                    kick(
                        &mut insts,
                        &mut q,
                        &mut decode_pending,
                        i,
                        cfg.max_prefill_batch,
                    )?;
                }
            }
            Ev::TransferDone { inst, seqs } => {
                insts[inst].in_transit = insts[inst].in_transit.saturating_sub(seqs.len() as u32);
                if insts[inst].up {
                    insts[inst].running.extend(seqs);
                } else {
                    decode_pending.extend(seqs);
                }
                kick(
                    &mut insts,
                    &mut q,
                    &mut decode_pending,
                    inst,
                    cfg.max_prefill_batch,
                )?;
            }
            Ev::StepDone { inst, epoch, step } => {
                if !insts[inst].up || insts[inst].epoch != epoch {
                    continue;
                }
                insts[inst].busy = false;
                tbt.record(to_secs(step));
                generated += insts[inst].running.len() as u64;
                let mut done = Vec::new();
                for s in insts[inst].running.iter_mut() {
                    s.remaining = s.remaining.saturating_sub(1);
                    if s.remaining == 0 {
                        done.push((s.id, s.arrival));
                    }
                }
                insts[inst].running.retain(|s| s.remaining > 0);
                for (id, arrival) in done {
                    completed += 1;
                    e2e.record(to_secs(now - arrival));
                    if let Some(slot) = completion_t.iter_mut().find(|(rid, _)| *rid == id) {
                        slot.1 = now;
                    }
                }
                kick(
                    &mut insts,
                    &mut q,
                    &mut decode_pending,
                    inst,
                    cfg.max_prefill_batch,
                )?;
            }
            Ev::Fail(inst) => {
                if !insts[inst].up {
                    continue;
                }
                failures_seen += 1;
                insts[inst].up = false;
                insts[inst].busy = false;
                insts[inst].epoch += 1;
                insts[inst].down_since = Some(now);
                // Requeue everything the instance held; generation restarts
                // from prefill (the KV cache died with the instance).
                let queued: Vec<Request> = insts[inst].queue.drain(..).collect();
                let running: Vec<ActiveSeq> = insts[inst].running.drain(..).collect();
                for r in queued {
                    route_request(&mut insts, &mut overflow, r);
                }
                for s in running {
                    route_request(
                        &mut insts,
                        &mut overflow,
                        Request {
                            id: s.id,
                            arrival: s.arrival,
                            prompt_len: s.prompt_len,
                            output_len: s.remaining,
                        },
                    );
                }
                let spare = spares_free > 0;
                if spare {
                    spares_free -= 1;
                    spare_hits += 1;
                    q.schedule_in(cfg.failures.recovery_delay(false), Ev::SpareBack);
                }
                q.schedule_in(cfg.failures.recovery_delay(spare), Ev::Recover(inst));
                for i in 0..insts.len() {
                    kick(
                        &mut insts,
                        &mut q,
                        &mut decode_pending,
                        i,
                        cfg.max_prefill_batch,
                    )?;
                }
            }
            Ev::Recover(inst) => {
                insts[inst].up = true;
                if let Some(since) = insts[inst].down_since.take() {
                    insts[inst].downtime += now - since;
                }
                while let Some(r) = overflow.pop_front() {
                    route_request(&mut insts, &mut overflow, r);
                    if overflow.back().map(|b| b.id) == Some(r.id) {
                        break; // Routing bounced it straight back: stop.
                    }
                }
                for i in 0..insts.len() {
                    kick(
                        &mut insts,
                        &mut q,
                        &mut decode_pending,
                        i,
                        cfg.max_prefill_batch,
                    )?;
                }
            }
            Ev::SpareBack => {
                spares_free += 1;
            }
        }
    }

    let drained_at = insts
        .iter()
        .flat_map(|s| s.down_since)
        .chain(completion_t.iter().map(|&(_, t)| t))
        .max()
        .unwrap_or(0)
        .max(1);
    let total_time: SimTime = drained_at * insts.len() as u64;
    let downtime: SimTime = insts
        .iter()
        .map(|s| {
            s.downtime
                + s.down_since
                    .map(|d| drained_at.saturating_sub(d))
                    .unwrap_or(0)
        })
        .sum();
    let slo = cfg.params.constraints;
    Ok(ServingReport {
        arrived: requests.len(),
        completed,
        generated_tokens: generated,
        horizon_s: cfg.horizon_s,
        drained_at_s: to_secs(drained_at),
        throughput_tps: generated as f64 / to_secs(drained_at),
        ttft_p50_s: ttft.percentile(50.0),
        ttft_p99_s: ttft.percentile(99.0),
        ttft_attainment: ttft.attainment(slo.ttft_max_s),
        tbt_p50_s: tbt.percentile(50.0),
        tbt_p99_s: tbt.percentile(99.0),
        tbt_attainment: tbt.attainment(slo.tbt_max_s),
        e2e_p50_s: e2e.percentile(50.0),
        availability: 1.0 - downtime as f64 / total_time as f64,
        failures: failures_seen,
        spare_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServingConfig {
        let mut c = ServingConfig::splitwise_h100_demo();
        c.workload.rate_per_s = 2.0;
        c.horizon_s = 30.0;
        c
    }

    #[test]
    fn all_requests_complete_without_failures() {
        let r = simulate(&small_cfg(), 1).unwrap();
        assert_eq!(r.arrived, r.completed);
        assert!(r.generated_tokens > 0);
        assert!(r.availability > 0.999);
        assert_eq!(r.failures, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = simulate(&small_cfg(), 5).unwrap();
        let b = simulate(&small_cfg(), 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn monolithic_also_completes() {
        let mut c = small_cfg();
        c.scheduler = SchedulerKind::Monolithic;
        let r = simulate(&c, 2).unwrap();
        assert_eq!(r.arrived, r.completed);
    }

    #[test]
    fn phase_split_isolates_tbt_from_prefill() {
        // The Splitwise motivation: monolithic serving interleaves 100ms+
        // prefills into the decode stream, inflating p99 TBT; phase
        // splitting keeps decode steps tight.
        let mut mono = small_cfg();
        mono.scheduler = SchedulerKind::Monolithic;
        mono.workload.rate_per_s = 6.0;
        let mut split = small_cfg();
        split.workload.rate_per_s = 6.0;
        let rm = simulate(&mono, 3).unwrap();
        let rs = simulate(&split, 3).unwrap();
        assert!(
            rs.tbt_p99_s <= rm.tbt_p99_s * 1.05,
            "split p99 {} vs mono p99 {}",
            rs.tbt_p99_s,
            rm.tbt_p99_s
        );
    }

    #[test]
    fn failures_reduce_availability_and_spares_help() {
        let mut c = small_cfg();
        c.horizon_s = 60.0;
        // Accelerated injection: ~1 failure per instance per minute.
        let mut stress = crate::failover::FailurePlan::stress(0);
        stress.failures_per_instance_hour = 60.0;
        stress.repair_s = 120.0;
        c.failures = stress;
        let no_spares = simulate(&c, 4).unwrap();
        assert!(no_spares.failures > 0);
        assert!(no_spares.availability < 1.0);
        stress.spares = 4;
        c.failures = stress;
        let with_spares = simulate(&c, 4).unwrap();
        assert!(with_spares.spare_hits > 0);
        assert!(
            with_spares.availability >= no_spares.availability,
            "spares {} vs none {}",
            with_spares.availability,
            no_spares.availability
        );
        // Every arrived request still completes (retries after failure).
        assert_eq!(with_spares.arrived, with_spares.completed);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = small_cfg();
        c.instances = 0;
        assert!(simulate(&c, 1).is_err());
        let mut c = small_cfg();
        c.scheduler = SchedulerKind::PhaseSplit {
            prefill_instances: 4,
        };
        assert!(simulate(&c, 1).is_err());
    }
}

//! Synthetic request workload generation.
//!
//! Substitutes for the production traces the paper references (Splitwise's
//! coding workload, median prompt 1500 tokens): a Poisson arrival process
//! with configurable prompt/output length distributions, fully
//! deterministic under a seed.

use crate::des::{secs, SimTime};
use crate::{Result, SimError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Request id (arrival order).
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Prompt length, tokens.
    pub prompt_len: u32,
    /// Output length, tokens.
    pub output_len: u32,
}

/// Length distribution for prompts/outputs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LengthDist {
    /// Every request has the same length.
    Fixed(u32),
    /// Uniform between bounds (inclusive).
    Uniform {
        /// Lower bound.
        min: u32,
        /// Upper bound.
        max: u32,
    },
    /// Geometric-tailed around a mean (production-ish skew).
    GeometricMean(u32),
}

impl LengthDist {
    fn sample(&self, rng: &mut StdRng) -> u32 {
        match self {
            LengthDist::Fixed(n) => (*n).max(1),
            LengthDist::Uniform { min, max } => {
                let (lo, hi) = ((*min).max(1), (*max).max(*min).max(1));
                rng.random_range(lo..=hi)
            }
            LengthDist::GeometricMean(mean) => {
                let mean = (*mean).max(1) as f64;
                let u: f64 = rng.random::<f64>().max(1e-12);
                ((-u.ln()) * mean).round().clamp(1.0, 16.0 * mean) as u32
            }
        }
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            LengthDist::Fixed(n) => *n as f64,
            LengthDist::Uniform { min, max } => (*min as f64 + *max as f64) / 2.0,
            LengthDist::GeometricMean(mean) => *mean as f64,
        }
    }
}

/// A Poisson request source.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Mean arrival rate, requests/second.
    pub rate_per_s: f64,
    /// Prompt-length distribution (paper default: fixed 1500).
    pub prompt: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
}

impl Workload {
    /// The paper's workload shape: fixed 1500-token prompts, ~500-token
    /// outputs.
    pub fn paper_coding(rate_per_s: f64) -> Self {
        Self {
            rate_per_s,
            prompt: LengthDist::Fixed(1500),
            output: LengthDist::GeometricMean(500),
        }
    }

    /// Generates all arrivals within `[0, horizon_s)`.
    pub fn generate(&self, horizon_s: f64, seed: u64) -> Result<Vec<Request>> {
        if !self.rate_per_s.is_finite() || self.rate_per_s <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "rate_per_s",
                value: self.rate_per_s,
            });
        }
        if !horizon_s.is_finite() || horizon_s <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "horizon_s",
                value: horizon_s,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0u64;
        loop {
            let u: f64 = rng.random::<f64>().max(1e-300);
            t += -u.ln() / self.rate_per_s;
            if t >= horizon_s {
                break;
            }
            out.push(Request {
                id,
                arrival: secs(t),
                prompt_len: self.prompt.sample(&mut rng),
                output_len: self.output.sample(&mut rng),
            });
            id += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_under_seed() {
        let w = Workload::paper_coding(2.0);
        let a = w.generate(100.0, 7).unwrap();
        let b = w.generate(100.0, 7).unwrap();
        assert_eq!(a, b);
        let c = w.generate(100.0, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_rate_approximates_lambda() {
        let w = Workload::paper_coding(5.0);
        let reqs = w.generate(2000.0, 1).unwrap();
        let rate = reqs.len() as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.3, "rate = {rate}");
    }

    #[test]
    fn arrivals_sorted_and_in_horizon() {
        let w = Workload::paper_coding(3.0);
        let reqs = w.generate(50.0, 2).unwrap();
        for pair in reqs.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        assert!(reqs.iter().all(|r| r.arrival < secs(50.0)));
    }

    #[test]
    fn fixed_prompt_lengths() {
        let w = Workload::paper_coding(2.0);
        let reqs = w.generate(50.0, 3).unwrap();
        assert!(reqs.iter().all(|r| r.prompt_len == 1500));
        assert!(reqs.iter().all(|r| r.output_len >= 1));
    }

    #[test]
    fn geometric_mean_is_roughly_mean() {
        let d = LengthDist::GeometricMean(500);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean = {mean}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let w = Workload::paper_coding(0.0);
        assert!(w.generate(10.0, 1).is_err());
        let w = Workload::paper_coding(1.0);
        assert!(w.generate(0.0, 1).is_err());
    }

    proptest! {
        #[test]
        fn uniform_respects_bounds(min in 1u32..100, span in 0u32..100) {
            let d = LengthDist::Uniform { min, max: min + span };
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..50 {
                let v = d.sample(&mut rng);
                prop_assert!(v >= min && v <= min + span);
            }
        }
    }
}

//! Model-instance timing: a tensor-parallel GPU group whose step costs
//! come from the roofline engine.

use crate::des::{secs, SimTime};
use crate::Result;
use litegpu_roofline::{EngineParams, StepCostTable};
use litegpu_specs::GpuSpec;
use litegpu_workload::{kv, ModelArch};

/// Timing oracle for one instance configuration (GPU type × group size ×
/// model). Step costs come from a precomputed
/// [`litegpu_roofline::StepCostTable`], so the simulator's hot loop never
/// re-evaluates the roofline model.
#[derive(Debug, Clone)]
pub struct InstanceModel {
    /// GPU type.
    pub spec: GpuSpec,
    /// GPUs in the instance.
    pub gpus: u32,
    /// Model served.
    pub arch: ModelArch,
    /// Engine parameters (precision, SLOs, overlap).
    pub params: EngineParams,
    /// Maximum concurrent sequences (KV capacity at the steady-state
    /// context).
    pub max_batch: u32,
    table: StepCostTable,
}

impl InstanceModel {
    /// Builds the oracle; fails when the model cannot fit on the group.
    pub fn new(spec: GpuSpec, gpus: u32, arch: ModelArch, params: EngineParams) -> Result<Self> {
        let table = StepCostTable::build(&spec, &arch, gpus, &params)?;
        Ok(Self {
            spec,
            gpus,
            arch,
            params,
            max_batch: table.max_batch,
            table,
        })
    }

    /// Time to prefill a batch of prompts (at the workload prompt length).
    pub fn prefill_time(&mut self, batch: u32) -> Result<SimTime> {
        Ok(self.table.prefill_us(batch.clamp(1, self.max_batch)))
    }

    /// Time for one decode step over `batch` running sequences.
    pub fn decode_step_time(&mut self, batch: u32) -> Result<SimTime> {
        Ok(self.table.decode_step_us(batch))
    }

    /// Time to stream one request's KV cache to another instance
    /// (Splitwise's prefill→decode hand-off): each of the `gpus` shards
    /// moves in parallel over the per-GPU link.
    pub fn kv_transfer_time(&self, prompt_len: u32) -> SimTime {
        let bytes = kv::bytes_per_token(&self.arch, self.params.precision) * prompt_len as f64;
        let per_gpu = bytes / self.gpus as f64;
        secs(per_gpu / self.spec.net_bytes_per_s()).max(1)
    }
}

/// A sequence being served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveSeq {
    /// Originating request id.
    pub id: u64,
    /// Arrival time of the request.
    pub arrival: SimTime,
    /// Prompt length, tokens.
    pub prompt_len: u32,
    /// Output tokens still to generate.
    pub remaining: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_roofline::EngineParams;
    use litegpu_specs::catalog;
    use litegpu_workload::models;

    fn model() -> InstanceModel {
        InstanceModel::new(
            catalog::h100(),
            2,
            models::llama3_70b(),
            EngineParams::paper_defaults(),
        )
        .unwrap()
    }

    #[test]
    fn too_small_group_rejected() {
        let r = InstanceModel::new(
            catalog::lite_base(),
            2,
            models::llama3_70b(),
            EngineParams::paper_defaults(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn prefill_time_grows_with_batch() {
        let mut m = model();
        let t1 = m.prefill_time(1).unwrap();
        let t8 = m.prefill_time(8).unwrap();
        assert!(t8 > t1);
        // Cache hit returns the same value.
        assert_eq!(m.prefill_time(8).unwrap(), t8);
    }

    #[test]
    fn decode_step_in_tens_of_ms() {
        let mut m = model();
        let t = m.decode_step_time(32).unwrap();
        assert!(t > 1_000 && t < 100_000, "t = {t} µs");
    }

    #[test]
    fn batch_clamped_to_capacity() {
        let mut m = model();
        let cap = m.max_batch;
        assert_eq!(
            m.decode_step_time(cap).unwrap(),
            m.decode_step_time(cap + 1000).unwrap()
        );
    }

    #[test]
    fn kv_transfer_faster_on_bigger_groups() {
        let m2 = model();
        let m4 = InstanceModel::new(
            catalog::h100(),
            4,
            models::llama3_70b(),
            EngineParams::paper_defaults(),
        )
        .unwrap();
        assert!(m4.kv_transfer_time(1500) < m2.kv_transfer_time(1500));
        // Llama3-70B KV at 1500 tokens is ~0.25 GB; over 2x450 GB/s this
        // is sub-millisecond.
        assert!(m2.kv_transfer_time(1500) < 1_000);
    }
}

//! Failure injection and hot-spare policy for serving simulations.
//!
//! §3: "if one GPU out of a group of GPUs serving a model instance fails,
//! the entire instance is taken offline" — the instance-wide blast radius —
//! and "hot spares ... can be activated to serve a model instance while
//! recovering from a failure". The simulator injects instance failures at
//! a configurable accelerated rate (real AFRs would need year-long
//! horizons) and recovers either via a spare (fast swap) or via repair
//! (slow).

use crate::des::{secs, SimTime};
use crate::{Result, SimError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure-injection plan for a serving simulation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailurePlan {
    /// Mean failures per instance per simulated hour (accelerated rate).
    pub failures_per_instance_hour: f64,
    /// Hot spares available (instance-sized).
    pub spares: u32,
    /// Time to activate a spare, seconds.
    pub spare_swap_s: f64,
    /// Repair time without a spare, seconds.
    pub repair_s: f64,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self {
            failures_per_instance_hour: 0.0,
            spares: 0,
            spare_swap_s: 10.0,
            repair_s: 600.0,
        }
    }

    /// An accelerated stress plan: roughly one failure per instance per
    /// 10 minutes of simulated time.
    pub fn stress(spares: u32) -> Self {
        Self {
            failures_per_instance_hour: 6.0,
            spares,
            spare_swap_s: 10.0,
            repair_s: 600.0,
        }
    }

    /// Derives a plan from the cluster-level
    /// [`litegpu_cluster::failure::FailureModel`], bridging its
    /// *annualized* rates to this simulator's *per-hour* rates (the shared
    /// unit convention documented in `litegpu_cluster::failure`).
    ///
    /// `acceleration` scales the failure rate only — `1.0` is the real
    /// hardware rate (roughly one failure per instance-year; invisible in
    /// a minutes-long run), larger values compress years of failure
    /// behaviour into short horizons while keeping swap/repair times real.
    pub fn from_failure_model(
        model: &litegpu_cluster::failure::FailureModel,
        spec: &litegpu_specs::GpuSpec,
        gpus_per_instance: u32,
        spares: u32,
        acceleration: f64,
    ) -> Self {
        Self {
            failures_per_instance_hour: model.failures_per_instance_hour(spec, gpus_per_instance)
                * acceleration,
            spares,
            spare_swap_s: model.spare_swap_hours * 3600.0,
            repair_s: model.mttr_hours * 3600.0,
        }
    }

    /// Pre-generates failure times for `instances` instances over
    /// `horizon_s`, as `(time, instance)` pairs sorted by time.
    pub fn generate(
        &self,
        instances: usize,
        horizon_s: f64,
        seed: u64,
    ) -> Result<Vec<(SimTime, usize)>> {
        if self.failures_per_instance_hour < 0.0 || !self.failures_per_instance_hour.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "failures_per_instance_hour",
                value: self.failures_per_instance_hour,
            });
        }
        if self.failures_per_instance_hour == 0.0 || instances == 0 {
            return Ok(Vec::new());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_fa11);
        let rate_per_s = self.failures_per_instance_hour / 3600.0;
        let mut events = Vec::new();
        for inst in 0..instances {
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.random::<f64>().max(1e-300);
                t += -u.ln() / rate_per_s;
                if t >= horizon_s {
                    break;
                }
                events.push((secs(t), inst));
            }
        }
        events.sort_unstable();
        Ok(events)
    }

    /// Recovery delay for a failure, given whether a spare was free.
    pub fn recovery_delay(&self, spare_available: bool) -> SimTime {
        if spare_available {
            secs(self.spare_swap_s)
        } else {
            secs(self.repair_s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_generates_nothing() {
        let p = FailurePlan::none();
        assert!(p.generate(8, 1000.0, 1).unwrap().is_empty());
    }

    #[test]
    fn stress_plan_rate_approximates() {
        let p = FailurePlan::stress(0);
        let ev = p.generate(4, 36_000.0, 2).unwrap();
        // 4 instances x 6/hour x 10 hours = 240 expected.
        let n = ev.len() as f64;
        assert!((n - 240.0).abs() < 60.0, "n = {n}");
    }

    #[test]
    fn events_sorted_and_attributed() {
        let p = FailurePlan::stress(0);
        let ev = p.generate(3, 3600.0, 3).unwrap();
        for w in ev.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(ev.iter().all(|&(_, i)| i < 3));
    }

    #[test]
    fn from_failure_model_bridges_annualized_rates() {
        let spec = litegpu_specs::catalog::h100();
        let model = litegpu_cluster::failure::FailureModel::default_for(&spec);
        let plan = FailurePlan::from_failure_model(&model, &spec, 8, 2, 1.0);
        // 8 GPUs x 5% AFR / 8760 h.
        assert!((plan.failures_per_instance_hour - 8.0 * 0.05 / 8760.0).abs() < 1e-12);
        assert_eq!(plan.spares, 2);
        assert!((plan.repair_s - model.mttr_hours * 3600.0).abs() < 1e-9);
        assert!((plan.spare_swap_s - model.spare_swap_hours * 3600.0).abs() < 1e-9);
        // Acceleration scales the rate linearly.
        let fast = FailurePlan::from_failure_model(&model, &spec, 8, 2, 1000.0);
        assert!(
            (fast.failures_per_instance_hour / plan.failures_per_instance_hour - 1000.0).abs()
                < 1e-6
        );
    }

    #[test]
    fn recovery_delay_depends_on_spares() {
        let p = FailurePlan::stress(1);
        assert!(p.recovery_delay(true) < p.recovery_delay(false));
        assert_eq!(p.recovery_delay(true), secs(10.0));
    }

    #[test]
    fn negative_rate_rejected() {
        let mut p = FailurePlan::none();
        p.failures_per_instance_hour = -1.0;
        assert!(p.generate(1, 10.0, 1).is_err());
    }
}

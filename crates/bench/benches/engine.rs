//! Criterion benchmarks for the roofline engine hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use litegpu_roofline::{decode, engine, prefill, search, EngineParams};
use litegpu_specs::catalog;
use litegpu_workload::stage::PhaseWork;
use litegpu_workload::{models, GqaPolicy, Precision, TensorParallel};
use std::hint::black_box;

fn bench_price_phase(c: &mut Criterion) {
    let params = EngineParams::paper_defaults();
    let arch = models::llama3_70b();
    let phase = PhaseWork::decode(&arch, Precision::Fp8, 64, 2000).unwrap();
    let sharded = TensorParallel::new(8)
        .unwrap()
        .shard_with_policy(&arch, &phase, GqaPolicy::FullShard)
        .unwrap();
    let spec = catalog::h100();
    c.bench_function("price_phase_decode_llama70b_tp8", |b| {
        b.iter(|| {
            engine::price_phase(
                black_box(&spec),
                black_box(&sharded),
                params.decode_overlap,
                &params,
            )
            .unwrap()
        })
    });
}

fn bench_single_eval(c: &mut Criterion) {
    let params = EngineParams::paper_defaults();
    let arch = models::llama3_70b();
    let spec = catalog::h100();
    c.bench_function("decode_evaluate_end_to_end", |b| {
        b.iter(|| decode::evaluate(&spec, &arch, black_box(4), black_box(128), &params).unwrap())
    });
    c.bench_function("prefill_evaluate_end_to_end", |b| {
        b.iter(|| prefill::evaluate(&spec, &arch, black_box(2), black_box(4), &params).unwrap())
    });
}

fn bench_search(c: &mut Criterion) {
    let params = EngineParams::paper_defaults();
    let mut group = c.benchmark_group("config_search");
    group.sample_size(10);
    for arch in [models::llama3_70b(), models::gpt3_175b()] {
        group.bench_with_input(
            BenchmarkId::new("best_decode_h100", &arch.name),
            &arch,
            |b, arch| b.iter(|| search::best_decode(&catalog::h100(), arch, &params).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("best_decode_lite", &arch.name),
            &arch,
            |b, arch| b.iter(|| search::best_decode(&catalog::lite_base(), arch, &params).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_price_phase, bench_single_eval, bench_search);
criterion_main!(benches);

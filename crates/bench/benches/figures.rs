//! Criterion benchmarks for full figure regeneration and the serving
//! simulator — one bench per paper artifact, so `cargo bench` exercises
//! the exact code paths the experiment binaries use.

use criterion::{criterion_group, criterion_main, Criterion};
use litegpu_roofline::{figures, EngineParams};
use litegpu_sim::{simulate, ServingConfig};

fn bench_figure3(c: &mut Criterion) {
    let params = EngineParams::paper_defaults();
    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);
    group.bench_function("figure3a_full", |b| {
        b.iter(|| figures::figure3a(&params).unwrap())
    });
    group.bench_function("figure3b_full", |b| {
        b.iter(|| figures::figure3b(&params).unwrap())
    });
    group.finish();
}

fn bench_tables_and_claims(c: &mut Criterion) {
    let mut group = c.benchmark_group("claims");
    group.sample_size(10);
    group.bench_function("table1", |b| b.iter(litegpu::experiments::table1));
    group.bench_function("fig1", |b| b.iter(litegpu::experiments::fig1));
    group.bench_function("claim_yield", |b| b.iter(litegpu::experiments::claim_yield));
    group.bench_function("claim_network", |b| {
        b.iter(litegpu::experiments::claim_network)
    });
    group.bench_function("claim_power", |b| b.iter(litegpu::experiments::claim_power));
    group.bench_function("claim_blast_radius", |b| {
        b.iter(litegpu::experiments::claim_blast_radius)
    });
    group.finish();
}

fn bench_serving_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_sim");
    group.sample_size(10);
    let mut cfg = ServingConfig::splitwise_h100_demo();
    cfg.horizon_s = 30.0;
    group.bench_function("splitwise_h100_30s", |b| {
        b.iter(|| simulate(&cfg, 42).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_figure3,
    bench_tables_and_claims,
    bench_serving_sim
);
criterion_main!(benches);

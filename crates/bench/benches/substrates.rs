//! Criterion benchmarks for the substrate crates: fab math, collective
//! cost models, binning DP and failure Monte Carlo.

use criterion::{criterion_group, criterion_main, Criterion};
use litegpu_cluster::failure::{monte_carlo_availability, FailureModel};
use litegpu_fab::binning::BinningPolicy;
use litegpu_fab::wafer::{DieGeometry, Wafer};
use litegpu_fab::yield_model::{RadialDefectProfile, YieldModel};
use litegpu_net::collective::{collective_cost, CollectiveAlgorithm, CollectiveOp};
use litegpu_specs::catalog;
use std::hint::black_box;

fn bench_fab(c: &mut Criterion) {
    let wafer = Wafer::w300();
    let die = DieGeometry::square(814.0).unwrap();
    c.bench_function("gross_dies_grid_h100", |b| {
        b.iter(|| wafer.gross_dies(black_box(&die)).unwrap())
    });
    let small = die.shrink(16).unwrap();
    c.bench_function("gross_dies_grid_1_16th", |b| {
        b.iter(|| wafer.gross_dies(black_box(&small)).unwrap())
    });
    let profile = RadialDefectProfile::new(0.1, 3.0).unwrap();
    c.bench_function("radial_yield_h100", |b| {
        b.iter(|| {
            profile
                .good_dies_per_wafer(&wafer, &die, YieldModel::Murphy)
                .unwrap()
        })
    });
    let policy = BinningPolicy::new(144, 132, 0.2).unwrap();
    c.bench_function("binning_sellable_probability", |b| {
        b.iter(|| policy.sellable_probability(black_box(0.814)))
    });
}

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("ring_allreduce_cost_32", |b| {
        b.iter(|| {
            collective_cost(
                CollectiveOp::AllReduce,
                CollectiveAlgorithm::Ring,
                black_box(32),
                black_box(16.0e6),
                112.5e9,
                5e-7,
            )
            .unwrap()
        })
    });
}

fn bench_failure_mc(c: &mut Criterion) {
    let gpu = catalog::lite_base();
    let model = FailureModel::default_for(&gpu);
    let mut group = c.benchmark_group("failure_mc");
    group.sample_size(10);
    group.bench_function("monte_carlo_100y_128gpus", |b| {
        b.iter(|| monte_carlo_availability(&gpu, &model, 4, 32, 2, 100.0, 42).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fab, bench_collectives, bench_failure_mc);
criterion_main!(benches);

//! Criterion benchmarks for the sharded fleet engine's hot loop:
//! simulated instance-ticks per second at 1 shard/thread vs. many, plus
//! the step-cost table build that fronts every run.

use criterion::{criterion_group, criterion_main, Criterion};
use litegpu_fleet::{run_sharded, FleetConfig};
use litegpu_roofline::{EngineParams, StepCostTable};

fn bench_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_demo();
    cfg.instances = 200;
    cfg.cell_size = 10;
    cfg.horizon_s = 600.0;
    cfg.failure_acceleration = 20_000.0;
    cfg
}

fn bench_fleet_hot_loop(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ticks = cfg.num_ticks() as u64 * cfg.instances as u64;
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    // 200 instances x 600 s = 120k instance-ticks per iteration.
    group.bench_function(format!("sim_{ticks}_instance_ticks_1_shard"), |b| {
        b.iter(|| run_sharded(&cfg, 42, 1, 1).unwrap())
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    group.bench_function(
        format!("sim_{ticks}_instance_ticks_{threads}_threads"),
        |b| b.iter(|| run_sharded(&cfg, 42, cfg.num_cells(), threads).unwrap()),
    );
    group.finish();
}

fn bench_fleet_phase_split(c: &mut Criterion) {
    // The phase-split hot loop adds KV-link pricing and pool delivery on
    // top of the monolithic path; this tracks what that costs.
    let cfg = bench_cfg().with_phase_split();
    let ticks = cfg.num_ticks() as u64 * cfg.instances as u64;
    let mut group = c.benchmark_group("fleet_split");
    group.sample_size(10);
    group.bench_function(format!("sim_{ticks}_instance_ticks_split_1_shard"), |b| {
        b.iter(|| run_sharded(&cfg, 42, 1, 1).unwrap())
    });
    group.finish();
}

fn bench_stepcost_build(c: &mut Criterion) {
    let params = EngineParams::paper_defaults();
    c.bench_function("stepcost_table_build_lite_tp8", |b| {
        b.iter(|| {
            StepCostTable::build(
                &litegpu_specs::catalog::lite_base(),
                &litegpu_workload::models::llama3_70b(),
                8,
                &params,
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_fleet_hot_loop,
    bench_fleet_phase_split,
    bench_stepcost_build
);
criterion_main!(benches);

//! Shared plumbing for the experiment binaries: artifact output under
//! `target/experiments/`.

use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment binaries drop machine-readable artifacts.
pub fn experiments_dir() -> PathBuf {
    let mut p =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()));
    p.push("experiments");
    p
}

/// Prints an experiment to stdout and writes companion artifacts
/// (`<id>.txt` plus any `(name, contents)` extras such as JSON or SVG).
pub fn emit(exp: &litegpu::experiments::Experiment, extras: &[(String, String)]) {
    println!("=== {} ===\n{}", exp.title, exp.output);
    let dir = experiments_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return; // Artifact output is best-effort.
    }
    let write = |name: &str, contents: &str| {
        if let Ok(mut f) = std::fs::File::create(dir.join(name)) {
            let _ = f.write_all(contents.as_bytes());
        }
    };
    write(&format!("{}.txt", exp.id), &exp.output);
    for (name, contents) in extras {
        write(name, contents);
    }
}

/// Serializes any serde value to pretty JSON (best-effort).
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

/// Writes a user-requested artifact (`--series`, `--trace`,
/// `--perf-json`, ...), exiting non-zero with a clean diagnostic when
/// the path is unwritable — a requested artifact that silently fails to
/// appear breaks the CI contract downstream.
pub fn write_artifact(what: &str, path: &str, bytes: &str) {
    match std::fs::write(path, bytes) {
        Ok(()) => eprintln!("# {what}: wrote {path}"),
        Err(e) => {
            eprintln!("{what} {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The silicon-equal H100-vs-Lite fleet pairs the experiment binaries
/// compare, built in one place instead of copy-pasted per binary.
///
/// Two constructions exist:
/// - the *demo* pairs ([`demo_pair`], [`ctrl_demo_pair`]): the fleet
///   engine's tensor-parallel Llama3-70B demo fleets with the
///   §3-appropriate power policy per GPU type;
/// - the *single-GPU* pair ([`pair_designs`], [`pair_configs`]): N
///   single-GPU Llama3-8B H100 instances in 8-wide cells with one spare
///   vs 4N Lite instances in 32-wide cells with four spares at a quarter
///   of the per-instance rate — the same silicon, demand and rack shape,
///   expressed as `litegpu_tco` design points so the chaos binary and
///   the TCO sweep study literally the same candidates.
///
/// [`demo_pair`]: fleet_pair::demo_pair
/// [`ctrl_demo_pair`]: fleet_pair::ctrl_demo_pair
/// [`pair_designs`]: fleet_pair::pair_designs
/// [`pair_configs`]: fleet_pair::pair_configs
pub mod fleet_pair {
    use litegpu_cluster::power_mgmt::Policy;
    use litegpu_fleet::FleetConfig;
    pub use litegpu_tco::{DesignPoint, SweepBase};

    /// The demo fleets with their §3 auto policies: H100 parks at the
    /// DVFS idle floor, Lite power-gates per unit.
    pub fn demo_pair() -> [(&'static str, FleetConfig, Policy); 2] {
        [
            ("h100", FleetConfig::h100_demo(), Policy::DvfsAll),
            ("lite", FleetConfig::lite_demo(), Policy::GateToEfficiency),
        ]
    }

    /// The controlled demo fleets (autoscaler + router + power policy
    /// already attached).
    pub fn ctrl_demo_pair() -> [(&'static str, FleetConfig); 2] {
        [
            ("h100", FleetConfig::h100_ctrl_demo()),
            ("lite", FleetConfig::lite_ctrl_demo()),
        ]
    }

    /// The canonical silicon-equal pair as TCO design points: die
    /// divisor 1 vs 4, 8-equivalent cells, one spare equivalent,
    /// monolithic serving, no DVFS.
    pub fn pair_designs() -> [(&'static str, DesignPoint); 2] {
        let base = DesignPoint {
            die_divisor: 1,
            cell_units: 8,
            spare_units: 1,
            split: false,
            dvfs: false,
        };
        [
            ("h100", base),
            (
                "lite",
                DesignPoint {
                    die_divisor: 4,
                    ..base
                },
            ),
        ]
    }

    /// The canonical pair as runnable fleet configurations over a sweep
    /// base. `controlled` keeps the divisor-appropriate control plane;
    /// the chaos binary strips it to study the fixed fleet.
    pub fn pair_configs(base: &SweepBase, controlled: bool) -> [(&'static str, FleetConfig); 2] {
        pair_designs().map(|(name, design)| {
            let mut cfg = design
                .fleet_config(base)
                .expect("the canonical pair is a valid design");
            if !controlled {
                cfg.ctrl = None;
            }
            (name, cfg)
        })
    }

    /// Resolves a `--threads` argument: `0` means every available core.
    pub fn threads_or_auto(requested: u32) -> u32 {
        if requested > 0 {
            requested
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1)
        }
    }

    /// Resolves a `--shards` argument: `0` means one shard per repair
    /// cell (the engine's natural partition).
    pub fn shards_or_cells(requested: u32, cfg: &FleetConfig) -> u32 {
        if requested > 0 {
            requested
        } else {
            cfg.num_cells()
        }
    }
}

/// Minimal flag-parsing helpers shared by the experiment binaries
/// (`sim_fleet`, `sim_ctrl`, ...). Both exit with status 2 on bad input,
/// which is the binaries' established CLI contract.
pub mod cli {
    /// Returns the value following the flag at `argv[*i]`, advancing `i`
    /// past it; exits when the flag is the last token.
    pub fn value(argv: &[String], i: &mut usize) -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    }

    /// Parses a flag's raw value, exiting with a diagnostic on failure.
    pub fn parsed<T: std::str::FromStr>(flag: &str, raw: String) -> T {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {raw}");
            std::process::exit(2);
        })
    }

    /// The one shared parse path for `--series-dt`: a positive integer
    /// number of **simulated microseconds** per series sample window
    /// (e.g. `60000000` = 60 s windows). Every binary that exposes the
    /// flag routes through here so the unit can never drift between
    /// bins, docs and the engine's `TelemetryConfig::series_dt_us`.
    pub fn series_dt_us(flag: &str, raw: String) -> u64 {
        let us: u64 = raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {raw} (expected integer µs of simulated time)");
            std::process::exit(2);
        });
        if us == 0 {
            eprintln!("{flag} must be >= 1 µs of simulated time");
            std::process::exit(2);
        }
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_ends_with_experiments() {
        assert!(experiments_dir().ends_with("experiments"));
    }

    #[test]
    fn json_serializes() {
        let s = to_json(&vec![1, 2, 3]);
        assert!(s.contains('1'));
    }

    #[test]
    fn pair_configs_are_silicon_equal() {
        let base = fleet_pair::SweepBase {
            equiv_instances: 24,
            rate_per_equiv: 2.0,
            hours: 0.5,
            accel: 10_000.0,
        };
        let [(hn, h), (ln, l)] = fleet_pair::pair_configs(&base, false);
        assert_eq!((hn, ln), ("h100", "lite"));
        assert_eq!((h.gpu.name.as_str(), l.gpu.name.as_str()), ("H100", "Lite"));
        // 4x the instances at 1/4 the capability, same cells and spare
        // silicon, same total demand, no control plane.
        assert_eq!((h.instances, l.instances), (24, 96));
        assert_eq!((h.cell_size, l.cell_size), (8, 32));
        assert_eq!((h.spares_per_cell, l.spares_per_cell), (1, 4));
        assert_eq!(h.num_cells(), l.num_cells());
        assert_eq!(h.gpus_per_instance, 1);
        assert!(h.ctrl.is_none() && l.ctrl.is_none());
        assert!(
            (h.workload.rate_per_instance_s - 4.0 * l.workload.rate_per_instance_s).abs() < 1e-12
        );
        // The controlled variant keeps the divisor-appropriate policies.
        let [(_, hc), (_, lc)] = fleet_pair::pair_configs(&base, true);
        use litegpu_cluster::power_mgmt::Policy;
        assert_eq!(hc.ctrl.unwrap().power.unwrap().policy, Policy::DvfsAll);
        assert_eq!(
            lc.ctrl.unwrap().power.unwrap().policy,
            Policy::GateToEfficiency
        );
    }

    #[test]
    fn parallelism_defaults_resolve() {
        assert_eq!(fleet_pair::threads_or_auto(3), 3);
        assert!(fleet_pair::threads_or_auto(0) >= 1);
        let cfg = litegpu_fleet::FleetConfig::h100_demo();
        assert_eq!(fleet_pair::shards_or_cells(5, &cfg), 5);
        assert_eq!(fleet_pair::shards_or_cells(0, &cfg), cfg.num_cells());
    }
}

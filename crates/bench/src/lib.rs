//! Shared plumbing for the experiment binaries: artifact output under
//! `target/experiments/`.

use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment binaries drop machine-readable artifacts.
pub fn experiments_dir() -> PathBuf {
    let mut p =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()));
    p.push("experiments");
    p
}

/// Prints an experiment to stdout and writes companion artifacts
/// (`<id>.txt` plus any `(name, contents)` extras such as JSON or SVG).
pub fn emit(exp: &litegpu::experiments::Experiment, extras: &[(String, String)]) {
    println!("=== {} ===\n{}", exp.title, exp.output);
    let dir = experiments_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return; // Artifact output is best-effort.
    }
    let write = |name: &str, contents: &str| {
        if let Ok(mut f) = std::fs::File::create(dir.join(name)) {
            let _ = f.write_all(contents.as_bytes());
        }
    };
    write(&format!("{}.txt", exp.id), &exp.output);
    for (name, contents) in extras {
        write(name, contents);
    }
}

/// Serializes any serde value to pretty JSON (best-effort).
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

/// Minimal flag-parsing helpers shared by the experiment binaries
/// (`sim_fleet`, `sim_ctrl`, ...). Both exit with status 2 on bad input,
/// which is the binaries' established CLI contract.
pub mod cli {
    /// Returns the value following the flag at `argv[*i]`, advancing `i`
    /// past it; exits when the flag is the last token.
    pub fn value(argv: &[String], i: &mut usize) -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    }

    /// Parses a flag's raw value, exiting with a diagnostic on failure.
    pub fn parsed<T: std::str::FromStr>(flag: &str, raw: String) -> T {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {raw}");
            std::process::exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_ends_with_experiments() {
        assert!(experiments_dir().ends_with("experiments"));
    }

    #[test]
    fn json_serializes() {
        let s = to_json(&vec![1, 2, 3]);
        assert!(s.contains('1'));
    }
}

//! Shared plumbing for the experiment binaries: artifact output under
//! `target/experiments/`.

use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment binaries drop machine-readable artifacts.
pub fn experiments_dir() -> PathBuf {
    let mut p =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()));
    p.push("experiments");
    p
}

/// Prints an experiment to stdout and writes companion artifacts
/// (`<id>.txt` plus any `(name, contents)` extras such as JSON or SVG).
pub fn emit(exp: &litegpu::experiments::Experiment, extras: &[(String, String)]) {
    println!("=== {} ===\n{}", exp.title, exp.output);
    let dir = experiments_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return; // Artifact output is best-effort.
    }
    let write = |name: &str, contents: &str| {
        if let Ok(mut f) = std::fs::File::create(dir.join(name)) {
            let _ = f.write_all(contents.as_bytes());
        }
    };
    write(&format!("{}.txt", exp.id), &exp.output);
    for (name, contents) in extras {
        write(name, contents);
    }
}

/// Serializes any serde value to pretty JSON (best-effort).
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

/// Writes a user-requested artifact (`--series`, `--trace`,
/// `--perf-json`, ...), exiting non-zero with a clean diagnostic when
/// the path is unwritable — a requested artifact that silently fails to
/// appear breaks the CI contract downstream.
pub fn write_artifact(what: &str, path: &str, bytes: &str) {
    match std::fs::write(path, bytes) {
        Ok(()) => eprintln!("# {what}: wrote {path}"),
        Err(e) => {
            eprintln!("{what} {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The silicon-equal H100-vs-Lite fleet pairs the experiment binaries
/// compare, built in one place instead of copy-pasted per binary.
///
/// Two constructions exist:
/// - the *demo* pairs ([`demo_pair`], [`ctrl_demo_pair`]): the fleet
///   engine's tensor-parallel Llama3-70B demo fleets with the
///   §3-appropriate power policy per GPU type;
/// - the *single-GPU* pair ([`pair_designs`], [`pair_configs`]): N
///   single-GPU Llama3-8B H100 instances in 8-wide cells with one spare
///   vs 4N Lite instances in 32-wide cells with four spares at a quarter
///   of the per-instance rate — the same silicon, demand and rack shape,
///   expressed as `litegpu_tco` design points so the chaos binary and
///   the TCO sweep study literally the same candidates.
///
/// [`demo_pair`]: fleet_pair::demo_pair
/// [`ctrl_demo_pair`]: fleet_pair::ctrl_demo_pair
/// [`pair_designs`]: fleet_pair::pair_designs
/// [`pair_configs`]: fleet_pair::pair_configs
pub mod fleet_pair {
    use litegpu_cluster::power_mgmt::Policy;
    use litegpu_fleet::FleetConfig;
    pub use litegpu_tco::{DesignPoint, SweepBase};

    /// The demo fleets with their §3 auto policies: H100 parks at the
    /// DVFS idle floor, Lite power-gates per unit.
    pub fn demo_pair() -> [(&'static str, FleetConfig, Policy); 2] {
        [
            ("h100", FleetConfig::h100_demo(), Policy::DvfsAll),
            ("lite", FleetConfig::lite_demo(), Policy::GateToEfficiency),
        ]
    }

    /// The controlled demo fleets (autoscaler + router + power policy
    /// already attached).
    pub fn ctrl_demo_pair() -> [(&'static str, FleetConfig); 2] {
        [
            ("h100", FleetConfig::h100_ctrl_demo()),
            ("lite", FleetConfig::lite_ctrl_demo()),
        ]
    }

    /// The canonical silicon-equal pair as TCO design points: die
    /// divisor 1 vs 4, 8-equivalent cells, one spare equivalent,
    /// monolithic serving, no DVFS.
    pub fn pair_designs() -> [(&'static str, DesignPoint); 2] {
        let base = DesignPoint {
            die_divisor: 1,
            cell_units: 8,
            spare_units: 1,
            split: false,
            dvfs: false,
        };
        [
            ("h100", base),
            (
                "lite",
                DesignPoint {
                    die_divisor: 4,
                    ..base
                },
            ),
        ]
    }

    /// The canonical pair as runnable fleet configurations over a sweep
    /// base. `controlled` keeps the divisor-appropriate control plane;
    /// the chaos binary strips it to study the fixed fleet.
    pub fn pair_configs(base: &SweepBase, controlled: bool) -> [(&'static str, FleetConfig); 2] {
        pair_designs().map(|(name, design)| {
            let mut cfg = design
                .fleet_config(base)
                .expect("the canonical pair is a valid design");
            if !controlled {
                cfg.ctrl = None;
            }
            (name, cfg)
        })
    }

    /// Resolves a `--threads` argument: `0` means every available core.
    pub fn threads_or_auto(requested: u32) -> u32 {
        if requested > 0 {
            requested
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1)
        }
    }

    /// Resolves a `--shards` argument: `0` means one shard per repair
    /// cell (the engine's natural partition).
    pub fn shards_or_cells(requested: u32, cfg: &FleetConfig) -> u32 {
        if requested > 0 {
            requested
        } else {
            cfg.num_cells()
        }
    }
}

/// Minimal flag-parsing helpers shared by the experiment binaries
/// (`sim_fleet`, `sim_ctrl`, ...). Both exit with status 2 on bad input,
/// which is the binaries' established CLI contract.
pub mod cli {
    /// Returns the value following the flag at `argv[*i]`, advancing `i`
    /// past it; exits when the flag is the last token.
    pub fn value(argv: &[String], i: &mut usize) -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    }

    /// Parses a flag's raw value, exiting with a diagnostic on failure.
    pub fn parsed<T: std::str::FromStr>(flag: &str, raw: String) -> T {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {raw}");
            std::process::exit(2);
        })
    }

    /// The one shared parse path for `--series-dt`: a positive integer
    /// number of **simulated microseconds** per series sample window
    /// (e.g. `60000000` = 60 s windows). Every binary that exposes the
    /// flag routes through here so the unit can never drift between
    /// bins, docs and the engine's `TelemetryConfig::series_dt_us`.
    pub fn series_dt_us(flag: &str, raw: String) -> u64 {
        let us: u64 = raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {raw} (expected integer µs of simulated time)");
            std::process::exit(2);
        });
        if us == 0 {
            eprintln!("{flag} must be >= 1 µs of simulated time");
            std::process::exit(2);
        }
        us
    }

    /// Stderr-only warnings for flags a binary accepts but the chosen
    /// mode ignores (e.g. phase flags on a monolithic run). Never
    /// changes behavior or artifact bytes — stdout and exit status are
    /// untouched.
    pub fn warn_ignored(argv: &[String], context: &str, flags: &[&str]) {
        for flag in flags {
            if argv.iter().any(|a| a == flag) {
                eprintln!("# warning: {flag} is ignored {context}");
            }
        }
    }

    /// The CLI surface the fleet-scale binaries (`sim_fleet`,
    /// `sim_ctrl`, `sim_chaos`, `sim_tco`) used to re-implement
    /// flag-by-flag: seed, parallelism shape, and the series/perf
    /// artifact paths. Each binary enables exactly the subset it wires
    /// up, so a flag outside the subset still exits 2 as an unknown
    /// argument instead of being silently accepted.
    pub struct CommonArgs {
        enabled: &'static [&'static str],
        /// Simulation seed (`--seed`, default 42).
        pub seed: u64,
        /// Shard count (`--shards`, 0 = one per repair cell).
        pub shards: u32,
        /// Worker threads (`--threads`, 0 = every available core).
        pub threads: u32,
        /// Series artifact path (`--series`).
        pub series: Option<String>,
        /// Series sample window, simulated µs (`--series-dt`).
        pub series_dt_us: u64,
        /// Perf artifact path (`--perf-json`).
        pub perf_json: Option<String>,
    }

    impl CommonArgs {
        /// Every shared flag, for binaries that wire the full surface.
        pub const ALL: &'static [&'static str] = &[
            "--seed",
            "--shards",
            "--threads",
            "--series",
            "--series-dt",
            "--perf-json",
        ];

        /// Defaults matching every binary's historical values, with the
        /// given flags enabled.
        pub fn new(enabled: &'static [&'static str]) -> Self {
            CommonArgs {
                enabled,
                seed: 42,
                shards: 0,
                threads: 0,
                series: None,
                series_dt_us: 60_000_000,
                perf_json: None,
            }
        }

        /// Attempts to consume `argv[*i]` (plus its value) as one of the
        /// enabled shared flags; returns whether it did.
        pub fn try_parse(&mut self, argv: &[String], i: &mut usize) -> bool {
            let flag = argv[*i].clone();
            if !self.enabled.contains(&flag.as_str()) {
                return false;
            }
            match flag.as_str() {
                "--seed" => self.seed = parsed(&flag, value(argv, i)),
                "--shards" => self.shards = parsed(&flag, value(argv, i)),
                "--threads" => self.threads = parsed(&flag, value(argv, i)),
                "--series" => self.series = Some(value(argv, i)),
                "--series-dt" => self.series_dt_us = series_dt_us(&flag, value(argv, i)),
                "--perf-json" => self.perf_json = Some(value(argv, i)),
                _ => unreachable!("enabled flags are a subset of the handled set"),
            }
            true
        }
    }

    use litegpu_fleet::ctrl::{BalancerConfig, CtrlConfig};
    use litegpu_fleet::FleetConfig;

    /// The shared fleet-scope balancer flag set: `--balancer` turns the
    /// two-level control plane on, the knob flags override
    /// [`BalancerConfig`] defaults, and `--skew HxM` makes the first `H`
    /// cells hot at `M`x their arrival rate with the cold remainder
    /// scaled down so the fleet-total demand is unchanged (e.g.
    /// `--skew 2x2.5` on 8 cells gives the canonical 2-hot/6-cold mix
    /// with the cold cells at 0.5x).
    #[derive(Default)]
    pub struct BalancerArgs {
        /// `--balancer` was passed.
        pub enabled: bool,
        /// `--balancer-interval S` (fleet-tick seconds).
        pub interval_s: Option<f64>,
        /// `--spill-permille N` (bounded redirect fraction).
        pub spill_permille: Option<u16>,
        /// `--hot-factor F` (hot threshold vs fleet-mean queue).
        pub hot_factor: Option<f64>,
        /// `--quota-headroom F` (admission quota multiple).
        pub quota_headroom: Option<f64>,
        /// `--kv-slack-us N` (phase-split spill eligibility).
        pub kv_slack_us: Option<u64>,
        /// `--skew HxM` as `(hot_cells, hot_multiplier)`.
        pub skew: Option<(u32, f64)>,
    }

    impl BalancerArgs {
        /// Attempts to consume `argv[*i]` as one of the balancer flags;
        /// returns whether it did.
        pub fn try_parse(&mut self, argv: &[String], i: &mut usize) -> bool {
            let flag = argv[*i].clone();
            match flag.as_str() {
                "--balancer" => self.enabled = true,
                "--balancer-interval" => self.interval_s = Some(parsed(&flag, value(argv, i))),
                "--spill-permille" => self.spill_permille = Some(parsed(&flag, value(argv, i))),
                "--hot-factor" => self.hot_factor = Some(parsed(&flag, value(argv, i))),
                "--quota-headroom" => self.quota_headroom = Some(parsed(&flag, value(argv, i))),
                "--kv-slack-us" => self.kv_slack_us = Some(parsed(&flag, value(argv, i))),
                "--skew" => {
                    let raw = value(argv, i);
                    let parts = raw.split_once('x').unwrap_or_else(|| {
                        eprintln!("invalid value for --skew: {raw} (expected HxM, e.g. 2x2.5)");
                        std::process::exit(2);
                    });
                    self.skew = Some((parsed("--skew", parts.0.into()), {
                        let m: f64 = parsed("--skew", parts.1.into());
                        if !(m.is_finite() && m >= 1.0) {
                            eprintln!("--skew hot multiplier must be >= 1");
                            std::process::exit(2);
                        }
                        m
                    }));
                }
                _ => return false,
            }
            true
        }

        /// The balancer configuration the knob flags resolve to.
        pub fn config(&self) -> BalancerConfig {
            let mut b = BalancerConfig::default();
            if let Some(v) = self.interval_s {
                b.interval_s = v;
            }
            if let Some(v) = self.spill_permille {
                b.spill_permille = v;
            }
            if let Some(v) = self.hot_factor {
                b.hot_factor = v;
            }
            if let Some(v) = self.quota_headroom {
                b.quota_headroom = v;
            }
            if let Some(v) = self.kv_slack_us {
                b.kv_slack_us = v;
            }
            b
        }

        /// Applies the skew multipliers and (when `--balancer` was
        /// passed) attaches the fleet-scope balancer on top of whatever
        /// cell-scope control the config already carries. Call after the
        /// instance count and cell size are final — the multiplier
        /// vector is sized to `num_cells()`.
        pub fn apply(&self, cfg: &mut FleetConfig) {
            if let Some((hot, mult)) = self.skew {
                cfg.cell_rate_multipliers = skew_multipliers(cfg.num_cells(), hot, mult);
            }
            if self.enabled {
                cfg.ctrl = Some(match cfg.ctrl.take() {
                    Some(c) => c.with_balancer(self.config()),
                    None => CtrlConfig::builder().balancer(self.config()).build(),
                });
            }
        }

        /// Warns (stderr only) when balancer knobs were passed without
        /// `--balancer` — they would otherwise be silently ignored.
        pub fn warn_if_ignored(&self) {
            if self.enabled {
                return;
            }
            for (flag, passed) in [
                ("--balancer-interval", self.interval_s.is_some()),
                ("--spill-permille", self.spill_permille.is_some()),
                ("--hot-factor", self.hot_factor.is_some()),
                ("--quota-headroom", self.quota_headroom.is_some()),
                ("--kv-slack-us", self.kv_slack_us.is_some()),
            ] {
                if passed {
                    eprintln!("# warning: {flag} is ignored without --balancer");
                }
            }
        }
    }

    /// The hot/cold multiplier vector for `--skew HxM`: the first `hot`
    /// cells at `mult`x, the remainder scaled so the fleet-total arrival
    /// rate matches the unskewed fleet exactly (clamped at 0 when the
    /// hot cells already exceed it).
    pub fn skew_multipliers(num_cells: u32, hot: u32, mult: f64) -> Vec<f64> {
        let n = num_cells as usize;
        let hot = (hot as usize).min(n);
        let cold = n - hot;
        let cold_mult = if cold == 0 {
            0.0
        } else {
            ((n as f64 - hot as f64 * mult) / cold as f64).max(0.0)
        };
        let mut m = vec![mult; hot];
        m.resize(n, cold_mult);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_ends_with_experiments() {
        assert!(experiments_dir().ends_with("experiments"));
    }

    #[test]
    fn json_serializes() {
        let s = to_json(&vec![1, 2, 3]);
        assert!(s.contains('1'));
    }

    #[test]
    fn pair_configs_are_silicon_equal() {
        let base = fleet_pair::SweepBase {
            equiv_instances: 24,
            rate_per_equiv: 2.0,
            hours: 0.5,
            accel: 10_000.0,
        };
        let [(hn, h), (ln, l)] = fleet_pair::pair_configs(&base, false);
        assert_eq!((hn, ln), ("h100", "lite"));
        assert_eq!((h.gpu.name.as_str(), l.gpu.name.as_str()), ("H100", "Lite"));
        // 4x the instances at 1/4 the capability, same cells and spare
        // silicon, same total demand, no control plane.
        assert_eq!((h.instances, l.instances), (24, 96));
        assert_eq!((h.cell_size, l.cell_size), (8, 32));
        assert_eq!((h.spares_per_cell, l.spares_per_cell), (1, 4));
        assert_eq!(h.num_cells(), l.num_cells());
        assert_eq!(h.gpus_per_instance, 1);
        assert!(h.ctrl.is_none() && l.ctrl.is_none());
        assert!(
            (h.workload.rate_per_instance_s - 4.0 * l.workload.rate_per_instance_s).abs() < 1e-12
        );
        // The controlled variant keeps the divisor-appropriate policies.
        let [(_, hc), (_, lc)] = fleet_pair::pair_configs(&base, true);
        use litegpu_cluster::power_mgmt::Policy;
        assert_eq!(hc.ctrl.unwrap().power.unwrap().policy, Policy::DvfsAll);
        assert_eq!(
            lc.ctrl.unwrap().power.unwrap().policy,
            Policy::GateToEfficiency
        );
    }

    #[test]
    fn skew_multipliers_conserve_fleet_demand() {
        let m = cli::skew_multipliers(8, 2, 2.5);
        assert_eq!(m.len(), 8);
        assert_eq!(&m[..2], &[2.5, 2.5]);
        assert!(m[2..].iter().all(|&c| (c - 0.5).abs() < 1e-12));
        assert!((m.iter().sum::<f64>() - 8.0).abs() < 1e-12);
        // Overcommitted hot cells clamp the cold remainder at zero.
        let m = cli::skew_multipliers(4, 3, 2.0);
        assert_eq!(m, vec![2.0, 2.0, 2.0, 0.0]);
        // All-hot leaves no cold remainder to scale.
        assert_eq!(cli::skew_multipliers(2, 5, 3.0), vec![3.0, 3.0]);
    }

    #[test]
    fn common_args_parse_enabled_subset_only() {
        let argv: Vec<String> = ["--seed", "7", "--threads", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut c = cli::CommonArgs::new(&["--seed"]);
        let mut i = 0;
        assert!(c.try_parse(&argv, &mut i));
        assert_eq!((c.seed, i), (7, 1));
        i = 2;
        assert!(!c.try_parse(&argv, &mut i), "--threads not enabled");
        assert_eq!(c.threads, 0);
        let mut all = cli::CommonArgs::new(cli::CommonArgs::ALL);
        i = 2;
        assert!(all.try_parse(&argv, &mut i));
        assert_eq!(all.threads, 3);
    }

    #[test]
    fn balancer_args_resolve_config_and_attach() {
        let argv: Vec<String> = ["--balancer", "--spill-permille", "450", "--skew", "2x2.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut b = cli::BalancerArgs::default();
        let mut i = 0;
        while i < argv.len() {
            assert!(b.try_parse(&argv, &mut i), "{}", argv[i]);
            i += 1;
        }
        assert!(b.enabled);
        assert_eq!(b.config().spill_permille, 450);
        assert_eq!(b.skew, Some((2, 2.5)));
        let mut cfg = litegpu_fleet::FleetConfig::lite_demo();
        cfg.instances = 64;
        cfg.cell_size = 8;
        b.apply(&mut cfg);
        assert_eq!(cfg.cell_rate_multipliers.len(), 8);
        let ctrl = cfg.ctrl.expect("balancer attaches a control plane");
        assert_eq!(ctrl.balancer.expect("balancer set").spill_permille, 450);
        assert_eq!(ctrl.label(), "balancer");
    }

    #[test]
    fn parallelism_defaults_resolve() {
        assert_eq!(fleet_pair::threads_or_auto(3), 3);
        assert!(fleet_pair::threads_or_auto(0) >= 1);
        let cfg = litegpu_fleet::FleetConfig::h100_demo();
        assert_eq!(fleet_pair::shards_or_cells(5, &cfg), 5);
        assert_eq!(fleet_pair::shards_or_cells(0, &cfg), cfg.num_cells());
    }
}

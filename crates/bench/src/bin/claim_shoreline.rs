//! Reproduces the §2 shoreline (bandwidth-to-compute) claim.
fn main() {
    litegpu_bench::emit(&litegpu::experiments::claim_shoreline(), &[]);
}

//! Regenerates Table 1 (GPU configurations).
fn main() {
    let exp = litegpu::experiments::table1();
    let json = litegpu_bench::to_json(&litegpu_specs::catalog::table1());
    litegpu_bench::emit(&exp, &[("table1.json".into(), json)]);
}

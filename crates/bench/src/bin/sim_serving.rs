//! Serving-level simulation: phase splitting on H100 vs Lite clusters.
fn main() {
    litegpu_bench::emit(&litegpu::experiments::sim_serving(), &[]);
}

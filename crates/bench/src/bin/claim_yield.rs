//! Reproduces the §2 yield and manufacturing-cost claims.
fn main() {
    let exp = litegpu::experiments::claim_yield();
    let json = litegpu_fab::cost::h100_vs_lite_comparison()
        .map(|c| litegpu_bench::to_json(&c))
        .unwrap_or_default();
    litegpu_bench::emit(&exp, &[("claim_yield.json".into(), json)]);
}

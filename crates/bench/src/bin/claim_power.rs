//! Reproduces the §3 finer-grained power-management claim.
fn main() {
    litegpu_bench::emit(&litegpu::experiments::claim_power(), &[]);
}

//! Reproduces the §3 blast-radius and hot-spare claims.
fn main() {
    litegpu_bench::emit(&litegpu::experiments::claim_blast_radius(), &[]);
}

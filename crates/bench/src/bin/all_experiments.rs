//! Runs every paper experiment in sequence.
fn main() {
    for exp in litegpu::experiments::run_all() {
        litegpu_bench::emit(&exp, &[]);
    }
}

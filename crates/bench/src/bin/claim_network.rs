//! Reproduces the §3 circuit-vs-packet switching claims.
fn main() {
    litegpu_bench::emit(&litegpu::experiments::claim_network(), &[]);
}

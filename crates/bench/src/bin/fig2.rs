//! Regenerates Figure 2 (example Lite-GPU deployment).
fn main() {
    let exp = litegpu::experiments::fig2();
    litegpu_bench::emit(&exp, &[]);
}

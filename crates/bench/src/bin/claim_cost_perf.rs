//! Extension experiment: decode throughput per package-cost dollar.
use litegpu_roofline::EngineParams;

fn main() {
    let params = EngineParams::paper_defaults();
    litegpu_bench::emit(&litegpu::experiments::claim_cost_perf(&params), &[]);
}

//! Fleet-scale serving simulation: thousands of instances over days of
//! simulated time, H100-class vs Lite-GPU fleets.
//!
//! Emits one deterministic `FleetReport` JSON per fleet to stdout and to
//! `target/experiments/fleet_<name>.json`. The same seed produces
//! byte-identical JSON at any `--shards`/`--threads` setting.
//!
//! ```text
//! sim_fleet [--gpu h100|lite|both] [--instances N] [--hours H]
//!           [--rate R] [--accel A] [--spares-per-cell N] [--cell-size N]
//!           [--tick S] [--seed N] [--shards N] [--threads N] [--quiet-json]
//! ```

use litegpu_fleet::{run_sharded, FleetConfig};

struct Args {
    gpu: String,
    instances: u32,
    hours: f64,
    rate: f64,
    accel: f64,
    spares_per_cell: u32,
    cell_size: u32,
    tick: f64,
    seed: u64,
    shards: u32,
    threads: u32,
    quiet_json: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        gpu: "both".into(),
        instances: 1000,
        hours: 24.0,
        rate: 1.5,
        accel: 200.0,
        spares_per_cell: 1,
        cell_size: 20,
        tick: 1.0,
        seed: 42,
        shards: 0,
        threads: 0,
        quiet_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    fn parsed<T: std::str::FromStr>(flag: &str, raw: String) -> T {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {raw}");
            std::process::exit(2);
        })
    }
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--gpu" => a.gpu = value(&mut i),
            "--instances" => a.instances = parsed(&flag, value(&mut i)),
            "--hours" => a.hours = parsed(&flag, value(&mut i)),
            "--rate" => a.rate = parsed(&flag, value(&mut i)),
            "--accel" => a.accel = parsed(&flag, value(&mut i)),
            "--spares-per-cell" => a.spares_per_cell = parsed(&flag, value(&mut i)),
            "--cell-size" => a.cell_size = parsed(&flag, value(&mut i)),
            "--tick" => a.tick = parsed(&flag, value(&mut i)),
            "--seed" => a.seed = parsed(&flag, value(&mut i)),
            "--shards" => a.shards = parsed(&flag, value(&mut i)),
            "--threads" => a.threads = parsed(&flag, value(&mut i)),
            "--quiet-json" => a.quiet_json = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    a
}

fn configure(base: FleetConfig, a: &Args) -> FleetConfig {
    let mut cfg = base;
    cfg.instances = a.instances;
    cfg.horizon_s = a.hours * 3600.0;
    cfg.traffic.rate_per_instance_s = a.rate;
    cfg.failure_acceleration = a.accel;
    cfg.spares_per_cell = a.spares_per_cell;
    cfg.cell_size = a.cell_size;
    cfg.tick_s = a.tick;
    cfg
}

fn main() {
    let a = parse_args();
    let fleets: Vec<(&str, FleetConfig)> = match a.gpu.as_str() {
        "h100" => vec![("h100", configure(FleetConfig::h100_demo(), &a))],
        "lite" => vec![("lite", configure(FleetConfig::lite_demo(), &a))],
        "both" => vec![
            ("h100", configure(FleetConfig::h100_demo(), &a)),
            ("lite", configure(FleetConfig::lite_demo(), &a)),
        ],
        other => {
            eprintln!("unknown --gpu {other} (expected h100|lite|both)");
            std::process::exit(2);
        }
    };
    let threads = if a.threads > 0 {
        a.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1)
    };
    for (name, cfg) in fleets {
        let shards = if a.shards > 0 {
            a.shards
        } else {
            cfg.num_cells()
        };
        let start = std::time::Instant::now();
        let report = match run_sharded(&cfg, a.seed, shards, threads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet {name}: {e}");
                std::process::exit(1);
            }
        };
        let wall = start.elapsed();
        let json = report.to_json();
        eprintln!(
            "# {name}: {} ({} shards, {} threads, {:.2} s wall)",
            report.summary(),
            shards,
            threads,
            wall.as_secs_f64()
        );
        if !a.quiet_json {
            println!("{json}");
        }
        let dir = litegpu_bench::experiments_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("fleet_{name}.json")), &json);
        }
    }
}

//! Fleet-scale serving simulation: thousands of instances over days of
//! simulated time, H100-class vs Lite-GPU fleets.
//!
//! Emits one deterministic `FleetReport` JSON per fleet to stdout and to
//! `target/experiments/fleet_<name>.json`. The same seed produces
//! byte-identical JSON at any `--shards`/`--threads` setting.
//!
//! ```text
//! sim_fleet [--gpu h100|lite|both] [--instances N] [--hours H]
//!           [--rate R] [--accel A] [--spares-per-cell N] [--cell-size N]
//!           [--tick S] [--seed N] [--shards N] [--threads N]
//!           [--ctrl off|auto|dvfs|gate] [--dvfs] [--control-interval S]
//!           [--warm-pool N] [--workload single|multi]
//!           [--serving mono|split] [--prefill-fraction F]
//!           [--kv-gbps G] [--kv-backlog S] [--no-baseline]
//!           [--chaos rack|power|partition|thermal|drain]
//!           [--balancer] [--balancer-interval S] [--spill-permille N]
//!           [--hot-factor F] [--quota-headroom F] [--kv-slack-us N]
//!           [--skew HxM]
//!           [--perf-json PATH] [--quiet-json]
//!           [--series PATH] [--series-dt US] [--series-per-cell]
//!           [--trace PATH] [--trace-every N] [--profile]
//! ```
//!
//! `--ctrl` enables the litegpu-ctrl control plane (autoscaler + power
//! gating + cell router + admission control): `auto` picks the
//! §3-appropriate power policy per GPU type (H100 parks at the DVFS idle
//! floor, Lite power-gates), while `dvfs`/`gate` force one policy on
//! every fleet. `--dvfs` additionally runs the serving-time DVFS policy:
//! the engine prices the full `SLO_MIN_CLOCK..=1.0` operating-point grid
//! into step costs and the control plane retunes live instances per
//! cell (and per phase pool), reported in the `dvfs` section. `--workload multi` swaps the single diurnal tenant for
//! the three-tenant mixed-priority demo (interactive chat + batch +
//! best-effort scavenger), reported per tenant.
//!
//! `--serving split` serves Splitwise-style: each cell partitions into
//! prefill and decode pools, prefill completions stream KV caches over a
//! per-cell link (default budget derived from the GPU's own network
//! bandwidth; override with `--kv-gbps`), and the binary also runs a
//! monolithic twin of every fleet (skip with `--no-baseline`) to print
//! the split-vs-mono headline:
//! p99 TBT isolation bought at a TTFT transfer premium, plus the
//! H100-vs-Lite KV-bandwidth trade. `--perf-json PATH` writes a small
//! `{instance_ticks, wall_s, ticks_per_sec}` artifact for the primary
//! run (CI perf smoke).
//!
//! `--balancer` turns on the two-level control plane: a fleet-scope
//! spill-over balancer runs above whatever cell-scope stack `--ctrl`
//! selected (or alone with `--ctrl off`), redirecting a bounded fraction
//! of hot cells' arrivals to under-loaded cells each fleet tick and
//! reporting the exact-conservation flow matrix in the report's
//! `balancer` section. `--skew HxM` makes the first `H` cells hot at
//! `M`x their arrival rate (cold cells scaled down to hold fleet-total
//! demand), e.g. `--skew 2x2.5` for the canonical 2-hot/6-cold mix.
//!
//! `--chaos KIND` compiles a small demo campaign of that kind (via
//! `litegpu-chaos`, seeded from `--seed`) into every fleet, so the CI
//! determinism gate can check the byte-identical guarantee under
//! correlated failures, repair crews, partitions, thermal clamps and
//! rolling drains too.
//!
//! Observability (all off by default, none of it changes report bytes):
//! `--series PATH` samples the deterministic time-series layer every
//! `--series-dt` integer microseconds of simulated time (default
//! 60000000 = 60 s windows) and writes JSONL (or CSV when PATH ends in
//! `.csv`); `--series-per-cell` adds per-cell series.
//! `--trace PATH` writes a Chrome trace-event JSON (open in Perfetto)
//! with every 1-in-`--trace-every` request span (default 64) plus all
//! control-plane commands and chaos events. `--profile` times the engine
//! phases and lands the breakdown in `--perf-json` and on stderr.
//! Artifacts describe the first fleet (like `--perf-json`); series and
//! trace bytes are shard/thread-invariant.

use litegpu_chaos::{Campaign, CampaignKind, DomainPlan};
use litegpu_fleet::ctrl::{CtrlConfig, Policy};
use litegpu_fleet::{
    run_sharded_full, FleetConfig, FleetReport, FleetRun, KvLink, ServingMode, TelemetryConfig,
    WorkloadSpec,
};
use litegpu_telemetry::render_chrome_trace;

struct Args {
    gpu: String,
    instances: u32,
    hours: f64,
    rate: f64,
    accel: f64,
    spares_per_cell: u32,
    cell_size: u32,
    tick: f64,
    common: litegpu_bench::cli::CommonArgs,
    bal: litegpu_bench::cli::BalancerArgs,
    ctrl: String,
    dvfs: bool,
    control_interval: f64,
    warm_pool: u32,
    workload: String,
    serving: String,
    prefill_fraction: f64,
    kv_gbps: Option<f64>,
    kv_backlog: f64,
    no_baseline: bool,
    chaos: Option<String>,
    quiet_json: bool,
    series_per_cell: bool,
    trace: Option<String>,
    trace_every: u32,
    profile: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        gpu: "both".into(),
        instances: 1000,
        hours: 24.0,
        rate: 1.5,
        accel: 200.0,
        spares_per_cell: 1,
        cell_size: 20,
        tick: 1.0,
        common: litegpu_bench::cli::CommonArgs::new(litegpu_bench::cli::CommonArgs::ALL),
        bal: litegpu_bench::cli::BalancerArgs::default(),
        ctrl: "off".into(),
        dvfs: false,
        control_interval: 5.0,
        warm_pool: 1,
        workload: "single".into(),
        serving: "mono".into(),
        prefill_fraction: 0.25,
        kv_gbps: None,
        kv_backlog: KvLink::DEFAULT_MAX_BACKLOG_S,
        no_baseline: false,
        chaos: None,
        quiet_json: false,
        series_per_cell: false,
        trace: None,
        trace_every: 64,
        profile: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| litegpu_bench::cli::value(&argv, i);
    use litegpu_bench::cli::parsed;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--gpu" => a.gpu = value(&mut i),
            "--instances" => a.instances = parsed(&flag, value(&mut i)),
            "--hours" => a.hours = parsed(&flag, value(&mut i)),
            "--rate" => a.rate = parsed(&flag, value(&mut i)),
            "--accel" => a.accel = parsed(&flag, value(&mut i)),
            "--spares-per-cell" => a.spares_per_cell = parsed(&flag, value(&mut i)),
            "--cell-size" => a.cell_size = parsed(&flag, value(&mut i)),
            "--tick" => a.tick = parsed(&flag, value(&mut i)),
            "--ctrl" => a.ctrl = value(&mut i),
            "--dvfs" => a.dvfs = true,
            "--control-interval" => a.control_interval = parsed(&flag, value(&mut i)),
            "--warm-pool" => a.warm_pool = parsed(&flag, value(&mut i)),
            "--workload" => a.workload = value(&mut i),
            "--serving" => a.serving = value(&mut i),
            "--prefill-fraction" => a.prefill_fraction = parsed(&flag, value(&mut i)),
            "--kv-gbps" => a.kv_gbps = Some(parsed(&flag, value(&mut i))),
            "--kv-backlog" => a.kv_backlog = parsed(&flag, value(&mut i)),
            "--no-baseline" => a.no_baseline = true,
            "--chaos" => a.chaos = Some(value(&mut i)),
            "--quiet-json" => a.quiet_json = true,
            "--series-per-cell" => a.series_per_cell = true,
            "--trace" => a.trace = Some(value(&mut i)),
            "--trace-every" => a.trace_every = parsed(&flag, value(&mut i)),
            "--profile" => a.profile = true,
            other => {
                if !a.common.try_parse(&argv, &mut i) && !a.bal.try_parse(&argv, &mut i) {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    if a.serving != "mono" && a.serving != "split" {
        eprintln!("unknown --serving {} (expected mono|split)", a.serving);
        std::process::exit(2);
    }
    if a.dvfs && a.ctrl == "off" {
        eprintln!("--dvfs needs a control plane: pass --ctrl auto|dvfs|gate");
        std::process::exit(2);
    }
    if a.trace.is_some() && a.trace_every == 0 {
        eprintln!("--trace-every must be >= 1");
        std::process::exit(2);
    }
    // Accepted-but-ignored flag combinations (stderr only).
    if a.serving == "mono" {
        litegpu_bench::cli::warn_ignored(
            &argv,
            "under --serving mono",
            &[
                "--prefill-fraction",
                "--kv-gbps",
                "--kv-backlog",
                "--no-baseline",
            ],
        );
    }
    if a.ctrl == "off" {
        litegpu_bench::cli::warn_ignored(
            &argv,
            "without a control plane (--ctrl off)",
            &["--control-interval", "--warm-pool"],
        );
    }
    a.bal.warn_if_ignored();
    a
}

fn configure(base: FleetConfig, a: &Args, auto_policy: Policy) -> FleetConfig {
    let mut cfg = base;
    cfg.instances = a.instances;
    cfg.horizon_s = a.hours * 3600.0;
    cfg.workload = match a.workload.as_str() {
        "single" => WorkloadSpec::diurnal_demo(a.rate),
        "multi" => WorkloadSpec::multi_tenant_demo(a.rate),
        other => {
            eprintln!("unknown --workload {other} (expected single|multi)");
            std::process::exit(2);
        }
    };
    cfg.failure_acceleration = a.accel;
    cfg.spares_per_cell = a.spares_per_cell;
    cfg.cell_size = a.cell_size;
    cfg.tick_s = a.tick;
    let policy = match a.ctrl.as_str() {
        "off" => None,
        "auto" => Some(auto_policy),
        "dvfs" => Some(Policy::DvfsAll),
        "gate" => Some(Policy::GateToEfficiency),
        other => {
            eprintln!("unknown --ctrl {other} (expected off|auto|dvfs|gate)");
            std::process::exit(2);
        }
    };
    cfg.ctrl = policy.map(|p| {
        let mut c = CtrlConfig::demo(p);
        if a.dvfs {
            c = c.with_dvfs();
        }
        c.control_interval_s = a.control_interval;
        if let Some(pw) = c.power.as_mut() {
            pw.warm_pool = a.warm_pool;
        }
        c
    });
    if a.serving == "split" {
        let mut link = KvLink::for_instance(&cfg.gpu, cfg.gpus_per_instance);
        if let Some(gbps) = a.kv_gbps {
            link.bandwidth_gbps = gbps;
        }
        link.max_backlog_s = a.kv_backlog;
        cfg.serving = ServingMode::PhaseSplit {
            prefill_fraction: a.prefill_fraction,
            kv_link: link,
        };
    }
    if let Some(slug) = a.chaos.as_deref() {
        let Some(kind) = CampaignKind::from_slug(slug) else {
            eprintln!("unknown --chaos {slug} (expected rack|power|partition|thermal|drain)");
            std::process::exit(2);
        };
        let campaign = Campaign {
            kind,
            events: 3,
            duration_s: 300.0,
            intensity: 0.5,
        };
        // Compiled after the rest of the config is settled: the schedule
        // depends on the instance count, tick grid and horizon.
        match litegpu_chaos::compile(&cfg, &DomainPlan::default(), &campaign, a.common.seed) {
            Ok(spec) => cfg.chaos = spec,
            Err(e) => {
                eprintln!("--chaos {slug}: {e}");
                std::process::exit(2);
            }
        }
    }
    cfg.telemetry = TelemetryConfig {
        series_dt_us: if a.common.series.is_some() {
            a.common.series_dt_us
        } else {
            0
        },
        per_cell_series: a.series_per_cell,
        trace_every: if a.trace.is_some() { a.trace_every } else { 0 },
        profile: a.profile,
    };
    // Last: the skew multipliers size to the final cell count, and the
    // balancer stacks on whatever cell-scope control `--ctrl` selected.
    a.bal.apply(&mut cfg);
    cfg
}

fn run_one(name: &str, cfg: &FleetConfig, a: &Args) -> (FleetRun, f64) {
    let threads = litegpu_bench::fleet_pair::threads_or_auto(a.common.threads);
    let shards = litegpu_bench::fleet_pair::shards_or_cells(a.common.shards, cfg);
    let start = std::time::Instant::now();
    match run_sharded_full(cfg, a.common.seed, shards, threads) {
        Ok(r) => (r, start.elapsed().as_secs_f64()),
        Err(e) => {
            eprintln!("fleet {name}: {e}");
            std::process::exit(1);
        }
    }
}

use litegpu_bench::write_artifact;

fn main() {
    let a = parse_args();
    let fleets: Vec<(&str, FleetConfig)> = litegpu_bench::fleet_pair::demo_pair()
        .into_iter()
        .filter(|(name, _, _)| a.gpu == "both" || a.gpu == *name)
        .map(|(name, base, policy)| (name, configure(base, &a, policy)))
        .collect();
    if fleets.is_empty() {
        eprintln!("unknown --gpu {} (expected h100|lite|both)", a.gpu);
        std::process::exit(2);
    }
    let mut split_reports: Vec<(String, FleetReport)> = Vec::new();
    let mut perf_written = false;
    for (idx, (name, cfg)) in fleets.into_iter().enumerate() {
        let (mut fleet_run, wall) = run_one(name, &cfg, &a);
        let report = &fleet_run.report;
        let json = report.to_json();
        eprintln!("# {name}: {} ({:.2} s wall)", report.summary(), wall);
        for line in report.tenant_summary().lines() {
            eprintln!("#   {line}");
        }
        if let Some(p) = fleet_run.profile.as_ref() {
            eprintln!("#   {}", p.summary());
        }
        // Like `--perf-json`, series/trace artifacts describe the first
        // fleet only — with `--gpu both` a per-iteration write would
        // silently overwrite the h100 artifacts with lite's.
        if idx == 0 {
            if let (Some(path), Some(s)) = (&a.common.series, fleet_run.series.as_ref()) {
                let bytes = if path.ends_with(".csv") {
                    s.to_csv()
                } else {
                    s.to_jsonl()
                };
                write_artifact("series", path, &bytes);
            }
            if let (Some(path), Some(t)) = (&a.trace, fleet_run.trace.as_mut()) {
                write_artifact("trace", path, &render_chrome_trace(t));
            }
        }
        // The perf artifact records the first fleet only — with
        // `--gpu both` a per-iteration write would silently overwrite
        // the h100 numbers with lite's.
        if let (Some(path), false) = (&a.common.perf_json, perf_written) {
            let instance_ticks = cfg.num_ticks() as u64 * cfg.instances as u64;
            let profile_field = fleet_run.profile.as_ref().map_or(String::new(), |p| {
                format!("  \"profile\": {},\n", p.to_json())
            });
            let perf = format!(
                "{{\n  \"fleet\": \"{name}\",\n  \"instance_ticks\": {instance_ticks},\n\
                 {profile_field}  \
                 \"wall_s\": {wall:.4},\n  \"ticks_per_sec\": {:.0}\n}}\n",
                instance_ticks as f64 / wall.max(1e-9)
            );
            write_artifact("perf-json", path, &perf);
            perf_written = true;
        }
        if report.dvfs.is_some() {
            eprintln!("#   {}", report.dvfs_summary());
        }
        if report.balancer.is_some() {
            eprintln!("#   {}", report.balancer_summary());
        }
        if report.kv_transfer.is_some() {
            eprintln!("#   {}", report.kv_summary());
            // The split-vs-mono headline: same fleet, same seed, same
            // instance count, monolithic continuous batching.
            // `--no-baseline` skips the twin (CI determinism/perf legs
            // only need the primary run's bytes).
            if !a.no_baseline {
                let mut mono_cfg = cfg.clone();
                mono_cfg.serving = ServingMode::Monolithic;
                // The twin exists for its report; don't pay for (or
                // overwrite) telemetry on it.
                mono_cfg.telemetry = TelemetryConfig::default();
                let (mono_run, _) = run_one(name, &mono_cfg, &a);
                let mono = mono_run.report;
                eprintln!(
                    "#   split vs mono ({} instances): p99 TBT {:.4} s vs {:.4} s \
                     ({:.1}x tighter), p99 TTFT {:.3} s vs {:.3} s (transfer premium), \
                     completed {} vs {}",
                    cfg.instances,
                    report.tbt_p99_s,
                    mono.tbt_p99_s,
                    mono.tbt_p99_s / report.tbt_p99_s.max(1e-12),
                    report.ttft_p99_s,
                    mono.ttft_p99_s,
                    report.completed,
                    mono.completed,
                );
            }
            split_reports.push((name.to_string(), report.clone()));
        }
        if !a.quiet_json {
            println!("{json}");
        }
        let dir = litegpu_bench::experiments_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("fleet_{name}.json")), &json);
        }
    }
    // The headline KV-bandwidth trade, when both fleets ran phase-split:
    // the per-request KV footprint is fixed by the model, so the question
    // is whether the smaller GPUs' links keep up. Table 1 scales network
    // bandwidth with count (8 × 112.5 = 2 × 450 GB/s per instance), so
    // the Lite fleet absorbs the same KV stream at the same utilization —
    // the §2 condition, met; starve `--kv-gbps` to watch it fail.
    if split_reports.len() == 2 {
        let (h, l) = (&split_reports[0].1, &split_reports[1].1);
        let (hk, lk) = (
            h.kv_transfer.as_ref().expect("split report"),
            l.kv_transfer.as_ref().expect("split report"),
        );
        eprintln!(
            "# KV-bandwidth trade (phase-split, equal aggregate silicon): H100 moved {:.0} GB \
             at {:.2}% cell-link utilization (delay p99 {:.1} ms) vs Lite {:.0} GB at {:.2}% \
             (delay p99 {:.1} ms) — Lite-GPU phase-split holds iff per-GPU net bandwidth \
             scales with count (Table 1: 8x112.5 = 2x450 GB/s per instance)",
            hk.gb_moved,
            100.0 * hk.link_utilization,
            1e3 * hk.delay_p99_s,
            lk.gb_moved,
            100.0 * lk.link_utilization,
            1e3 * lk.delay_p99_s,
        );
    }
}

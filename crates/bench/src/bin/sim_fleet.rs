//! Fleet-scale serving simulation: thousands of instances over days of
//! simulated time, H100-class vs Lite-GPU fleets.
//!
//! Emits one deterministic `FleetReport` JSON per fleet to stdout and to
//! `target/experiments/fleet_<name>.json`. The same seed produces
//! byte-identical JSON at any `--shards`/`--threads` setting.
//!
//! ```text
//! sim_fleet [--gpu h100|lite|both] [--instances N] [--hours H]
//!           [--rate R] [--accel A] [--spares-per-cell N] [--cell-size N]
//!           [--tick S] [--seed N] [--shards N] [--threads N]
//!           [--ctrl off|auto|dvfs|gate] [--control-interval S]
//!           [--warm-pool N] [--workload single|multi] [--quiet-json]
//! ```
//!
//! `--ctrl` enables the litegpu-ctrl control plane (autoscaler + power
//! gating + cell router + admission control): `auto` picks the
//! §3-appropriate power policy per GPU type (H100 parks at the DVFS idle
//! floor, Lite power-gates), while `dvfs`/`gate` force one policy on
//! every fleet. `--workload multi` swaps the single diurnal tenant for
//! the three-tenant mixed-priority demo (interactive chat + batch +
//! best-effort scavenger), reported per tenant.

use litegpu_fleet::ctrl::{CtrlConfig, Policy};
use litegpu_fleet::{run_sharded, FleetConfig, WorkloadSpec};

struct Args {
    gpu: String,
    instances: u32,
    hours: f64,
    rate: f64,
    accel: f64,
    spares_per_cell: u32,
    cell_size: u32,
    tick: f64,
    seed: u64,
    shards: u32,
    threads: u32,
    ctrl: String,
    control_interval: f64,
    warm_pool: u32,
    workload: String,
    quiet_json: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        gpu: "both".into(),
        instances: 1000,
        hours: 24.0,
        rate: 1.5,
        accel: 200.0,
        spares_per_cell: 1,
        cell_size: 20,
        tick: 1.0,
        seed: 42,
        shards: 0,
        threads: 0,
        ctrl: "off".into(),
        control_interval: 5.0,
        warm_pool: 1,
        workload: "single".into(),
        quiet_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| litegpu_bench::cli::value(&argv, i);
    use litegpu_bench::cli::parsed;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--gpu" => a.gpu = value(&mut i),
            "--instances" => a.instances = parsed(&flag, value(&mut i)),
            "--hours" => a.hours = parsed(&flag, value(&mut i)),
            "--rate" => a.rate = parsed(&flag, value(&mut i)),
            "--accel" => a.accel = parsed(&flag, value(&mut i)),
            "--spares-per-cell" => a.spares_per_cell = parsed(&flag, value(&mut i)),
            "--cell-size" => a.cell_size = parsed(&flag, value(&mut i)),
            "--tick" => a.tick = parsed(&flag, value(&mut i)),
            "--seed" => a.seed = parsed(&flag, value(&mut i)),
            "--shards" => a.shards = parsed(&flag, value(&mut i)),
            "--threads" => a.threads = parsed(&flag, value(&mut i)),
            "--ctrl" => a.ctrl = value(&mut i),
            "--control-interval" => a.control_interval = parsed(&flag, value(&mut i)),
            "--warm-pool" => a.warm_pool = parsed(&flag, value(&mut i)),
            "--workload" => a.workload = value(&mut i),
            "--quiet-json" => a.quiet_json = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    a
}

fn configure(base: FleetConfig, a: &Args, auto_policy: Policy) -> FleetConfig {
    let mut cfg = base;
    cfg.instances = a.instances;
    cfg.horizon_s = a.hours * 3600.0;
    cfg.workload = match a.workload.as_str() {
        "single" => WorkloadSpec::diurnal_demo(a.rate),
        "multi" => WorkloadSpec::multi_tenant_demo(a.rate),
        other => {
            eprintln!("unknown --workload {other} (expected single|multi)");
            std::process::exit(2);
        }
    };
    cfg.failure_acceleration = a.accel;
    cfg.spares_per_cell = a.spares_per_cell;
    cfg.cell_size = a.cell_size;
    cfg.tick_s = a.tick;
    let policy = match a.ctrl.as_str() {
        "off" => None,
        "auto" => Some(auto_policy),
        "dvfs" => Some(Policy::DvfsAll),
        "gate" => Some(Policy::GateToEfficiency),
        other => {
            eprintln!("unknown --ctrl {other} (expected off|auto|dvfs|gate)");
            std::process::exit(2);
        }
    };
    cfg.ctrl = policy.map(|p| {
        let mut c = CtrlConfig::demo(p);
        c.control_interval_s = a.control_interval;
        if let Some(pw) = c.power.as_mut() {
            pw.warm_pool = a.warm_pool;
        }
        c
    });
    cfg
}

fn main() {
    let a = parse_args();
    let h100 = || configure(FleetConfig::h100_demo(), &a, Policy::DvfsAll);
    let lite = || configure(FleetConfig::lite_demo(), &a, Policy::GateToEfficiency);
    let fleets: Vec<(&str, FleetConfig)> = match a.gpu.as_str() {
        "h100" => vec![("h100", h100())],
        "lite" => vec![("lite", lite())],
        "both" => vec![("h100", h100()), ("lite", lite())],
        other => {
            eprintln!("unknown --gpu {other} (expected h100|lite|both)");
            std::process::exit(2);
        }
    };
    let threads = if a.threads > 0 {
        a.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1)
    };
    for (name, cfg) in fleets {
        let shards = if a.shards > 0 {
            a.shards
        } else {
            cfg.num_cells()
        };
        let start = std::time::Instant::now();
        let report = match run_sharded(&cfg, a.seed, shards, threads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet {name}: {e}");
                std::process::exit(1);
            }
        };
        let wall = start.elapsed();
        let json = report.to_json();
        eprintln!(
            "# {name}: {} ({} shards, {} threads, {:.2} s wall)",
            report.summary(),
            shards,
            threads,
            wall.as_secs_f64()
        );
        for line in report.tenant_summary().lines() {
            eprintln!("#   {line}");
        }
        if !a.quiet_json {
            println!("{json}");
        }
        let dir = litegpu_bench::experiments_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("fleet_{name}.json")), &json);
        }
    }
}

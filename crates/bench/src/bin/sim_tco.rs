//! The end-to-end answer: dollars per million SLO-compliant tokens
//! across the Lite-GPU design space.
//!
//! Sweeps the `litegpu-tco` design grid — die divisor × cell shape ×
//! spare policy × {mono, split} serving × {DVFS off, on} — simulating
//! every candidate fleet under the standard multi-tenant workload and
//! pricing it end to end: yield-adjusted package capex (`litegpu-fab`),
//! fabric attach capex (`litegpu-net`), power provisioning + host
//! amortization (`litegpu-cluster`), spare silicon, and the simulator's
//! integer-joule energy books at a $/kWh tariff. Prints the Pareto
//! frontier (cost vs. SLO-token share), the H100-vs-Lite headline, and
//! the canonical silicon-equal pair (the same two designs `sim_chaos`
//! studies, via the shared `fleet_pair` helper).
//!
//! Emits one deterministic `TcoReport` JSON to stdout and
//! `target/experiments/tco.json`. The same seed produces byte-identical
//! JSON at any `--threads` setting — candidates are work-stolen by the
//! pool but reassembled in design order, and each candidate simulates at
//! a fixed shard shape.
//!
//! ```text
//! sim_tco [--equiv N] [--rate R] [--hours H] [--accel A]
//!         [--seed N] [--threads N] [--grid standard|smoke]
//!         [--usd-per-kwh X] [--amort-years Y]
//!         [--balancer] [--skew HxM]
//!         [--series PATH] [--quiet-json] [--smoke]
//! ```
//!
//! `--balancer` / `--skew HxM` price the whole grid under skewed demand
//! with (or without) the fleet-scope spill-over balancer stacked on each
//! candidate — the $/token cost of cell isolation under uneven load.
//!
//! `--equiv` sizes the fleet in H100-equivalents (divisor-`d` candidates
//! run `d×` the instances at `1/d` the per-instance rate — same silicon,
//! same demand). `--series PATH` writes the frontier as CSV. `--smoke`
//! shrinks everything for CI.

use litegpu_bench::fleet_pair::pair_designs;
use litegpu_bench::write_artifact;
use litegpu_tco::{evaluate_sweep_with, smoke_grid, standard_grid, SweepBase, TcoModel, TcoReport};

struct Args {
    equiv: u32,
    rate: f64,
    hours: f64,
    accel: f64,
    common: litegpu_bench::cli::CommonArgs,
    bal: litegpu_bench::cli::BalancerArgs,
    grid: String,
    usd_per_kwh: f64,
    amort_years: f64,
    quiet_json: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        equiv: 24,
        rate: 2.0,
        hours: 1.0,
        accel: 2_000.0,
        common: litegpu_bench::cli::CommonArgs::new(&["--seed", "--threads", "--series"]),
        bal: litegpu_bench::cli::BalancerArgs::default(),
        grid: "standard".into(),
        usd_per_kwh: 0.08,
        amort_years: 4.0,
        quiet_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| litegpu_bench::cli::value(&argv, i);
    use litegpu_bench::cli::parsed;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--equiv" => a.equiv = parsed(&flag, value(&mut i)),
            "--rate" => a.rate = parsed(&flag, value(&mut i)),
            "--hours" => a.hours = parsed(&flag, value(&mut i)),
            "--accel" => a.accel = parsed(&flag, value(&mut i)),
            "--grid" => a.grid = value(&mut i),
            "--usd-per-kwh" => a.usd_per_kwh = parsed(&flag, value(&mut i)),
            "--amort-years" => a.amort_years = parsed(&flag, value(&mut i)),
            "--quiet-json" => a.quiet_json = true,
            "--smoke" => {
                a.equiv = 8;
                a.hours = 0.25;
                a.grid = "smoke".into();
            }
            other => {
                if !a.common.try_parse(&argv, &mut i) && !a.bal.try_parse(&argv, &mut i) {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    a.bal.warn_if_ignored();
    a
}

fn main() {
    let a = parse_args();
    let designs = match a.grid.as_str() {
        "standard" => standard_grid(),
        "smoke" => smoke_grid(),
        other => {
            eprintln!("unknown --grid {other} (expected standard|smoke)");
            std::process::exit(2);
        }
    };
    let base = SweepBase {
        equiv_instances: a.equiv,
        rate_per_equiv: a.rate,
        hours: a.hours,
        accel: a.accel,
    };
    let mut model = TcoModel::paper_default();
    model.usd_per_kwh = a.usd_per_kwh;
    model.amortization_years = a.amort_years;
    let threads = litegpu_bench::fleet_pair::threads_or_auto(a.common.threads);
    let start = std::time::Instant::now();
    // The per-candidate hook stacks the fleet-scope policy (skew and/or
    // spill-over balancer) onto every design in the grid; with neither
    // flag it is a no-op and the sweep prices the plain grid.
    let bal = &a.bal;
    let points =
        match evaluate_sweep_with(&designs, &base, &model, a.common.seed, threads, &|cfg| {
            bal.apply(cfg)
        }) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("tco sweep: {e}");
                std::process::exit(1);
            }
        };
    let report = TcoReport::new(a.common.seed, base, model, points);
    eprintln!(
        "# tco: {} designs evaluated in {:.2} s wall ({} threads)",
        report.points.len(),
        start.elapsed().as_secs_f64(),
        threads,
    );

    // The Pareto frontier, cost-ascending.
    eprintln!(
        "#   {:<28} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "frontier design",
        "gpus",
        "$/Mtok",
        "slo",
        "avail",
        "sil$",
        "spare$",
        "net$",
        "prov$",
        "kWh$"
    );
    for &i in &report.frontier {
        let p = &report.points[i as usize];
        let b = &p.breakdown;
        eprintln!(
            "#   {:<28} {:>6} {:>12.3} {:>9.4} {:>9.4} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            p.label,
            p.instances + p.spares,
            p.usd_per_mtoken.unwrap_or(f64::NAN),
            p.slo_share,
            p.availability,
            b.silicon_usd,
            b.spares_usd,
            b.network_usd,
            b.provisioning_usd,
            b.energy_usd,
        );
    }

    // The canonical silicon-equal pair — the exact two designs sim_chaos
    // and the availability work study, priced in one unit.
    let pair: Vec<_> = pair_designs()
        .into_iter()
        .filter_map(|(name, d)| {
            report
                .points
                .iter()
                .find(|p| p.design == d)
                .map(|p| (name, p))
        })
        .collect();
    if let [(hn, h), (ln, l)] = pair.as_slice() {
        eprintln!(
            "#   canonical pair: {hn} {} ${:.3}/Mtok vs {ln} {} ${:.3}/Mtok",
            h.label,
            h.usd_per_mtoken.unwrap_or(f64::NAN),
            l.label,
            l.usd_per_mtoken.unwrap_or(f64::NAN),
        );
    }

    match &report.headline {
        Some(h) => eprintln!(
            "#   headline: best H100 {} ${:.3}/Mtok vs best Lite {} ${:.3}/Mtok — Lite at {:.1}% \
             of H100 $/token",
            h.h100,
            h.h100_usd_per_mtoken,
            h.lite,
            h.lite_usd_per_mtoken,
            100.0 * h.lite_over_h100,
        ),
        None => eprintln!("#   headline: no priced H100-vs-Lite comparison"),
    }

    if let Some(path) = &a.common.series {
        write_artifact("series", path, &report.frontier_csv());
    }
    let json = report.to_json();
    if !a.quiet_json {
        println!("{json}");
    }
    let dir = litegpu_bench::experiments_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("tco.json"), &json);
    }
}

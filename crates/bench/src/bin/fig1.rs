//! Regenerates Figure 1 (evolution of GPUs in AI clusters).
fn main() {
    let exp = litegpu::experiments::fig1();
    let json = litegpu_bench::to_json(&litegpu_specs::catalog::generations());
    litegpu_bench::emit(&exp, &[("fig1.json".into(), json)]);
}

//! Ablation study over the reconstructed modeling choices.
fn main() {
    litegpu_bench::emit(&litegpu::experiments::ablations(), &[]);
}

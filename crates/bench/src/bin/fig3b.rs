//! Regenerates Figure 3b (decode roofline comparison).
use litegpu_roofline::EngineParams;

fn main() {
    let params = EngineParams::paper_defaults();
    let (fig, exp) = litegpu::experiments::fig3b(&params).expect("figure 3a generation");
    let series: Vec<(String, Vec<f64>)> = fig
        .gpu_types
        .iter()
        .map(|g| {
            (
                g.clone(),
                fig.models
                    .iter()
                    .map(|m| fig.point(m, g).map(|p| p.normalized).unwrap_or(0.0))
                    .collect(),
            )
        })
        .collect();
    let svg = litegpu_plot::svg::grouped_bar_svg(
        "Figure 3b: decode normalized tokens/s/SM",
        &fig.models,
        &series,
    )
    .unwrap_or_default();
    litegpu_bench::emit(
        &exp,
        &[
            ("fig3b.json".into(), litegpu_bench::to_json(&fig)),
            ("fig3b.svg".into(), svg),
        ],
    );
}

//! Fleet control-plane head-to-head: a controlled H100 fleet (DVFS-only
//! parking) vs a controlled Lite fleet (per-unit power gating) under the
//! same multi-tenant diurnal demand — the §3 elasticity/energy argument,
//! measured, with per-tenant SLO attainment.
//!
//! By default both fleets serve the three-tenant mixed-priority demo
//! (interactive chat + batch + best-effort scavenger) at a base rate
//! (5 req/s/instance) that outruns fleet capacity at the diurnal peak:
//! priority-aware admission control sheds the scavenger first, and the
//! per-tenant section shows interactive attainment preserved. Lower
//! `--rate` for an unpressured fleet; `--workload single` restores the
//! legacy single-tenant source.
//!
//! Emits one deterministic `FleetReport` JSON per fleet to stdout and to
//! `target/experiments/ctrl_<name>.json`, then a comparison block. With
//! `--spares-target`, also sweeps `spares_per_cell` per fleet until the
//! availability target is met (the fleet analogue of
//! `cluster::failure::spares_for_target`).
//!
//! With `--dvfs`, each fleet also runs under the serving-time DVFS
//! policy (step costs priced on the `SLO_MIN_CLOCK..=1.0` operating-point
//! grid, per-cell/per-pool clock selection) and the headline compares
//! energy-per-token against the nominal-clock run at equal interactive
//! SLO attainment — the energy-vs-latency frontier the clock-aware
//! serving work gates on.
//!
//! ```text
//! sim_ctrl [--instances N] [--hours H] [--rate R] [--accel A]
//!          [--cell-size N] [--tick S] [--seed N]
//!          [--shards N] [--threads N]
//!          [--control-interval S] [--warm-pool N] [--dvfs]
//!          [--workload multi|single] [--serving mono|split]
//!          [--balancer] [--balancer-interval S] [--spill-permille N]
//!          [--hot-factor F] [--quota-headroom F] [--kv-slack-us N]
//!          [--skew HxM]
//!          [--spares-target A] [--max-spares N] [--quiet-json]
//!          [--series PATH] [--series-dt US]
//! ```
//!
//! `--balancer` stacks the fleet-scope spill-over balancer on each
//! fleet's cell-scope control plane, and `--skew HxM` skews demand
//! (first `H` cells at `M`x, cold cells scaled to hold fleet-total
//! demand). With both, the binary also runs each skewed fleet with the
//! balancer stripped and prints the balanced-vs-isolated headline —
//! interactive SLO attainment and energy/token, H100 vs Lite — the
//! two-level control plane's reason to exist.
//!
//! `--series PATH` records the deterministic telemetry time series for
//! each primary fleet (autoscaler pool sizes, queue depth, sheds, clock
//! distribution, energy rate, ...) every `--series-dt` integer µs of simulated time
//! (default 60) and writes one JSONL file per fleet with the fleet name
//! before the extension (`out.jsonl` → `out_h100.jsonl`, `out_lite.jsonl`)
//! — the when-did-the-autoscaler-lag view the end-of-run report can't
//! show.

use litegpu_fleet::{
    run, run_sharded_full, spares_for_target, FleetConfig, PriorityClass, ServingMode,
    TelemetryConfig, WorkloadSpec,
};

struct Args {
    instances: u32,
    serving: String,
    hours: f64,
    rate: f64,
    accel: f64,
    cell_size: u32,
    tick: f64,
    common: litegpu_bench::cli::CommonArgs,
    bal: litegpu_bench::cli::BalancerArgs,
    control_interval: f64,
    warm_pool: u32,
    workload: String,
    dvfs: bool,
    spares_target: Option<f64>,
    max_spares: u32,
    quiet_json: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        instances: 500,
        serving: "mono".into(),
        hours: 24.0,
        rate: 5.0,
        accel: 200.0,
        cell_size: 20,
        tick: 1.0,
        common: litegpu_bench::cli::CommonArgs::new(&[
            "--seed",
            "--shards",
            "--threads",
            "--series",
            "--series-dt",
        ]),
        bal: litegpu_bench::cli::BalancerArgs::default(),
        control_interval: 5.0,
        warm_pool: 1,
        workload: "multi".into(),
        dvfs: false,
        spares_target: None,
        max_spares: 4,
        quiet_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| litegpu_bench::cli::value(&argv, i);
    use litegpu_bench::cli::parsed;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--instances" => a.instances = parsed(&flag, value(&mut i)),
            "--serving" => a.serving = value(&mut i),
            "--hours" => a.hours = parsed(&flag, value(&mut i)),
            "--rate" => a.rate = parsed(&flag, value(&mut i)),
            "--accel" => a.accel = parsed(&flag, value(&mut i)),
            "--cell-size" => a.cell_size = parsed(&flag, value(&mut i)),
            "--tick" => a.tick = parsed(&flag, value(&mut i)),
            "--control-interval" => a.control_interval = parsed(&flag, value(&mut i)),
            "--warm-pool" => a.warm_pool = parsed(&flag, value(&mut i)),
            "--workload" => a.workload = value(&mut i),
            "--dvfs" => a.dvfs = true,
            "--spares-target" => a.spares_target = Some(parsed(&flag, value(&mut i))),
            "--max-spares" => a.max_spares = parsed(&flag, value(&mut i)),
            "--quiet-json" => a.quiet_json = true,
            other => {
                if !a.common.try_parse(&argv, &mut i) && !a.bal.try_parse(&argv, &mut i) {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    // Accepted-but-ignored flag combinations (stderr only).
    if a.spares_target.is_none() {
        litegpu_bench::cli::warn_ignored(&argv, "without --spares-target", &["--max-spares"]);
    }
    a.bal.warn_if_ignored();
    a
}

fn configure(base: FleetConfig, a: &Args) -> FleetConfig {
    let mut cfg = base;
    cfg.instances = a.instances;
    cfg.horizon_s = a.hours * 3600.0;
    cfg.workload = match a.workload.as_str() {
        "multi" => WorkloadSpec::multi_tenant_demo(a.rate),
        "single" => WorkloadSpec::diurnal_demo(a.rate),
        other => {
            eprintln!("unknown --workload {other} (expected multi|single)");
            std::process::exit(2);
        }
    };
    cfg.failure_acceleration = a.accel;
    cfg.cell_size = a.cell_size;
    cfg.tick_s = a.tick;
    match a.serving.as_str() {
        "mono" => {}
        "split" => {
            cfg.serving = ServingMode::split_demo(&cfg.gpu, cfg.gpus_per_instance);
        }
        other => {
            eprintln!("unknown --serving {other} (expected mono|split)");
            std::process::exit(2);
        }
    }
    let ctrl = cfg.ctrl.as_mut().expect("ctrl demo configs have a ctrl");
    ctrl.control_interval_s = a.control_interval;
    if let Some(p) = ctrl.power.as_mut() {
        p.warm_pool = a.warm_pool;
    }
    if a.common.series.is_some() {
        cfg.telemetry = TelemetryConfig {
            series_dt_us: a.common.series_dt_us,
            ..TelemetryConfig::default()
        };
    }
    // Last: skew multipliers size to the final cell count, and the
    // balancer stacks on the fleet's cell-scope stack.
    a.bal.apply(&mut cfg);
    cfg
}

/// `out.jsonl` → `out_h100.jsonl`: one series file per fleet.
fn series_path(path: &str, name: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}_{name}.{ext}"),
        None => format!("{path}_{name}"),
    }
}

fn main() {
    let a = parse_args();
    let fleets =
        litegpu_bench::fleet_pair::ctrl_demo_pair().map(|(name, base)| (name, configure(base, &a)));
    let mut reports = Vec::new();
    for (name, cfg) in &fleets {
        let start = std::time::Instant::now();
        let threads = litegpu_bench::fleet_pair::threads_or_auto(a.common.threads);
        let shards = litegpu_bench::fleet_pair::shards_or_cells(a.common.shards, cfg);
        let fleet_run = match run_sharded_full(cfg, a.common.seed, shards, threads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet {name}: {e}");
                std::process::exit(1);
            }
        };
        if let (Some(path), Some(s)) = (&a.common.series, fleet_run.series.as_ref()) {
            litegpu_bench::write_artifact("series", &series_path(path, name), &s.to_jsonl());
        }
        let report = fleet_run.report;
        eprintln!(
            "# {name}: {} ({:.2} s wall)",
            report.summary(),
            start.elapsed().as_secs_f64()
        );
        for line in report.tenant_summary().lines() {
            eprintln!("#   {line}");
        }
        if report.kv_transfer.is_some() {
            eprintln!("#   {}", report.kv_summary());
        }
        if report.balancer.is_some() {
            eprintln!("#   {}", report.balancer_summary());
        }
        let json = report.to_json();
        if !a.quiet_json {
            println!("{json}");
        }
        let dir = litegpu_bench::experiments_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("ctrl_{name}.json")), &json);
        }
        reports.push(report);
    }

    let (h, l) = (&reports[0], &reports[1]);
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { f64::NAN };
    eprintln!("# control-plane head-to-head (same diurnal demand, same cells):");
    eprintln!(
        "#   idle energy:      H100 {:.1} MJ vs Lite {:.1} MJ ({:.1}x — per-unit gating, §3)",
        h.idle_energy_j as f64 / 1e6,
        l.idle_energy_j as f64 / 1e6,
        ratio(h.idle_energy_j as f64, l.idle_energy_j as f64),
    );
    eprintln!(
        "#   energy per token: H100 {:.2} J vs Lite {:.2} J ({:.2}x)",
        h.energy_per_token_j,
        l.energy_per_token_j,
        ratio(h.energy_per_token_j, l.energy_per_token_j),
    );
    eprintln!(
        "#   mean live pool:   H100 {:.1} vs Lite {:.1} of {} instances",
        h.avg_live_instances, l.avg_live_instances, a.instances
    );
    eprintln!(
        "#   autoscaler:       H100 {}+{} vs Lite {}+{} (ups+parks); routed {} vs {}",
        h.scale_ups, h.scale_downs, l.scale_ups, l.scale_downs, h.routed, l.routed
    );

    // Per-tenant SLO headline: the priority classes must come apart
    // under the diurnal peak — interactive attainment preserved while the
    // best-effort scavenger is shed first.
    for r in &reports {
        let find = |class: PriorityClass| r.per_tenant.iter().find(|t| t.priority == class.label());
        let (Some(interactive), Some(best_effort)) = (
            find(PriorityClass::Interactive),
            find(PriorityClass::BestEffort),
        ) else {
            continue;
        };
        eprintln!(
            "#   {}: interactive '{}' TTFT attainment {:.4}; best-effort '{}' shed {}/{} \
             ({:.1}%) — admission sheds the scavenger first",
            r.gpu,
            interactive.name,
            interactive.ttft_attainment,
            best_effort.name,
            best_effort.shed,
            best_effort.arrived,
            if best_effort.arrived > 0 {
                100.0 * best_effort.shed as f64 / best_effort.arrived as f64
            } else {
                0.0
            },
        );
    }

    if a.bal.enabled {
        // The two-level headline: the same skewed fleets with the
        // fleet-scope balancer stripped — what cell isolation costs when
        // demand is uneven, in interactive SLO and energy per token.
        eprintln!("# balanced vs isolated (same skewed demand, same cells, balancer off):");
        for ((name, cfg), balanced) in fleets.iter().zip(&reports) {
            let mut iso = cfg.clone();
            if let Some(c) = iso.ctrl.as_mut() {
                c.balancer = None;
            }
            iso.telemetry = TelemetryConfig::default();
            let isolated = match run(&iso, a.common.seed) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fleet {name} (isolated): {e}");
                    std::process::exit(1);
                }
            };
            let att = |r: &litegpu_fleet::FleetReport| {
                r.interactive_attainment().map_or(f64::NAN, |(t, _)| t)
            };
            eprintln!(
                "#   {name}: interactive TTFT attainment {:.4} vs {:.4} (Δ{:+.4}), \
                 energy/token {:.3} vs {:.3} J, completed {} vs {}, \
                 e2e p99 {:.3} vs {:.3} s",
                att(balanced),
                att(&isolated),
                att(balanced) - att(&isolated),
                balanced.energy_per_token_j,
                isolated.energy_per_token_j,
                balanced.completed,
                isolated.completed,
                balanced.e2e_p99_s,
                isolated.e2e_p99_s,
            );
            if let Some(b) = balanced.balancer.as_ref() {
                eprintln!(
                    "#   {name}: {} requests spilled in {} cohorts over {} flow edges, \
                     {} quota-clamped",
                    b.spilled_out,
                    b.spilled_cohorts,
                    b.flow.len(),
                    b.quota_clamped,
                );
            }
        }
    }

    if a.dvfs {
        // The DVFS twins: same fleets, same seed, serving-time clock
        // scaling on. The headline is the energy-vs-latency frontier —
        // energy-per-token bought without giving up interactive SLO
        // attainment versus the nominal-clock runs above.
        let mut dvfs_reports = Vec::new();
        for (name, cfg) in &fleets {
            let mut dcfg = cfg.clone();
            dcfg.ctrl = dcfg.ctrl.map(|c| c.with_dvfs());
            let report = match run(&dcfg, a.common.seed) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fleet {name} (dvfs): {e}");
                    std::process::exit(1);
                }
            };
            eprintln!("# {name}+dvfs: {}", report.summary());
            eprintln!("#   {}", report.dvfs_summary());
            let dir = litegpu_bench::experiments_dir();
            if std::fs::create_dir_all(&dir).is_ok() {
                let _ =
                    std::fs::write(dir.join(format!("ctrl_{name}_dvfs.json")), report.to_json());
            }
            if !a.quiet_json {
                println!("{}", report.to_json());
            }
            dvfs_reports.push(report);
        }
        // NaN (not a vacuous 1.0) if a workload ever lacks an
        // interactive tenant — a fabricated attainment would be worse
        // than an obviously-missing one.
        let interactive = |r: &litegpu_fleet::FleetReport| {
            r.interactive_attainment().unwrap_or((f64::NAN, f64::NAN))
        };
        eprintln!("# DVFS headline (clock-aware serving vs nominal clocks, same fleets):");
        for ((name, _), (nominal, dvfs)) in fleets.iter().zip(reports.iter().zip(&dvfs_reports)) {
            let d = dvfs.dvfs.as_ref().expect("dvfs run has a dvfs section");
            let (nt, nb) = interactive(nominal);
            let (dt, db) = interactive(dvfs);
            eprintln!(
                "#   {name}: energy/token {:.3} -> {:.3} J ({:+.1}%), mean clock {:.3} \
                 ({:.0}% of live ticks down-clocked), interactive TTFT attainment \
                 {nt:.4} -> {dt:.4} (Δ{:+.4}), TBT {nb:.4} -> {db:.4}",
                nominal.energy_per_token_j,
                dvfs.energy_per_token_j,
                100.0 * (dvfs.energy_per_token_j / nominal.energy_per_token_j - 1.0),
                d.mean_clock,
                100.0 * d.downclocked_share,
                dt - nt,
            );
        }
        let (hd, ld) = (&dvfs_reports[0], &dvfs_reports[1]);
        eprintln!(
            "#   H100 vs Lite energy/token under DVFS: {:.3} J vs {:.3} J ({:.2}x) at \
             interactive TTFT attainment {:.4} vs {:.4} — the per-unit clock (and power) \
             granularity §3 argues for, now priced into serving",
            hd.energy_per_token_j,
            ld.energy_per_token_j,
            ratio(hd.energy_per_token_j, ld.energy_per_token_j),
            interactive(hd).0,
            interactive(ld).0,
        );
    }

    if let Some(target) = a.spares_target {
        eprintln!("# spare-provisioning sweep to availability >= {target}:");
        for (name, cfg) in &fleets {
            match spares_for_target(cfg, target, a.max_spares, a.common.seed) {
                Ok(found) => eprintln!(
                    "#   {name}: {} spare(s)/cell -> availability {:.5}, overhead {:.2}% of fleet GPUs",
                    found.spares_per_cell,
                    found.report.availability,
                    found.report.spare_overhead * 100.0
                ),
                Err(e) => eprintln!("#   {name}: {e}"),
            }
        }
    }
}

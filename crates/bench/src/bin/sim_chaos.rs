//! Chaos-campaign sweeps over the fleet simulator: correlated failures,
//! repair crews, and lifecycle events, H100-class vs Lite-GPU fleets.
//!
//! Sweeps every campaign kind (rack outages, power-domain outages,
//! network partitions, thermal excursions, rolling drain — pick one with
//! `--campaign`) over a pair of silicon-equal fleets built from
//! single-GPU Llama3-8B instances: N H100 instances in 8-wide cells vs
//! 4N Lite instances in 32-wide cells, sharing the same 10 kW racks and
//! the same spare *silicon* (1 H100 spare per cell ≙ 4 Lite spares).
//! Both fleets therefore occupy the same number of racks, and the seeded
//! campaign samples the *same* rack indices for both — the only
//! difference is how much capacity each loss strands.
//!
//! Per campaign the binary prints an H100-vs-Lite table (availability,
//! fleet-wide and per-tenant SLO attainment, energy, spares consumed,
//! MTTR) to stderr and emits one deterministic `ChaosReport` JSON to
//! stdout and `target/experiments/chaos_<kind>.json`. The same seed
//! produces byte-identical JSON at any `--shards`/`--threads` setting.
//!
//! ```text
//! sim_chaos [--campaign rack|power|partition|thermal|drain|all]
//!           [--instances N] [--hours H] [--rate R] [--accel A]
//!           [--events N] [--duration S] [--intensity F]
//!           [--rack-kw K] [--racks-per-domain N]
//!           [--seed N] [--shards N] [--threads N]
//!           [--series] [--series-dt US]
//!           [--balancer] [--skew HxM]
//!           [--smoke] [--quiet-json]
//! ```
//!
//! `--balancer` attaches the fleet-scope spill-over balancer to both
//! fleets (each otherwise uncontrolled), and `--skew HxM` skews the
//! per-cell demand — together they show whether cross-cell spill-over
//! keeps absorbing correlated outages when demand is uneven.
//!
//! `--instances` sizes the H100 fleet (the Lite fleet gets 4x). `--rate`
//! is the H100 per-instance request rate (Lite instances carry a quarter
//! each, so total demand matches). `--smoke` shrinks everything for CI.
//!
//! `--series` records the recovery timeline the end-of-run table drops:
//! a deterministic availability/queue/repair time series per campaign
//! and fleet, sampled every `--series-dt` integer µs of simulated time
//! (default 60000000 = 60 s)
//! and written to `target/experiments/chaos_<kind>_<fleet>_series.jsonl`.
//! Availability dips sit exactly inside the campaign's outage windows —
//! `tests/chaos_campaigns.rs` asserts as much.

use litegpu_chaos::{outcome, run_campaign_full, Campaign, CampaignKind, ChaosReport, DomainPlan};
use litegpu_fleet::{FleetConfig, FleetReport, FleetRun, TelemetryConfig};

struct Args {
    campaign: String,
    instances: u32,
    hours: f64,
    rate: f64,
    accel: f64,
    events: u32,
    duration: f64,
    intensity: f64,
    rack_kw: f64,
    racks_per_domain: u32,
    common: litegpu_bench::cli::CommonArgs,
    bal: litegpu_bench::cli::BalancerArgs,
    series: bool,
    quiet_json: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        campaign: "all".into(),
        instances: 96,
        hours: 4.0,
        rate: 2.0,
        accel: 2_000.0,
        events: 4,
        duration: 600.0,
        intensity: 0.5,
        rack_kw: 10.0,
        racks_per_domain: 4,
        common: litegpu_bench::cli::CommonArgs::new(&[
            "--seed",
            "--shards",
            "--threads",
            "--series-dt",
        ]),
        bal: litegpu_bench::cli::BalancerArgs::default(),
        series: false,
        quiet_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| litegpu_bench::cli::value(&argv, i);
    use litegpu_bench::cli::parsed;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--campaign" => a.campaign = value(&mut i),
            "--instances" => a.instances = parsed(&flag, value(&mut i)),
            "--hours" => a.hours = parsed(&flag, value(&mut i)),
            "--rate" => a.rate = parsed(&flag, value(&mut i)),
            "--accel" => a.accel = parsed(&flag, value(&mut i)),
            "--events" => a.events = parsed(&flag, value(&mut i)),
            "--duration" => a.duration = parsed(&flag, value(&mut i)),
            "--intensity" => a.intensity = parsed(&flag, value(&mut i)),
            "--rack-kw" => a.rack_kw = parsed(&flag, value(&mut i)),
            "--racks-per-domain" => a.racks_per_domain = parsed(&flag, value(&mut i)),
            "--series" => a.series = true,
            "--smoke" => {
                a.instances = 24;
                a.hours = 0.5;
                a.accel = 10_000.0;
                a.events = 2;
                a.duration = 300.0;
            }
            "--quiet-json" => a.quiet_json = true,
            other => {
                if !a.common.try_parse(&argv, &mut i) && !a.bal.try_parse(&argv, &mut i) {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    a.bal.warn_if_ignored();
    a
}

/// The silicon-equal single-GPU pair (H100 vs 4x Lite on the same
/// silicon, demand and rack shape), built by the shared
/// `litegpu_bench::fleet_pair` helper with the control plane stripped —
/// the chaos sweep studies the fixed fleet.
fn fleet_pair(a: &Args) -> [(&'static str, FleetConfig); 2] {
    let base = litegpu_bench::fleet_pair::SweepBase {
        equiv_instances: a.instances,
        rate_per_equiv: a.rate,
        hours: a.hours,
        accel: a.accel,
    };
    let mut pair = litegpu_bench::fleet_pair::pair_configs(&base, false);
    for (_, cfg) in &mut pair {
        // Skew + balancer attach per fleet so each gets multipliers
        // sized to its own cell count.
        a.bal.apply(cfg);
    }
    pair
}

fn run_one(
    name: &str,
    cfg: &FleetConfig,
    camp: &Campaign,
    plan: &DomainPlan,
    a: &Args,
) -> FleetRun {
    let threads = litegpu_bench::fleet_pair::threads_or_auto(a.common.threads);
    let shards = litegpu_bench::fleet_pair::shards_or_cells(a.common.shards, cfg);
    let mut cfg = cfg.clone();
    if a.series {
        cfg.telemetry = TelemetryConfig {
            series_dt_us: a.common.series_dt_us,
            ..TelemetryConfig::default()
        };
    }
    match run_campaign_full(&cfg, plan, camp, a.common.seed, shards, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign {} / fleet {name}: {e}", camp.kind.label());
            std::process::exit(1);
        }
    }
}

fn print_table(camp: &Campaign, rows: &[(&str, &FleetReport)]) {
    eprintln!(
        "# campaign '{}': {} events x {:.0} s (intensity {:.2})",
        camp.kind.label(),
        camp.events,
        camp.duration_s,
        camp.intensity
    );
    eprintln!(
        "#   {:<5} {:>9} {:>9} {:>9} {:>11} {:>7} {:>16} {:>9} {:>9}",
        "fleet",
        "avail",
        "TTFT-SLO",
        "TBT-SLO",
        "energy(MJ)",
        "spares",
        "fail(ind/rk/pw)",
        "MTTR(s)",
        "shed"
    );
    for (name, r) in rows {
        let b = &r.failure_breakdown;
        let (mttr, shed) = r
            .chaos
            .as_ref()
            .map_or((0.0, 0), |c| (c.mttr_s, c.partition_shed));
        eprintln!(
            "#   {:<5} {:>9.4} {:>9.4} {:>9.4} {:>11.2} {:>7} {:>16} {:>9.1} {:>9}",
            name,
            r.availability,
            r.ttft_attainment,
            r.tbt_attainment,
            r.energy_j as f64 / 1e6,
            r.spare_hits,
            format!("{}/{}/{}", b.independent, b.rack, b.power),
            mttr,
            shed,
        );
        for t in &r.per_tenant {
            eprintln!(
                "#         {:<10} ({:<11}) TTFT-SLO {:.4}  TBT-SLO {:.4}",
                t.name, t.priority, t.ttft_attainment, t.tbt_attainment
            );
        }
        if r.balancer.is_some() {
            eprintln!("#         {}", r.balancer_summary());
        }
    }
}

fn main() {
    let a = parse_args();
    let kinds: Vec<CampaignKind> = if a.campaign == "all" {
        CampaignKind::ALL.to_vec()
    } else {
        match CampaignKind::from_slug(&a.campaign) {
            Some(k) => vec![k],
            None => {
                eprintln!(
                    "unknown --campaign {} (expected rack|power|partition|thermal|drain|all)",
                    a.campaign
                );
                std::process::exit(2);
            }
        }
    };
    let plan = DomainPlan {
        rack_kw: a.rack_kw,
        racks_per_power_domain: a.racks_per_domain,
    };
    let [(_, h100), (_, lite)] = fleet_pair(&a);
    for kind in kinds {
        let camp = Campaign {
            kind,
            events: a.events,
            duration_s: a.duration,
            intensity: a.intensity,
        };
        let run_h = run_one("h100", &h100, &camp, &plan, &a);
        let run_l = run_one("lite", &lite, &camp, &plan, &a);
        let (rh, rl) = (&run_h.report, &run_l.report);
        print_table(&camp, &[("h100", rh), ("lite", rl)]);
        // The recovery timeline: one availability series per fleet so
        // the dip/refill around each outage window is inspectable, not
        // just its end-of-run average.
        if a.series {
            let dir = litegpu_bench::experiments_dir();
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("series {}: {e}", dir.display());
                std::process::exit(1);
            }
            for (name, fr) in [("h100", &run_h), ("lite", &run_l)] {
                if let Some(s) = fr.series.as_ref() {
                    let path = dir.join(format!("chaos_{}_{name}_series.jsonl", kind.slug()));
                    litegpu_bench::write_artifact(
                        "series",
                        path.to_str().unwrap_or_default(),
                        &s.to_jsonl(),
                    );
                }
            }
        }
        eprintln!(
            "#   headline: lite availability {:+.4} vs h100 under '{}'",
            rl.availability - rh.availability,
            kind.label()
        );
        let report = ChaosReport::new(
            &camp,
            a.common.seed,
            vec![outcome("h100", rh), outcome("lite", rl)],
        );
        let json = report.to_json();
        if !a.quiet_json {
            println!("{json}");
        }
        let dir = litegpu_bench::experiments_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("chaos_{}.json", kind.slug())), &json);
        }
    }
}

//! Engine-equivalence regression gate: the determinism-suite configs
//! (mono / split / dvfs, each with and without a chaos campaign, all on
//! the 3-tenant workload) must keep producing the exact report, series
//! and trace bytes the tick-loop engine produced before the event-queue
//! rewrite — at 1, 2 and 8 threads. The series/trace hashes below were
//! generated from the pre-refactor per-tick engine; the report hashes
//! were regenerated when the `balancer` report section landed (a pure
//! schema addition: `"balancer": null` on every non-balanced run, with
//! all other bytes — and the series/trace artifacts — unchanged). Any
//! engine change that drifts a single byte of any artifact fails here.
//!
//! Regenerate (only when an *intentional* semantic change lands):
//! `ENGINE_GOLDEN_PRINT=1 cargo test -p litegpu-bench --test
//! engine_equivalence -- --nocapture` and paste the printed table.

use std::process::Command;

/// FNV-1a 64-bit over the artifact bytes — dependency-free and stable.
/// Collisions are irrelevant here: the gate only needs byte drift to
/// change the digest, not cryptographic strength.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `(combo, extra flags, report fnv, series fnv, trace fnv)`. Hashes
/// are of: the report JSON printed to stdout (trailing newline
/// trimmed), the series JSONL bytes, and the Chrome trace JSON bytes.
const GOLDEN: &[(&str, &[&str], u64, u64, u64)] = &[
    (
        "mono",
        &["--serving", "mono"],
        0x514bd279779fd38a,
        0x57d51669e121ff6f,
        0x0178b0f1d5b01d30,
    ),
    (
        "split",
        &["--serving", "split"],
        0x48417fbbd7b83597,
        0x94b8b348bb98f5da,
        0x018e7574744eb70a,
    ),
    (
        "dvfs",
        &["--serving", "split", "--dvfs"],
        0x9ca40b541f79694d,
        0x2bad5179e3a27965,
        0x734c317ed45d5494,
    ),
    (
        "mono_chaos",
        &["--serving", "mono", "--chaos", "rack"],
        0xaafdea3a6b34c643,
        0x982a4e3f2c4b2bf3,
        0x070388de9701fc8c,
    ),
    (
        "split_chaos",
        &["--serving", "split", "--chaos", "partition"],
        0xdc24d66b0f342681,
        0x0dd4bf4f8e764cdf,
        0xa49e37433b90682a,
    ),
    (
        "dvfs_chaos",
        &["--serving", "split", "--dvfs", "--chaos", "thermal"],
        0xa6b31b7069b9bf19,
        0x2bad5179e3a27965,
        0xc5c8d9ece9abf736,
    ),
];

fn run_combo(combo: &str, flags: &[&str], threads: u32) -> (u64, u64, u64) {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let series = dir.join(format!("eq_series_{combo}_t{threads}.jsonl"));
    let trace = dir.join(format!("eq_trace_{combo}_t{threads}.json"));
    let out = Command::new(env!("CARGO_BIN_EXE_sim_fleet"))
        .args([
            "--gpu",
            "lite",
            "--instances",
            "64",
            "--cell-size",
            "8",
            "--hours",
            "0.5",
            "--accel",
            "50000",
            "--ctrl",
            "auto",
            "--workload",
            "multi",
            "--no-baseline",
            "--shards",
            "8",
            "--seed",
            "42",
        ])
        .args(flags)
        .args(["--threads", &threads.to_string()])
        .args(["--series", series.to_str().unwrap()])
        .args(["--series-dt", "60000000"])
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--trace-every", "16"])
        .output()
        .expect("sim_fleet runs");
    assert!(
        out.status.success(),
        "sim_fleet {combo} t{threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 report");
    let report = fnv1a64(stdout.trim_end().as_bytes());
    let series = fnv1a64(&std::fs::read(&series).expect("series artifact"));
    let trace = fnv1a64(&std::fs::read(&trace).expect("trace artifact"));
    (report, series, trace)
}

#[test]
fn event_engine_matches_tick_loop_goldens() {
    let print = std::env::var("ENGINE_GOLDEN_PRINT").is_ok();
    let mut drift = Vec::new();
    for &(combo, flags, report_g, series_g, trace_g) in GOLDEN {
        for threads in [1u32, 2, 8] {
            let (report, series, trace) = run_combo(combo, flags, threads);
            if print && threads == 1 {
                println!("(\"{combo}\", ..., {report:#018x}, {series:#018x}, {trace:#018x}),");
            }
            for (name, got, want) in [
                ("report", report, report_g),
                ("series", series, series_g),
                ("trace", trace, trace_g),
            ] {
                if got != want {
                    drift.push(format!(
                        "{combo} t{threads} {name}: got {got:#018x}, golden {want:#018x}"
                    ));
                }
            }
        }
    }
    assert!(
        drift.is_empty(),
        "engine output drifted from tick-loop goldens:\n{}",
        drift.join("\n")
    );
}

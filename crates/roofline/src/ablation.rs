//! Sensitivity studies over the reconstructed modeling choices.
//!
//! DESIGN.md calls out the assumptions rebuilt from the paper's prose
//! (overlap semantics, KV sharding policy, precision, collective
//! constants, the 4-way split itself). Each function here sweeps one of
//! them and reports how the Figure-3 headline numbers move, so reviewers
//! can see exactly which conclusions are robust and which hinge on a
//! choice.

use crate::figures::{self, Figure3};
use crate::params::{EngineParams, OverlapMode};
use crate::{search, Result};
use litegpu_specs::die::ShorelineBudget;
use litegpu_specs::{GpuSpec, LiteCustomization, LiteDerivation};
use litegpu_workload::{models, GqaPolicy, Precision};

/// One ablation sample: a label and the Figure-3b normalized series for
/// the three paper models (Lite and Lite+MemBW bars).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AblationPoint {
    /// What was varied.
    pub label: String,
    /// `Lite` normalized values per model (70B, GPT-3, 405B).
    pub lite: Vec<f64>,
    /// `Lite+MemBW` normalized values per model.
    pub lite_mem_bw: Vec<f64>,
}

fn decode_point(label: impl Into<String>, fig: &Figure3) -> AblationPoint {
    let get = |gpu: &str| -> Vec<f64> {
        fig.models
            .iter()
            .map(|m| fig.point(m, gpu).map(|p| p.normalized).unwrap_or(f64::NAN))
            .collect()
    };
    AblationPoint {
        label: label.into(),
        lite: get("Lite"),
        lite_mem_bw: get("Lite+MemBW"),
    }
}

/// Decode-overlap ablation: how Figure 3b moves across the three overlap
/// semantics.
pub fn overlap_ablation() -> Result<Vec<AblationPoint>> {
    let mut out = Vec::new();
    for (label, mode) in [
        ("full-overlap", OverlapMode::Full),
        ("serial-collectives (default)", OverlapMode::ComputeMem),
        ("no-overlap", OverlapMode::None),
    ] {
        let mut p = EngineParams::paper_defaults();
        p.decode_overlap = mode;
        out.push(decode_point(label, &figures::figure3b(&p)?));
    }
    Ok(out)
}

/// KV-sharding ablation: full sharding (default, sequence-parallel
/// attention) vs. head sharding with replication beyond the KV-head
/// count.
pub fn gqa_policy_ablation() -> Result<Vec<AblationPoint>> {
    let mut out = Vec::new();
    for (label, policy) in [
        ("full-shard (default)", GqaPolicy::FullShard),
        ("head-shard (replicates)", GqaPolicy::HeadShard),
    ] {
        let mut p = EngineParams::paper_defaults();
        p.gqa_policy = policy;
        out.push(decode_point(label, &figures::figure3b(&p)?));
    }
    Ok(out)
}

/// Precision ablation: FP8 (Table 1's 2000 TFLOPS) vs FP16.
///
/// FP16 halves the compute roof *and* doubles every byte, moving the
/// memory-bound crossovers. Llama3-405B does not fit the 32-GPU Lite
/// cluster at FP16 at all (810 GB of weights) — a finding in itself —
/// so its column reports NaN for the FP16 row.
pub fn precision_ablation() -> Result<Vec<AblationPoint>> {
    let mut out = Vec::new();
    let fig8 = figures::figure3b(&EngineParams::paper_defaults())?;
    out.push(decode_point("fp8 (default)", &fig8));

    let mut p = EngineParams::paper_defaults();
    p.precision = Precision::Fp16;
    p.flops_efficiency = 0.5;
    let small_models = [models::llama3_70b(), models::gpt3_175b()];
    let fig16 = figures::custom_figure(
        figures::Phase::Decode,
        &litegpu_specs::catalog::fig3b_gpu_types(),
        &small_models,
        &p,
    )?;
    let mut point = decode_point("fp16 (405B does not fit)", &fig16);
    point.lite.push(f64::NAN);
    point.lite_mem_bw.push(f64::NAN);
    out.push(point);
    Ok(out)
}

/// Collective-constant sensitivity: sweep the per-collective software
/// overhead (the least-certain reconstructed constant).
pub fn alpha_sensitivity(alphas_us: &[f64]) -> Result<Vec<AblationPoint>> {
    let mut out = Vec::new();
    for &a in alphas_us {
        let mut p = EngineParams::paper_defaults();
        p.alpha_sw_s = a * 1e-6;
        out.push(decode_point(
            format!("alpha_sw={a}us"),
            &figures::figure3b(&p)?,
        ));
    }
    Ok(out)
}

/// Split-factor study: derive 2-, 4-, 8- and 16-way Lite-GPUs (plain and
/// +MemBW customizations) and report best decode efficiency vs. the
/// parent on Llama3-70B. Answers "is 4 the right split?".
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SplitStudyRow {
    /// The split factor.
    pub split: u32,
    /// Best plain-Lite decode tokens/s/SM normalized to the parent.
    pub plain_efficiency: f64,
    /// Best +MemBW decode efficiency (2x mem BW, shoreline permitting).
    pub mem_bw_efficiency: Option<f64>,
    /// Shoreline utilization of the +MemBW variant.
    pub mem_bw_shoreline_util: Option<f64>,
}

/// Runs the split-factor study against a parent GPU.
pub fn split_factor_study(parent: &GpuSpec, splits: &[u32]) -> Result<Vec<SplitStudyRow>> {
    let params = EngineParams::paper_defaults();
    let arch = models::llama3_70b();
    let parent_best = search::best_decode(parent, &arch, &params)?;
    let mut rows = Vec::new();
    for &split in splits {
        let derivation = LiteDerivation::new(parent.clone(), split)?;
        let plain = derivation.base(format!("Lite/{split}"))?;
        let plain_eff = search::best_decode(&plain, &arch, &params)?.tokens_per_s_per_sm
            / parent_best.tokens_per_s_per_sm;
        // +MemBW variant: only feasible if the shoreline allows 2x.
        let custom = LiteCustomization {
            name: format!("Lite/{split}+MemBW"),
            mem_bw_factor: 2.0,
            net_bw_factor: 1.0,
            clock_factor: 1.0,
        };
        let (mem_bw_efficiency, mem_bw_shoreline_util) = match derivation.customized(&custom) {
            Ok(spec) => {
                let eff = search::best_decode(&spec, &arch, &params)?.tokens_per_s_per_sm
                    / parent_best.tokens_per_s_per_sm;
                let util = ShorelineBudget::for_die(&spec.die)
                    .utilization(spec.mem_bw_gbps, spec.net_bw_gbps);
                (Some(eff), Some(util))
            }
            Err(_) => (None, None),
        };
        rows.push(SplitStudyRow {
            split,
            plain_efficiency: plain_eff,
            mem_bw_efficiency,
            mem_bw_shoreline_util,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;

    #[test]
    fn overlap_ablation_orders_lite_penalty() {
        let points = overlap_ablation().unwrap();
        assert_eq!(points.len(), 3);
        for i in 0..3 {
            // Full overlap is the kindest to Lite (its collectives hide);
            // the serialized default is strictly harsher. (No-overlap is
            // not comparable after normalization because the H100
            // baseline also degrades.)
            assert!(
                points[0].lite[i] >= points[1].lite[i] - 1e-9,
                "full >= serial at model {i}"
            );
            // The Lite deficit survives every overlap assumption.
            for p in &points {
                assert!(p.lite[i] < 1.0, "{}: model {i}", p.label);
            }
        }
    }

    #[test]
    fn gqa_ablation_hits_gqa_models_only() {
        let points = gqa_policy_ablation().unwrap();
        let (full, head) = (&points[0], &points[1]);
        // Llama models (GQA, 8 KV heads) degrade under head sharding...
        assert!(head.lite[0] < full.lite[0]);
        assert!(head.lite[2] < full.lite[2]);
        // ...while GPT-3 (96 KV heads >= any TP degree here) is immune.
        assert!((head.lite[1] - full.lite[1]).abs() < 0.02);
    }

    #[test]
    fn precision_ablation_keeps_mem_bw_exceedance() {
        let points = precision_ablation().unwrap();
        // FP8 (the paper's setting): +MemBW exceeds H100 for both smaller
        // models.
        assert!(points[0].lite_mem_bw[0] > 1.0, "{:?}", points[0]);
        assert!(points[0].lite_mem_bw[1] > 1.0, "{:?}", points[0]);
        // FP16 doubles weights: Llama3-70B is pushed to higher TP and its
        // exceedance erodes to ~parity, while GPT-3 (deepest memory
        // boundedness) keeps it. A finding, not a bug: the Lite+MemBW
        // advantage is strongest exactly where decode is most
        // memory-bound.
        assert!(points[1].lite_mem_bw[0] > 0.85, "{:?}", points[1]);
        assert!(points[1].lite_mem_bw[1] > 1.0, "{:?}", points[1]);
        assert!(points[1].lite[2].is_nan(), "fp16 405B must be marked unfit");
    }

    #[test]
    fn alpha_sensitivity_is_monotone_for_405b() {
        let points = alpha_sensitivity(&[0.0, 2.0, 10.0]).unwrap();
        // Higher per-collective overhead -> worse (or equal) 405B Lite
        // bar; small tolerance because the H100 baseline shifts too.
        assert!(points[0].lite[2] >= points[1].lite[2] - 0.005);
        assert!(points[1].lite[2] >= points[2].lite[2] - 0.005);
        assert!(
            points[0].lite[2] > points[2].lite[2],
            "0us {} should beat 10us {}",
            points[0].lite[2],
            points[2].lite[2]
        );
    }

    #[test]
    fn split_study_shows_diminishing_returns() {
        let rows = split_factor_study(&catalog::h100(), &[2, 4, 8]).unwrap();
        assert_eq!(rows.len(), 3);
        // Plain efficiency decreases with the split (more network).
        assert!(rows[0].plain_efficiency >= rows[1].plain_efficiency);
        assert!(rows[1].plain_efficiency >= rows[2].plain_efficiency);
        // The 4-way +MemBW variant is feasible and beats parity.
        let r4 = &rows[1];
        assert!(r4.mem_bw_efficiency.unwrap() > 1.0);
        assert!(r4.mem_bw_shoreline_util.unwrap() <= 1.0);
    }
}

//! Derived metrics: normalization and energy-per-token.

use crate::params::EngineParams;
use litegpu_specs::power::PowerModel;
use litegpu_specs::GpuSpec;

/// Normalizes a series so that the entry named `baseline` equals 1.0.
///
/// Returns `None` when the baseline is missing or non-positive.
///
/// # Examples
///
/// ```
/// use litegpu_roofline::metrics::normalize_to;
/// let series = [("H100".to_string(), 4.0), ("Lite".to_string(), 3.0)];
/// let n = normalize_to(&series, "H100").unwrap();
/// assert_eq!(n[1].1, 0.75);
/// ```
pub fn normalize_to(series: &[(String, f64)], baseline: &str) -> Option<Vec<(String, f64)>> {
    let base = series.iter().find(|(n, _)| n == baseline)?.1;
    if base <= 0.0 {
        return None;
    }
    Some(series.iter().map(|(n, v)| (n.clone(), v / base)).collect())
}

/// Energy per generated/processed token, joules, for a group of `gpus`
/// running a phase of `duration_s` that produces `tokens`.
///
/// Assumes the binding resource keeps the group near full utilization
/// while the phase runs (the configuration search already maximizes
/// utilization). Network energy is not included here — see
/// [`litegpu_net::energy`] for fabric-side accounting.
pub fn energy_per_token_j(
    spec: &GpuSpec,
    gpus: u32,
    duration_s: f64,
    tokens: f64,
    _params: &EngineParams,
) -> f64 {
    if tokens <= 0.0 || duration_s <= 0.0 {
        return 0.0;
    }
    let model = PowerModel::for_spec(spec);
    let power = model.power_w(1.0, 1.0) * gpus as f64;
    power * duration_s / tokens
}

/// Tokens per joule (the reciprocal view used in efficiency plots).
pub fn tokens_per_joule(
    spec: &GpuSpec,
    gpus: u32,
    duration_s: f64,
    tokens: f64,
    params: &EngineParams,
) -> f64 {
    let e = energy_per_token_j(spec, gpus, duration_s, tokens, params);
    if e <= 0.0 {
        0.0
    } else {
        1.0 / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;

    #[test]
    fn normalize_basics() {
        let series = vec![
            ("H100".to_string(), 10.0),
            ("Lite".to_string(), 8.0),
            ("Lite+MemBW".to_string(), 14.0),
        ];
        let n = normalize_to(&series, "H100").unwrap();
        assert_eq!(n[0].1, 1.0);
        assert_eq!(n[1].1, 0.8);
        assert!((n[2].1 - 1.4).abs() < 1e-12);
        assert!(normalize_to(&series, "missing").is_none());
        let zero = vec![("H100".to_string(), 0.0)];
        assert!(normalize_to(&zero, "H100").is_none());
    }

    #[test]
    fn energy_per_token_sane() {
        let p = EngineParams::paper_defaults();
        // 8 H100s for 1 s producing 4000 tokens: 5600 J / 4000 = 1.4 J/tok.
        let e = energy_per_token_j(&catalog::h100(), 8, 1.0, 4000.0, &p);
        assert!((e - 1.4).abs() < 1e-9);
        assert_eq!(energy_per_token_j(&catalog::h100(), 8, 1.0, 0.0, &p), 0.0);
    }

    #[test]
    fn tokens_per_joule_reciprocal() {
        let p = EngineParams::paper_defaults();
        let e = energy_per_token_j(&catalog::h100(), 4, 0.5, 1000.0, &p);
        let t = tokens_per_joule(&catalog::h100(), 4, 0.5, 1000.0, &p);
        assert!((e * t - 1.0).abs() < 1e-9);
    }
}

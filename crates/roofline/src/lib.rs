//! The Lite-GPU paper's core contribution: a roofline performance model of
//! LLM inference on GPU clusters, plus the constrained configuration
//! search of §4.
//!
//! The pipeline mirrors the paper's methodology exactly:
//!
//! 1. A model's prefill or decode phase is decomposed into per-layer
//!    compute stages (projection, fused FlashAttention, MLP —
//!    [`litegpu_workload::stage`]).
//! 2. The stages are tensor-parallel sharded over a GPU group
//!    ([`litegpu_workload::parallel`]), which attaches two all-reduces per
//!    layer.
//! 3. [`engine`] prices each stage on a [`litegpu_specs::GpuSpec`]:
//!    compute time vs. HBM time overlap (roofline max); collective time
//!    comes from [`litegpu_net::collective`].
//! 4. [`capacity`] bounds feasible batch sizes (weights + KV must fit).
//! 5. [`search`] sweeps batch size × GPU count under the Splitwise SLOs
//!    (TTFT ≤ 1 s, TBT ≤ 50 ms) and reports the best *tokens/s/SM* — the
//!    paper's normalized metric.
//! 6. [`figures`] packages the Figure 3a/3b series.
//! 7. [`stepcost`] flattens the model into precomputed, quantized
//!    step-cost tables for simulator hot loops.
//!
//! # Examples
//!
//! ```
//! use litegpu_roofline::{params::EngineParams, search};
//! use litegpu_specs::catalog;
//! use litegpu_workload::models;
//!
//! let params = EngineParams::paper_defaults();
//! let best = search::best_decode(&catalog::h100(), &models::llama3_70b(), &params).unwrap();
//! assert!(best.meets_slo(params.constraints.tbt_max_s));
//! assert!(best.tokens_per_s_per_sm > 0.0);
//! ```

pub mod ablation;
pub mod capacity;
pub mod decode;
pub mod engine;
pub mod figures;
pub mod metrics;
pub mod params;
pub mod prefill;
pub mod search;
pub mod stepcost;

pub use engine::{Bottleneck, PhaseTime, StageTime};
pub use params::{EngineParams, OverlapMode, SloConstraints};
pub use stepcost::StepCostTable;

/// Errors produced by the roofline engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RooflineError {
    /// A parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The model cannot fit on the given cluster at any batch size.
    DoesNotFit {
        /// Model name.
        model: String,
        /// GPU configuration name.
        gpu: String,
        /// GPUs in the group.
        gpus: u32,
    },
    /// No configuration satisfies the latency constraints.
    NoFeasibleConfig {
        /// Model name.
        model: String,
        /// GPU configuration name.
        gpu: String,
    },
    /// Underlying workload error.
    Workload(litegpu_workload::WorkloadError),
    /// Underlying network-model error.
    Net(litegpu_net::NetError),
    /// Underlying spec error.
    Spec(litegpu_specs::SpecError),
}

impl core::fmt::Display for RooflineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RooflineError::InvalidParameter { name, value } => {
                write!(f, "invalid roofline parameter {name} = {value}")
            }
            RooflineError::DoesNotFit { model, gpu, gpus } => {
                write!(f, "{model} does not fit on {gpus}x {gpu}")
            }
            RooflineError::NoFeasibleConfig { model, gpu } => {
                write!(f, "no feasible configuration for {model} on {gpu}")
            }
            RooflineError::Workload(e) => write!(f, "workload error: {e}"),
            RooflineError::Net(e) => write!(f, "network error: {e}"),
            RooflineError::Spec(e) => write!(f, "spec error: {e}"),
        }
    }
}

impl std::error::Error for RooflineError {}

impl From<litegpu_workload::WorkloadError> for RooflineError {
    fn from(e: litegpu_workload::WorkloadError) -> Self {
        RooflineError::Workload(e)
    }
}

impl From<litegpu_net::NetError> for RooflineError {
    fn from(e: litegpu_net::NetError) -> Self {
        RooflineError::Net(e)
    }
}

impl From<litegpu_specs::SpecError> for RooflineError {
    fn from(e: litegpu_specs::SpecError) -> Self {
        RooflineError::Spec(e)
    }
}

/// Result alias for roofline operations.
pub type Result<T> = core::result::Result<T, RooflineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        let e = RooflineError::DoesNotFit {
            model: "Llama3-405B".into(),
            gpu: "Lite".into(),
            gpus: 16,
        };
        assert!(e.to_string().contains("16x Lite"));
        let w: RooflineError = litegpu_workload::WorkloadError::InvalidParameter {
            name: "x",
            value: 0.0,
        }
        .into();
        assert!(matches!(w, RooflineError::Workload(_)));
    }
}

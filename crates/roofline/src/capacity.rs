//! HBM capacity feasibility: weights + KV cache must fit each GPU.
//!
//! Capacity is what forces Lite clusters to high tensor-parallel degrees
//! (a 405 GB model cannot run on fewer than 22 Lite-GPUs of 20 GB), which
//! in turn exposes them to collective overheads — a central tension of the
//! paper's §4 results.

use crate::params::EngineParams;
use crate::{Result, RooflineError};
use litegpu_specs::GpuSpec;
use litegpu_workload::{kv, parallel, ModelArch};

/// Per-GPU HBM budget available for weights + KV, bytes.
pub fn usable_bytes_per_gpu(spec: &GpuSpec, params: &EngineParams) -> f64 {
    spec.mem_capacity_bytes() * (1.0 - params.hbm_reserve_frac)
}

/// Per-GPU weight residency at TP degree `tp`, bytes.
pub fn weight_bytes_per_gpu(arch: &ModelArch, tp: u32, params: &EngineParams) -> f64 {
    parallel::weight_bytes_per_gpu(arch, params.precision, tp)
}

/// Per-GPU KV bytes for one sequence at `context` tokens and TP degree
/// `tp` under the configured sharding policy.
pub fn kv_bytes_per_seq_per_gpu(
    arch: &ModelArch,
    tp: u32,
    context: u32,
    params: &EngineParams,
) -> f64 {
    context as f64
        * kv::bytes_per_token_per_gpu_with_policy(arch, params.precision, tp, params.gqa_policy)
}

/// Whether the model's weights alone fit at TP degree `tp`.
pub fn weights_fit(spec: &GpuSpec, arch: &ModelArch, tp: u32, params: &EngineParams) -> bool {
    weight_bytes_per_gpu(arch, tp, params) <= usable_bytes_per_gpu(spec, params)
}

/// The smallest TP degree at which the weights fit (no KV slack yet).
pub fn min_gpus(spec: &GpuSpec, arch: &ModelArch, params: &EngineParams) -> Result<u32> {
    for tp in 1..=spec.max_gpus {
        if weights_fit(spec, arch, tp, params) {
            return Ok(tp);
        }
    }
    Err(RooflineError::DoesNotFit {
        model: arch.name.clone(),
        gpu: spec.name.clone(),
        gpus: spec.max_gpus,
    })
}

/// Maximum batch size whose KV cache fits beside the weights at TP degree
/// `tp` with `context`-token sequences. Returns 0 when even the weights do
/// not fit.
///
/// # Examples
///
/// ```
/// use litegpu_roofline::{capacity, params::EngineParams};
/// use litegpu_specs::catalog;
/// use litegpu_workload::models;
///
/// let p = EngineParams::paper_defaults();
/// // 8 H100s hold Llama3-70B with room for a four-digit batch at 2000 ctx.
/// let b = capacity::max_batch(&catalog::h100(), &models::llama3_70b(), 8, 2000, &p);
/// assert!(b > 1000, "b = {b}");
/// // One Lite-GPU cannot even hold the weights.
/// assert_eq!(capacity::max_batch(&catalog::lite_base(), &models::llama3_70b(), 1, 2000, &p), 0);
/// ```
pub fn max_batch(
    spec: &GpuSpec,
    arch: &ModelArch,
    tp: u32,
    context: u32,
    params: &EngineParams,
) -> u32 {
    let budget = usable_bytes_per_gpu(spec, params);
    let weights = weight_bytes_per_gpu(arch, tp, params);
    if weights > budget {
        return 0;
    }
    let per_seq = kv_bytes_per_seq_per_gpu(arch, tp, context, params);
    if per_seq <= 0.0 {
        return 0;
    }
    ((budget - weights) / per_seq).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use litegpu_workload::models;
    use proptest::prelude::*;

    #[test]
    fn min_gpus_match_model_sizes() {
        let p = EngineParams::paper_defaults();
        // FP8: bytes == params. H100 (76 GB usable): 70B needs 1, 175B
        // needs 3, 405B needs 6.
        let h = catalog::h100();
        assert_eq!(min_gpus(&h, &models::llama3_70b(), &p).unwrap(), 1);
        assert_eq!(min_gpus(&h, &models::gpt3_175b(), &p).unwrap(), 3);
        assert_eq!(min_gpus(&h, &models::llama3_405b(), &p).unwrap(), 6);
        // Lite (19 GB usable): 70B needs 4, 175B needs 10, 405B needs 22.
        let l = catalog::lite_base();
        assert_eq!(min_gpus(&l, &models::llama3_70b(), &p).unwrap(), 4);
        assert_eq!(min_gpus(&l, &models::gpt3_175b(), &p).unwrap(), 10);
        assert_eq!(min_gpus(&l, &models::llama3_405b(), &p).unwrap(), 22);
    }

    #[test]
    fn equal_cluster_capacity_gives_similar_batches() {
        // 8 H100 and 32 Lite have the same total HBM, so capacity-limited
        // max batches match (full KV sharding).
        let p = EngineParams::paper_defaults();
        let bh = max_batch(&catalog::h100(), &models::gpt3_175b(), 8, 2000, &p);
        let bl = max_batch(&catalog::lite_base(), &models::gpt3_175b(), 32, 2000, &p);
        let rel = (bh as f64 - bl as f64).abs() / bh as f64;
        assert!(rel < 0.02, "bh = {bh}, bl = {bl}");
    }

    #[test]
    fn gpt3_kv_capacity_far_below_llama() {
        // GPT-3's MHA cache: an 8xH100 cluster holds an order of magnitude
        // fewer sequences than for Llama3-70B.
        let p = EngineParams::paper_defaults();
        let llama = max_batch(&catalog::h100(), &models::llama3_70b(), 8, 2000, &p);
        let gpt3 = max_batch(&catalog::h100(), &models::gpt3_175b(), 8, 2000, &p);
        assert!(
            llama as f64 / gpt3 as f64 > 8.0,
            "llama {llama} gpt3 {gpt3}"
        );
    }

    #[test]
    fn model_too_big_errors() {
        let p = EngineParams::paper_defaults();
        let mut small = catalog::lite_base();
        small.max_gpus = 8; // 8 x 19 GB usable < 405 GB.
        assert!(matches!(
            min_gpus(&small, &models::llama3_405b(), &p),
            Err(RooflineError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn reserve_reduces_batch() {
        let mut p = EngineParams::paper_defaults();
        p.hbm_reserve_frac = 0.0;
        let loose = max_batch(&catalog::h100(), &models::llama3_70b(), 8, 2000, &p);
        p.hbm_reserve_frac = 0.3;
        let tight = max_batch(&catalog::h100(), &models::llama3_70b(), 8, 2000, &p);
        assert!(tight < loose);
    }

    proptest! {
        #[test]
        fn max_batch_monotone_in_gpus(tp in 1u32..32) {
            let p = EngineParams::paper_defaults();
            let a = max_batch(&catalog::h100(), &models::llama3_70b(), tp, 2000, &p);
            let b = max_batch(&catalog::h100(), &models::llama3_70b(), tp + 1, 2000, &p);
            prop_assert!(b >= a);
        }

        #[test]
        fn max_batch_monotone_in_context(ctx in 100u32..4000) {
            let p = EngineParams::paper_defaults();
            let a = max_batch(&catalog::h100(), &models::gpt3_175b(), 8, ctx, &p);
            let b = max_batch(&catalog::h100(), &models::gpt3_175b(), 8, ctx + 100, &p);
            prop_assert!(b <= a);
        }
    }
}

//! The §4 configuration search: sweep batch size × GPU count under the
//! latency SLOs, maximize tokens/s/SM.
//!
//! "The search sweeps all possible batch sizes and number of GPUs for each
//! GPU type. ... For each GPU type, we plot the configuration with the
//! highest throughput per SM. Note that while we sweep up to the maximum
//! number of GPUs per cluster ... the search may return that running a
//! model with less GPUs than the maximum yields better throughput per SM."

use crate::params::EngineParams;
use crate::{capacity, decode, prefill, Result, RooflineError};
use litegpu_specs::GpuSpec;
use litegpu_workload::ModelArch;

/// Batch sizes to evaluate in `[1, max]`: a dense log-spaced integer grid
/// plus the capacity maximum itself (where tokens/s/SM often peaks).
pub fn batch_grid(max: u32) -> Vec<u32> {
    if max == 0 {
        return Vec::new();
    }
    let mut grid = Vec::new();
    let mut b = 1.0f64;
    while (b as u32) < max {
        grid.push(b as u32);
        // ~12 points per octave at small sizes, coarser later.
        b = (b * 1.18).max(b + 1.0);
    }
    grid.push(max);
    grid.dedup();
    grid
}

/// Best prefill configuration for a GPU type on a model, by tokens/s/SM,
/// subject to TTFT ≤ `params.constraints.ttft_max_s`.
pub fn best_prefill(
    spec: &GpuSpec,
    arch: &ModelArch,
    params: &EngineParams,
) -> Result<prefill::PrefillEval> {
    params.validate()?;
    let mut best: Option<prefill::PrefillEval> = None;
    let mut fits_anywhere = false;
    for gpus in 1..=spec.max_gpus {
        let bmax = capacity::max_batch(spec, arch, gpus, params.constraints.prompt_len, params);
        if bmax == 0 {
            continue;
        }
        fits_anywhere = true;
        for batch in batch_grid(bmax) {
            let eval = prefill::evaluate(spec, arch, gpus, batch, params)?;
            if !eval.meets_slo(params.constraints.ttft_max_s) {
                // TTFT grows with batch; larger batches at this GPU count
                // will also fail.
                break;
            }
            if best
                .as_ref()
                .map(|b| eval.tokens_per_s_per_sm > b.tokens_per_s_per_sm)
                .unwrap_or(true)
            {
                best = Some(eval);
            }
        }
    }
    best.ok_or_else(|| {
        if fits_anywhere {
            RooflineError::NoFeasibleConfig {
                model: arch.name.clone(),
                gpu: spec.name.clone(),
            }
        } else {
            RooflineError::DoesNotFit {
                model: arch.name.clone(),
                gpu: spec.name.clone(),
                gpus: spec.max_gpus,
            }
        }
    })
}

/// Best decode configuration for a GPU type on a model, by tokens/s/SM,
/// subject to TBT ≤ `params.constraints.tbt_max_s`.
pub fn best_decode(
    spec: &GpuSpec,
    arch: &ModelArch,
    params: &EngineParams,
) -> Result<decode::DecodeEval> {
    params.validate()?;
    let mut best: Option<decode::DecodeEval> = None;
    let mut fits_anywhere = false;
    for gpus in 1..=spec.max_gpus {
        let bmax = capacity::max_batch(spec, arch, gpus, params.constraints.decode_context, params);
        if bmax == 0 {
            continue;
        }
        fits_anywhere = true;
        for batch in batch_grid(bmax) {
            let eval = decode::evaluate(spec, arch, gpus, batch, params)?;
            if !eval.meets_slo(params.constraints.tbt_max_s) {
                // TBT grows with batch; stop this GPU count.
                break;
            }
            if best
                .as_ref()
                .map(|b| eval.tokens_per_s_per_sm > b.tokens_per_s_per_sm)
                .unwrap_or(true)
            {
                best = Some(eval);
            }
        }
    }
    best.ok_or_else(|| {
        if fits_anywhere {
            RooflineError::NoFeasibleConfig {
                model: arch.name.clone(),
                gpu: spec.name.clone(),
            }
        } else {
            RooflineError::DoesNotFit {
                model: arch.name.clone(),
                gpu: spec.name.clone(),
                gpus: spec.max_gpus,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use litegpu_workload::models;

    #[test]
    fn grid_is_sorted_unique_and_covers_range() {
        for max in [1u32, 2, 7, 100, 5000] {
            let g = batch_grid(max);
            assert_eq!(g.first(), Some(&1));
            assert_eq!(g.last(), Some(&max));
            for w in g.windows(2) {
                assert!(w[0] < w[1], "grid not strictly increasing at {w:?}");
            }
        }
        assert!(batch_grid(0).is_empty());
    }

    #[test]
    fn best_prefill_h100_llama70_meets_slo() {
        let p = EngineParams::paper_defaults();
        let best = best_prefill(&catalog::h100(), &models::llama3_70b(), &p).unwrap();
        assert!(best.ttft_s <= 1.0);
        assert!(best.tokens_per_s_per_sm > 0.0);
    }

    #[test]
    fn best_decode_h100_llama70_meets_slo() {
        let p = EngineParams::paper_defaults();
        let best = best_decode(&catalog::h100(), &models::llama3_70b(), &p).unwrap();
        assert!(best.tbt_s <= 0.050);
        assert!(best.batch >= 1);
    }

    #[test]
    fn lite_405b_requires_many_gpus() {
        let p = EngineParams::paper_defaults();
        let best = best_decode(&catalog::lite_base(), &models::llama3_405b(), &p).unwrap();
        assert!(best.gpus >= 22, "gpus = {}", best.gpus);
    }

    #[test]
    fn search_may_prefer_fewer_gpus_than_max() {
        // The paper notes the search can return fewer GPUs than the
        // cluster maximum; H100 decode of Llama3-70B is one such case.
        let p = EngineParams::paper_defaults();
        let best = best_decode(&catalog::h100(), &models::llama3_70b(), &p).unwrap();
        assert!(best.gpus <= 8);
    }

    #[test]
    fn infeasible_model_reports_does_not_fit() {
        let p = EngineParams::paper_defaults();
        let mut tiny = catalog::lite_base();
        tiny.max_gpus = 4;
        assert!(matches!(
            best_decode(&tiny, &models::llama3_405b(), &p),
            Err(RooflineError::DoesNotFit { .. })
        ));
    }
}

//! The stage-pricing engine: sharded work × GPU spec → time.

use crate::params::{EngineParams, OverlapMode};
use crate::Result;
use litegpu_net::collective::{collective_cost, CollectiveAlgorithm, CollectiveOp};
use litegpu_specs::GpuSpec;
use litegpu_workload::{ShardedPhase, ShardedStage, StageKind};

/// What bounds a stage or phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Bottleneck {
    /// Tensor-core throughput.
    Compute,
    /// HBM bandwidth.
    Memory,
    /// Interconnect (collectives).
    Network,
}

/// Priced execution of one stage on one GPU of the group.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTime {
    /// Stage identity.
    pub kind: StageKind,
    /// Tensor-core busy time, seconds.
    pub compute_s: f64,
    /// HBM transfer time, seconds.
    pub mem_s: f64,
    /// Collective time attached to this stage, seconds.
    pub net_s: f64,
    /// Stage wall-clock under the configured overlap mode, seconds.
    pub time_s: f64,
    /// Binding resource.
    pub bound: Bottleneck,
}

/// Priced execution of a full phase (all layers + finals).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTime {
    /// Per-layer stage timings.
    pub per_layer: Vec<StageTime>,
    /// Final-stage timings (LM head).
    pub finals: Vec<StageTime>,
    /// Layer count.
    pub layers: u32,
    /// Phase wall-clock, seconds.
    pub total_s: f64,
    /// Aggregate compute time, seconds (sum over layers).
    pub compute_s: f64,
    /// Aggregate memory time, seconds.
    pub mem_s: f64,
    /// Aggregate network time, seconds.
    pub net_s: f64,
    /// Phase-level binding resource (largest aggregate component).
    pub bound: Bottleneck,
}

/// Prices one sharded stage on `spec`, with `group` GPUs participating in
/// the attached collective, under an explicit overlap mode.
pub fn price_stage(
    spec: &GpuSpec,
    stage: &ShardedStage,
    group: u32,
    overlap: OverlapMode,
    params: &EngineParams,
) -> Result<StageTime> {
    let flops = spec.flops() * params.flops_efficiency;
    let mem_bw = spec.mem_bytes_per_s() * params.mem_efficiency;
    let compute_s = stage.per_gpu.flops / flops;
    let mem_s = stage.per_gpu.mem_bytes() / mem_bw;
    let net_s = if stage.all_reduce_bytes > 0.0 && group > 1 {
        let c = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Auto,
            group,
            stage.all_reduce_bytes,
            spec.net_bytes_per_s(),
            params.alpha_hop_s,
        )?;
        c.time_s + params.alpha_sw_s
    } else {
        0.0
    };
    let time_s = match overlap {
        OverlapMode::ComputeMem => compute_s.max(mem_s) + net_s,
        OverlapMode::Full => compute_s.max(mem_s).max(net_s),
        OverlapMode::None => compute_s + mem_s + net_s,
    };
    let bound = if net_s >= compute_s && net_s >= mem_s {
        Bottleneck::Network
    } else if mem_s >= compute_s {
        Bottleneck::Memory
    } else {
        Bottleneck::Compute
    };
    Ok(StageTime {
        kind: stage.per_gpu.kind,
        compute_s,
        mem_s,
        net_s,
        time_s,
        bound,
    })
}

/// Prices a full sharded phase on a homogeneous group of `spec` GPUs.
///
/// # Examples
///
/// ```
/// use litegpu_roofline::{engine, params::EngineParams};
/// use litegpu_specs::catalog;
/// use litegpu_workload::{models, GqaPolicy, Precision, TensorParallel};
/// use litegpu_workload::stage::PhaseWork;
///
/// let arch = models::llama3_70b();
/// let phase = PhaseWork::decode(&arch, Precision::Fp8, 16, 2000).unwrap();
/// let sharded = TensorParallel::new(4)
///     .unwrap()
///     .shard_with_policy(&arch, &phase, GqaPolicy::FullShard)
///     .unwrap();
/// let params = EngineParams::paper_defaults();
/// let t = engine::price_phase(&catalog::h100(), &sharded, params.decode_overlap, &params)
///     .unwrap();
/// assert!(t.total_s > 0.0 && t.total_s < 0.050);
/// ```
pub fn price_phase(
    spec: &GpuSpec,
    phase: &ShardedPhase,
    overlap: OverlapMode,
    params: &EngineParams,
) -> Result<PhaseTime> {
    params.validate()?;
    let mut per_layer = Vec::with_capacity(phase.per_layer.len());
    for s in &phase.per_layer {
        per_layer.push(price_stage(spec, s, phase.degree, overlap, params)?);
    }
    let mut finals = Vec::with_capacity(phase.finals.len());
    for s in &phase.finals {
        finals.push(price_stage(spec, s, phase.degree, overlap, params)?);
    }
    let layers = phase.layers as f64;
    let total_s = layers * per_layer.iter().map(|s| s.time_s).sum::<f64>()
        + finals.iter().map(|s| s.time_s).sum::<f64>();
    let compute_s = layers * per_layer.iter().map(|s| s.compute_s).sum::<f64>()
        + finals.iter().map(|s| s.compute_s).sum::<f64>();
    let mem_s = layers * per_layer.iter().map(|s| s.mem_s).sum::<f64>()
        + finals.iter().map(|s| s.mem_s).sum::<f64>();
    let net_s = layers * per_layer.iter().map(|s| s.net_s).sum::<f64>()
        + finals.iter().map(|s| s.net_s).sum::<f64>();
    let bound = if net_s >= compute_s && net_s >= mem_s {
        Bottleneck::Network
    } else if mem_s >= compute_s {
        Bottleneck::Memory
    } else {
        Bottleneck::Compute
    };
    Ok(PhaseTime {
        per_layer,
        finals,
        layers: phase.layers,
        total_s,
        compute_s,
        mem_s,
        net_s,
        bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use litegpu_workload::stage::PhaseWork;
    use litegpu_workload::{models, GqaPolicy, Precision, TensorParallel};
    use proptest::prelude::*;

    fn sharded_decode(
        batch: u32,
        tp: u32,
    ) -> (litegpu_workload::ModelArch, litegpu_workload::ShardedPhase) {
        let arch = models::llama3_70b();
        let phase = PhaseWork::decode(&arch, Precision::Fp8, batch, 2000).unwrap();
        let sh = TensorParallel::new(tp)
            .unwrap()
            .shard_with_policy(&arch, &phase, GqaPolicy::FullShard)
            .unwrap();
        (arch, sh)
    }

    #[test]
    fn decode_small_batch_is_memory_bound() {
        let (_, sh) = sharded_decode(4, 1);
        let params = EngineParams::paper_defaults();
        let t = price_phase(&catalog::h100(), &sh, params.decode_overlap, &params).unwrap();
        assert_eq!(t.bound, Bottleneck::Memory);
        // Weight-read bound: ~70 GB / 3.352 TB/s ~ 21 ms.
        assert!(t.total_s > 0.015 && t.total_s < 0.035, "t = {}", t.total_s);
    }

    #[test]
    fn prefill_large_batch_is_compute_bound() {
        let arch = models::llama3_70b();
        let phase = PhaseWork::prefill(&arch, Precision::Fp8, 4, 1500).unwrap();
        let sh = TensorParallel::new(8)
            .unwrap()
            .shard_with_policy(&arch, &phase, GqaPolicy::FullShard)
            .unwrap();
        let params = EngineParams::paper_defaults();
        let t = price_phase(&catalog::h100(), &sh, params.decode_overlap, &params).unwrap();
        assert_eq!(t.bound, Bottleneck::Compute);
    }

    #[test]
    fn single_gpu_has_no_network_time() {
        let (_, sh) = sharded_decode(8, 1);
        let params = EngineParams::paper_defaults();
        let t = price_phase(&catalog::h100(), &sh, params.decode_overlap, &params).unwrap();
        assert_eq!(t.net_s, 0.0);
    }

    #[test]
    fn overlap_modes_are_ordered() {
        let (_, sh) = sharded_decode(64, 8);
        let p = EngineParams::paper_defaults();
        let full = price_phase(&catalog::h100(), &sh, OverlapMode::Full, &p)
            .unwrap()
            .total_s;
        let cm = price_phase(&catalog::h100(), &sh, OverlapMode::ComputeMem, &p)
            .unwrap()
            .total_s;
        let none = price_phase(&catalog::h100(), &sh, OverlapMode::None, &p)
            .unwrap()
            .total_s;
        assert!(full <= cm && cm <= none, "{full} <= {cm} <= {none}");
    }

    #[test]
    fn lite_network_time_exceeds_h100s() {
        // Same logical work at the same TP degree: Lite's quarter network
        // bandwidth makes collectives slower.
        let (_, sh) = sharded_decode(64, 8);
        let p = EngineParams::paper_defaults();
        let h = price_phase(&catalog::h100(), &sh, p.decode_overlap, &p).unwrap();
        let l = price_phase(&catalog::lite_base(), &sh, p.decode_overlap, &p).unwrap();
        assert!(l.net_s > h.net_s);
    }

    #[test]
    fn mem_bw_variant_halves_memory_time() {
        let (_, sh) = sharded_decode(64, 8);
        let p = EngineParams::paper_defaults();
        let base = price_phase(&catalog::lite_base(), &sh, p.decode_overlap, &p).unwrap();
        let fat = price_phase(&catalog::lite_mem_bw(), &sh, p.decode_overlap, &p).unwrap();
        let ratio = base.mem_s / fat.mem_s;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn efficiency_factors_scale_times() {
        let (_, sh) = sharded_decode(16, 4);
        let mut p = EngineParams::paper_defaults();
        let base = price_phase(&catalog::h100(), &sh, p.decode_overlap, &p).unwrap();
        p.flops_efficiency = 0.5;
        p.mem_efficiency = 0.5;
        let slow = price_phase(&catalog::h100(), &sh, p.decode_overlap, &p).unwrap();
        assert!((slow.compute_s / base.compute_s - 2.0).abs() < 1e-9);
        assert!((slow.mem_s / base.mem_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_sm_memory_time_identical_h100_vs_lite() {
        // The pivotal identity: H100 and base Lite have the same per-SM
        // memory bandwidth, so per-SM-normalized memory-bound stage times
        // are identical. (Total mem time at same TP differs by 4x.)
        let h = catalog::h100();
        let l = catalog::lite_base();
        let h_bw_per_sm = h.mem_bytes_per_s() / h.sms as f64;
        let l_bw_per_sm = l.mem_bytes_per_s() / l.sms as f64;
        assert!((h_bw_per_sm / l_bw_per_sm - 1.0).abs() < 0.01);
    }

    proptest! {
        #[test]
        fn phase_time_at_least_each_component(batch in 1u32..256, tp in 1u32..32) {
            let (_, sh) = sharded_decode(batch, tp);
            let params = EngineParams::paper_defaults();
        let t = price_phase(&catalog::h100(), &sh, params.decode_overlap, &params).unwrap();
            prop_assert!(t.total_s >= t.compute_s - 1e-12);
            prop_assert!(t.total_s >= t.mem_s - 1e-12);
            prop_assert!(t.total_s >= t.net_s - 1e-12);
            prop_assert!(t.total_s <= t.compute_s + t.mem_s + t.net_s + 1e-12);
        }

        #[test]
        fn more_gpus_never_increase_compute_time(tp in 1u32..31) {
            let (_, a) = sharded_decode(32, tp);
            let (_, b) = sharded_decode(32, tp + 1);
            let p = EngineParams::paper_defaults();
            let ta = price_phase(&catalog::h100(), &a, p.decode_overlap, &p).unwrap();
            let tb = price_phase(&catalog::h100(), &b, p.decode_overlap, &p).unwrap();
            prop_assert!(tb.compute_s <= ta.compute_s + 1e-12);
        }
    }
}

//! Prefill-phase evaluation (Figure 3a).

use crate::capacity;
use crate::engine::{self, PhaseTime};
use crate::params::EngineParams;
use crate::{Result, RooflineError};
use litegpu_specs::GpuSpec;
use litegpu_workload::stage::PhaseWork;
use litegpu_workload::{ModelArch, TensorParallel};

/// A priced prefill configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrefillEval {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// GPUs in the tensor-parallel group.
    pub gpus: u32,
    /// Concurrent prompts in the batch.
    pub batch: u32,
    /// Time to first token for the batch, seconds.
    pub ttft_s: f64,
    /// Prompt tokens processed per second.
    pub tokens_per_s: f64,
    /// Throughput normalized by the SMs used — the paper's metric.
    pub tokens_per_s_per_sm: f64,
    /// Total SMs across the group.
    pub sms_used: u32,
    /// Full timing breakdown.
    pub time: PhaseTime,
}

impl PrefillEval {
    /// Whether this configuration meets the TTFT SLO it was priced under.
    pub fn meets_slo(&self, ttft_max_s: f64) -> bool {
        self.ttft_s <= ttft_max_s
    }
}

/// Prices prefill for an explicit `(gpus, batch)` configuration.
///
/// Returns [`RooflineError::DoesNotFit`] when weights plus the prompt KV
/// cache exceed the group's HBM.
pub fn evaluate(
    spec: &GpuSpec,
    arch: &ModelArch,
    gpus: u32,
    batch: u32,
    params: &EngineParams,
) -> Result<PrefillEval> {
    params.validate()?;
    spec.validate()?;
    let prompt = params.constraints.prompt_len;
    if capacity::max_batch(spec, arch, gpus, prompt, params) < batch {
        return Err(RooflineError::DoesNotFit {
            model: arch.name.clone(),
            gpu: spec.name.clone(),
            gpus,
        });
    }
    let phase = PhaseWork::prefill(arch, params.precision, batch, prompt)?;
    let sharded = TensorParallel::new(gpus)?.shard_with_policy(arch, &phase, params.gqa_policy)?;
    let time = engine::price_phase(spec, &sharded, params.prefill_overlap, params)?;
    let tokens = batch as f64 * prompt as f64;
    let tokens_per_s = tokens / time.total_s;
    let sms_used = gpus * spec.sms;
    Ok(PrefillEval {
        gpu: spec.name.clone(),
        model: arch.name.clone(),
        gpus,
        batch,
        ttft_s: time.total_s,
        tokens_per_s,
        tokens_per_s_per_sm: tokens_per_s / sms_used as f64,
        sms_used,
        time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use litegpu_workload::models;

    #[test]
    fn h100_single_gpu_prefill_llama70() {
        let p = EngineParams::paper_defaults();
        let e = evaluate(&catalog::h100(), &models::llama3_70b(), 1, 1, &p).unwrap();
        // One prompt: ~2*70e9*1500 FLOPs / 2e15 ~ 105 ms, plus attention.
        assert!(e.ttft_s > 0.08 && e.ttft_s < 0.25, "ttft = {}", e.ttft_s);
        assert!(e.meets_slo(1.0));
        assert_eq!(e.sms_used, 132);
    }

    #[test]
    fn capacity_violation_is_does_not_fit() {
        let p = EngineParams::paper_defaults();
        let r = evaluate(&catalog::lite_base(), &models::llama3_405b(), 8, 1, &p);
        assert!(matches!(r, Err(RooflineError::DoesNotFit { .. })));
    }

    #[test]
    fn ttft_scales_roughly_linearly_with_batch() {
        let p = EngineParams::paper_defaults();
        let e1 = evaluate(&catalog::h100(), &models::llama3_70b(), 4, 1, &p).unwrap();
        let e4 = evaluate(&catalog::h100(), &models::llama3_70b(), 4, 4, &p).unwrap();
        let ratio = e4.ttft_s / e1.ttft_s;
        assert!(ratio > 3.0 && ratio < 4.5, "ratio = {ratio}");
    }

    #[test]
    fn throughput_per_sm_comparable_across_gpu_counts_when_compute_bound() {
        // Prefill is compute-bound, so per-SM throughput should be within
        // ~2x across group sizes for H100 (network erodes it slowly).
        let p = EngineParams::paper_defaults();
        let e1 = evaluate(&catalog::h100(), &models::llama3_70b(), 1, 2, &p).unwrap();
        let e8 = evaluate(&catalog::h100(), &models::llama3_70b(), 8, 16, &p).unwrap();
        let ratio = e1.tokens_per_s_per_sm / e8.tokens_per_s_per_sm;
        assert!(ratio > 0.8 && ratio < 2.0, "ratio = {ratio}");
    }
}

//! Engine parameters: overlap semantics, network constants, SLOs.

use litegpu_workload::{GqaPolicy, Precision};

/// How compute, HBM traffic and network traffic combine within a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OverlapMode {
    /// Compute and memory overlap (roofline max); the collective attached
    /// to a stage is serialized after it. Collectives are data-dependent
    /// on the stage output (the all-reduce cannot start before the partial
    /// sums exist), so this is the default.
    ComputeMem,
    /// All three overlap: stage time = max(compute, mem, net). The paper's
    /// most optimistic reading of "compute, memory I/O, and network I/O
    /// can overlap within each stage", achievable with perfect
    /// micro-batch pipelining.
    Full,
    /// Nothing overlaps: stage time = compute + mem + net (pessimistic
    /// bound, useful as an ablation).
    None,
}

/// The §4 latency SLOs and workload shape (Splitwise-derived).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloConstraints {
    /// Time-to-first-token bound, seconds (paper: 1 s).
    pub ttft_max_s: f64,
    /// Time-between-tokens bound, seconds (paper: 50 ms).
    pub tbt_max_s: f64,
    /// Prompt length, tokens (paper: 1500, the production median for
    /// coding).
    pub prompt_len: u32,
    /// Decode context length the steady-state step is priced at
    /// (prompt + half of a typical generation).
    pub decode_context: u32,
}

impl Default for SloConstraints {
    fn default() -> Self {
        Self {
            ttft_max_s: 1.0,
            tbt_max_s: 0.050,
            prompt_len: 1500,
            decode_context: 2000,
        }
    }
}

/// All knobs of the roofline engine, with paper-faithful defaults.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineParams {
    /// Numeric precision (paper: FP8; Table 1's 2000 TFLOPS).
    pub precision: Precision,
    /// Overlap semantics for prefill. Default [`OverlapMode::Full`]:
    /// prefill batches split into micro-batches, so a layer's collective
    /// overlaps the next micro-batch's compute — the standard pipelined
    /// Megatron schedule, and the paper's "compute, memory I/O, and
    /// network I/O can overlap within each stage".
    pub prefill_overlap: OverlapMode,
    /// Overlap semantics for decode. Default [`OverlapMode::ComputeMem`]:
    /// a decode step's collectives sit on the token's critical path (the
    /// all-reduce needs the stage output), so they serialize.
    pub decode_overlap: OverlapMode,
    /// KV-cache sharding policy (paper: full sharding — see
    /// [`GqaPolicy::FullShard`]).
    pub gqa_policy: GqaPolicy,
    /// Fixed software overhead per collective, seconds (kernel launch +
    /// protocol).
    pub alpha_sw_s: f64,
    /// Per-hop link/switch latency inside a collective step, seconds.
    pub alpha_hop_s: f64,
    /// Fraction of HBM withheld from weights+KV (activations, fragmentation,
    /// runtime).
    pub hbm_reserve_frac: f64,
    /// Achievable fraction of peak FLOPS on dense GEMMs (MFU ceiling).
    pub flops_efficiency: f64,
    /// Achievable fraction of peak HBM bandwidth.
    pub mem_efficiency: f64,
    /// Latency constraints and workload shape.
    pub constraints: SloConstraints,
}

impl EngineParams {
    /// The defaults used to reproduce the paper's Figure 3.
    pub fn paper_defaults() -> Self {
        Self {
            precision: Precision::Fp8,
            prefill_overlap: OverlapMode::Full,
            decode_overlap: OverlapMode::ComputeMem,
            gqa_policy: GqaPolicy::FullShard,
            alpha_sw_s: 2.0e-6,
            alpha_hop_s: 0.5e-6,
            hbm_reserve_frac: 0.05,
            flops_efficiency: 1.0,
            mem_efficiency: 1.0,
            constraints: SloConstraints::default(),
        }
    }

    /// Validates the parameter ranges.
    pub fn validate(&self) -> crate::Result<()> {
        for (name, v, lo, hi) in [
            ("alpha_sw_s", self.alpha_sw_s, 0.0, 1.0),
            ("alpha_hop_s", self.alpha_hop_s, 0.0, 1.0),
            ("hbm_reserve_frac", self.hbm_reserve_frac, 0.0, 0.9),
            ("flops_efficiency", self.flops_efficiency, 0.01, 1.0),
            ("mem_efficiency", self.mem_efficiency, 0.01, 1.0),
            (
                "ttft_max_s",
                self.constraints.ttft_max_s,
                1e-6,
                f64::INFINITY,
            ),
            ("tbt_max_s", self.constraints.tbt_max_s, 1e-6, f64::INFINITY),
        ] {
            if !v.is_finite() && hi.is_finite() || v < lo || v > hi {
                return Err(crate::RooflineError::InvalidParameter { name, value: v });
            }
        }
        if self.constraints.prompt_len == 0 || self.constraints.decode_context == 0 {
            return Err(crate::RooflineError::InvalidParameter {
                name: "prompt_len/decode_context",
                value: 0.0,
            });
        }
        Ok(())
    }
}

impl Default for EngineParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section4() {
        let p = EngineParams::paper_defaults();
        assert_eq!(p.constraints.ttft_max_s, 1.0);
        assert_eq!(p.constraints.tbt_max_s, 0.050);
        assert_eq!(p.constraints.prompt_len, 1500);
        assert_eq!(p.precision, Precision::Fp8);
        assert_eq!(p.gqa_policy, GqaPolicy::FullShard);
        p.validate().unwrap();
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mut p = EngineParams::paper_defaults();
        p.hbm_reserve_frac = 0.95;
        assert!(p.validate().is_err());
        let mut p = EngineParams::paper_defaults();
        p.flops_efficiency = 0.0;
        assert!(p.validate().is_err());
        let mut p = EngineParams::paper_defaults();
        p.constraints.prompt_len = 0;
        assert!(p.validate().is_err());
        let mut p = EngineParams::paper_defaults();
        p.alpha_sw_s = -1.0;
        assert!(p.validate().is_err());
    }
}

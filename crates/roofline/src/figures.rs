//! Figure 3 data generation: the paper's headline results as structured
//! data.

use crate::params::EngineParams;
use crate::{metrics, search, Result};
use litegpu_specs::{catalog, GpuSpec};
use litegpu_workload::{models, ModelArch};

/// Which phase a figure covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Phase {
    /// Prompt prefill (Figure 3a).
    Prefill,
    /// Token-by-token decode (Figure 3b).
    Decode,
}

/// One bar of Figure 3: a (model, GPU type) best configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FigurePoint {
    /// Model name.
    pub model: String,
    /// GPU configuration name.
    pub gpu: String,
    /// Best tokens/s/SM found by the search.
    pub tokens_per_s_per_sm: f64,
    /// Value normalized to the H100 bar of the same model.
    pub normalized: f64,
    /// GPUs used by the best configuration.
    pub gpus: u32,
    /// Batch size of the best configuration.
    pub batch: u32,
    /// Latency of the best configuration (TTFT or TBT), seconds.
    pub latency_s: f64,
}

/// A complete Figure 3 panel.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Figure3 {
    /// Phase covered.
    pub phase: Phase,
    /// Model names in plot order.
    pub models: Vec<String>,
    /// GPU configuration names in legend order.
    pub gpu_types: Vec<String>,
    /// All bars, models-major order.
    pub points: Vec<FigurePoint>,
}

impl Figure3 {
    /// Looks up a bar by model and GPU type.
    pub fn point(&self, model: &str, gpu: &str) -> Option<&FigurePoint> {
        self.points
            .iter()
            .find(|p| p.model == model && p.gpu == gpu)
    }

    /// The normalized series for one model, in GPU-type order.
    pub fn normalized_series(&self, model: &str) -> Vec<f64> {
        self.gpu_types
            .iter()
            .filter_map(|g| self.point(model, g).map(|p| p.normalized))
            .collect()
    }
}

/// Builds a Figure-3-style panel for an arbitrary model list and GPU-type
/// list (the paper panels are [`figure3a`]/[`figure3b`]; ablations use
/// this directly, e.g. when a model does not fit at a given precision).
pub fn custom_figure(
    phase: Phase,
    gpu_types: &[GpuSpec],
    archs: &[ModelArch],
    params: &EngineParams,
) -> Result<Figure3> {
    let mut points = Vec::new();
    for arch in archs {
        let mut series = Vec::new();
        let mut raw = Vec::new();
        for spec in gpu_types {
            let (tps_sm, gpus, batch, latency) = match phase {
                Phase::Prefill => {
                    let e = search::best_prefill(spec, arch, params)?;
                    (e.tokens_per_s_per_sm, e.gpus, e.batch, e.ttft_s)
                }
                Phase::Decode => {
                    let e = search::best_decode(spec, arch, params)?;
                    (e.tokens_per_s_per_sm, e.gpus, e.batch, e.tbt_s)
                }
            };
            series.push((spec.name.clone(), tps_sm));
            raw.push((spec.name.clone(), tps_sm, gpus, batch, latency));
        }
        let normalized = metrics::normalize_to(&series, "H100").ok_or_else(|| {
            crate::RooflineError::NoFeasibleConfig {
                model: arch.name.clone(),
                gpu: "H100".into(),
            }
        })?;
        for ((gpu, tps_sm, gpus, batch, latency), (_, norm)) in raw.into_iter().zip(normalized) {
            points.push(FigurePoint {
                model: arch.name.clone(),
                gpu,
                tokens_per_s_per_sm: tps_sm,
                normalized: norm,
                gpus,
                batch,
                latency_s: latency,
            });
        }
    }
    Ok(Figure3 {
        phase,
        models: archs.iter().map(|a| a.name.clone()).collect(),
        gpu_types: gpu_types.iter().map(|s| s.name.clone()).collect(),
        points,
    })
}

/// Figure 3a: prefill, H100 vs {Lite, Lite+NetBW, Lite+NetBW+FLOPS} on the
/// three paper models.
pub fn figure3a(params: &EngineParams) -> Result<Figure3> {
    custom_figure(
        Phase::Prefill,
        &catalog::fig3a_gpu_types(),
        &models::figure3_models(),
        params,
    )
}

/// Figure 3b: decode, H100 vs {Lite, Lite+MemBW, Lite+MemBW+NetBW} on the
/// three paper models.
pub fn figure3b(params: &EngineParams) -> Result<Figure3> {
    custom_figure(
        Phase::Decode,
        &catalog::fig3b_gpu_types(),
        &models::figure3_models(),
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure-level shape assertions live in the workspace integration
    // tests (tests/figure3_shapes.rs); these are plumbing tests.

    #[test]
    fn figure3a_has_all_bars() {
        let f = figure3a(&EngineParams::paper_defaults()).unwrap();
        assert_eq!(f.points.len(), 12);
        assert_eq!(f.models.len(), 3);
        assert_eq!(f.gpu_types.len(), 4);
        for m in &f.models {
            let series = f.normalized_series(m);
            assert_eq!(series.len(), 4);
            assert!((series[0] - 1.0).abs() < 1e-12, "H100 normalizes to 1");
        }
    }

    #[test]
    fn figure3b_has_all_bars() {
        let f = figure3b(&EngineParams::paper_defaults()).unwrap();
        assert_eq!(f.points.len(), 12);
        for p in &f.points {
            assert!(p.normalized > 0.0);
            assert!(p.latency_s <= 0.050 + 1e-9);
        }
    }
}

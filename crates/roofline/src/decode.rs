//! Decode-phase evaluation (Figure 3b).

use crate::capacity;
use crate::engine::{self, PhaseTime};
use crate::params::EngineParams;
use crate::{Result, RooflineError};
use litegpu_specs::GpuSpec;
use litegpu_workload::stage::PhaseWork;
use litegpu_workload::{ModelArch, TensorParallel};

/// A priced decode configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DecodeEval {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// GPUs in the tensor-parallel group.
    pub gpus: u32,
    /// Concurrent sequences in the batch.
    pub batch: u32,
    /// Time between tokens (one decode step), seconds.
    pub tbt_s: f64,
    /// Generated tokens per second (batch / TBT).
    pub tokens_per_s: f64,
    /// Throughput normalized by the SMs used — the paper's metric.
    pub tokens_per_s_per_sm: f64,
    /// Total SMs across the group.
    pub sms_used: u32,
    /// Full timing breakdown.
    pub time: PhaseTime,
}

impl DecodeEval {
    /// Whether this configuration meets the TBT SLO it was priced under.
    pub fn meets_slo(&self, tbt_max_s: f64) -> bool {
        self.tbt_s <= tbt_max_s
    }
}

/// Prices one decode step for an explicit `(gpus, batch)` configuration at
/// the steady-state context length from
/// [`crate::params::SloConstraints::decode_context`].
pub fn evaluate(
    spec: &GpuSpec,
    arch: &ModelArch,
    gpus: u32,
    batch: u32,
    params: &EngineParams,
) -> Result<DecodeEval> {
    params.validate()?;
    spec.validate()?;
    let context = params.constraints.decode_context;
    if capacity::max_batch(spec, arch, gpus, context, params) < batch {
        return Err(RooflineError::DoesNotFit {
            model: arch.name.clone(),
            gpu: spec.name.clone(),
            gpus,
        });
    }
    let phase = PhaseWork::decode(arch, params.precision, batch, context)?;
    let sharded = TensorParallel::new(gpus)?.shard_with_policy(arch, &phase, params.gqa_policy)?;
    let time = engine::price_phase(spec, &sharded, params.decode_overlap, params)?;
    let tokens_per_s = batch as f64 / time.total_s;
    let sms_used = gpus * spec.sms;
    Ok(DecodeEval {
        gpu: spec.name.clone(),
        model: arch.name.clone(),
        gpus,
        batch,
        tbt_s: time.total_s,
        tokens_per_s,
        tokens_per_s_per_sm: tokens_per_s / sms_used as f64,
        sms_used,
        time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Bottleneck;
    use litegpu_specs::catalog;
    use litegpu_workload::models;

    #[test]
    fn h100_decode_llama70_meets_tbt() {
        let p = EngineParams::paper_defaults();
        let e = evaluate(&catalog::h100(), &models::llama3_70b(), 2, 64, &p).unwrap();
        assert!(e.meets_slo(0.050), "tbt = {}", e.tbt_s);
        assert!(e.tokens_per_s > 1000.0);
    }

    #[test]
    fn decode_memory_bound_at_moderate_batch() {
        let p = EngineParams::paper_defaults();
        let e = evaluate(&catalog::h100(), &models::gpt3_175b(), 8, 32, &p).unwrap();
        assert_eq!(e.time.bound, Bottleneck::Memory);
    }

    #[test]
    fn capacity_violation_rejected() {
        let p = EngineParams::paper_defaults();
        // Llama3-70B at batch 10_000 cannot fit on 8 H100s at 2000 ctx.
        let r = evaluate(&catalog::h100(), &models::llama3_70b(), 8, 10_000, &p);
        assert!(matches!(r, Err(RooflineError::DoesNotFit { .. })));
    }

    #[test]
    fn mem_bw_variant_improves_decode() {
        let p = EngineParams::paper_defaults();
        let base = evaluate(&catalog::lite_base(), &models::gpt3_175b(), 32, 64, &p).unwrap();
        let fat = evaluate(&catalog::lite_mem_bw(), &models::gpt3_175b(), 32, 64, &p).unwrap();
        assert!(fat.tbt_s < base.tbt_s);
        assert!(fat.tokens_per_s_per_sm > base.tokens_per_s_per_sm);
    }

    #[test]
    fn tbt_grows_with_batch() {
        let p = EngineParams::paper_defaults();
        let small = evaluate(&catalog::h100(), &models::llama3_70b(), 4, 8, &p).unwrap();
        let large = evaluate(&catalog::h100(), &models::llama3_70b(), 4, 256, &p).unwrap();
        assert!(large.tbt_s > small.tbt_s);
        // But throughput grows too (weight reads amortize).
        assert!(large.tokens_per_s > small.tokens_per_s);
    }
}

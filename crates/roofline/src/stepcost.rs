//! Precomputed step-cost tables: the roofline model, flattened for hot
//! loops.
//!
//! Serving simulators call "how long is one prefill/decode step at batch
//! `b`?" millions of times. Evaluating the full roofline pipeline
//! ([`crate::prefill::evaluate`] / [`crate::decode::evaluate`]) on every
//! call would dominate the simulation, so a [`StepCostTable`] prices every
//! feasible batch size once up front and quantizes the results to integer
//! microseconds. Lookups are then a bounds-clamp plus an array index —
//! no roofline evaluation, no allocation, no floating point.
//!
//! Batch grids are dense up to [`StepCostTable::MAX_DENSE`] entries;
//! larger capacity ranges fall back to a geometric grid and round the
//! queried batch *up* to the next grid point, which keeps the
//! approximation conservative (step times grow with batch).

use crate::params::EngineParams;
use crate::{capacity, decode, prefill, Result, RooflineError};
use litegpu_specs::GpuSpec;
use litegpu_workload::ModelArch;

/// Precomputed, quantized step costs for one instance configuration
/// (GPU type × tensor-parallel group size × model).
#[derive(Debug, Clone, PartialEq)]
pub struct StepCostTable {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// GPUs in the tensor-parallel group.
    pub gpus: u32,
    /// Largest decode batch that fits (KV at the steady-state context).
    pub max_batch: u32,
    /// Largest prefill batch that fits (KV at the prompt length).
    pub max_prefill_batch: u32,
    /// Sampled batch sizes, ascending; last entry is `max_batch`.
    batches: Vec<u32>,
    /// Prefill time per sampled batch, microseconds (clamped to the
    /// prefill capacity).
    prefill_us: Vec<u64>,
    /// Decode-step time per sampled batch, microseconds.
    decode_us: Vec<u64>,
}

impl StepCostTable {
    /// Largest capacity for which the grid stays dense (one entry per
    /// batch size).
    pub const MAX_DENSE: u32 = 1024;

    /// Prices every feasible batch once and builds the table.
    ///
    /// Fails with [`RooflineError::DoesNotFit`] when the model does not
    /// fit on the group at batch 1.
    pub fn build(
        spec: &GpuSpec,
        arch: &ModelArch,
        gpus: u32,
        params: &EngineParams,
    ) -> Result<Self> {
        params.validate()?;
        let max_batch =
            capacity::max_batch(spec, arch, gpus, params.constraints.decode_context, params);
        if max_batch == 0 {
            return Err(RooflineError::DoesNotFit {
                model: arch.name.clone(),
                gpu: spec.name.clone(),
                gpus,
            });
        }
        let max_prefill_batch =
            capacity::max_batch(spec, arch, gpus, params.constraints.prompt_len, params).max(1);

        let batches = Self::grid(max_batch);
        let mut prefill_us = Vec::with_capacity(batches.len());
        let mut decode_us = Vec::with_capacity(batches.len());
        for &b in &batches {
            let pb = b.min(max_prefill_batch);
            let p = prefill::evaluate(spec, arch, gpus, pb, params)?;
            prefill_us.push(quantize_us(p.ttft_s));
            let d = decode::evaluate(spec, arch, gpus, b, params)?;
            decode_us.push(quantize_us(d.tbt_s));
        }
        Ok(Self {
            gpu: spec.name.clone(),
            model: arch.name.clone(),
            gpus,
            max_batch,
            max_prefill_batch,
            batches,
            prefill_us,
            decode_us,
        })
    }

    /// Dense grid up to [`Self::MAX_DENSE`]; geometric (ratio ~1.05)
    /// above it, always ending exactly at `max_batch`.
    fn grid(max_batch: u32) -> Vec<u32> {
        if max_batch <= Self::MAX_DENSE {
            return (1..=max_batch).collect();
        }
        let mut grid: Vec<u32> = (1..=Self::MAX_DENSE / 2).collect();
        let mut b = (Self::MAX_DENSE / 2) as f64;
        while (b as u32) < max_batch {
            b *= 1.05;
            grid.push((b as u32).min(max_batch));
        }
        grid.dedup();
        grid
    }

    /// Index of the grid point used for `batch` (clamped, rounded up).
    fn index(&self, batch: u32) -> usize {
        let b = batch.clamp(1, self.max_batch);
        if self.batches.len() as u32 == self.max_batch {
            (b - 1) as usize // Dense grid: direct index.
        } else {
            self.batches.partition_point(|&g| g < b)
        }
    }

    /// Time to prefill a batch of prompts, microseconds (≥ 1).
    ///
    /// The batch is clamped to `[1, max_prefill_batch]` — callers that
    /// admit by decode capacity still get a valid prefill price.
    pub fn prefill_us(&self, batch: u32) -> u64 {
        self.prefill_us[self.index(batch.min(self.max_prefill_batch))].max(1)
    }

    /// Time for one decode step over `batch` running sequences,
    /// microseconds (≥ 1).
    pub fn decode_step_us(&self, batch: u32) -> u64 {
        self.decode_us[self.index(batch)].max(1)
    }

    /// Generated tokens per second at `batch` (batch / step time).
    pub fn decode_tokens_per_s(&self, batch: u32) -> f64 {
        let b = batch.clamp(1, self.max_batch) as f64;
        b * 1e6 / self.decode_step_us(batch) as f64
    }

    /// Number of sampled batch sizes.
    pub fn grid_len(&self) -> usize {
        self.batches.len()
    }
}

/// Seconds → integer microseconds, rounding half up, floor 1 µs.
fn quantize_us(s: f64) -> u64 {
    (s.max(0.0) * 1e6).round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use litegpu_workload::models;

    fn table() -> StepCostTable {
        StepCostTable::build(
            &catalog::h100(),
            &models::llama3_70b(),
            2,
            &EngineParams::paper_defaults(),
        )
        .unwrap()
    }

    #[test]
    fn matches_direct_roofline_evaluation() {
        let t = table();
        let params = EngineParams::paper_defaults();
        for b in [1u32, 2, 7, 32, t.max_batch] {
            let d =
                decode::evaluate(&catalog::h100(), &models::llama3_70b(), 2, b, &params).unwrap();
            assert_eq!(
                t.decode_step_us(b),
                quantize_us(d.tbt_s).max(1),
                "batch {b}"
            );
        }
        let pb = 4.min(t.max_prefill_batch);
        let p = prefill::evaluate(&catalog::h100(), &models::llama3_70b(), 2, pb, &params).unwrap();
        assert_eq!(t.prefill_us(pb), quantize_us(p.ttft_s).max(1));
    }

    #[test]
    fn step_times_monotone_in_batch() {
        let t = table();
        let mut last = 0;
        for b in 1..=t.max_batch {
            let us = t.decode_step_us(b);
            assert!(us >= last, "batch {b}: {us} < {last}");
            last = us;
        }
    }

    #[test]
    fn batches_clamp_to_capacity() {
        let t = table();
        assert_eq!(
            t.decode_step_us(t.max_batch),
            t.decode_step_us(t.max_batch + 999)
        );
        assert_eq!(t.prefill_us(0), t.prefill_us(1));
        assert_eq!(
            t.prefill_us(t.max_prefill_batch),
            t.prefill_us(t.max_prefill_batch + 999)
        );
    }

    #[test]
    fn does_not_fit_is_reported() {
        let r = StepCostTable::build(
            &catalog::lite_base(),
            &models::llama3_70b(),
            2,
            &EngineParams::paper_defaults(),
        );
        assert!(matches!(r, Err(RooflineError::DoesNotFit { .. })));
    }

    #[test]
    fn sparse_grid_rounds_up_conservatively() {
        let grid = StepCostTable::grid(5000);
        assert!(grid.len() < 5000);
        assert_eq!(*grid.last().unwrap(), 5000);
        // Strictly ascending.
        for w in grid.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn tokens_per_s_grows_with_batch() {
        let t = table();
        assert!(t.decode_tokens_per_s(32) > t.decode_tokens_per_s(1));
    }
}

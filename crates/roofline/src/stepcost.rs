//! Precomputed step-cost tables: the roofline model, flattened for hot
//! loops.
//!
//! Serving simulators call "how long is one prefill/decode step at batch
//! `b`?" millions of times. Evaluating the full roofline pipeline
//! ([`crate::prefill::evaluate`] / [`crate::decode::evaluate`]) on every
//! call would dominate the simulation, so a [`StepCostTable`] prices every
//! feasible batch size once up front and quantizes the results to integer
//! microseconds. Lookups are then a bounds-clamp plus an array index —
//! no roofline evaluation, no allocation, no floating point.
//!
//! Batch grids are dense up to [`StepCostTable::MAX_DENSE`] entries;
//! larger capacity ranges fall back to a geometric grid and round the
//! queried batch *up* to the next grid point, which keeps the
//! approximation conservative (step times grow with batch).
//!
//! Tables can also carry a **clock dimension**
//! ([`StepCostTable::build_with_clocks`]): a small ascending grid of DVFS
//! operating points ending at the nominal clock. Each point re-prices
//! every batch with tensor-core throughput scaled by the clock factor
//! while HBM bandwidth and network time stay put — the roofline
//! compute/bandwidth split is what decides how much a down-clock actually
//! costs. Compute-bound prefill inflates ~1/clock; memory-bound decode
//! barely moves, which is exactly why serving-time DVFS is cheap where it
//! matters (and why the energy-per-token win is real: dynamic power falls
//! cubically with clock while memory-bound step times hold).

use crate::params::EngineParams;
use crate::{capacity, decode, prefill, Result, RooflineError};
use litegpu_specs::GpuSpec;
use litegpu_workload::ModelArch;

/// Precomputed, quantized step costs for one instance configuration
/// (GPU type × tensor-parallel group size × model), optionally across a
/// grid of DVFS operating points.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCostTable {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// GPUs in the tensor-parallel group.
    pub gpus: u32,
    /// Largest decode batch that fits (KV at the steady-state context).
    pub max_batch: u32,
    /// Largest prefill batch that fits (KV at the prompt length).
    pub max_prefill_batch: u32,
    /// Clock factors priced, ascending; last entry is the nominal 1.0.
    clocks: Vec<f64>,
    /// Sampled batch sizes, ascending; last entry is `max_batch`.
    batches: Vec<u32>,
    /// Prefill time per clock point per sampled batch, microseconds
    /// (clamped to the prefill capacity), indexed `[clock][batch]`.
    prefill_us: Vec<Vec<u64>>,
    /// Decode-step time per clock point per sampled batch, microseconds,
    /// indexed `[clock][batch]`.
    decode_us: Vec<Vec<u64>>,
}

impl StepCostTable {
    /// Largest capacity for which the grid stays dense (one entry per
    /// batch size).
    pub const MAX_DENSE: u32 = 1024;

    /// Prices every feasible batch once at the nominal clock and builds
    /// the table.
    ///
    /// Fails with [`RooflineError::DoesNotFit`] when the model does not
    /// fit on the group at batch 1.
    pub fn build(
        spec: &GpuSpec,
        arch: &ModelArch,
        gpus: u32,
        params: &EngineParams,
    ) -> Result<Self> {
        Self::build_with_clocks(spec, arch, gpus, params, &[1.0])
    }

    /// Prices every feasible batch at every clock factor in `clocks`.
    ///
    /// `clocks` must be non-empty, strictly ascending, within `(0, 1]`,
    /// and end exactly at the nominal `1.0` (so nominal lookups are the
    /// last row). At clock `c` the tensor-core throughput scales by `c`
    /// (via the engine's `flops_efficiency`) while memory and network
    /// time are unchanged — the roofline split decides the inflation.
    /// HBM capacity is clock-independent, so the batch grid and the
    /// `max_batch`/`max_prefill_batch` limits are shared by every point.
    pub fn build_with_clocks(
        spec: &GpuSpec,
        arch: &ModelArch,
        gpus: u32,
        params: &EngineParams,
        clocks: &[f64],
    ) -> Result<Self> {
        params.validate()?;
        if clocks.is_empty() || *clocks.last().expect("non-empty") != 1.0 {
            return Err(RooflineError::InvalidParameter {
                name: "clocks (must end at the nominal 1.0)",
                value: clocks.last().copied().unwrap_or(f64::NAN),
            });
        }
        for (i, &c) in clocks.iter().enumerate() {
            let ascending = i == 0 || clocks[i - 1] < c;
            if !(c.is_finite() && c > 0.0 && c <= 1.0 && ascending) {
                return Err(RooflineError::InvalidParameter {
                    name: "clocks (strictly ascending within (0, 1])",
                    value: c,
                });
            }
        }
        let max_batch =
            capacity::max_batch(spec, arch, gpus, params.constraints.decode_context, params);
        if max_batch == 0 {
            return Err(RooflineError::DoesNotFit {
                model: arch.name.clone(),
                gpu: spec.name.clone(),
                gpus,
            });
        }
        let max_prefill_batch =
            capacity::max_batch(spec, arch, gpus, params.constraints.prompt_len, params).max(1);

        let batches = Self::grid(max_batch);
        let mut prefill_us = Vec::with_capacity(clocks.len());
        let mut decode_us = Vec::with_capacity(clocks.len());
        for &clock in clocks {
            // Down-clocking scales tensor-core throughput only; the
            // existing flops-efficiency knob composes multiplicatively,
            // so each point reuses the whole evaluation pipeline.
            let mut p = *params;
            p.flops_efficiency = params.flops_efficiency * clock;
            let mut prefill_row = Vec::with_capacity(batches.len());
            let mut decode_row = Vec::with_capacity(batches.len());
            for &b in &batches {
                let pb = b.min(max_prefill_batch);
                let pe = prefill::evaluate(spec, arch, gpus, pb, &p)?;
                prefill_row.push(quantize_us(pe.ttft_s));
                let d = decode::evaluate(spec, arch, gpus, b, &p)?;
                decode_row.push(quantize_us(d.tbt_s));
            }
            prefill_us.push(prefill_row);
            decode_us.push(decode_row);
        }
        Ok(Self {
            gpu: spec.name.clone(),
            model: arch.name.clone(),
            gpus,
            max_batch,
            max_prefill_batch,
            clocks: clocks.to_vec(),
            batches,
            prefill_us,
            decode_us,
        })
    }

    /// Dense grid up to [`Self::MAX_DENSE`]; geometric (ratio ~1.05)
    /// above it, always ending exactly at `max_batch`.
    fn grid(max_batch: u32) -> Vec<u32> {
        if max_batch <= Self::MAX_DENSE {
            return (1..=max_batch).collect();
        }
        let mut grid: Vec<u32> = (1..=Self::MAX_DENSE / 2).collect();
        let mut b = (Self::MAX_DENSE / 2) as f64;
        while (b as u32) < max_batch {
            b *= 1.05;
            grid.push((b as u32).min(max_batch));
        }
        grid.dedup();
        grid
    }

    /// Index of the grid point used for `batch` (clamped, rounded up).
    fn index(&self, batch: u32) -> usize {
        let b = batch.clamp(1, self.max_batch);
        if self.batches.len() as u32 == self.max_batch {
            (b - 1) as usize // Dense grid: direct index.
        } else {
            self.batches.partition_point(|&g| g < b)
        }
    }

    /// The priced clock factors, ascending; the last entry is 1.0.
    pub fn clock_points(&self) -> &[f64] {
        &self.clocks
    }

    /// Number of priced clock points (1 for a nominal-only table).
    pub fn num_clocks(&self) -> usize {
        self.clocks.len()
    }

    /// Index of the nominal (1.0) clock point — always the last row.
    pub fn nominal_clock_idx(&self) -> usize {
        self.clocks.len() - 1
    }

    /// Time to prefill a batch of prompts at clock point `clock_idx`,
    /// microseconds (≥ 1). `clock_idx` is clamped to the grid.
    pub fn prefill_us_at(&self, clock_idx: usize, batch: u32) -> u64 {
        let ci = clock_idx.min(self.nominal_clock_idx());
        self.prefill_us[ci][self.index(batch.min(self.max_prefill_batch))].max(1)
    }

    /// Time for one decode step at clock point `clock_idx`, microseconds
    /// (≥ 1). `clock_idx` is clamped to the grid.
    pub fn decode_step_us_at(&self, clock_idx: usize, batch: u32) -> u64 {
        let ci = clock_idx.min(self.nominal_clock_idx());
        self.decode_us[ci][self.index(batch)].max(1)
    }

    /// Time to prefill a batch of prompts at the nominal clock,
    /// microseconds (≥ 1).
    ///
    /// The batch is clamped to `[1, max_prefill_batch]` — callers that
    /// admit by decode capacity still get a valid prefill price.
    pub fn prefill_us(&self, batch: u32) -> u64 {
        self.prefill_us_at(self.nominal_clock_idx(), batch)
    }

    /// Time for one decode step over `batch` running sequences at the
    /// nominal clock, microseconds (≥ 1).
    pub fn decode_step_us(&self, batch: u32) -> u64 {
        self.decode_step_us_at(self.nominal_clock_idx(), batch)
    }

    /// Generated tokens per second at `batch` (batch / step time).
    pub fn decode_tokens_per_s(&self, batch: u32) -> f64 {
        let b = batch.clamp(1, self.max_batch) as f64;
        b * 1e6 / self.decode_step_us(batch) as f64
    }

    /// Number of sampled batch sizes.
    pub fn grid_len(&self) -> usize {
        self.batches.len()
    }
}

/// Seconds → integer microseconds, rounding half up, floor 1 µs.
fn quantize_us(s: f64) -> u64 {
    (s.max(0.0) * 1e6).round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use litegpu_specs::power::PowerModel;
    use litegpu_workload::models;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn table() -> StepCostTable {
        StepCostTable::build(
            &catalog::h100(),
            &models::llama3_70b(),
            2,
            &EngineParams::paper_defaults(),
        )
        .unwrap()
    }

    /// A clocked table shared across tests/property cases (building one
    /// prices the full batch × clock product).
    fn clocked() -> &'static StepCostTable {
        static TABLE: OnceLock<StepCostTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            StepCostTable::build_with_clocks(
                &catalog::h100(),
                &models::llama3_70b(),
                2,
                &EngineParams::paper_defaults(),
                &[0.75, 0.8, 0.85, 0.9, 0.95, 1.0],
            )
            .unwrap()
        })
    }

    #[test]
    fn matches_direct_roofline_evaluation() {
        let t = table();
        let params = EngineParams::paper_defaults();
        for b in [1u32, 2, 7, 32, t.max_batch] {
            let d =
                decode::evaluate(&catalog::h100(), &models::llama3_70b(), 2, b, &params).unwrap();
            assert_eq!(
                t.decode_step_us(b),
                quantize_us(d.tbt_s).max(1),
                "batch {b}"
            );
        }
        let pb = 4.min(t.max_prefill_batch);
        let p = prefill::evaluate(&catalog::h100(), &models::llama3_70b(), 2, pb, &params).unwrap();
        assert_eq!(t.prefill_us(pb), quantize_us(p.ttft_s).max(1));
    }

    #[test]
    fn step_times_monotone_in_batch() {
        let t = table();
        let mut last = 0;
        for b in 1..=t.max_batch {
            let us = t.decode_step_us(b);
            assert!(us >= last, "batch {b}: {us} < {last}");
            last = us;
        }
    }

    #[test]
    fn batches_clamp_to_capacity() {
        let t = table();
        assert_eq!(
            t.decode_step_us(t.max_batch),
            t.decode_step_us(t.max_batch + 999)
        );
        assert_eq!(t.prefill_us(0), t.prefill_us(1));
        assert_eq!(
            t.prefill_us(t.max_prefill_batch),
            t.prefill_us(t.max_prefill_batch + 999)
        );
    }

    #[test]
    fn does_not_fit_is_reported() {
        let r = StepCostTable::build(
            &catalog::lite_base(),
            &models::llama3_70b(),
            2,
            &EngineParams::paper_defaults(),
        );
        assert!(matches!(r, Err(RooflineError::DoesNotFit { .. })));
    }

    #[test]
    fn sparse_grid_rounds_up_conservatively() {
        let grid = StepCostTable::grid(5000);
        assert!(grid.len() < 5000);
        assert_eq!(*grid.last().unwrap(), 5000);
        // Strictly ascending.
        for w in grid.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn tokens_per_s_grows_with_batch() {
        let t = table();
        assert!(t.decode_tokens_per_s(32) > t.decode_tokens_per_s(1));
    }

    #[test]
    fn default_build_is_nominal_only() {
        let t = table();
        assert_eq!(t.clock_points(), &[1.0]);
        assert_eq!(t.num_clocks(), 1);
        assert_eq!(t.nominal_clock_idx(), 0);
        assert_eq!(t.decode_step_us_at(0, 8), t.decode_step_us(8));
        // Out-of-range clock indices clamp to nominal.
        assert_eq!(t.decode_step_us_at(99, 8), t.decode_step_us(8));
    }

    #[test]
    fn clocked_nominal_row_matches_plain_build() {
        let t = table();
        let c = clocked();
        let nom = c.nominal_clock_idx();
        assert_eq!(c.max_batch, t.max_batch);
        for b in [1u32, 4, 32, t.max_batch] {
            assert_eq!(c.decode_step_us_at(nom, b), t.decode_step_us(b), "b={b}");
            assert_eq!(c.prefill_us_at(nom, b), t.prefill_us(b), "b={b}");
        }
    }

    #[test]
    fn prefill_inflates_more_than_decode_when_down_clocked() {
        // The roofline split at work: prefill is compute-bound, so a 25%
        // down-clock inflates it nearly 1/0.75; decode at moderate batch
        // is memory-bound, so it barely moves.
        let c = clocked();
        let (lo, nom) = (0, c.nominal_clock_idx());
        let p_ratio = c.prefill_us_at(lo, 4) as f64 / c.prefill_us_at(nom, 4) as f64;
        let d_ratio = c.decode_step_us_at(lo, 32) as f64 / c.decode_step_us_at(nom, 32) as f64;
        assert!(p_ratio > 1.15, "prefill ratio {p_ratio}");
        assert!(d_ratio < p_ratio, "decode {d_ratio} vs prefill {p_ratio}");
        assert!(d_ratio < 1.10, "decode at batch 32 is memory-bound");
    }

    #[test]
    fn invalid_clock_grids_rejected() {
        let build = |clocks: &[f64]| {
            StepCostTable::build_with_clocks(
                &catalog::h100(),
                &models::llama3_70b(),
                2,
                &EngineParams::paper_defaults(),
                clocks,
            )
        };
        for bad in [
            &[][..],
            &[0.75, 0.9][..],       // Does not end at nominal.
            &[0.9, 0.75, 1.0][..],  // Not ascending.
            &[0.75, 0.75, 1.0][..], // Not strictly ascending.
            &[0.0, 1.0][..],        // Zero clock.
            &[-0.5, 1.0][..],       // Negative clock.
            &[f64::NAN, 1.0][..],   // Non-finite clock.
        ] {
            assert!(
                matches!(build(bad), Err(RooflineError::InvalidParameter { .. })),
                "{bad:?} must be rejected"
            );
        }
        build(&[1.0]).unwrap();
        build(&[0.5, 1.0]).unwrap();
    }

    proptest! {
        /// Step times are monotone non-increasing in clock: a faster
        /// clock never makes any step slower, for either phase.
        #[test]
        fn step_times_monotone_in_clock(batch in 1u32..256) {
            let c = clocked();
            for ci in 0..c.num_clocks() - 1 {
                prop_assert!(
                    c.decode_step_us_at(ci, batch) >= c.decode_step_us_at(ci + 1, batch),
                    "decode ci={ci} b={batch}"
                );
                prop_assert!(
                    c.prefill_us_at(ci, batch) >= c.prefill_us_at(ci + 1, batch),
                    "prefill ci={ci} b={batch}"
                );
            }
        }

        /// Energy per decoded token is monotone non-decreasing in clock:
        /// dynamic power rises cubically while the step shrinks at most
        /// linearly, so the energy-optimal serving point is the lowest
        /// SLO-feasible clock.
        #[test]
        fn energy_per_token_monotone_in_clock(batch in 1u32..256) {
            let c = clocked();
            let model = PowerModel::for_spec(&catalog::h100());
            let energy = |ci: usize| {
                let t_s = c.decode_step_us_at(ci, batch) as f64 / 1e6;
                model.power_w(c.clock_points()[ci], 1.0) * t_s / batch as f64
            };
            for ci in 0..c.num_clocks() - 1 {
                prop_assert!(
                    energy(ci) <= energy(ci + 1) * (1.0 + 1e-9),
                    "ci={ci} b={batch}: {} > {}",
                    energy(ci),
                    energy(ci + 1)
                );
            }
        }
    }
}

//! KV-cache sizing.
//!
//! §3 "Memory management": each Lite-GPU holds only a fraction of a big
//! GPU's HBM, so KV-cache capacity is the binding constraint for decode
//! batch sizes. This module computes cache footprints under tensor
//! parallelism, including the replication penalty for GQA models when the
//! TP degree exceeds the KV-head count.

use crate::arch::ModelArch;
use crate::parallel::kv_shard_fraction;
use crate::precision::Precision;

/// KV-cache bytes per token across all layers (unsharded).
///
/// # Examples
///
/// ```
/// use litegpu_workload::{kv, models, Precision};
/// // GPT-3 MHA: 96 layers * 2 * 96 heads * 128 dim * 1 B = ~2.36 MB/token.
/// let b = kv::bytes_per_token(&models::gpt3_175b(), Precision::Fp8);
/// assert!((b / 1e6 - 2.36).abs() < 0.01);
/// ```
pub fn bytes_per_token(arch: &ModelArch, precision: Precision) -> f64 {
    arch.layers as f64 * arch.kv_elems_per_token_per_layer() * precision.bytes()
}

/// KV-cache bytes per token *per GPU* at tensor-parallel degree `tp`,
/// under head-sharding.
///
/// For `tp ≤ kv_heads` the cache shards perfectly; beyond that every GPU
/// must hold at least one KV head per layer, so the per-GPU share stops
/// shrinking (and the aggregate cache grows — see
/// [`crate::parallel::kv_replication_factor`]).
pub fn bytes_per_token_per_gpu(arch: &ModelArch, precision: Precision, tp: u32) -> f64 {
    bytes_per_token(arch, precision) * kv_shard_fraction(arch, tp)
}

/// KV-cache bytes per token per GPU under an explicit sharding policy.
pub fn bytes_per_token_per_gpu_with_policy(
    arch: &ModelArch,
    precision: Precision,
    tp: u32,
    policy: crate::parallel::GqaPolicy,
) -> f64 {
    bytes_per_token(arch, precision) * crate::parallel::kv_fraction_with_policy(arch, tp, policy)
}

/// Total KV bytes for a batch of sequences at the given context length.
pub fn batch_bytes(arch: &ModelArch, precision: Precision, batch: u32, context: u32) -> f64 {
    batch as f64 * context as f64 * bytes_per_token(arch, precision)
}

/// Maximum tokens of KV cache a per-GPU budget can hold at TP degree `tp`.
pub fn capacity_tokens_per_gpu(
    arch: &ModelArch,
    precision: Precision,
    tp: u32,
    budget_bytes: f64,
) -> f64 {
    let per_tok = bytes_per_token_per_gpu(arch, precision, tp);
    if per_tok <= 0.0 {
        return 0.0;
    }
    (budget_bytes / per_tok).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use proptest::prelude::*;

    #[test]
    fn llama70_kv_is_small_per_token() {
        // 80 layers * 2 * 8 heads * 128 * 1B = 163,840 B/token.
        let b = bytes_per_token(&models::llama3_70b(), Precision::Fp8);
        assert!((b - 163_840.0).abs() < 1.0);
    }

    #[test]
    fn sharding_perfect_up_to_kv_heads() {
        let arch = models::llama3_70b(); // 8 KV heads.
        let full = bytes_per_token(&arch, Precision::Fp8);
        assert!((bytes_per_token_per_gpu(&arch, Precision::Fp8, 8) - full / 8.0).abs() < 1e-9);
        // Beyond 8 GPUs the per-GPU share plateaus at 1/8.
        assert!((bytes_per_token_per_gpu(&arch, Precision::Fp8, 32) - full / 8.0).abs() < 1e-9);
    }

    #[test]
    fn mha_shards_to_high_degrees() {
        let arch = models::gpt3_175b(); // 96 KV heads.
        let full = bytes_per_token(&arch, Precision::Fp8);
        assert!((bytes_per_token_per_gpu(&arch, Precision::Fp8, 32) - full / 32.0).abs() < 1e-9);
    }

    #[test]
    fn batch_bytes_scales() {
        let arch = models::llama3_70b();
        let one = batch_bytes(&arch, Precision::Fp8, 1, 1000);
        let many = batch_bytes(&arch, Precision::Fp8, 10, 1000);
        assert!((many - 10.0 * one).abs() < 1e-6);
    }

    #[test]
    fn capacity_inverts_footprint() {
        let arch = models::gpt3_175b();
        let per_tok = bytes_per_token_per_gpu(&arch, Precision::Fp8, 8);
        let tokens = capacity_tokens_per_gpu(&arch, Precision::Fp8, 8, per_tok * 1234.0);
        assert!((tokens - 1234.0).abs() < 1e-6);
        assert_eq!(capacity_tokens_per_gpu(&arch, Precision::Fp8, 8, 0.0), 0.0);
    }

    proptest! {
        #[test]
        fn per_gpu_share_never_increases_with_tp(tp in 1u32..64) {
            for arch in models::all() {
                let a = bytes_per_token_per_gpu(&arch, Precision::Fp8, tp);
                let b = bytes_per_token_per_gpu(&arch, Precision::Fp8, tp + 1);
                prop_assert!(b <= a + 1e-9);
            }
        }
    }
}

//! Per-stage FLOP and byte accounting for transformer inference.
//!
//! §4 of the paper: "The modeling measures compute stages individually,
//! including projection, MLP, and fused FlashAttention." The stages here
//! are the Megatron-style decomposition of one transformer layer — QKV
//! projection, fused attention, output projection, feed-forward — plus the
//! LM head. Each stage carries its FLOPs and its memory traffic split into
//! weights, activations and KV-cache bytes, because tensor parallelism
//! shards those components differently (see [`crate::parallel`]).
//!
//! Attention FLOPs use fused-FlashAttention accounting: the `S×S` score
//! matrix is never materialized in HBM, so attention memory traffic is the
//! Q/K/V/O tile traffic only. Prefill attention honours the causal mask
//! (half the naive FLOPs).

use crate::arch::ModelArch;
use crate::precision::Precision;
use crate::{Result, WorkloadError};

/// Causal-mask FLOP discount for prefill attention.
pub const CAUSAL_FACTOR: f64 = 0.5;

/// The compute stages of a transformer layer (plus the LM head).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StageKind {
    /// Fused Q/K/V projection (column-parallel under TP).
    QkvProj,
    /// Fused FlashAttention (scores + softmax + value aggregation).
    Attention,
    /// Output projection (row-parallel under TP; all-reduce follows).
    OutProj,
    /// Feed-forward block (column+row parallel; all-reduce follows).
    Mlp,
    /// Final language-model head (vocab projection).
    LmHead,
}

impl StageKind {
    /// Stages of one transformer layer, in execution order.
    pub fn layer_stages() -> [StageKind; 4] {
        [
            StageKind::QkvProj,
            StageKind::Attention,
            StageKind::OutProj,
            StageKind::Mlp,
        ]
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::QkvProj => "qkv",
            StageKind::Attention => "attn",
            StageKind::OutProj => "out",
            StageKind::Mlp => "mlp",
            StageKind::LmHead => "lm_head",
        }
    }
}

/// FLOPs and memory traffic of one stage execution (one layer, whole
/// batch, unsharded).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageWork {
    /// Stage identity.
    pub kind: StageKind,
    /// Floating-point operations.
    pub flops: f64,
    /// Weight bytes read from HBM.
    pub weight_bytes: f64,
    /// Activation bytes read from HBM.
    pub act_read_bytes: f64,
    /// Activation bytes written to HBM.
    pub act_write_bytes: f64,
    /// KV-cache bytes read.
    pub kv_read_bytes: f64,
    /// KV-cache bytes written.
    pub kv_write_bytes: f64,
}

impl StageWork {
    /// Total HBM traffic of the stage, bytes.
    pub fn mem_bytes(&self) -> f64 {
        self.weight_bytes
            + self.act_read_bytes
            + self.act_write_bytes
            + self.kv_read_bytes
            + self.kv_write_bytes
    }

    /// Arithmetic intensity, FLOP per HBM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        let mem = self.mem_bytes();
        if mem == 0.0 {
            f64::INFINITY
        } else {
            self.flops / mem
        }
    }

    fn scaled(mut self, factor: f64) -> Self {
        self.flops *= factor;
        self.weight_bytes *= factor;
        self.act_read_bytes *= factor;
        self.act_write_bytes *= factor;
        self.kv_read_bytes *= factor;
        self.kv_write_bytes *= factor;
        self
    }
}

/// The work of one full inference phase (prefill of a batch, or one decode
/// step of a batch): per-layer stages plus final stages, unsharded.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseWork {
    /// Stages executed once per transformer layer.
    pub per_layer: Vec<StageWork>,
    /// Stages executed once per phase (LM head).
    pub finals: Vec<StageWork>,
    /// Number of transformer layers.
    pub layers: u32,
    /// Tokens produced/processed by this phase (batch·prompt for prefill;
    /// batch for one decode step).
    pub tokens: f64,
}

impl PhaseWork {
    /// Prefill work: process a batch of `batch` prompts of `prompt_len`
    /// tokens each, populating the KV cache and producing first tokens.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_workload::{models, stage::PhaseWork, Precision};
    /// let w = PhaseWork::prefill(&models::llama3_70b(), Precision::Fp8, 4, 1500).unwrap();
    /// // Prefill FLOPs ~ 2 * params * tokens (plus attention).
    /// let approx = 2.0 * models::llama3_70b().total_params() * (4.0 * 1500.0);
    /// assert!(w.total_flops() > approx * 0.9 && w.total_flops() < approx * 1.5);
    /// ```
    pub fn prefill(
        arch: &ModelArch,
        precision: Precision,
        batch: u32,
        prompt_len: u32,
    ) -> Result<Self> {
        arch.validate()?;
        check_pos("batch", batch)?;
        check_pos("prompt_len", prompt_len)?;
        let b = batch as f64;
        let s = prompt_len as f64;
        let tokens = b * s;
        let wb = precision.bytes();
        let ab = precision.bytes();
        let kb = precision.bytes();
        let d = arch.d_model as f64;
        let q_dim = (arch.heads * arch.head_dim) as f64;
        let kv_dim = (arch.kv_heads * arch.head_dim) as f64;
        let f = arch.ffn_hidden as f64;
        let v = arch.vocab as f64;
        let h = arch.heads as f64;
        let hd = arch.head_dim as f64;

        let qkv = StageWork {
            kind: StageKind::QkvProj,
            flops: 2.0 * tokens * (d * q_dim + 2.0 * d * kv_dim),
            weight_bytes: (d * q_dim + 2.0 * d * kv_dim) * wb,
            act_read_bytes: tokens * d * ab,
            act_write_bytes: tokens * q_dim * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: tokens * 2.0 * kv_dim * kb,
        };
        // Fused FlashAttention over the causal prefix: QK^T and PV are each
        // 2*B*H*S^2*hd FLOPs before the causal discount.
        let attn = StageWork {
            kind: StageKind::Attention,
            flops: CAUSAL_FACTOR * 4.0 * b * h * s * s * hd,
            weight_bytes: 0.0,
            act_read_bytes: tokens * q_dim * ab,
            act_write_bytes: tokens * q_dim * ab,
            kv_read_bytes: tokens * 2.0 * kv_dim * kb,
            kv_write_bytes: 0.0,
        };
        let out = StageWork {
            kind: StageKind::OutProj,
            flops: 2.0 * tokens * q_dim * d,
            weight_bytes: q_dim * d * wb,
            act_read_bytes: tokens * q_dim * ab,
            act_write_bytes: tokens * d * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: 0.0,
        };
        let hidden_streams = (arch.mlp.matrices() - 1) as f64;
        let mlp = StageWork {
            kind: StageKind::Mlp,
            flops: 2.0 * tokens * arch.mlp_params_per_layer(),
            weight_bytes: arch.mlp_params_per_layer() * wb,
            act_read_bytes: tokens * (d + hidden_streams * f) * ab,
            act_write_bytes: tokens * (d + hidden_streams * f) * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: 0.0,
        };
        // LM head: logits for the last position of each sequence only.
        let lm_head = StageWork {
            kind: StageKind::LmHead,
            flops: 2.0 * b * d * v,
            weight_bytes: d * v * wb,
            act_read_bytes: b * d * ab,
            act_write_bytes: b * v * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: 0.0,
        };
        Ok(Self {
            per_layer: vec![qkv, attn, out, mlp],
            finals: vec![lm_head],
            layers: arch.layers,
            tokens,
        })
    }

    /// Work of a single decode step: a batch of `batch` sequences, each
    /// attending over `context_len` cached tokens and appending one.
    pub fn decode(
        arch: &ModelArch,
        precision: Precision,
        batch: u32,
        context_len: u32,
    ) -> Result<Self> {
        arch.validate()?;
        check_pos("batch", batch)?;
        check_pos("context_len", context_len)?;
        let b = batch as f64;
        let l = context_len as f64;
        let wb = precision.bytes();
        let ab = precision.bytes();
        let kb = precision.bytes();
        let d = arch.d_model as f64;
        let q_dim = (arch.heads * arch.head_dim) as f64;
        let kv_dim = (arch.kv_heads * arch.head_dim) as f64;
        let f = arch.ffn_hidden as f64;
        let v = arch.vocab as f64;
        let h = arch.heads as f64;
        let hd = arch.head_dim as f64;

        let qkv = StageWork {
            kind: StageKind::QkvProj,
            flops: 2.0 * b * (d * q_dim + 2.0 * d * kv_dim),
            weight_bytes: (d * q_dim + 2.0 * d * kv_dim) * wb,
            act_read_bytes: b * d * ab,
            act_write_bytes: b * q_dim * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: b * 2.0 * kv_dim * kb,
        };
        let attn = StageWork {
            kind: StageKind::Attention,
            flops: 4.0 * b * h * l * hd,
            weight_bytes: 0.0,
            act_read_bytes: b * q_dim * ab,
            act_write_bytes: b * q_dim * ab,
            kv_read_bytes: b * l * 2.0 * kv_dim * kb,
            kv_write_bytes: 0.0,
        };
        let out = StageWork {
            kind: StageKind::OutProj,
            flops: 2.0 * b * q_dim * d,
            weight_bytes: q_dim * d * wb,
            act_read_bytes: b * q_dim * ab,
            act_write_bytes: b * d * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: 0.0,
        };
        let hidden_streams = (arch.mlp.matrices() - 1) as f64;
        let mlp = StageWork {
            kind: StageKind::Mlp,
            flops: 2.0 * b * arch.mlp_params_per_layer(),
            weight_bytes: arch.mlp_params_per_layer() * wb,
            act_read_bytes: b * (d + hidden_streams * f) * ab,
            act_write_bytes: b * (d + hidden_streams * f) * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: 0.0,
        };
        let lm_head = StageWork {
            kind: StageKind::LmHead,
            flops: 2.0 * b * d * v,
            weight_bytes: d * v * wb,
            act_read_bytes: b * d * ab,
            act_write_bytes: b * v * ab,
            kv_read_bytes: 0.0,
            kv_write_bytes: 0.0,
        };
        Ok(Self {
            per_layer: vec![qkv, attn, out, mlp],
            finals: vec![lm_head],
            layers: arch.layers,
            tokens: b,
        })
    }

    /// Total FLOPs across all layers and final stages.
    pub fn total_flops(&self) -> f64 {
        self.layers as f64 * self.per_layer.iter().map(|s| s.flops).sum::<f64>()
            + self.finals.iter().map(|s| s.flops).sum::<f64>()
    }

    /// Total HBM bytes across all layers and final stages.
    pub fn total_mem_bytes(&self) -> f64 {
        self.layers as f64 * self.per_layer.iter().map(|s| s.mem_bytes()).sum::<f64>()
            + self.finals.iter().map(|s| s.mem_bytes()).sum::<f64>()
    }

    /// Phase-level arithmetic intensity, FLOP/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() / self.total_mem_bytes()
    }

    /// Returns the phase with all per-stage quantities scaled by `factor`
    /// (used by tests and sensitivity sweeps).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            per_layer: self.per_layer.iter().map(|s| s.scaled(factor)).collect(),
            finals: self.finals.iter().map(|s| s.scaled(factor)).collect(),
            layers: self.layers,
            tokens: self.tokens,
        }
    }
}

fn check_pos(name: &'static str, v: u32) -> Result<()> {
    if v == 0 {
        Err(WorkloadError::InvalidParameter { name, value: 0.0 })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use proptest::prelude::*;

    #[test]
    fn prefill_flops_close_to_2_params_tokens() {
        // The classic estimate: forward pass ~ 2 * non-embedding-params *
        // tokens, with attention adding a sequence-length surcharge. (The
        // LM head runs once per sequence, not per token, so embedding
        // params are excluded from the baseline.)
        for arch in models::all() {
            let w = PhaseWork::prefill(&arch, Precision::Fp8, 1, 1500).unwrap();
            let base = 2.0 * arch.layers as f64 * arch.params_per_layer() * 1500.0;
            let ratio = w.total_flops() / base;
            assert!(
                ratio > 1.0 && ratio < 1.35,
                "{}: ratio = {ratio}",
                arch.name
            );
        }
    }

    #[test]
    fn decode_step_flops_close_to_2_params_batch() {
        for arch in models::all() {
            let w = PhaseWork::decode(&arch, Precision::Fp8, 8, 1500).unwrap();
            let base = 2.0 * arch.layers as f64 * arch.params_per_layer() * 8.0;
            let ratio = w.total_flops() / base;
            assert!(
                ratio > 1.0 && ratio < 1.45,
                "{}: ratio = {ratio}",
                arch.name
            );
        }
    }

    #[test]
    fn decode_is_memory_bound_prefill_is_not() {
        // The paper's premise: prefill is compute-efficient, decode is
        // memory-bound. At batch 8 decode intensity must sit far below the
        // H100 ridge point (~600 FLOP/byte at FP8) and prefill far above.
        let arch = models::llama3_70b();
        let pre = PhaseWork::prefill(&arch, Precision::Fp8, 8, 1500).unwrap();
        let dec = PhaseWork::decode(&arch, Precision::Fp8, 8, 1500).unwrap();
        assert!(pre.arithmetic_intensity() > 600.0);
        assert!(dec.arithmetic_intensity() < 30.0);
    }

    #[test]
    fn decode_attention_dominated_by_kv_reads_for_mha() {
        let gpt3 = models::gpt3_175b();
        let w = PhaseWork::decode(&gpt3, Precision::Fp8, 16, 1500).unwrap();
        let attn = &w.per_layer[1];
        assert_eq!(attn.kind, StageKind::Attention);
        assert!(attn.kv_read_bytes > 0.9 * attn.mem_bytes());
    }

    #[test]
    fn gqa_shrinks_attention_memory_but_not_projection() {
        let llama = models::llama3_70b();
        let gpt3 = models::gpt3_175b();
        let wl = PhaseWork::decode(&llama, Precision::Fp8, 16, 1500).unwrap();
        let wg = PhaseWork::decode(&gpt3, Precision::Fp8, 16, 1500).unwrap();
        // Attention stage memory-per-layer is far smaller for GQA.
        assert!(wl.per_layer[1].mem_bytes() * 5.0 < wg.per_layer[1].mem_bytes());
    }

    #[test]
    fn causal_factor_applied() {
        let arch = models::llama3_8b();
        let w = PhaseWork::prefill(&arch, Precision::Fp8, 1, 1024).unwrap();
        let attn = &w.per_layer[1];
        let full = 4.0 * (arch.heads as f64) * 1024.0f64.powi(2) * arch.head_dim as f64;
        assert!((attn.flops - CAUSAL_FACTOR * full).abs() / full < 1e-12);
    }

    #[test]
    fn precision_scales_bytes_not_flops() {
        let arch = models::llama3_8b();
        let w8 = PhaseWork::prefill(&arch, Precision::Fp8, 2, 256).unwrap();
        let w16 = PhaseWork::prefill(&arch, Precision::Fp16, 2, 256).unwrap();
        assert_eq!(w8.total_flops(), w16.total_flops());
        assert!((w16.total_mem_bytes() / w8.total_mem_bytes() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_inputs_rejected() {
        let arch = models::llama3_8b();
        assert!(PhaseWork::prefill(&arch, Precision::Fp8, 0, 10).is_err());
        assert!(PhaseWork::prefill(&arch, Precision::Fp8, 1, 0).is_err());
        assert!(PhaseWork::decode(&arch, Precision::Fp8, 0, 10).is_err());
        assert!(PhaseWork::decode(&arch, Precision::Fp8, 1, 0).is_err());
    }

    #[test]
    fn stage_labels_unique() {
        let mut labels: Vec<_> = StageKind::layer_stages()
            .iter()
            .map(|s| s.label())
            .collect();
        labels.push(StageKind::LmHead.label());
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    proptest! {
        #[test]
        fn prefill_work_monotone_in_batch(
            b in 1u32..64,
            s in 16u32..2048,
        ) {
            let arch = models::llama3_8b();
            let w1 = PhaseWork::prefill(&arch, Precision::Fp8, b, s).unwrap();
            let w2 = PhaseWork::prefill(&arch, Precision::Fp8, b + 1, s).unwrap();
            prop_assert!(w2.total_flops() > w1.total_flops());
            prop_assert!(w2.total_mem_bytes() > w1.total_mem_bytes());
        }

        #[test]
        fn decode_work_monotone_in_context(
            b in 1u32..64,
            l in 16u32..4096,
        ) {
            let arch = models::llama3_70b();
            let w1 = PhaseWork::decode(&arch, Precision::Fp8, b, l).unwrap();
            let w2 = PhaseWork::decode(&arch, Precision::Fp8, b, l + 64).unwrap();
            prop_assert!(w2.total_flops() > w1.total_flops());
            prop_assert!(w2.total_mem_bytes() > w1.total_mem_bytes());
        }

        #[test]
        fn intensity_positive_and_finite(
            b in 1u32..128,
            s in 1u32..2048,
        ) {
            let arch = models::llama3_8b();
            let w = PhaseWork::prefill(&arch, Precision::Fp8, b, s).unwrap();
            let ai = w.arithmetic_intensity();
            prop_assert!(ai.is_finite() && ai > 0.0);
        }
    }
}

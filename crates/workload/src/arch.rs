//! Transformer architecture descriptions and parameter counting.

use crate::{Result, WorkloadError};

/// The feed-forward block structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MlpKind {
    /// Two matrices (up, down) with a pointwise activation — GPT-3 style.
    Standard,
    /// Three matrices (gate, up, down) — Llama's SwiGLU.
    SwiGlu,
}

impl MlpKind {
    /// Number of `d_model × ffn_hidden`-shaped matrices in the block.
    pub fn matrices(&self) -> u32 {
        match self {
            MlpKind::Standard => 2,
            MlpKind::SwiGlu => 3,
        }
    }
}

/// A dense decoder-only transformer architecture.
///
/// All the quantities the roofline model needs are derivable from these
/// fields; see [`crate::stage`] for the FLOP/byte accounting.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelArch {
    /// Model name, e.g. `"Llama3-70B"`.
    pub name: String,
    /// Number of transformer layers.
    pub layers: u32,
    /// Model (hidden) dimension.
    pub d_model: u32,
    /// Query heads.
    pub heads: u32,
    /// KV heads (equal to `heads` for MHA; fewer for GQA).
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Feed-forward hidden dimension.
    pub ffn_hidden: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Feed-forward block structure.
    pub mlp: MlpKind,
    /// Whether input and output embeddings share weights (GPT-3: yes;
    /// Llama-3: no).
    pub tied_embeddings: bool,
}

impl ModelArch {
    /// Validates structural invariants.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("layers", self.layers),
            ("d_model", self.d_model),
            ("heads", self.heads),
            ("kv_heads", self.kv_heads),
            ("head_dim", self.head_dim),
            ("ffn_hidden", self.ffn_hidden),
            ("vocab", self.vocab),
        ] {
            if v == 0 {
                return Err(WorkloadError::InvalidParameter {
                    name,
                    value: v as f64,
                });
            }
        }
        if !self.heads.is_multiple_of(self.kv_heads) {
            return Err(WorkloadError::InconsistentHeads {
                heads: self.heads,
                kv_heads: self.kv_heads,
            });
        }
        Ok(())
    }

    /// Query heads per KV head (the GQA group size; 1 for MHA).
    pub fn gqa_group(&self) -> u32 {
        self.heads / self.kv_heads
    }

    /// Whether the model uses grouped-query attention.
    pub fn is_gqa(&self) -> bool {
        self.kv_heads < self.heads
    }

    /// Attention parameters per layer: Q and O are `d×(heads·head_dim)`;
    /// K and V are `d×(kv_heads·head_dim)`.
    pub fn attn_params_per_layer(&self) -> f64 {
        let d = self.d_model as f64;
        let q_dim = (self.heads * self.head_dim) as f64;
        let kv_dim = (self.kv_heads * self.head_dim) as f64;
        d * q_dim // Q
            + 2.0 * d * kv_dim // K, V
            + q_dim * d // O
    }

    /// Feed-forward parameters per layer.
    pub fn mlp_params_per_layer(&self) -> f64 {
        self.mlp.matrices() as f64 * self.d_model as f64 * self.ffn_hidden as f64
    }

    /// Parameters per transformer layer.
    pub fn params_per_layer(&self) -> f64 {
        self.attn_params_per_layer() + self.mlp_params_per_layer()
    }

    /// Embedding (+ LM head) parameters.
    pub fn embedding_params(&self) -> f64 {
        let one = self.vocab as f64 * self.d_model as f64;
        if self.tied_embeddings {
            one
        } else {
            2.0 * one
        }
    }

    /// Total parameter count.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_workload::models;
    /// let gpt3 = models::gpt3_175b();
    /// assert!((gpt3.total_params() / 1e9 - 175.0).abs() < 3.0);
    /// ```
    pub fn total_params(&self) -> f64 {
        self.layers as f64 * self.params_per_layer() + self.embedding_params()
    }

    /// KV-cache elements per token per layer (`2 · kv_heads · head_dim`).
    pub fn kv_elems_per_token_per_layer(&self) -> f64 {
        2.0 * self.kv_heads as f64 * self.head_dim as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn mlp_matrix_counts() {
        assert_eq!(MlpKind::Standard.matrices(), 2);
        assert_eq!(MlpKind::SwiGlu.matrices(), 3);
    }

    #[test]
    fn validation_rejects_zero_fields() {
        let mut a = models::llama3_70b();
        a.layers = 0;
        assert!(a.validate().is_err());
        let mut a = models::llama3_70b();
        a.kv_heads = 7; // 64 % 7 != 0
        assert!(a.validate().is_err());
    }

    #[test]
    fn gqa_bookkeeping() {
        let llama = models::llama3_70b();
        assert!(llama.is_gqa());
        assert_eq!(llama.gqa_group(), 8);
        let gpt3 = models::gpt3_175b();
        assert!(!gpt3.is_gqa());
        assert_eq!(gpt3.gqa_group(), 1);
    }

    #[test]
    fn per_layer_param_shapes() {
        let a = models::llama3_70b();
        // Q: 8192x8192, K/V: 8192x1024 each, O: 8192x8192.
        let expected_attn = 8192.0 * 8192.0 * 2.0 + 2.0 * 8192.0 * 1024.0;
        assert!((a.attn_params_per_layer() - expected_attn).abs() < 1.0);
        let expected_mlp = 3.0 * 8192.0 * 28672.0;
        assert!((a.mlp_params_per_layer() - expected_mlp).abs() < 1.0);
    }

    #[test]
    fn kv_elems_ratio_gpt3_vs_llama() {
        // GPT-3's MHA KV cache is 12x larger per token than Llama3-70B's
        // GQA cache - the root of its decode behaviour in Figure 3b.
        let gpt3 = models::gpt3_175b();
        let llama = models::llama3_70b();
        let ratio = gpt3.kv_elems_per_token_per_layer() / llama.kv_elems_per_token_per_layer();
        assert!((ratio - 12.0).abs() < 1e-9, "ratio = {ratio}");
    }
}

//! Transformer/LLM workload models for the `litegpu` suite.
//!
//! The Lite-GPU paper's evaluation (§4) roofline-models LLM inference over
//! three public models (Llama3-70B, GPT3-175B, Llama3-405B). This crate is
//! the workload side of that model:
//!
//! - [`arch`]: transformer architecture descriptions and parameter counts.
//! - [`models`]: the concrete architectures the paper evaluates.
//! - [`precision`]: numeric formats (the paper's Table 1 implies FP8).
//! - [`stage`]: per-stage FLOP and byte accounting for prefill and decode —
//!   "the modeling measures compute stages individually, including
//!   projection, MLP, and fused FlashAttention" (§4).
//! - [`kv`]: KV-cache sizing.
//! - [`parallel`]: tensor-parallel sharding of stage work, including the
//!   KV-head replication that kicks in when the TP degree exceeds the
//!   number of KV heads (the "increased memory access intensities" effect
//!   in Figure 3b).
//!
//! # Examples
//!
//! ```
//! use litegpu_workload::models;
//!
//! let llama70 = models::llama3_70b();
//! let params = llama70.total_params();
//! assert!((params / 1e9 - 70.0).abs() < 2.0, "got {} B params", params / 1e9);
//! ```

pub mod arch;
pub mod kv;
pub mod models;
pub mod parallel;
pub mod precision;
pub mod stage;

pub use arch::{MlpKind, ModelArch};
pub use parallel::{GqaPolicy, ShardedPhase, ShardedStage, TensorParallel};
pub use precision::Precision;
pub use stage::{PhaseWork, StageKind, StageWork};

/// Errors produced by workload construction.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A parameter was zero/negative where positive is required.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Attention head bookkeeping is inconsistent (e.g. heads not divisible
    /// by KV heads).
    InconsistentHeads {
        /// Query heads.
        heads: u32,
        /// KV heads.
        kv_heads: u32,
    },
}

impl core::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadError::InvalidParameter { name, value } => {
                write!(f, "invalid workload parameter {name} = {value}")
            }
            WorkloadError::InconsistentHeads { heads, kv_heads } => {
                write!(
                    f,
                    "query heads {heads} not divisible by KV heads {kv_heads}"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Result alias for workload operations.
pub type Result<T> = core::result::Result<T, WorkloadError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = WorkloadError::InconsistentHeads {
            heads: 10,
            kv_heads: 3,
        };
        assert!(e.to_string().contains("divisible"));
    }
}

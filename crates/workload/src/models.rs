//! Concrete model architectures.
//!
//! The three the paper evaluates (§4) plus smaller models used in examples
//! and tests. Hyper-parameters are from the public model cards / papers.

use crate::arch::{MlpKind, ModelArch};

/// Llama-3 8B: 32 layers, d=4096, 32 heads / 8 KV heads, SwiGLU.
pub fn llama3_8b() -> ModelArch {
    ModelArch {
        name: "Llama3-8B".to_string(),
        layers: 32,
        d_model: 4096,
        heads: 32,
        kv_heads: 8,
        head_dim: 128,
        ffn_hidden: 14336,
        vocab: 128256,
        mlp: MlpKind::SwiGlu,
        tied_embeddings: false,
    }
}

/// Llama-3 70B: 80 layers, d=8192, 64 heads / 8 KV heads, SwiGLU.
pub fn llama3_70b() -> ModelArch {
    ModelArch {
        name: "Llama3-70B".to_string(),
        layers: 80,
        d_model: 8192,
        heads: 64,
        kv_heads: 8,
        head_dim: 128,
        ffn_hidden: 28672,
        vocab: 128256,
        mlp: MlpKind::SwiGlu,
        tied_embeddings: false,
    }
}

/// GPT-3 175B: 96 layers, d=12288, 96 MHA heads, standard 4×d FFN.
pub fn gpt3_175b() -> ModelArch {
    ModelArch {
        name: "GPT3-175B".to_string(),
        layers: 96,
        d_model: 12288,
        heads: 96,
        kv_heads: 96,
        head_dim: 128,
        ffn_hidden: 49152,
        vocab: 50257,
        mlp: MlpKind::Standard,
        tied_embeddings: true,
    }
}

/// Llama-3 405B: 126 layers, d=16384, 128 heads / 8 KV heads, SwiGLU.
pub fn llama3_405b() -> ModelArch {
    ModelArch {
        name: "Llama3-405B".to_string(),
        layers: 126,
        d_model: 16384,
        heads: 128,
        kv_heads: 8,
        head_dim: 128,
        ffn_hidden: 53248,
        vocab: 128256,
        mlp: MlpKind::SwiGlu,
        tied_embeddings: false,
    }
}

/// The three models of the paper's Figure 3, in plot order.
pub fn figure3_models() -> Vec<ModelArch> {
    vec![llama3_70b(), gpt3_175b(), llama3_405b()]
}

/// Every model in the catalog.
pub fn all() -> Vec<ModelArch> {
    vec![llama3_8b(), llama3_70b(), gpt3_175b(), llama3_405b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_validate() {
        for m in all() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn parameter_counts_match_advertised_sizes() {
        for (arch, advertised_b, tol_b) in [
            (llama3_8b(), 8.0, 0.5),
            (llama3_70b(), 70.0, 2.0),
            (gpt3_175b(), 175.0, 3.0),
            (llama3_405b(), 405.0, 5.0),
        ] {
            let b = arch.total_params() / 1e9;
            assert!(
                (b - advertised_b).abs() <= tol_b,
                "{}: computed {b} B vs advertised {advertised_b} B",
                arch.name
            );
        }
    }

    #[test]
    fn figure3_order() {
        let names: Vec<_> = figure3_models().into_iter().map(|m| m.name).collect();
        assert_eq!(names, ["Llama3-70B", "GPT3-175B", "Llama3-405B"]);
    }

    #[test]
    fn head_dims_consistent() {
        for m in all() {
            assert_eq!(m.heads * m.head_dim, m.d_model, "{}", m.name);
        }
    }
}

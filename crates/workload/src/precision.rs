//! Numeric precision formats.

/// A numeric format used for weights, activations and KV-cache entries.
///
/// Table 1's "H100 = 2000 TFLOPS" is the FP8 dense figure, so the paper's
/// evaluation implicitly runs weights, activations and KV cache in FP8;
/// that is the suite's default. Other formats are provided for ablations
/// (FP16 halves the roofline's compute ceiling *and* doubles every byte
/// count, which shifts the memory-bound crossovers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// 8-bit floating point (E4M3/E5M2 class).
    Fp8,
    /// 16-bit floating point (IEEE half).
    Fp16,
    /// bfloat16.
    Bf16,
    /// 32-bit floating point.
    Fp32,
}

impl Precision {
    /// Bytes per element.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_workload::precision::Precision;
    /// assert_eq!(Precision::Fp8.bytes(), 1.0);
    /// assert_eq!(Precision::Bf16.bytes(), 2.0);
    /// ```
    pub fn bytes(&self) -> f64 {
        match self {
            Precision::Fp8 => 1.0,
            Precision::Fp16 | Precision::Bf16 => 2.0,
            Precision::Fp32 => 4.0,
        }
    }

    /// Relative dense-compute throughput versus FP8 on an H100-class
    /// tensor core (FP8 = 1.0, FP16/BF16 = 0.5, FP32 ≈ 0.03).
    pub fn relative_flops(&self) -> f64 {
        match self {
            Precision::Fp8 => 1.0,
            Precision::Fp16 | Precision::Bf16 => 0.5,
            Precision::Fp32 => 0.03,
        }
    }

    /// The default evaluation precision of the paper (FP8).
    pub fn paper_default() -> Self {
        Precision::Fp8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(Precision::Fp8.bytes(), 1.0);
        assert_eq!(Precision::Fp16.bytes(), 2.0);
        assert_eq!(Precision::Bf16.bytes(), 2.0);
        assert_eq!(Precision::Fp32.bytes(), 4.0);
    }

    #[test]
    fn throughput_ordering() {
        assert!(Precision::Fp8.relative_flops() > Precision::Fp16.relative_flops());
        assert!(Precision::Fp16.relative_flops() > Precision::Fp32.relative_flops());
    }

    #[test]
    fn paper_default_is_fp8() {
        assert_eq!(Precision::paper_default(), Precision::Fp8);
    }
}

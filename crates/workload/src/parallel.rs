//! Tensor-parallel sharding of stage work.
//!
//! Megatron-style tensor parallelism: QKV projection and MLP-up are
//! column-parallel (input replicated, output sharded); output projection
//! and MLP-down are row-parallel (input sharded, output partial, followed
//! by an **all-reduce** of the full activation). Attention shards by query
//! head. Two all-reduces per layer per token — the traffic the paper says
//! "moves previously in-silicon communication onto the network".
//!
//! The subtlety this module exists for: **KV-head replication**. A GQA
//! model with `kv` KV heads can shard its KV cache at most `kv` ways; at
//! TP degree `t > kv`, each KV head is replicated over `t/kv` GPUs, so the
//! per-GPU KV traffic stops shrinking and the *aggregate* memory traffic
//! grows — the paper's "increased memory access intensities" in Figure 3b.

use crate::arch::ModelArch;
use crate::stage::{PhaseWork, StageKind, StageWork};
use crate::{Result, WorkloadError};

/// Tensor-parallel execution of a phase over `degree` GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TensorParallel {
    /// Number of GPUs the stage work is sharded over.
    pub degree: u32,
}

/// How the KV cache is partitioned when attention is tensor-parallel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum GqaPolicy {
    /// KV shards by head only: at TP degree beyond the KV-head count,
    /// heads replicate and per-GPU KV traffic stops shrinking.
    HeadShard,
    /// KV shards fully `1/t` regardless of head count, as achieved by
    /// sequence-parallel (context-parallel / Ring-Attention-style)
    /// attention. This is the paper's implicit assumption — its Lite
    /// clusters run Llama-3 (8 KV heads) at TP 32 without a replication
    /// cliff — and therefore the suite default.
    #[default]
    FullShard,
}

/// The fraction of full KV traffic each GPU carries at TP degree `tp`
/// under [`GqaPolicy::HeadShard`]: `max(1/tp, 1/kv_heads)`.
pub fn kv_shard_fraction(arch: &ModelArch, tp: u32) -> f64 {
    let tp = tp.max(1) as f64;
    let kv = arch.kv_heads.max(1) as f64;
    (1.0 / tp).max(1.0 / kv)
}

/// Per-GPU KV traffic fraction under an explicit policy.
pub fn kv_fraction_with_policy(arch: &ModelArch, tp: u32, policy: GqaPolicy) -> f64 {
    match policy {
        GqaPolicy::HeadShard => kv_shard_fraction(arch, tp),
        GqaPolicy::FullShard => 1.0 / tp.max(1) as f64,
    }
}

/// The KV storage/traffic replication factor at TP degree `tp`:
/// `tp / min(tp, kv_heads)` (1 when the cache shards perfectly).
pub fn kv_replication_factor(arch: &ModelArch, tp: u32) -> f64 {
    let tp = tp.max(1) as f64;
    let kv = arch.kv_heads.max(1) as f64;
    tp / tp.min(kv)
}

/// One stage's per-GPU work plus the collective that follows it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardedStage {
    /// Per-GPU stage work.
    pub per_gpu: StageWork,
    /// Payload bytes of the all-reduce that must complete after this stage
    /// (0 when no collective is attached). This is the *logical* message
    /// size; algorithm-specific wire traffic is the network model's job.
    pub all_reduce_bytes: f64,
}

/// A phase sharded over a tensor-parallel group.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardedPhase {
    /// Per-layer stages with attached collectives.
    pub per_layer: Vec<ShardedStage>,
    /// Final stages (LM head).
    pub finals: Vec<ShardedStage>,
    /// Number of layers.
    pub layers: u32,
    /// Tokens produced/processed by the phase.
    pub tokens: f64,
    /// TP degree.
    pub degree: u32,
}

impl TensorParallel {
    /// Creates a TP group of the given degree (≥ 1).
    pub fn new(degree: u32) -> Result<Self> {
        if degree == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "tp degree",
                value: 0.0,
            });
        }
        Ok(Self { degree })
    }

    /// Shards a phase's work across the group using the default
    /// [`GqaPolicy::HeadShard`] KV partitioning.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_workload::{models, parallel::TensorParallel, stage::PhaseWork, Precision};
    /// let arch = models::llama3_70b();
    /// let phase = PhaseWork::decode(&arch, Precision::Fp8, 8, 1500).unwrap();
    /// let tp = TensorParallel::new(8).unwrap();
    /// let sharded = tp.shard(&arch, &phase).unwrap();
    /// // Per-GPU FLOPs are 1/8 of the total.
    /// assert!((sharded.per_gpu_flops() - phase.total_flops() / 8.0).abs()
    ///         / phase.total_flops() < 0.01);
    /// ```
    pub fn shard(&self, arch: &ModelArch, phase: &PhaseWork) -> Result<ShardedPhase> {
        self.shard_with_policy(arch, phase, GqaPolicy::HeadShard)
    }

    /// Shards a phase's work across the group under an explicit KV
    /// partitioning policy.
    pub fn shard_with_policy(
        &self,
        arch: &ModelArch,
        phase: &PhaseWork,
        policy: GqaPolicy,
    ) -> Result<ShardedPhase> {
        arch.validate()?;
        let t = self.degree as f64;
        let kv_frac = kv_fraction_with_policy(arch, self.degree, policy);
        // Activation payload of one all-reduce: the full hidden state of
        // every token in flight (batch*seq*d for prefill, batch*d for one
        // decode step). The OutProj stage writes exactly that, so its
        // unsharded output size is the canonical payload.
        let hidden_payload = phase
            .per_layer
            .iter()
            .find(|s| s.kind == StageKind::OutProj)
            .map(|s| s.act_write_bytes)
            .unwrap_or(0.0);
        let mut per_layer = Vec::with_capacity(phase.per_layer.len());
        for s in &phase.per_layer {
            per_layer.push(self.shard_stage(s, t, kv_frac, hidden_payload));
        }
        let finals = phase
            .finals
            .iter()
            .map(|s| self.shard_stage(s, t, kv_frac, hidden_payload))
            .collect();
        Ok(ShardedPhase {
            per_layer,
            finals,
            layers: phase.layers,
            tokens: phase.tokens,
            degree: self.degree,
        })
    }

    fn shard_stage(
        &self,
        s: &StageWork,
        t: f64,
        kv_frac: f64,
        hidden_payload: f64,
    ) -> ShardedStage {
        let mut per_gpu = *s;
        let mut all_reduce_bytes = 0.0;
        match s.kind {
            StageKind::QkvProj => {
                per_gpu.flops /= t;
                per_gpu.weight_bytes /= t;
                // Column-parallel: input replicated on every GPU, output
                // sharded by head.
                per_gpu.act_write_bytes /= t;
                per_gpu.kv_write_bytes *= kv_frac;
            }
            StageKind::Attention => {
                per_gpu.flops /= t;
                per_gpu.act_read_bytes /= t;
                per_gpu.act_write_bytes /= t;
                per_gpu.kv_read_bytes *= kv_frac;
                per_gpu.kv_write_bytes *= kv_frac;
            }
            StageKind::OutProj => {
                per_gpu.flops /= t;
                per_gpu.weight_bytes /= t;
                // Row-parallel: input sharded, output full (partial sums).
                per_gpu.act_read_bytes /= t;
                // All-reduce of the full output activation follows; payload
                // equals the stage's (unsharded) activation output.
                if self.degree > 1 {
                    all_reduce_bytes = s.act_write_bytes;
                }
            }
            StageKind::Mlp => {
                per_gpu.flops /= t;
                per_gpu.weight_bytes /= t;
                // Column+row parallel MLP: the tokens*d input read is
                // replicated on every GPU, the hidden-stream traffic shards
                // by t, and the tokens*d output is written in full (partial
                // sums) followed by an all-reduce. The tokens*d byte count
                // is exactly the OutProj output payload.
                let d_bytes = hidden_payload.min(per_gpu.act_read_bytes);
                let hidden_read = (per_gpu.act_read_bytes - d_bytes).max(0.0);
                let hidden_write = (per_gpu.act_write_bytes - d_bytes).max(0.0);
                per_gpu.act_read_bytes = d_bytes + hidden_read / t;
                per_gpu.act_write_bytes = d_bytes + hidden_write / t;
                if self.degree > 1 {
                    all_reduce_bytes = d_bytes;
                }
            }
            StageKind::LmHead => {
                // Vocab-parallel: weights and logits shard; the sampled
                // token is found with a tiny max-reduce we neglect.
                per_gpu.flops /= t;
                per_gpu.weight_bytes /= t;
                per_gpu.act_write_bytes /= t;
            }
        }
        ShardedStage {
            per_gpu,
            all_reduce_bytes,
        }
    }
}

impl ShardedPhase {
    /// Per-GPU FLOPs across all layers and finals.
    pub fn per_gpu_flops(&self) -> f64 {
        self.layers as f64 * self.per_layer.iter().map(|s| s.per_gpu.flops).sum::<f64>()
            + self.finals.iter().map(|s| s.per_gpu.flops).sum::<f64>()
    }

    /// Per-GPU HBM bytes across all layers and finals.
    pub fn per_gpu_mem_bytes(&self) -> f64 {
        self.layers as f64
            * self
                .per_layer
                .iter()
                .map(|s| s.per_gpu.mem_bytes())
                .sum::<f64>()
            + self
                .finals
                .iter()
                .map(|s| s.per_gpu.mem_bytes())
                .sum::<f64>()
    }

    /// Aggregate HBM bytes across the whole TP group — grows past the
    /// unsharded total once replication or activation duplication bites.
    pub fn aggregate_mem_bytes(&self) -> f64 {
        self.per_gpu_mem_bytes() * self.degree as f64
    }

    /// Total all-reduce payload bytes per phase (layers × per-layer
    /// collectives).
    pub fn total_all_reduce_bytes(&self) -> f64 {
        self.layers as f64
            * self
                .per_layer
                .iter()
                .map(|s| s.all_reduce_bytes)
                .sum::<f64>()
            + self.finals.iter().map(|s| s.all_reduce_bytes).sum::<f64>()
    }

    /// Number of collectives per layer (should be 2 for degree > 1).
    pub fn collectives_per_layer(&self) -> usize {
        self.per_layer
            .iter()
            .filter(|s| s.all_reduce_bytes > 0.0)
            .count()
    }
}

/// Model weight bytes resident on each GPU at TP degree `tp` (weights shard
/// essentially perfectly; embeddings shard by vocab).
pub fn weight_bytes_per_gpu(arch: &ModelArch, precision: crate::Precision, tp: u32) -> f64 {
    arch.total_params() * precision.bytes() / tp.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::precision::Precision;
    use proptest::prelude::*;

    #[test]
    fn degree_zero_rejected() {
        assert!(TensorParallel::new(0).is_err());
    }

    #[test]
    fn flops_conserved_under_sharding() {
        let arch = models::llama3_70b();
        let phase = PhaseWork::prefill(&arch, Precision::Fp8, 4, 1500).unwrap();
        for t in [1u32, 2, 4, 8, 16, 32] {
            let sh = TensorParallel::new(t)
                .unwrap()
                .shard(&arch, &phase)
                .unwrap();
            let total = sh.per_gpu_flops() * t as f64;
            assert!(
                (total - phase.total_flops()).abs() / phase.total_flops() < 1e-9,
                "t={t}"
            );
        }
    }

    #[test]
    fn two_all_reduces_per_layer() {
        let arch = models::llama3_70b();
        let phase = PhaseWork::decode(&arch, Precision::Fp8, 8, 1500).unwrap();
        let sh = TensorParallel::new(8)
            .unwrap()
            .shard(&arch, &phase)
            .unwrap();
        assert_eq!(sh.collectives_per_layer(), 2);
        // Degree 1: no collectives at all.
        let sh1 = TensorParallel::new(1)
            .unwrap()
            .shard(&arch, &phase)
            .unwrap();
        assert_eq!(sh1.collectives_per_layer(), 0);
        assert_eq!(sh1.total_all_reduce_bytes(), 0.0);
    }

    #[test]
    fn all_reduce_payload_is_hidden_state() {
        // Decode step, batch 8: each all-reduce moves ~batch*d bytes.
        let arch = models::llama3_70b();
        let phase = PhaseWork::decode(&arch, Precision::Fp8, 8, 1500).unwrap();
        let sh = TensorParallel::new(8)
            .unwrap()
            .shard(&arch, &phase)
            .unwrap();
        let expected = 8.0 * arch.d_model as f64 * Precision::Fp8.bytes();
        let out_stage = &sh.per_layer[2];
        assert!((out_stage.all_reduce_bytes - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn kv_replication_grows_aggregate_traffic() {
        // Llama3-70B has 8 KV heads: at TP=32 the KV cache is replicated
        // 4x, so aggregate decode memory traffic grows.
        let arch = models::llama3_70b();
        assert_eq!(kv_replication_factor(&arch, 8), 1.0);
        assert_eq!(kv_replication_factor(&arch, 32), 4.0);
        let phase = PhaseWork::decode(&arch, Precision::Fp8, 64, 2000).unwrap();
        let sh8 = TensorParallel::new(8)
            .unwrap()
            .shard(&arch, &phase)
            .unwrap();
        let sh32 = TensorParallel::new(32)
            .unwrap()
            .shard(&arch, &phase)
            .unwrap();
        assert!(sh32.aggregate_mem_bytes() > sh8.aggregate_mem_bytes());
    }

    #[test]
    fn mha_model_has_no_replication_at_32() {
        let gpt3 = models::gpt3_175b();
        assert_eq!(kv_replication_factor(&gpt3, 32), 1.0);
        assert_eq!(kv_shard_fraction(&gpt3, 32), 1.0 / 32.0);
    }

    #[test]
    fn per_gpu_mem_close_to_fair_share_at_low_tp() {
        // At TP <= kv_heads the aggregate memory overhead (replicated
        // activations) stays small for prefill.
        let arch = models::llama3_70b();
        let phase = PhaseWork::prefill(&arch, Precision::Fp8, 4, 1500).unwrap();
        let sh = TensorParallel::new(4)
            .unwrap()
            .shard(&arch, &phase)
            .unwrap();
        let overhead = sh.aggregate_mem_bytes() / phase.total_mem_bytes();
        assert!(overhead < 1.35, "overhead = {overhead}");
        assert!(overhead >= 1.0);
    }

    #[test]
    fn weight_bytes_shard_perfectly() {
        let arch = models::llama3_405b();
        let full = weight_bytes_per_gpu(&arch, Precision::Fp8, 1);
        assert!((full - arch.total_params()).abs() < 1.0);
        let sharded = weight_bytes_per_gpu(&arch, Precision::Fp8, 32);
        assert!((sharded * 32.0 - full).abs() < 1.0);
    }

    proptest! {
        #[test]
        fn per_gpu_quantities_decrease_with_degree(t in 1u32..32) {
            let arch = models::gpt3_175b();
            let phase = PhaseWork::decode(&arch, Precision::Fp8, 16, 1000).unwrap();
            let a = TensorParallel::new(t).unwrap().shard(&arch, &phase).unwrap();
            let b = TensorParallel::new(t + 1).unwrap().shard(&arch, &phase).unwrap();
            prop_assert!(b.per_gpu_flops() <= a.per_gpu_flops() + 1e-6);
            prop_assert!(b.per_gpu_mem_bytes() <= a.per_gpu_mem_bytes() * 1.001);
        }

        #[test]
        fn aggregate_at_least_unsharded(t in 1u32..48) {
            for arch in [models::llama3_70b(), models::gpt3_175b()] {
                let phase = PhaseWork::decode(&arch, Precision::Fp8, 8, 1500).unwrap();
                let sh = TensorParallel::new(t).unwrap().shard(&arch, &phase).unwrap();
                prop_assert!(
                    sh.aggregate_mem_bytes() >= phase.total_mem_bytes() * 0.999,
                    "aggregate must not fall below unsharded total"
                );
            }
        }
    }
}

//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of the rand 0.9 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), but
//! every consumer in this repository only relies on determinism under a
//! seed and on basic statistical quality, both of which xoshiro256++
//! provides.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits.
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (half-open and inclusive integer/float
/// ranges).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard-uniform distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }
}

//! Vendored minimal stand-in for the `criterion` benchmark harness.
//!
//! The offline build cannot pull real criterion, so this shim implements
//! the subset of its API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is adaptive: each benchmark is warmed up, then iterated
//! until `measurement_ms` of wall-clock is spent (default 200 ms), and a
//! single line is printed per benchmark:
//!
//! ```text
//! bench: <name> ... <mean> ns/iter (<iters> iters)
//! ```
//!
//! Results are also appended as JSON lines to
//! `target/criterion-shim/results.jsonl` (best-effort) so perf
//! trajectories can be recorded by tooling.

use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`"group/param"`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` repeatedly, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(name: &str, measurement_ms: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up + calibration: one iteration tells us the rough cost.
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns.max(1);
    let budget_ns = measurement_ms as u128 * 1_000_000;
    let iters = (budget_ns / per_iter).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    let mean_ns = b.elapsed_ns / iters as u128;
    println!("bench: {name} ... {mean_ns} ns/iter ({iters} iters)");
    record(name, mean_ns, iters);
}

fn record(name: &str, mean_ns: u128, iters: u64) {
    use std::io::Write;
    let dir = std::path::PathBuf::from(
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
    )
    .join("criterion-shim");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(mut fh) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("results.jsonl"))
    {
        let _ = writeln!(
            fh,
            "{{\"bench\":\"{name}\",\"mean_ns\":{mean_ns},\"iters\":{iters}}}"
        );
    }
}

/// Top-level harness.
pub struct Criterion {
    measurement_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries too; keep a tight
        // default budget so the shim stays fast in that mode.
        Self {
            measurement_ms: 200,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.name, self.measurement_ms, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_ms: self.measurement_ms,
            _parent: self,
        }
    }
}

/// A named benchmark group (criterion API compatibility).
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_ms: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, d: std::time::Duration) -> &mut Self {
        self.measurement_ms = d.as_millis().max(1) as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.measurement_ms, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { measurement_ms: 1 };
        let mut ran = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion { measurement_ms: 1 };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .measurement_time(std::time::Duration::from_millis(1));
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}

//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The offline build cannot pull `syn`/`quote`, so these derives parse the
//! item's token stream directly. Supported shapes — which cover every
//! derive site in this workspace — are structs with named fields, unit and
//! tuple structs, and enums with unit, tuple and struct variants, all
//! without generic parameters. Anything else panics with a clear message
//! at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 1; // '#'
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
            {
                i += 1;
            }
            continue;
        }
        if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
            continue;
        }
        return i;
    }
}

/// Advances to the token after the next top-level comma, tracking angle
/// brackets so `Foo<A, B>` does not split a field or variant early.
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        if is_punct(&tokens[i], '<') {
            angle += 1;
        } else if is_punct(&tokens[i], '>') {
            angle -= 1;
        } else if is_punct(&tokens[i], ',') && angle <= 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Parses a `{ ... }` body of named fields into their names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        }
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde shim derive: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        i = skip_past_comma(&tokens, i + 1);
    }
    fields
}

/// Counts the fields of a `( ... )` tuple body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        i = skip_past_comma(&tokens, i);
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let f = Fields::Named(parse_named_fields(g));
                    i += 1;
                    f
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let f = Fields::Tuple(count_tuple_fields(g));
                    i += 1;
                    f
                }
                _ => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        // Skip an optional `= discriminant` and the trailing comma.
        i = skip_past_comma(&tokens, i);
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!(
            "serde shim derive: expected `struct` or `enum`, found `{}`",
            tokens[i]
        );
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, found `{other}`"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let kind = if is_enum {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g))
            }
            other => panic!("serde shim derive: expected enum body, found `{other}`"),
        }
    } else if i >= tokens.len() || is_punct(&tokens[i], ';') {
        ItemKind::Struct(Fields::Unit)
    } else {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g)))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            other => panic!("serde shim derive: expected struct body, found `{other}`"),
        }
    };
    Item { name, kind }
}

/// `#[derive(Serialize)]`: implements `serde::Serialize` by lowering the
/// item into a `serde::Value` tree, fields in declaration order, enums
/// externally tagged (real serde's default representation).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Object(__m)"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![( \
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![( \
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__m.push((::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ \
                                 let mut __m: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new(); {pushes} \
                                 ::serde::Value::Object(::std::vec![( \
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(__m))]) }},"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("serde shim derive: generated impl must parse")
}

/// `#[derive(Deserialize)]`: implements the shim's marker trait only.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", item.name)
        .parse()
        .expect("serde shim derive: generated impl must parse")
}

//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The offline build cannot pull real proptest, so this shim provides the
//! subset the workspace's tests use: the `proptest!` macro with
//! `arg in strategy` bindings, numeric range strategies,
//! `proptest::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Each property runs [`CASES`] deterministic cases seeded from the test
//! name, so failures reproduce exactly. There is no shrinking — a failing
//! case panics with the assertion message, like a plain `#[test]`.

pub use rand;

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Cases generated per property.
pub const CASES: u32 = 64;

/// A source of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed derived from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Property-test entry point (see crate docs).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>
                    ::seed_from_u64($crate::seed_for(stringify!($name)));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual proptest imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1u32..10, f in 0.0..1.0f64) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0.0..5.0f64, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| (0.0..5.0).contains(x)));
        }
    }

    #[test]
    fn seed_is_stable() {
        prop_assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        prop_assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}

//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a self-contained serialization core: a [`Serialize`] trait that
//! lowers values into a JSON-shaped [`Value`] tree, a matching derive
//! macro (`serde_derive`, hand-rolled, no `syn`/`quote`), and a
//! [`Deserialize`] marker so `#[derive(serde::Deserialize)]` keeps
//! compiling. Rendering to text lives in the `serde_json` shim.
//!
//! Enum representation follows real serde's externally-tagged default:
//! unit variants become strings, newtype variants `{"Variant": value}`,
//! tuple variants `{"Variant": [..]}`, struct variants
//! `{"Variant": {..}}`. Struct fields serialize in declaration order.

// Lets the derive macros' generated `::serde::...` paths resolve inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u128),
    /// Signed integer.
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Produces the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Marker trait so `#[derive(serde::Deserialize)]` type-checks.
/// No consumer in this workspace actually deserializes.
pub trait Deserialize<'de>: Sized {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_string().to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn collections_lower_recursively() {
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            ("a", 1u32).to_value(),
            Value::Array(vec![Value::Str("a".into()), Value::UInt(1)])
        );
    }

    #[test]
    fn derive_struct_and_enum() {
        #[derive(Serialize, Deserialize)]
        struct S {
            a: u32,
            b: f64,
        }
        #[derive(Serialize, Deserialize)]
        enum E {
            Unit,
            New(u32),
            Pair(u32, u32),
            Named { x: u32 },
        }
        let s = S { a: 1, b: 2.0 };
        assert_eq!(
            s.to_value(),
            Value::Object(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::Float(2.0)),
            ])
        );
        assert_eq!(E::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            E::New(7).to_value(),
            Value::Object(vec![("New".into(), Value::UInt(7))])
        );
        assert_eq!(
            E::Pair(1, 2).to_value(),
            Value::Object(vec![(
                "Pair".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)])
            )])
        );
        assert_eq!(
            E::Named { x: 9 }.to_value(),
            Value::Object(vec![(
                "Named".into(),
                Value::Object(vec![("x".into(), Value::UInt(9))])
            )])
        );
    }
}

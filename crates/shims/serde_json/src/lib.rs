//! Vendored minimal stand-in for `serde_json`: renders the serde shim's
//! `Value` tree as JSON text.
//!
//! Output is fully deterministic — object keys keep declaration order,
//! floats print via Rust's shortest round-trip formatting with a `.0`
//! suffix for integral values (matching serde_json's style), and
//! non-finite floats render as `null` (serde_json errors instead; the
//! shim degrades gracefully because experiment emission is best-effort).

use serde::{Serialize, Value};

/// Error type for API compatibility (this shim never fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_into(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{:.1}", v));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => float_into(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, 0, false);
    Ok(out)
}

/// Serializes `value` as pretty JSON (2-space indent, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, 0, true);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.0), Value::Float(2.5)]),
            ),
            ("s".into(), Value::Str("hi\"x".into())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[1.0,2.5],"s":"hi\"x"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}

//! The sharded, thread-parallel fleet engine.
//!
//! The fleet is a set of *cells* (fixed groups of
//! [`FleetConfig::cell_size`] instances, each with its own hot-spare
//! pool — think rack or pod). Cells never interact, so any partition of
//! cells into shards, stepped on any number of threads, produces the same
//! merged totals: per-instance RNG streams are derived from
//! `(seed, global instance index)`, all accumulators are integers, and
//! shard merging is integer addition. That is the engine's core
//! guarantee — **same seed ⇒ byte-identical [`FleetReport`] JSON at any
//! shard and thread count** — and `tests/fleet_determinism.rs` enforces
//! it.
//!
//! Within a shard, cells step cell-major (all ticks of one cell before
//! the next), which keeps each cell's working set hot in cache; the hot
//! loop is Poisson arithmetic plus [`StepCostTable`] lookups, with no
//! roofline evaluation, no allocation beyond queue churn, and no locks.

use crate::report::FleetReport;
use crate::state::{CellState, FailureRates, InstanceState, ServeKnobs, ShardTotals};
use crate::traffic::TrafficModel;
use crate::{FleetError, Result};
use litegpu_cluster::failure::FailureModel;
use litegpu_roofline::{EngineParams, StepCostTable};
use litegpu_specs::GpuSpec;
use litegpu_workload::ModelArch;

/// A complete fleet-simulation configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// GPU type.
    pub gpu: GpuSpec,
    /// Model served.
    pub arch: ModelArch,
    /// Roofline parameters (timing + SLOs).
    pub params: EngineParams,
    /// Model instances in the fleet.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Instances per repair cell (each cell has its own spare pool).
    pub cell_size: u32,
    /// GPU-sized hot spares per cell.
    pub spares_per_cell: u32,
    /// Request source (per-instance rate + diurnal/trace modulation).
    pub traffic: TrafficModel,
    /// Hardware failure model (annualized rates; see
    /// `litegpu_cluster::failure`'s unit convention).
    pub failure: FailureModel,
    /// Failure-rate acceleration (1.0 = real AFR; larger compresses
    /// years of failure behaviour into short horizons).
    pub failure_acceleration: f64,
    /// Largest prompt batch per prefill launch.
    pub max_prefill_batch: u32,
    /// Queue capacity per instance; beyond it requests are shed.
    pub max_queue_per_instance: u32,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
}

impl FleetConfig {
    /// A 1000-instance H100 fleet (tensor-parallel pairs serving
    /// Llama3-70B) under diurnal traffic with accelerated failures.
    pub fn h100_demo() -> Self {
        let gpu = litegpu_specs::catalog::h100();
        let failure = FailureModel::default_for(&gpu);
        Self {
            gpu,
            arch: litegpu_workload::models::llama3_70b(),
            params: EngineParams::paper_defaults(),
            instances: 1000,
            gpus_per_instance: 2,
            cell_size: 20,
            spares_per_cell: 1,
            traffic: TrafficModel::diurnal_demo(1.5),
            failure,
            failure_acceleration: 200.0,
            max_prefill_batch: 4,
            max_queue_per_instance: 10_000,
            horizon_s: 24.0 * 3600.0,
            tick_s: 1.0,
        }
    }

    /// The Lite-GPU fleet with the same aggregate silicon: instances of
    /// 8 Lite-GPUs (¼-H100 dies), same failure model calibration.
    pub fn lite_demo() -> Self {
        let gpu = litegpu_specs::catalog::lite_base();
        let failure = FailureModel::default_for(&litegpu_specs::catalog::h100());
        Self {
            gpu,
            gpus_per_instance: 8,
            failure,
            ..Self::h100_demo()
        }
    }

    /// Cells in the fleet.
    pub fn num_cells(&self) -> u32 {
        self.instances.div_ceil(self.cell_size)
    }

    /// Ticks in the horizon.
    pub fn num_ticks(&self) -> u32 {
        (self.horizon_s / self.tick_s).ceil() as u32
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, bool); 8] = [
            ("instances", self.instances as f64, self.instances > 0),
            (
                "gpus_per_instance",
                self.gpus_per_instance as f64,
                self.gpus_per_instance > 0,
            ),
            ("cell_size", self.cell_size as f64, self.cell_size > 0),
            (
                "max_prefill_batch",
                self.max_prefill_batch as f64,
                self.max_prefill_batch > 0,
            ),
            (
                "max_queue_per_instance",
                self.max_queue_per_instance as f64,
                self.max_queue_per_instance > 0,
            ),
            (
                "horizon_s",
                self.horizon_s,
                self.horizon_s.is_finite() && self.horizon_s > 0.0,
            ),
            (
                "tick_s",
                self.tick_s,
                self.tick_s.is_finite() && self.tick_s > 0.0 && self.tick_s <= 60.0,
            ),
            (
                "failure_acceleration",
                self.failure_acceleration,
                self.failure_acceleration.is_finite() && self.failure_acceleration >= 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(FleetError::InvalidParameter { name, value });
            }
        }
        if !(self.traffic.rate_per_instance_s.is_finite()
            && self.traffic.rate_per_instance_s >= 0.0)
        {
            return Err(FleetError::InvalidParameter {
                name: "rate_per_instance_s",
                value: self.traffic.rate_per_instance_s,
            });
        }
        Ok(())
    }

    fn knobs(&self) -> ServeKnobs {
        ServeKnobs {
            tick_us: (self.tick_s * 1e6).round() as u64,
            max_prefill_batch: self.max_prefill_batch,
            max_queue: self.max_queue_per_instance,
            ttft_slo_us: (self.params.constraints.ttft_max_s * 1e6).round() as u64,
            tbt_slo_us: (self.params.constraints.tbt_max_s * 1e6).round() as u64,
            output_len_mean: self.traffic.output_len_mean,
        }
    }

    fn failure_rates(&self) -> FailureRates {
        let per_hour = self
            .failure
            .failures_per_instance_hour(&self.gpu, self.gpus_per_instance)
            * self.failure_acceleration;
        FailureRates {
            mean_interval_us: if per_hour > 0.0 {
                3600.0e6 / per_hour
            } else {
                0.0
            },
            swap_us: (self.failure.spare_swap_hours * 3600.0e6).round() as u64,
            repair_us: (self.failure.mttr_hours * 3600.0e6).round() as u64,
        }
    }
}

/// Steps every cell in `[cell_lo, cell_hi)` through the whole horizon.
fn simulate_cells(
    cfg: &FleetConfig,
    seed: u64,
    lut: &StepCostTable,
    knobs: &ServeKnobs,
    rates: &FailureRates,
    cell_lo: u32,
    cell_hi: u32,
) -> ShardTotals {
    let mut acc = ShardTotals::new();
    let ticks = cfg.num_ticks();
    let tick_us = knobs.tick_us;
    // Per-tick arrival means are identical for every instance; compute
    // the modulation series once per shard.
    let lambda_per_tick: Vec<f64> = (0..ticks)
        .map(|t| cfg.traffic.rate_at((t as f64 + 0.5) * cfg.tick_s) * cfg.tick_s)
        .collect();
    for cell_idx in cell_lo..cell_hi {
        let first = cell_idx * cfg.cell_size;
        let last = (first + cfg.cell_size).min(cfg.instances);
        let mut cell = CellState::new(cfg.spares_per_cell);
        let mut insts: Vec<InstanceState> = (first..last)
            .map(|g| InstanceState::new(seed, g as u64, rates))
            .collect();
        for tick in 0..ticks {
            let t_start = tick as u64 * tick_us;
            cell.reclaim_repaired(t_start);
            let lambda = lambda_per_tick[tick as usize];
            for inst in insts.iter_mut() {
                inst.lifecycle(t_start, tick_us, rates, &mut cell, &mut acc);
                inst.arrivals(tick, lambda, knobs, &mut acc);
                inst.serve(tick, lut, knobs, &mut acc);
            }
        }
        let horizon_us = ticks as u64 * tick_us;
        for inst in &insts {
            acc.downtime_us += inst.pending_downtime_us(horizon_us);
        }
    }
    acc
}

/// Runs the fleet partitioned into `shards` shards on up to `threads`
/// OS threads. The partition affects wall-clock only: the report is
/// byte-identical for any `(shards, threads)`.
pub fn run_sharded(cfg: &FleetConfig, seed: u64, shards: u32, threads: u32) -> Result<FleetReport> {
    cfg.validate()?;
    let lut = StepCostTable::build(&cfg.gpu, &cfg.arch, cfg.gpus_per_instance, &cfg.params)?;
    let knobs = cfg.knobs();
    let rates = cfg.failure_rates();
    let cells = cfg.num_cells();
    let shards = shards.clamp(1, cells);
    let threads = threads.clamp(1, shards);
    // Shard s owns cells [s·cells/shards, (s+1)·cells/shards).
    let bounds = |s: u32| (s as u64 * cells as u64 / shards as u64) as u32;

    let mut slots: Vec<Option<ShardTotals>> = (0..shards).map(|_| None).collect();
    if threads == 1 {
        for (s, slot) in slots.iter_mut().enumerate() {
            let s = s as u32;
            *slot = Some(simulate_cells(
                cfg,
                seed,
                &lut,
                &knobs,
                &rates,
                bounds(s),
                bounds(s + 1),
            ));
        }
    } else {
        std::thread::scope(|scope| {
            let lut = &lut;
            let knobs = &knobs;
            let rates = &rates;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut s = w;
                        while s < shards {
                            out.push((
                                s,
                                simulate_cells(
                                    cfg,
                                    seed,
                                    lut,
                                    knobs,
                                    rates,
                                    bounds(s),
                                    bounds(s + 1),
                                ),
                            ));
                            s += threads;
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (s, acc) in h.join().expect("shard worker panicked") {
                    slots[s as usize] = Some(acc);
                }
            }
        });
    }

    let mut totals = ShardTotals::new();
    for slot in &slots {
        totals.merge(slot.as_ref().expect("every shard simulated"));
    }
    let horizon_s_eff = cfg.num_ticks() as f64 * cfg.tick_s;
    Ok(FleetReport::finalize(
        &totals,
        cfg.gpu.name.clone(),
        cfg.arch.name.clone(),
        cfg.instances,
        cfg.gpus_per_instance,
        cells,
        cells * cfg.spares_per_cell,
        horizon_s_eff,
        cfg.tick_s,
    ))
}

/// Runs the fleet with maximum parallelism (one shard per cell, one
/// thread per available core). Same result as any other sharding.
pub fn run(cfg: &FleetConfig, seed: u64) -> Result<FleetReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    run_sharded(cfg, seed, cfg.num_cells(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        let mut c = FleetConfig::h100_demo();
        c.instances = 24;
        c.cell_size = 4;
        c.horizon_s = 900.0;
        c.failure_acceleration = 100_000.0;
        c
    }

    #[test]
    fn small_fleet_serves_and_fails() {
        let r = run_sharded(&small_cfg(), 7, 1, 1).unwrap();
        assert!(r.arrived > 0);
        assert!(r.completed > 0);
        assert!(r.generated_tokens > r.completed);
        assert!(r.failures > 0, "acceleration should inject failures");
        assert!(r.availability < 1.0 && r.availability > 0.5);
        assert!(r.ttft_p50_s > 0.0);
    }

    #[test]
    fn shard_and_thread_counts_do_not_change_the_report() {
        let cfg = small_cfg();
        let base = run_sharded(&cfg, 42, 1, 1).unwrap();
        for (shards, threads) in [(2, 1), (3, 2), (6, 4), (6, 8)] {
            let r = run_sharded(&cfg, 42, shards, threads).unwrap();
            assert_eq!(r, base, "shards={shards} threads={threads}");
            assert_eq!(r.to_json(), base.to_json());
        }
        let auto = run(&cfg, 42).unwrap();
        assert_eq!(auto, base);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let a = run_sharded(&cfg, 1, 2, 2).unwrap();
        let b = run_sharded(&cfg, 2, 2, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn spares_absorb_failures_and_raise_availability() {
        let mut cfg = small_cfg();
        cfg.spares_per_cell = 0;
        let none = run_sharded(&cfg, 5, 2, 2).unwrap();
        cfg.spares_per_cell = 2;
        let some = run_sharded(&cfg, 5, 2, 2).unwrap();
        assert_eq!(none.spare_hits, 0);
        assert!(some.spare_hits > 0);
        assert!(
            some.availability > none.availability,
            "with spares {} vs without {}",
            some.availability,
            none.availability
        );
    }

    #[test]
    fn lite_fleet_spare_overhead_is_quarter_of_h100() {
        // Same spare-unit count per cell; Lite spare units are ¼-size
        // dies, so the fleet-fraction cost is 4x smaller — §3's cheap
        // hot spares.
        let h = FleetConfig::h100_demo();
        let l = FleetConfig::lite_demo();
        let oh = h.spares_per_cell as f64 * h.num_cells() as f64
            / (h.instances * h.gpus_per_instance) as f64;
        let ol = l.spares_per_cell as f64 * l.num_cells() as f64
            / (l.instances * l.gpus_per_instance) as f64;
        assert!((oh / ol - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_failures_means_full_availability() {
        let mut cfg = small_cfg();
        cfg.failure_acceleration = 0.0;
        let r = run_sharded(&cfg, 3, 2, 2).unwrap();
        assert_eq!(r.failures, 0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.retried, 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = small_cfg();
        c.instances = 0;
        assert!(run_sharded(&c, 1, 1, 1).is_err());
        let mut c = small_cfg();
        c.tick_s = 0.0;
        assert!(run_sharded(&c, 1, 1, 1).is_err());
        let mut c = small_cfg();
        c.horizon_s = f64::NAN;
        assert!(run_sharded(&c, 1, 1, 1).is_err());
    }
}

//! The sharded, thread-parallel fleet engine.
//!
//! The fleet is a set of *cells* (fixed groups of
//! [`FleetConfig::cell_size`] instances, each with its own hot-spare
//! pool — think rack or pod). Cells never interact, so any partition of
//! cells into shards, stepped on any number of threads, produces the same
//! merged totals: per-instance and per-(cell, tenant) RNG streams are
//! derived from `(seed, global index)`, all accumulators are integers,
//! and shard merging is integer addition. That is the engine's core
//! guarantee — **same seed ⇒ byte-identical [`FleetReport`] JSON at any
//! shard and thread count** — and `tests/fleet_determinism.rs` enforces
//! it.
//!
//! Traffic is a multi-tenant [`WorkloadSpec`]: each tenant's arrivals are
//! drawn per *cell* from the tenant's own dedicated RNG stream (demand is
//! exogenous — it does not shrink when instances park or fail) and routed
//! over the cell's instances with exact integer largest-remainder
//! splitting, **in priority order**: `Interactive` tenants claim queue
//! room first, then `Batch`, then `BestEffort`. When the control plane's
//! admission control has revoked best-effort admission
//! ([`litegpu_ctrl::Command::SetAdmission`]), best-effort arrivals are
//! shed at the cell boundary and counted per tenant.
//!
//! When a control plane is configured ([`FleetConfig::ctrl`]), a
//! **control tick** runs between data ticks: each cell's
//! [`litegpu_ctrl::ControllerStack`] observes the cell (including
//! per-priority-class arrival counts) and issues commands — autoscaler
//! parks/activations (with warm/cold boot latency), power-gating of
//! parked instances, routing-weight refreshes, and admission changes.
//! All controller state is per-cell, lives inside the shard partition,
//! and draws from the cell's own RNG stream, so controlled runs keep the
//! byte-identical guarantee. Without a control plane every instance
//! (live or down — no router means stranded traffic) weighs equally in
//! the split.
//!
//! Within a shard, cells step cell-major (the whole horizon of one cell
//! before the next), which keeps each cell's working set hot in cache.
//! The per-cell hot loop is an **event-queue scheduler**, not a
//! per-tick scan: all timestamps are integer microseconds quantized to
//! the tick grid, each cell owns a binary-heap event queue
//! (`(tick, instance)` entries, ordered by timestamp then instance
//! index so ties drain in a total order), and the loop only *processes*
//! a tick when something is due there. The event sources are
//!
//! - **step completions** — instances holding queued or running work sit
//!   in a sorted busy list and are served every tick until idle again;
//! - **arrival cohorts** — each (cell, tenant) Poisson stream is
//!   pre-drawn over the horizon (same RNG draws, same order as the old
//!   per-tick engine, so the streams are bit-identical) into a sorted
//!   arrival schedule consumed by a cursor;
//! - **KV-transfer deliveries** — the phase-split link wakes the cell
//!   when its FIFO head lands (or every tick while the head is blocked
//!   on a full decode batch);
//! - **control ticks** — the periodic controller cadence, plus boot
//!   completions promoted on their own schedule;
//! - **chaos / lifecycle events** — instance failure and recovery
//!   times, campaign window edges (outage/partition/drain/thermal
//!   start and end), and repair-crew dispatch completions, all pushed
//!   as heap wakeups when their integer-µs times are computed.
//!
//! Between events, idle instances accrue nothing per tick: idle energy,
//! live-tick and clock-residency counters are billed **lazily** in
//! closed-form spans (`accrue_idle_span`) whenever an instance is next
//! touched — or when a mode/clock transition, series sample, or the
//! horizon end forces the span closed. Spurious wakeups are harmless by
//! construction (every phase is a no-op when nothing is due — exactly
//! what the per-tick engine executed on quiet ticks), so correctness
//! only ever hinges on *never missing* a due event; the equivalence
//! suite (`crates/bench/tests/engine_equivalence.rs`) pins the result
//! to the pre-refactor engine's bytes, and the hot path stays Poisson
//! arithmetic plus [`StepCostTable`] lookups, with no roofline
//! evaluation, no allocation beyond queue churn, and no locks.

use crate::report::{FleetReport, RunMeta, TenantMeta};
use crate::state::{
    CellState, FailureRates, InstanceState, KvLinkState, ServeKnobs, ShardTotals, TenantKnobs,
    TraceSink,
};
use crate::traffic::PoissonPlan;
use crate::workload::WorkloadSpec;
use crate::{FleetError, Result};
use litegpu_cluster::failure::FailureModel;
use litegpu_cluster::power_mgmt::{self, Policy};
use litegpu_ctrl::{
    apportion_into, BalancerConfig, CellObs, ClockPoint, Command, CtrlConfig, FleetCellObs,
    FleetController, FleetObs, InstanceObs, Mode, Phase, PhaseObs, PriorityClass,
};
use litegpu_roofline::{EngineParams, StepCostTable};
use litegpu_specs::power::{PowerModel, DVFS_EXPONENT};
use litegpu_specs::GpuSpec;
use litegpu_telemetry::profile::{
    PHASE_CHAOS, PHASE_CONTROL, PHASE_KV, PHASE_LIFECYCLE, PHASE_MERGE, PHASE_ROUTE, PHASE_SAMPLE,
    PHASE_SERVE,
};
use litegpu_telemetry::{
    MetricId, MetricKind, PhaseProfile, SeriesRecorder, SpanSampler, TraceEvent,
};
use litegpu_workload::{kv, ModelArch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Per-cell prefill→decode KV bandwidth budget for phase-split serving.
///
/// The budget models the slice of the cell's scale-out fabric that KV
/// streaming may claim: prefill instances inject their completed caches
/// onto one serialized link per cell, and transfers queue FIFO behind
/// each other. Defaults derive from the GPU's own network bandwidth via
/// [`KvLink::for_instance`], which is what makes the H100-vs-Lite trade
/// measurable: the paper's Table 1 scales per-GPU links down 4× while
/// instances carry 4× the GPUs, so the per-instance injection bandwidth
/// (and hence the default budget) only holds if network bandwidth scales
/// with GPU count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvLink {
    /// Cell KV bandwidth, GB/s (decimal GB).
    pub bandwidth_gbps: f64,
    /// Outstanding-transfer backlog, in seconds of link time, beyond
    /// which the prefill pool stalls (back-pressure).
    pub max_backlog_s: f64,
}

impl KvLink {
    /// Fraction of one instance's aggregate injection bandwidth the KV
    /// stream may claim by default (the rest stays with tensor-parallel
    /// collectives).
    pub const DEFAULT_INJECTION_SHARE: f64 = 0.1;

    /// Default backlog threshold, seconds of link time.
    pub const DEFAULT_MAX_BACKLOG_S: f64 = 0.25;

    /// Derives the cell budget from the spec: one instance's aggregate
    /// injection bandwidth (`gpus × net_bw`) × the KV share. Both demo
    /// fleets land on the same number (2×450 = 8×112.5 GB/s) — the §2
    /// condition that network bandwidth scale with GPU count, met by
    /// Table 1's Lite design.
    pub fn for_instance(gpu: &GpuSpec, gpus_per_instance: u32) -> Self {
        Self {
            bandwidth_gbps: gpu.net_bw_gbps
                * gpus_per_instance as f64
                * Self::DEFAULT_INJECTION_SHARE,
            max_backlog_s: Self::DEFAULT_MAX_BACKLOG_S,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.bandwidth_gbps.is_finite() && self.bandwidth_gbps > 0.0) {
            return Err(FleetError::InvalidParameter {
                name: "kv_link.bandwidth_gbps",
                value: self.bandwidth_gbps,
            });
        }
        if !(self.max_backlog_s.is_finite() && self.max_backlog_s > 0.0) {
            return Err(FleetError::InvalidParameter {
                name: "kv_link.max_backlog_s",
                value: self.max_backlog_s,
            });
        }
        Ok(())
    }
}

/// The kind of a scheduled correlated-failure (chaos) event, mirroring
/// `litegpu_cluster::domain::DomainKind`'s correlated kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DomainEventKind {
    /// A whole rack goes dark: every affected instance is forced down
    /// for the event window and queues for a repair crew at window end.
    RackLoss,
    /// A power-domain (breaker group) trip — same mechanics as
    /// [`DomainEventKind::RackLoss`] over a larger instance set.
    PowerDomainLoss,
    /// The affected instances' cells are cut off from the front door:
    /// arrivals to those cells are shed for the window (instances keep
    /// serving already-queued work).
    NetworkPartition,
    /// A cooling excursion clamps the affected instances' clocks to at
    /// most `clamp` (as a fraction of nominal) for the window, priced
    /// through the DVFS operating-point grid.
    ThermalExcursion {
        /// Maximum sustainable clock factor during the excursion.
        clamp: f64,
    },
    /// A planned rolling upgrade: affected instances are drained (no new
    /// routing or KV deliveries; queued work keeps serving) for the
    /// window, then restored.
    RollingDrain,
}

impl DomainEventKind {
    /// Index into the `by_kind` failure-breakdown array (shared with
    /// `litegpu_cluster::domain::DomainKind::index`).
    fn breakdown_index(&self) -> usize {
        match self {
            DomainEventKind::RackLoss => 1,
            DomainEventKind::PowerDomainLoss => 2,
            DomainEventKind::NetworkPartition => 3,
            DomainEventKind::ThermalExcursion { .. } => 4,
            DomainEventKind::RollingDrain => 1, // Unused: drains are not failures.
        }
    }
}

/// One scheduled chaos event over the window `[start_us, end_us)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainEvent {
    /// What happens.
    pub kind: DomainEventKind,
    /// Window start, µs of simulated time.
    pub start_us: u64,
    /// Window end, µs (exclusive).
    pub end_us: u64,
    /// Global instance indices affected. For
    /// [`DomainEventKind::NetworkPartition`] the *cells* containing these
    /// instances are partitioned whole.
    pub instances: Vec<u32>,
}

/// A compiled chaos campaign: the full, deterministic event schedule.
/// Compiled once from `(config, campaign, seed)` before sharding — every
/// shard sees the same schedule, so the byte-identical-report guarantee
/// holds under chaos too. `litegpu-chaos` is the campaign compiler; an
/// empty spec (the default) runs the fleet without correlated events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSpec {
    /// Scheduled events, in any order.
    pub events: Vec<DomainEvent>,
}

impl ChaosSpec {
    /// Whether any event clamps clocks (forces pricing the DVFS grid).
    pub fn has_thermal(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, DomainEventKind::ThermalExcursion { .. }))
    }
}

/// How the fleet divides the two inference phases — the fleet-scale
/// analogue of `litegpu_sim::SchedulerKind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServingMode {
    /// Every instance interleaves prefill and decode (continuous
    /// batching), so prefill launches stretch decode token gaps.
    Monolithic,
    /// Splitwise/DistServe-style: each cell partitions its instances
    /// into a prefill pool and a decode pool; completed prefills stream
    /// their KV caches over the cell's [`KvLink`], whose queueing delay
    /// lands in TTFT and whose saturation back-pressures the prefill
    /// pool. Decode TBT books stay isolated from prefill interference.
    PhaseSplit {
        /// Fraction of each cell's instances reserved for prefill, in
        /// `(0, 1)` (at least one slot per pool is always kept). The
        /// phase-aware autoscaler rebalances from this starting split.
        prefill_fraction: f64,
        /// The cell's KV bandwidth budget.
        kv_link: KvLink,
    },
}

impl ServingMode {
    /// Phase-split with demo defaults: a 25% prefill pool and the
    /// spec-derived KV link.
    pub fn split_demo(gpu: &GpuSpec, gpus_per_instance: u32) -> Self {
        ServingMode::PhaseSplit {
            prefill_fraction: 0.25,
            kv_link: KvLink::for_instance(gpu, gpus_per_instance),
        }
    }

    /// Stable label for reports.
    pub fn label(&self) -> String {
        match self {
            ServingMode::Monolithic => "monolithic".to_string(),
            ServingMode::PhaseSplit {
                prefill_fraction,
                kv_link,
            } => format!(
                "phase-split(prefill={prefill_fraction:.2},kv={:.0}GB/s)",
                kv_link.bandwidth_gbps
            ),
        }
    }
}

/// Observability knobs. All layers default off and none of them may
/// change a single report byte: series and traces are integer records of
/// simulation state merged deterministically ([`run_sharded_full`]
/// returns them beside the report), while the profile measures host
/// wall-clock and is exported only through non-determinism-diffed
/// artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TelemetryConfig {
    /// Time-series sample window, integer µs of simulated time (0
    /// disables the series layer). Rounded to a whole number of ticks,
    /// minimum one tick.
    pub series_dt_us: u64,
    /// Also record per-cell copies of the key series metrics
    /// (`cell{i}/...` — fleet-wide metrics are always recorded).
    pub per_cell_series: bool,
    /// Trace 1 in `trace_every` request spans (0 disables request spans
    /// and, together with the control/chaos events, the trace layer).
    pub trace_every: u32,
    /// Record per-phase engine wall-clock into a [`PhaseProfile`].
    pub profile: bool,
}

impl TelemetryConfig {
    /// Whether any deterministic layer (series or trace) is on.
    pub fn observes(&self) -> bool {
        self.series_dt_us > 0 || self.trace_every > 0
    }
}

/// A complete fleet-simulation configuration.
///
/// Start from a preset ([`FleetConfig::lite_demo`] /
/// [`FleetConfig::h100_demo`]) and override fields; `run*` validates on
/// entry.
///
/// # Examples
///
/// ```
/// use litegpu_fleet::engine::{run, FleetConfig};
///
/// let mut cfg = FleetConfig::lite_demo();
/// cfg.instances = 16;
/// cfg.cell_size = 8;      // two cells, each with its own spare pool
/// cfg.horizon_s = 600.0;  // 10 simulated minutes
/// let report = run(&cfg, 42).unwrap();
/// assert_eq!(report.instances, 16);
/// assert!(report.completed > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// GPU type.
    pub gpu: GpuSpec,
    /// Model served.
    pub arch: ModelArch,
    /// Roofline parameters (timing + default SLOs; tenants may override
    /// their own SLO targets).
    pub params: EngineParams,
    /// Model instances in the fleet.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Instances per repair cell (each cell has its own spare pool).
    pub cell_size: u32,
    /// GPU-sized hot spares per cell.
    pub spares_per_cell: u32,
    /// Repair crews per cell: finite workers serving the integer-µs
    /// repair queue (spare replenishment and in-place recoveries). Jobs
    /// beyond the crew count wait, so repair backlog and spare
    /// starvation interact.
    pub repair_crews_per_cell: u32,
    /// Scheduled correlated-failure events (chaos campaign). Empty by
    /// default; compile campaigns with the `litegpu-chaos` crate.
    pub chaos: ChaosSpec,
    /// The multi-tenant workload (tenants, shares, patterns, priorities,
    /// SLOs). Legacy single-source configs convert with
    /// `TrafficModel::into()`.
    pub workload: WorkloadSpec,
    /// Per-cell arrival-rate multipliers for skewed load (hot/cold
    /// cells). Empty means uniform (1.0 everywhere); otherwise the
    /// length must equal [`FleetConfig::num_cells`]. Cell `c`'s Poisson
    /// means are scaled by `cell_rate_multipliers[c]` — the knob the
    /// fleet-scope balancer headline experiments turn.
    pub cell_rate_multipliers: Vec<f64>,
    /// Hardware failure model (annualized rates; see
    /// `litegpu_cluster::failure`'s unit convention).
    pub failure: FailureModel,
    /// Failure-rate acceleration (1.0 = real AFR; larger compresses
    /// years of failure behaviour into short horizons).
    pub failure_acceleration: f64,
    /// Largest prompt batch per prefill launch.
    pub max_prefill_batch: u32,
    /// Queue capacity per instance; beyond it requests are shed.
    pub max_queue_per_instance: u32,
    /// Control plane (autoscaling, power gating, routing, admission);
    /// `None` runs the fixed fleet with uniform cell-level splitting.
    pub ctrl: Option<CtrlConfig>,
    /// How instances divide the two inference phases: monolithic
    /// continuous batching, or Splitwise-style prefill/decode pools with
    /// a per-cell KV-transfer budget.
    pub serving: ServingMode,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
    /// Observability: time series, trace export, self-profiling (all off
    /// by default; none may change the report bytes).
    pub telemetry: TelemetryConfig,
}

impl FleetConfig {
    /// A 1000-instance H100 fleet (tensor-parallel pairs serving
    /// Llama3-70B) under single-tenant diurnal traffic with accelerated
    /// failures.
    pub fn h100_demo() -> Self {
        let gpu = litegpu_specs::catalog::h100();
        let failure = FailureModel::default_for(&gpu);
        Self {
            gpu,
            arch: litegpu_workload::models::llama3_70b(),
            params: EngineParams::paper_defaults(),
            instances: 1000,
            gpus_per_instance: 2,
            cell_size: 20,
            spares_per_cell: 1,
            repair_crews_per_cell: 2,
            chaos: ChaosSpec::default(),
            workload: WorkloadSpec::diurnal_demo(1.5),
            cell_rate_multipliers: Vec::new(),
            failure,
            failure_acceleration: 200.0,
            max_prefill_batch: 4,
            max_queue_per_instance: 10_000,
            ctrl: None,
            serving: ServingMode::Monolithic,
            horizon_s: 24.0 * 3600.0,
            tick_s: 1.0,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// The Lite-GPU fleet with the same aggregate silicon: instances of
    /// 8 Lite-GPUs (¼-H100 dies). The failure model uses the same
    /// physical calibration (AFR per mm² of silicon), which the
    /// area-scaling default now applies to the Lite package.
    pub fn lite_demo() -> Self {
        let gpu = litegpu_specs::catalog::lite_base();
        let failure = FailureModel::default_for(&gpu);
        Self {
            gpu,
            gpus_per_instance: 8,
            failure,
            ..Self::h100_demo()
        }
    }

    /// The controlled H100 fleet: autoscaler + router, with parked
    /// instances only able to down-clock ([`Policy::DvfsAll`] — the
    /// monolithic-GPU limitation of §3).
    pub fn h100_ctrl_demo() -> Self {
        Self {
            ctrl: Some(CtrlConfig::demo(Policy::DvfsAll)),
            ..Self::h100_demo()
        }
    }

    /// The controlled Lite fleet: same autoscaler + router, but parked
    /// instances power off ([`Policy::GateToEfficiency`] — the per-unit
    /// gating Lite-GPU granularity enables).
    pub fn lite_ctrl_demo() -> Self {
        Self {
            ctrl: Some(CtrlConfig::demo(Policy::GateToEfficiency)),
            ..Self::lite_demo()
        }
    }

    /// Switches this configuration to phase-split serving with demo
    /// defaults (25% prefill pool, spec-derived KV link).
    pub fn with_phase_split(mut self) -> Self {
        self.serving = ServingMode::split_demo(&self.gpu, self.gpus_per_instance);
        self
    }

    /// Cells in the fleet.
    pub fn num_cells(&self) -> u32 {
        self.instances.div_ceil(self.cell_size)
    }

    /// Ticks in the horizon.
    pub fn num_ticks(&self) -> u32 {
        (self.horizon_s / self.tick_s).ceil() as u32
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, bool); 9] = [
            ("instances", self.instances as f64, self.instances > 0),
            (
                "repair_crews_per_cell",
                self.repair_crews_per_cell as f64,
                self.repair_crews_per_cell > 0,
            ),
            (
                "gpus_per_instance",
                self.gpus_per_instance as f64,
                self.gpus_per_instance > 0,
            ),
            ("cell_size", self.cell_size as f64, self.cell_size > 0),
            (
                "max_prefill_batch",
                self.max_prefill_batch as f64,
                self.max_prefill_batch > 0,
            ),
            (
                "max_queue_per_instance",
                self.max_queue_per_instance as f64,
                self.max_queue_per_instance > 0,
            ),
            (
                "horizon_s",
                self.horizon_s,
                self.horizon_s.is_finite() && self.horizon_s > 0.0,
            ),
            (
                "tick_s",
                self.tick_s,
                self.tick_s.is_finite() && self.tick_s > 0.0 && self.tick_s <= 60.0,
            ),
            (
                "failure_acceleration",
                self.failure_acceleration,
                self.failure_acceleration.is_finite() && self.failure_acceleration >= 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(FleetError::InvalidParameter { name, value });
            }
        }
        for event in &self.chaos.events {
            if event.end_us <= event.start_us {
                return Err(FleetError::InvalidParameter {
                    name: "chaos event window (end_us must exceed start_us)",
                    value: event.end_us as f64,
                });
            }
            if let Some(&g) = event.instances.iter().find(|&&g| g >= self.instances) {
                return Err(FleetError::InvalidParameter {
                    name: "chaos event instance index",
                    value: g as f64,
                });
            }
            if let DomainEventKind::ThermalExcursion { clamp } = event.kind {
                if !(clamp.is_finite() && clamp > 0.0 && clamp <= 1.0) {
                    return Err(FleetError::InvalidParameter {
                        name: "thermal clamp (must be in (0, 1])",
                        value: clamp,
                    });
                }
            }
        }
        if !self.cell_rate_multipliers.is_empty() {
            if self.cell_rate_multipliers.len() != self.num_cells() as usize {
                return Err(FleetError::InvalidParameter {
                    name: "cell_rate_multipliers (length must equal num_cells)",
                    value: self.cell_rate_multipliers.len() as f64,
                });
            }
            if let Some(&m) = self
                .cell_rate_multipliers
                .iter()
                .find(|m| !(m.is_finite() && **m >= 0.0))
            {
                return Err(FleetError::InvalidParameter {
                    name: "cell_rate_multipliers (entries must be finite and >= 0)",
                    value: m,
                });
            }
        }
        self.workload.validate().map_err(FleetError::Workload)?;
        if let Some(ctrl) = &self.ctrl {
            ctrl.validate().map_err(FleetError::Ctrl)?;
        }
        if let ServingMode::PhaseSplit {
            prefill_fraction,
            kv_link,
        } = &self.serving
        {
            if !(prefill_fraction.is_finite() && *prefill_fraction > 0.0 && *prefill_fraction < 1.0)
            {
                return Err(FleetError::InvalidParameter {
                    name: "prefill_fraction",
                    value: *prefill_fraction,
                });
            }
            kv_link.validate()?;
            // Every cell needs at least one slot per pool: cells of one
            // instance cannot split.
            if self.cell_size < 2 || self.instances % self.cell_size == 1 {
                return Err(FleetError::InvalidParameter {
                    name: "cell_size (phase-split needs ≥ 2 instances per cell)",
                    value: self.cell_size as f64,
                });
            }
        }
        Ok(())
    }

    fn knobs(&self) -> ServeKnobs {
        let default_ttft_us = (self.params.constraints.ttft_max_s * 1e6).round() as u64;
        let default_tbt_us = (self.params.constraints.tbt_max_s * 1e6).round() as u64;
        let default_prompt = self.params.constraints.prompt_len.max(1);
        let kv_bytes_per_token = kv::bytes_per_token(&self.arch, self.params.precision);
        ServeKnobs {
            tick_us: (self.tick_s * 1e6).round() as u64,
            max_prefill_batch: self.max_prefill_batch,
            max_queue: self.max_queue_per_instance,
            tenants: self
                .workload
                .tenants
                .iter()
                .map(|t| {
                    let prompt = t.prompt_len_mean.unwrap_or(default_prompt).max(1);
                    TenantKnobs {
                        ttft_slo_us: t
                            .ttft_slo_s
                            .map_or(default_ttft_us, |s| (s * 1e6).round() as u64),
                        tbt_slo_us: t
                            .tbt_slo_s
                            .map_or(default_tbt_us, |s| (s * 1e6).round() as u64),
                        output_len: t.output_len,
                        prefill_num: prompt,
                        prefill_den: default_prompt,
                        kv_bytes_per_req: (prompt as f64 * kv_bytes_per_token).round() as u64,
                    }
                })
                .collect(),
        }
    }

    fn failure_rates(&self) -> FailureRates {
        let per_hour = self
            .failure
            .failures_per_instance_hour(&self.gpu, self.gpus_per_instance)
            * self.failure_acceleration;
        FailureRates {
            mean_interval_us: if per_hour > 0.0 {
                3600.0e6 / per_hour
            } else {
                0.0
            },
            swap_us: (self.failure.spare_swap_hours * 3600.0e6).round() as u64,
            repair_us: (self.failure.mttr_hours * 3600.0e6).round() as u64,
        }
    }

    /// Whether the control plane runs the serving-time DVFS policy (which
    /// is what makes the engine price a full clock grid).
    pub fn dvfs_enabled(&self) -> bool {
        self.ctrl.as_ref().is_some_and(|c| c.dvfs.is_some())
    }

    /// Integer per-instance power rates (mW), for exact energy
    /// accumulation: `energy_µJ = power_mW × time_µs / 1000`. Dynamic
    /// power is priced per operating point on the same cubic
    /// `P_dyn ∝ clock³` curve `power_mgmt::power_at_load` draws from
    /// ([`PowerModel::power_w`]); the idle floor is clock-independent.
    fn instance_power(&self, clock_points: &[f64]) -> InstancePower {
        let model = PowerModel::for_spec(&self.gpu);
        let g = self.gpus_per_instance as f64;
        InstancePower {
            idle_mw: (model.idle_w * g * 1000.0).round() as u64,
            dyn_mw: clock_points
                .iter()
                .map(|&c| (model.dynamic_w * g * 1000.0 * c.powf(DVFS_EXPONENT)).round() as u64)
                .collect(),
        }
    }

    /// Sustainable request throughput of one instance at clock point
    /// `ci`, requests/s — the capacity estimate the autoscaler sizes
    /// cells against (at nominal) and DVFS scales per point: per-request
    /// cost is an amortized prefill launch (scaled by the workload's
    /// share-weighted mean prompt length, matching what
    /// `TenantKnobs::prefill_cost_us` actually charges) plus the
    /// share-weighted mean output length in decode steps at full batch.
    fn capacity_rps_at(&self, lut: &StepCostTable, ci: usize) -> f64 {
        let b = self
            .max_prefill_batch
            .min(lut.max_prefill_batch)
            .min(lut.max_batch)
            .max(1);
        let prompt_scale = self
            .workload
            .mean_prompt_scale(self.params.constraints.prompt_len);
        let per_req_us = lut.prefill_us_at(ci, b) as f64 * prompt_scale / b as f64
            + self.workload.mean_output_len() * lut.decode_step_us_at(ci, lut.max_batch) as f64
                / lut.max_batch as f64;
        1e6 / per_req_us.max(1.0)
    }

    /// [`Self::capacity_rps_at`] at the nominal clock.
    fn capacity_rps(&self, lut: &StepCostTable) -> f64 {
        self.capacity_rps_at(lut, lut.nominal_clock_idx())
    }

    /// Sustainable request throughput of one *dedicated prefill* instance
    /// at clock point `ci`, requests/s — the prefill half of
    /// [`Self::capacity_rps_at`].
    fn prefill_capacity_rps_at(&self, lut: &StepCostTable, ci: usize) -> f64 {
        let b = self.max_prefill_batch.min(lut.max_prefill_batch).max(1);
        let prompt_scale = self
            .workload
            .mean_prompt_scale(self.params.constraints.prompt_len);
        1e6 / (lut.prefill_us_at(ci, b) as f64 * prompt_scale / b as f64).max(1.0)
    }

    /// Sustainable request throughput of one *dedicated decode* instance
    /// at clock point `ci`, requests/s — the decode half of
    /// [`Self::capacity_rps_at`].
    fn decode_capacity_rps_at(&self, lut: &StepCostTable, ci: usize) -> f64 {
        let per_req_us = self.workload.mean_output_len()
            * lut.decode_step_us_at(ci, lut.max_batch) as f64
            / lut.max_batch as f64;
        1e6 / per_req_us.max(1.0)
    }

    /// The DVFS operating points as controllers observe them: per-point
    /// throughput scales per serving role (exactly the capacity model
    /// above, so policy and pricing cannot disagree) and SLO-feasibility
    /// guards against the tightest per-tenant targets. A decode point is
    /// feasible while a full-batch step still meets every tenant's TBT
    /// SLO; a prefill point while every tenant's prompt-scaled launch
    /// fits half its TTFT budget (the other half stays reserved for
    /// queueing). Empty on nominal-only tables.
    fn clock_obs(&self, lut: &StepCostTable, knobs: &ServeKnobs) -> Vec<ClockPoint> {
        if lut.num_clocks() < 2 {
            return Vec::new();
        }
        let nom = lut.nominal_clock_idx();
        let pb = self
            .max_prefill_batch
            .min(lut.max_prefill_batch)
            .min(lut.max_batch)
            .max(1);
        let mixed_nom = self.capacity_rps_at(lut, nom);
        let prefill_nom = self.prefill_capacity_rps_at(lut, nom);
        let decode_nom = self.decode_capacity_rps_at(lut, nom);
        lut.clock_points()
            .iter()
            .enumerate()
            .map(|(ci, &clock)| ClockPoint {
                clock,
                mixed_scale: self.capacity_rps_at(lut, ci) / mixed_nom,
                prefill_scale: self.prefill_capacity_rps_at(lut, ci) / prefill_nom,
                decode_scale: self.decode_capacity_rps_at(lut, ci) / decode_nom,
                prefill_slo_ok: knobs
                    .tenants
                    .iter()
                    .all(|t| t.prefill_cost_us(lut.prefill_us_at(ci, pb)) <= t.ttft_slo_us / 2),
                decode_slo_ok: knobs
                    .tenants
                    .iter()
                    .all(|t| lut.decode_step_us_at(ci, lut.max_batch) <= t.tbt_slo_us),
            })
            .collect()
    }

    fn tenant_meta(&self, knobs: &ServeKnobs) -> Vec<TenantMeta> {
        self.workload
            .tenants
            .iter()
            .zip(&knobs.tenants)
            .map(|(t, k)| TenantMeta {
                name: t.name.clone(),
                priority: t.priority,
                ttft_slo_s: k.ttft_slo_us as f64 / 1e6,
                tbt_slo_s: k.tbt_slo_us as f64 / 1e6,
            })
            .collect()
    }
}

/// Per-instance power rates in integer milliwatts. Dynamic power is one
/// rate per DVFS operating point (cubic in clock); nominal is the last.
#[derive(Debug, Clone)]
struct InstancePower {
    idle_mw: u64,
    dyn_mw: Vec<u64>,
}

/// Phase-split context derived once per run (integer link parameters +
/// per-phase capacities for the phase-aware autoscaler).
#[derive(Debug, Clone, Copy)]
struct SplitShared {
    prefill_fraction: f64,
    /// Cell link bandwidth, integer bytes/second.
    kv_bytes_per_s: u64,
    /// Back-pressure threshold, µs of link time.
    kv_max_backlog_us: u64,
    prefill_capacity_rps: f64,
    decode_capacity_rps: f64,
}

impl SplitShared {
    /// The static per-cell pool split: at least one slot per pool.
    fn prefill_slots(&self, cell_slots: usize) -> usize {
        ((cell_slots as f64 * self.prefill_fraction).round() as usize).clamp(1, cell_slots - 1)
    }
}

/// Read-only per-run context shared by every shard.
struct Shared<'a> {
    cfg: &'a FleetConfig,
    lut: &'a StepCostTable,
    knobs: ServeKnobs,
    rates: FailureRates,
    power: InstancePower,
    cap_rps: f64,
    /// DVFS operating points as controllers observe them (empty on
    /// nominal-only runs).
    clock_points: Vec<ClockPoint>,
    /// Index of the nominal clock point in the step-cost table.
    nominal_ci: u8,
    /// Phase-split parameters (`None` for monolithic serving).
    split: Option<SplitShared>,
    /// Tenant indices in admission order (priority class, then
    /// declaration order).
    priority_order: Vec<u16>,
    /// Tenant priority classes, indexed by tenant id.
    classes: Vec<PriorityClass>,
    /// Per-tenant per-tick arrival mean per instance
    /// (`lambda[tenant][tick]`), precomputed once per run.
    lambda: Vec<Vec<f64>>,
    /// Pre-resolved Poisson draws (`plans[tenant][tick]`) for a
    /// full-size cell (`cell_size` instances): the λ ≤ 0 sentinel and
    /// the `e^-λ` thresholds are computed once per run instead of once
    /// per (cell, tick). Cells of any other size (the tail cell, or a
    /// fleet smaller than one cell) build their own local table.
    arr_plans: Vec<Vec<PoissonPlan>>,
    /// Per-cell slices of the compiled chaos schedule (empty when the
    /// config has no chaos events).
    chaos: Vec<CellChaos>,
}

/// One cell's slice of the compiled chaos schedule. Computed from the
/// global [`ChaosSpec`] before sharding, so domain membership never
/// depends on the shard/thread layout; instance indices are cell-local.
#[derive(Debug, Clone, Default)]
struct CellChaos {
    /// Outage events: (breakdown kind index, start_us, end_us, locals).
    outages: Vec<(usize, u64, u64, Vec<u32>)>,
    /// Partition windows covering this cell (partitions cut whole cells).
    partitions: Vec<(u64, u64)>,
    /// Thermal events: (start_us, end_us, clamp clock index, locals).
    thermals: Vec<(u64, u64, u8, Vec<u32>)>,
    /// Drain windows: (start_us, end_us, locals).
    drains: Vec<(u64, u64, Vec<u32>)>,
}

impl CellChaos {
    fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.partitions.is_empty()
            && self.thermals.is_empty()
            && self.drains.is_empty()
    }
}

/// Splits the global chaos schedule into per-cell slices.
fn compile_cell_chaos(cfg: &FleetConfig, clock_points: &[f64]) -> Vec<CellChaos> {
    if cfg.chaos.events.is_empty() {
        return Vec::new();
    }
    let cells = cfg.num_cells() as usize;
    let mut out = vec![CellChaos::default(); cells];
    for event in &cfg.chaos.events {
        let mut by_cell: Vec<Vec<u32>> = vec![Vec::new(); cells];
        for &g in &event.instances {
            let c = (g / cfg.cell_size) as usize;
            by_cell[c].push(g - c as u32 * cfg.cell_size);
        }
        for (c, locals) in by_cell.into_iter().enumerate() {
            if locals.is_empty() {
                continue;
            }
            let (s, e) = (event.start_us, event.end_us);
            match event.kind {
                DomainEventKind::RackLoss | DomainEventKind::PowerDomainLoss => {
                    out[c]
                        .outages
                        .push((event.kind.breakdown_index(), s, e, locals));
                }
                DomainEventKind::NetworkPartition => out[c].partitions.push((s, e)),
                DomainEventKind::ThermalExcursion { clamp } => {
                    out[c]
                        .thermals
                        .push((s, e, clamp_clock_idx(clock_points, clamp), locals));
                }
                DomainEventKind::RollingDrain => out[c].drains.push((s, e, locals)),
            }
        }
    }
    out
}

/// The clock-grid index a thermal clamp pins affected slots to: the
/// highest operating point not above the clamp, or the grid's lowest
/// point when the clamp undercuts the whole grid.
fn clamp_clock_idx(clock_points: &[f64], clamp: f64) -> u8 {
    let mut lowest = 0;
    let mut best: Option<usize> = None;
    for (i, &c) in clock_points.iter().enumerate() {
        if c < clock_points[lowest] {
            lowest = i;
        }
        if c <= clamp + 1e-9 && best.is_none_or(|b: usize| c > clock_points[b]) {
            best = Some(i);
        }
    }
    best.unwrap_or(lowest) as u8
}

/// Administrative state of one instance slot (orthogonal to the failure
/// lifecycle's up/down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotMode {
    Live,
    Warm,
    Cold,
    Booting { until_us: u64 },
}

/// Per-cell flow state the fleet balancer manages between fleet ticks:
/// the admission quota left for the current fleet window and the window
/// arrival counter published in the next [`FleetCellObs`] snapshot.
/// `quota_left == u64::MAX` means "unlimited" and is byte-inert — an
/// uncontrolled run never sheds on it and never reads `window_arrived`.
struct FlowCtl {
    quota_left: u64,
    window_arrived: u64,
}

impl Default for FlowCtl {
    fn default() -> Self {
        Self {
            quota_left: u64::MAX,
            window_arrived: 0,
        }
    }
}

/// One cell's tenant-tagged arrival machinery: a dedicated RNG stream per
/// tenant (inside the shard partition, so draws never depend on shard or
/// thread layout) plus the reusable routing buffers that keep the
/// per-tick hot loop allocation-free.
struct CellTraffic {
    rngs: Vec<StdRng>,
    eff: Vec<u64>,
    shares: Vec<u64>,
    scratch: Vec<(u128, u32)>,
}

impl CellTraffic {
    /// Distinct stream constant so per-(cell, tenant) arrival streams
    /// never alias the per-instance or cell-control streams.
    const STREAM: u64 = 0x7E4A_4D7A_11C0_FFEE;

    fn new(seed: u64, cell_idx: u32, n_tenants: usize, n_slots: usize) -> Self {
        Self {
            rngs: (0..n_tenants)
                .map(|t| {
                    StdRng::seed_from_u64(
                        seed ^ Self::STREAM
                            ^ (cell_idx as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                            ^ (t as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB),
                    )
                })
                .collect(),
            eff: Vec::with_capacity(n_slots),
            shares: Vec::with_capacity(n_slots),
            scratch: Vec::with_capacity(n_slots),
        }
    }

    /// Draws the whole horizon of every tenant's exogenous arrivals up
    /// front, returning the non-empty batches as `(tick, tenant, count)`
    /// sorted by tick and, within a tick, by admission (priority) order.
    ///
    /// The per-(cell, tenant) RNG streams are independent, so drawing
    /// tenant-major here consumes each stream exactly as the tick-major
    /// per-tick draws did — the counts are bit-identical. Zero-count
    /// draws touched no simulation state in the tick loop (arrivals,
    /// admission and routing counters all moved only for `n > 0`), so
    /// dropping them here is also exact; it is what lets the event
    /// engine skip ticks in which no tenant's draw produced work.
    fn precompute_arrivals(
        &mut self,
        shared: &Shared<'_>,
        n_insts: usize,
        ticks: u32,
        scale: f64,
    ) -> Vec<(u32, u16, u64)> {
        let local: Option<Vec<Vec<PoissonPlan>>> = (n_insts != shared.cfg.cell_size as usize
            || scale != 1.0)
            .then(|| plan_arrivals(&shared.lambda, n_insts as f64 * scale));
        let mut evs: Vec<(u32, u16, u16, u64)> = Vec::new();
        for (pos, &ti) in shared.priority_order.iter().enumerate() {
            let t = ti as usize;
            let plans = local.as_ref().map_or(&shared.arr_plans[t], |l| &l[t]);
            let rng = &mut self.rngs[t];
            for (k, plan) in plans.iter().enumerate().take(ticks as usize) {
                let n = plan.draw(rng);
                if n > 0 {
                    evs.push((k as u32, pos as u16, ti, n));
                }
            }
        }
        evs.sort_unstable_by_key(|&(k, pos, _, _)| (k, pos));
        evs.into_iter().map(|(k, _, ti, n)| (k, ti, n)).collect()
    }

    /// Routes one tick's precomputed arrival batches over the cell in
    /// priority order with exact largest-remainder splits. Controlled
    /// cells route over live instances by the (control-tick-stale)
    /// weights and apply admission control; uncontrolled cells split
    /// uniformly over **all** instances — no router means a down
    /// instance's share queues behind it (stranded traffic, exactly what
    /// the router exists to fix). Under phase-split serving, queue room
    /// is granted to the prefill pool only: decode instances receive
    /// their work over the KV link, never the front door. Chaos hooks: a
    /// partitioned cell sheds every arrival at the front door
    /// (attributed to `partition_shed`), and drained slots take no new
    /// routing regardless of controller presence — a drain is a planned,
    /// announced exclusion, unlike a silent failure. `on_admit(i)` fires
    /// for every slot that admitted work (the event engine's busy-set
    /// hook). `flow` carries the fleet balancer's admission quota: once
    /// a window's quota is spent, further guaranteed-class arrivals are
    /// shed at the boundary (counted as `quota_clamped` inside
    /// `admission_shed`); an unlimited quota is byte-inert.
    #[allow(clippy::too_many_arguments)]
    fn route_event(
        &mut self,
        tick: u32,
        shared: &Shared<'_>,
        mut ctl: Option<&mut CellCtl>,
        phases: &[Phase],
        insts: &mut [InstanceState],
        partitioned: bool,
        drained: &[bool],
        acc: &mut ShardTotals,
        flow: &mut FlowCtl,
        batches: &[(u32, u16, u64)],
        mut on_admit: impl FnMut(usize),
    ) {
        self.eff.clear();
        match ctl {
            Some(ref c) => self.eff.extend(
                c.modes
                    .iter()
                    .zip(insts.iter())
                    .zip(&c.weights)
                    .zip(phases)
                    .zip(drained)
                    .map(|((((m, inst), &w), &p), &d)| {
                        if *m == SlotMode::Live && inst.up && p != Phase::Decode && !d {
                            w
                        } else {
                            0
                        }
                    }),
            ),
            None => self.eff.extend(
                phases
                    .iter()
                    .zip(drained)
                    .map(|(&p, &d)| u64::from(p != Phase::Decode && !d)),
            ),
        }
        let allow_be = ctl.as_ref().is_none_or(|c| c.allow_best_effort);
        let any_target = !partitioned && self.eff.iter().any(|&w| w > 0);
        for &(_, ti, n) in batches {
            let t = ti as usize;
            acc.arrived += n;
            acc.per_tenant[t].arrived += n;
            flow.window_arrived += n;
            let class = shared.classes[t];
            if let Some(c) = ctl.as_deref_mut() {
                c.arrived_since += n;
                c.arrived_by_class[class.index()] += n;
            }
            if class == PriorityClass::BestEffort && !allow_be {
                acc.rejected += n;
                acc.admission_shed += n;
                acc.per_tenant[t].shed += n;
                continue;
            }
            // Fleet admission quota: shed whatever exceeds the window's
            // remaining budget at the boundary. `u64::MAX` (no balancer,
            // or no quota directive) never sheds.
            let n = if flow.quota_left >= n {
                flow.quota_left -= n;
                n
            } else {
                let shed = n - flow.quota_left;
                flow.quota_left = 0;
                acc.rejected += shed;
                acc.admission_shed += shed;
                acc.quota_clamped += shed;
                acc.per_tenant[t].shed += shed;
                n - shed
            };
            if n == 0 {
                continue;
            }
            if !any_target {
                acc.rejected += n;
                acc.routing_shed += n;
                if partitioned {
                    acc.partition_shed += n;
                }
                acc.per_tenant[t].shed += n;
                continue;
            }
            apportion_into(n, &self.eff, &mut self.shares, &mut self.scratch);
            for (i, &share) in self.shares.iter().enumerate() {
                if share > 0 {
                    let admitted = insts[i].push_arrivals(tick, share, ti, &shared.knobs, acc);
                    acc.routed += admitted;
                    acc.per_tenant[t].routed += admitted;
                    if admitted > 0 && insts[i].up {
                        on_admit(i);
                    }
                }
            }
        }
    }
}

/// Builds the `plans[tenant][tick]` Poisson table for cells of
/// `n_insts` instances from the per-instance means.
fn plan_arrivals(lambda: &[Vec<f64>], n_insts: f64) -> Vec<Vec<PoissonPlan>> {
    lambda
        .iter()
        .map(|lt| lt.iter().map(|&l| PoissonPlan::new(l * n_insts)).collect())
        .collect()
}

/// One cell's control-plane runtime: the policy stack, the cell's own
/// RNG stream, and the administrative state the stack manages. Lives
/// entirely inside the shard partition.
struct CellCtl {
    stack: litegpu_ctrl::ControllerStack,
    rng: StdRng,
    /// Owning cell index (trace `pid`).
    cell: u32,
    modes: Vec<SlotMode>,
    weights: Vec<u64>,
    /// Per-slot DVFS operating point (index into the table's clock grid;
    /// all-nominal without a DVFS policy).
    clocks: Vec<u8>,
    arrived_since: u64,
    arrived_by_class: [u64; 3],
    allow_best_effort: bool,
    interval_ticks: u32,
    warm_up_us: u64,
    cold_up_us: u64,
}

impl CellCtl {
    /// Distinct stream constant so cell-control RNG streams never alias
    /// the per-instance streams (which mix with a different odd constant).
    const STREAM: u64 = 0x5EED_C311_0C7A_11E5;

    fn new(
        ctrl: &CtrlConfig,
        seed: u64,
        cell_idx: u32,
        n_slots: usize,
        tick_s: f64,
        nominal_ci: u8,
    ) -> Self {
        let rng = StdRng::seed_from_u64(
            seed ^ Self::STREAM ^ (cell_idx as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let (warm_s, cold_s) = ctrl
            .autoscaler
            .map(|a| (a.warm_start_s, a.cold_start_s))
            .unwrap_or((0.0, 0.0));
        Self {
            stack: ctrl.build(),
            rng,
            cell: cell_idx,
            modes: vec![SlotMode::Live; n_slots],
            weights: vec![1; n_slots],
            clocks: vec![nominal_ci; n_slots],
            arrived_since: 0,
            arrived_by_class: [0; 3],
            allow_best_effort: true,
            interval_ticks: ((ctrl.control_interval_s / tick_s).round() as u32).max(1),
            warm_up_us: (warm_s * 1e6).round() as u64,
            cold_up_us: (cold_s * 1e6).round() as u64,
        }
    }

    /// Promotes slots whose activation completed by `now_us`.
    fn finish_boots(&mut self, now_us: u64) {
        for m in &mut self.modes {
            if matches!(m, SlotMode::Booting { until_us } if *until_us <= now_us) {
                *m = SlotMode::Live;
            }
        }
    }

    /// Runs one control tick: observe, consult the policy stack, apply.
    #[allow(clippy::too_many_arguments)]
    fn control(
        &mut self,
        tick: u32,
        t_start_us: u64,
        insts: &[InstanceState],
        phases: &mut [Phase],
        kv: Option<&KvLinkState>,
        shared: &Shared<'_>,
        chaos_down: u32,
        mut trace: Option<&mut TraceSink<'_>>,
        acc: &mut ShardTotals,
    ) {
        let mut obs = CellObs::new(tick, self.interval_ticks as f64 * shared.cfg.tick_s);
        obs.arrived_since_last = core::mem::take(&mut self.arrived_since);
        obs.arrived_by_class = core::mem::take(&mut self.arrived_by_class);
        obs.capacity_rps_per_instance = shared.cap_rps;
        obs.max_queue = shared.knobs.max_queue;
        obs.chaos_down = chaos_down;
        obs.phase_split = shared.split.as_ref().map(|s| PhaseObs {
            prefill_capacity_rps: s.prefill_capacity_rps,
            decode_capacity_rps: s.decode_capacity_rps,
            kv_backlog_us: kv.map_or(0, |k| k.backlog_us(t_start_us)),
        });
        obs.clock_points = shared.clock_points.clone();
        obs.slots = self
            .modes
            .iter()
            .zip(insts)
            .zip(phases.iter())
            .zip(&self.clocks)
            .map(|(((m, inst), &phase), &clock)| InstanceObs {
                mode: if !inst.up {
                    Mode::Down
                } else {
                    match m {
                        SlotMode::Live => Mode::Live,
                        SlotMode::Warm => Mode::Warm,
                        SlotMode::Cold => Mode::Cold,
                        SlotMode::Booting { .. } => Mode::Booting,
                    }
                },
                phase,
                clock,
                queued: inst.queued(),
                active: inst.active(),
            })
            .collect();
        // Every state-*changing* command becomes one control-plane trace
        // instant, emitted by the arm that applies it (so tracing costs
        // nothing on the no-op path). Policies re-assert idempotent
        // state each tick (the gater paints every parked slot cold, the
        // router re-sends unchanged weights); tracing only transitions
        // keeps every state change in the timeline without drowning it
        // — or the hot loop — in no-op re-assertions. Effectiveness is
        // pure cell-local sim state, so the filter stays shard-invariant.
        let (cell, tick_arg) = (self.cell, tick as u64);
        let trace_cmd = |ts: &mut Option<&mut TraceSink<'_>>, kind: &'static str, slot: u32| {
            if let Some(ts) = ts.as_deref_mut() {
                ts.buf.push(TraceEvent::instant(
                    "ctrl", kind, t_start_us, cell, slot, tick_arg,
                ));
            }
        };
        for cmd in self.stack.control(&obs, &mut self.rng) {
            match cmd {
                Command::Activate { slot } => {
                    let s = slot as usize;
                    if s >= self.modes.len() {
                        continue;
                    }
                    let boot_us = match self.modes[s] {
                        SlotMode::Warm => self.warm_up_us,
                        SlotMode::Cold => self.cold_up_us,
                        _ => continue,
                    };
                    self.modes[s] = if boot_us == 0 {
                        SlotMode::Live
                    } else {
                        SlotMode::Booting {
                            until_us: t_start_us.saturating_add(boot_us),
                        }
                    };
                    acc.scale_ups += 1;
                    trace_cmd(&mut trace, "activate", slot);
                }
                Command::Park { slot } => {
                    let s = slot as usize;
                    if s < insts.len()
                        && self.modes[s] == SlotMode::Live
                        && insts[s].up
                        && insts[s].is_idle()
                    {
                        // Parking alone keeps the instance powered at its
                        // idle floor; only a power-gating policy's SetCold
                        // (issued later in this same command batch) may
                        // drop it to zero draw. Without a gater, parked
                        // capacity correctly keeps paying the floor.
                        self.modes[s] = SlotMode::Warm;
                        acc.scale_downs += 1;
                        trace_cmd(&mut trace, "park", slot);
                    }
                }
                Command::SetWarm { slot } => {
                    if let Some(m @ SlotMode::Cold) = self.modes.get_mut(slot as usize) {
                        *m = SlotMode::Warm;
                        trace_cmd(&mut trace, "set_warm", slot);
                    }
                }
                Command::SetCold { slot } => {
                    if let Some(m @ SlotMode::Warm) = self.modes.get_mut(slot as usize) {
                        *m = SlotMode::Cold;
                        trace_cmd(&mut trace, "set_cold", slot);
                    }
                }
                Command::SetWeights { weights } if weights.len() == self.modes.len() => {
                    if trace.is_some() && weights != self.weights {
                        trace_cmd(&mut trace, "set_weights", u32::MAX);
                    }
                    self.weights = weights;
                }
                Command::SetAdmission { allow_best_effort } => {
                    if trace.is_some() && allow_best_effort != self.allow_best_effort {
                        trace_cmd(&mut trace, "set_admission", u32::MAX);
                    }
                    self.allow_best_effort = allow_best_effort;
                }
                Command::SetPhase { slot, phase } => {
                    // Phase moves apply only to idle slots: migrating a
                    // live KV batch or queued prompts between pools is
                    // not modeled, so busy slots converge as they drain.
                    let s = slot as usize;
                    if s < insts.len()
                        && shared.split.is_some()
                        && phases[s] != phase
                        && phase != Phase::Mixed
                        && insts[s].is_idle()
                    {
                        phases[s] = phase;
                        acc.phase_rebalances += 1;
                        trace_cmd(&mut trace, "set_phase", slot);
                    }
                }
                Command::SetClock { slot, clock } => {
                    // Retunes take effect at the next data tick; an
                    // out-of-grid index is a controller bug and ignored.
                    let s = slot as usize;
                    if s < insts.len()
                        && (clock as usize) < shared.lut.num_clocks()
                        && self.clocks[s] != clock
                    {
                        self.clocks[s] = clock;
                        acc.clock_retunes += 1;
                        trace_cmd(&mut trace, "set_clock", slot);
                    }
                }
                // `Command` is #[non_exhaustive]; a variant this engine
                // doesn't know is ignored (commands are advisory).
                _ => {}
            }
        }
    }
}

/// Delivers landed KV transfers into the decode pool, FIFO. A transfer
/// waits (head-of-line) until some live decode instance has batch room;
/// the target is the least-loaded live decode slot, ties to the lowest
/// index — a deterministic choice from cell-local state only. TTFT is
/// recorded here, so the wait for decode batch room lands in it.
/// `on_deliver(i)` fires per delivery with the target slot (the event
/// engine's busy-set hook).
#[allow(clippy::too_many_arguments)]
fn deliver_transfers(
    kv: &mut KvLinkState,
    now_us: u64,
    insts: &mut [InstanceState],
    phases: &[Phase],
    ctl: Option<&CellCtl>,
    drained: &[bool],
    max_batch: u32,
    knobs: &ServeKnobs,
    mut trace: Option<&mut TraceSink<'_>>,
    acc: &mut ShardTotals,
    mut on_deliver: impl FnMut(usize),
) {
    while let Some(job) = kv.peek_landed(now_us) {
        let serving = |i: usize| ctl.is_none_or(|c| c.modes[i] == SlotMode::Live);
        let target = insts
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                phases[*i] == Phase::Decode
                    && s.up
                    && serving(*i)
                    && !drained[*i]
                    && s.active() + job.count <= max_batch
            })
            .min_by_key(|(i, s)| (s.active(), *i))
            .map(|(i, _)| i);
        match target {
            Some(i) => {
                let job = kv.pop().expect("peeked");
                KvLinkState::record_delivery(
                    &job,
                    now_us,
                    &knobs.tenants[job.tenant as usize],
                    acc,
                );
                if let Some(ts) = trace.as_deref_mut() {
                    if ts.sampler.sampled(job.span) {
                        let tid = insts[i].global_index();
                        ts.buf.push(TraceEvent::async_end(
                            "req",
                            "kv_transfer",
                            now_us,
                            ts.cell,
                            tid,
                            job.span,
                            job.bytes,
                        ));
                        ts.buf.push(TraceEvent::async_begin(
                            "req",
                            "decode",
                            now_us,
                            ts.cell,
                            tid,
                            job.span,
                            job.count as u64,
                        ));
                    }
                }
                insts[i].admit_decode_cohort(&job);
                on_deliver(i);
            }
            None => break,
        }
    }
}

/// Re-routes a failed decode instance's requeued work to the prefill
/// pool (its KV caches died with it, so it must re-prefill — and decode
/// instances never prefill). Target: the least-queued prefill slot that
/// is up and actually serving, ties to the lowest index; parking the
/// work behind a down or parked "prefill" slot would strand it for the
/// whole repair. If the cell transiently has no serving prefill slot
/// (rebalance in flight, pool down), the runs stay parked on the source
/// instance and re-route on a later tick — admitted work is never
/// dropped. The runs were admitted once already, so the queue cap does
/// not re-apply and no routing counters move. Returns the slot the runs
/// landed on (`None` when there was nothing queued), so the event
/// engine can mark the target busy.
fn reroute_decode_retries(
    insts: &mut [InstanceState],
    phases: &[Phase],
    ctl: Option<&CellCtl>,
    from: usize,
) -> Option<usize> {
    let runs = insts[from].take_queued_runs();
    if runs.is_empty() {
        return None;
    }
    let serving = |i: usize| ctl.is_none_or(|c| c.modes[i] == SlotMode::Live);
    let target = insts
        .iter()
        .enumerate()
        .filter(|(i, s)| phases[*i] == Phase::Prefill && s.up && serving(*i))
        .min_by_key(|(i, s)| (s.queued(), *i))
        .map_or(from, |(i, _)| i);
    insts[target].accept_requeued_runs(runs);
    Some(target)
}

/// The telemetry one shard produced beside its totals: deterministic
/// series/trace layers plus the (wall-clock, non-deterministic) profile.
struct ShardTelemetry {
    series: Option<SeriesRecorder>,
    trace: Vec<TraceEvent>,
    profile: Option<PhaseProfile>,
}

/// Wall-clock phase timer; each `mark` attributes the time since the
/// previous mark (or `reset`) to a phase. A disabled timer never reads
/// the clock, so profiling-off runs pay nothing.
struct ProfTimer {
    p: Option<PhaseProfile>,
    last: Instant,
}

impl ProfTimer {
    fn new(enabled: bool) -> Self {
        Self {
            p: enabled.then(PhaseProfile::new),
            last: Instant::now(),
        }
    }

    /// Restarts the interval without attributing the elapsed time.
    fn reset(&mut self) {
        if self.p.is_some() {
            self.last = Instant::now();
        }
    }

    fn mark(&mut self, phase: usize) {
        if let Some(p) = self.p.as_mut() {
            let now = Instant::now();
            p.record(phase, now.duration_since(self.last).as_nanos() as u64);
            self.last = now;
        }
    }
}

/// Snapshot of the monotone [`ShardTotals`] counters the series layer
/// differences per window. Cell-major stepping makes per-cell deltas
/// exact: between two snapshots only the current cell touches `acc`.
#[derive(Default)]
struct CounterSnap {
    arrived: u64,
    completed: u64,
    rejected: u64,
    admission_shed: u64,
    routing_shed: u64,
    tokens: u64,
    energy_uj: u64,
    failures: u64,
    restores: u64,
    repairs: u64,
    kv_stalls: u64,
    ttft_count: u64,
    ttft_sum_us: u128,
    /// Per tenant: (arrived, completed, shed).
    per_tenant: Vec<(u64, u64, u64)>,
}

impl CounterSnap {
    fn take(acc: &ShardTotals) -> Self {
        Self {
            arrived: acc.arrived,
            completed: acc.completed,
            rejected: acc.rejected,
            admission_shed: acc.admission_shed,
            routing_shed: acc.routing_shed,
            tokens: acc.generated_tokens,
            energy_uj: acc.energy_uj,
            failures: acc.failures,
            restores: acc.restores,
            repairs: acc.repairs_dispatched,
            kv_stalls: acc.kv_backpressure_stalls,
            ttft_count: acc.ttft.total(),
            ttft_sum_us: acc.ttft.sum_us(),
            per_tenant: acc
                .per_tenant
                .iter()
                .map(|t| (t.arrived, t.completed, t.shed))
                .collect(),
        }
    }

    /// Shifts this snapshot forward by the counter movement between
    /// `pause` and `now` — the additions *other* cells of the shard made
    /// to the accumulator while this cell's stepping was paused between
    /// fleet windows — so the next window delta still counts only this
    /// cell's own additions. With cell-major stepping the movement is
    /// zero and this is a no-op.
    fn advance(&mut self, pause: &Self, now: &Self) {
        self.arrived += now.arrived - pause.arrived;
        self.completed += now.completed - pause.completed;
        self.rejected += now.rejected - pause.rejected;
        self.admission_shed += now.admission_shed - pause.admission_shed;
        self.routing_shed += now.routing_shed - pause.routing_shed;
        self.tokens += now.tokens - pause.tokens;
        self.energy_uj += now.energy_uj - pause.energy_uj;
        self.failures += now.failures - pause.failures;
        self.restores += now.restores - pause.restores;
        self.repairs += now.repairs - pause.repairs;
        self.kv_stalls += now.kv_stalls - pause.kv_stalls;
        self.ttft_count += now.ttft_count - pause.ttft_count;
        self.ttft_sum_us += now.ttft_sum_us - pause.ttft_sum_us;
        for (s, (n, p)) in self
            .per_tenant
            .iter_mut()
            .zip(now.per_tenant.iter().zip(&pause.per_tenant))
        {
            s.0 += n.0 - p.0;
            s.1 += n.1 - p.1;
            s.2 += n.2 - p.2;
        }
    }
}

/// Pre-resolved metric ids for one cell's sampling: every name is
/// formatted and resolved once per cell, so each sample instant is pure
/// array accumulation (no string formatting or map lookups in the tick
/// loop). Registration happens at cell setup, which also gives the
/// export a stable schema — e.g. every DVFS grid rung appears even in
/// windows (or runs) that never touch it.
struct SeriesIds {
    arrived: MetricId,
    completed: MetricId,
    rejected: MetricId,
    admission_shed: MetricId,
    routing_shed: MetricId,
    tokens: MetricId,
    energy_uj: MetricId,
    failures: MetricId,
    restores: MetricId,
    repairs: MetricId,
    kv_stalls: MetricId,
    ttft_count: MetricId,
    ttft_sum_us: MetricId,
    /// Per tenant: arrived, completed, shed (counters) and queued gauge.
    tenants: Vec<[MetricId; 4]>,
    queued: MetricId,
    active: MetricId,
    up: MetricId,
    draining: MetricId,
    repair_pending: MetricId,
    spares_free: MetricId,
    /// KV-link backlog µs and in-flight bytes (phase-split cells).
    kv: Option<(MetricId, MetricId)>,
    /// Prefill / decode pool sizes (phase-split cells).
    pools: Option<(MetricId, MetricId)>,
    ctl: Option<CtlSeriesIds>,
    /// Per-cell queued, up gauges and arrived, completed counters.
    per_cell: Option<[MetricId; 4]>,
}

/// Control-plane slot-mode gauges plus one gauge per DVFS grid rung.
struct CtlSeriesIds {
    live: MetricId,
    warm: MetricId,
    cold: MetricId,
    booting: MetricId,
    clock_live: Vec<MetricId>,
}

impl SeriesIds {
    fn new(
        s: &mut SeriesRecorder,
        n_tenants: usize,
        clocks: Option<usize>,
        has_split: bool,
        per_cell: Option<u32>,
    ) -> Self {
        use MetricKind::{Counter, Gauge};
        Self {
            arrived: s.id("arrived", Counter),
            completed: s.id("completed", Counter),
            rejected: s.id("rejected", Counter),
            admission_shed: s.id("admission_shed", Counter),
            routing_shed: s.id("routing_shed", Counter),
            tokens: s.id("tokens", Counter),
            energy_uj: s.id("energy_uj", Counter),
            failures: s.id("failures", Counter),
            restores: s.id("restores", Counter),
            repairs: s.id("repairs", Counter),
            kv_stalls: s.id("kv_stalls", Counter),
            ttft_count: s.id("ttft_count", Counter),
            ttft_sum_us: s.id("ttft_sum_us", Counter),
            tenants: (0..n_tenants)
                .map(|t| {
                    [
                        s.id(&format!("tenant{t}/arrived"), Counter),
                        s.id(&format!("tenant{t}/completed"), Counter),
                        s.id(&format!("tenant{t}/shed"), Counter),
                        s.id(&format!("tenant{t}/queued"), Gauge),
                    ]
                })
                .collect(),
            queued: s.id("queued", Gauge),
            active: s.id("active", Gauge),
            up: s.id("up", Gauge),
            draining: s.id("draining", Gauge),
            repair_pending: s.id("repair_pending", Gauge),
            spares_free: s.id("spares_free", Gauge),
            kv: has_split.then(|| {
                (
                    s.id("kv_backlog_us", Gauge),
                    s.id("kv_inflight_bytes", Gauge),
                )
            }),
            pools: has_split.then(|| (s.id("pool_prefill", Gauge), s.id("pool_decode", Gauge))),
            ctl: clocks.map(|n| CtlSeriesIds {
                live: s.id("live", Gauge),
                warm: s.id("warm", Gauge),
                cold: s.id("cold", Gauge),
                booting: s.id("booting", Gauge),
                clock_live: (0..n)
                    .map(|ci| s.id(&format!("clock{ci}/live"), Gauge))
                    .collect(),
            }),
            per_cell: per_cell.map(|c| {
                [
                    s.id(&format!("cell{c}/queued"), Gauge),
                    s.id(&format!("cell{c}/up"), Gauge),
                    s.id(&format!("cell{c}/arrived"), Counter),
                    s.id(&format!("cell{c}/completed"), Counter),
                ]
            }),
        }
    }
}

/// Samples one window of series metrics for one cell: counter deltas
/// since `snap` plus gauges of current state. Returns the fresh snapshot
/// the caller carries to the next window.
#[allow(clippy::too_many_arguments)]
fn sample_series(
    series: &mut SeriesRecorder,
    ids: &SeriesIds,
    w: usize,
    now_us: u64,
    snap: &CounterSnap,
    acc: &ShardTotals,
    insts: &[InstanceState],
    ctl: Option<&CellCtl>,
    phases: &[Phase],
    kv: Option<&KvLinkState>,
    cell: &CellState,
    drained: &[bool],
    tenant_scratch: &mut [u64],
) -> CounterSnap {
    let c = CounterSnap::take(acc);
    series.add_at(ids.arrived, w, c.arrived - snap.arrived);
    series.add_at(ids.completed, w, c.completed - snap.completed);
    series.add_at(ids.rejected, w, c.rejected - snap.rejected);
    series.add_at(
        ids.admission_shed,
        w,
        c.admission_shed - snap.admission_shed,
    );
    series.add_at(ids.routing_shed, w, c.routing_shed - snap.routing_shed);
    series.add_at(ids.tokens, w, c.tokens - snap.tokens);
    series.add_at(ids.energy_uj, w, c.energy_uj - snap.energy_uj);
    series.add_at(ids.failures, w, c.failures - snap.failures);
    series.add_at(ids.restores, w, c.restores - snap.restores);
    series.add_at(ids.repairs, w, c.repairs - snap.repairs);
    series.add_at(ids.kv_stalls, w, c.kv_stalls - snap.kv_stalls);
    series.add_at(ids.ttft_count, w, c.ttft_count - snap.ttft_count);
    series.add_at(
        ids.ttft_sum_us,
        w,
        (c.ttft_sum_us - snap.ttft_sum_us) as u64,
    );
    for (t, (&(a1, c1, s1), &(a0, c0, s0))) in c.per_tenant.iter().zip(&snap.per_tenant).enumerate()
    {
        let [ta, tc, tshed, _] = ids.tenants[t];
        series.add_at(ta, w, a1 - a0);
        series.add_at(tc, w, c1 - c0);
        series.add_at(tshed, w, s1 - s0);
    }
    // Gauges: this cell's state at the window's end instant (summing the
    // per-cell contributions gives the fleet-wide value).
    let mut queued = 0u64;
    let mut active = 0u64;
    let mut up = 0u64;
    tenant_scratch.fill(0);
    for inst in insts {
        queued += inst.queued();
        active += inst.active() as u64;
        up += u64::from(inst.up);
        inst.queued_by_tenant(tenant_scratch);
    }
    series.add_at(ids.queued, w, queued);
    series.add_at(ids.active, w, active);
    series.add_at(ids.up, w, up);
    for (t, &q) in tenant_scratch.iter().enumerate() {
        series.add_at(ids.tenants[t][3], w, q);
    }
    series.add_at(ids.draining, w, drained.iter().map(|&d| u64::from(d)).sum());
    series.add_at(ids.repair_pending, w, cell.pending_len());
    series.add_at(ids.spares_free, w, cell.spares_free as u64);
    if let (Some(link), Some((backlog, inflight))) = (kv, ids.kv) {
        series.add_at(backlog, w, link.backlog_us(now_us));
        series.add_at(inflight, w, link.inflight_bytes());
    }
    if let Some((pp, pd)) = ids.pools {
        let (mut prefill, mut decode) = (0u64, 0u64);
        for &p in phases {
            match p {
                Phase::Prefill => prefill += 1,
                Phase::Decode => decode += 1,
                Phase::Mixed => {}
            }
        }
        series.add_at(pp, w, prefill);
        series.add_at(pd, w, decode);
    }
    if let (Some(c), Some(ci_ids)) = (ctl, &ids.ctl) {
        let (mut live, mut warm, mut cold, mut booting) = (0u64, 0u64, 0u64, 0u64);
        for m in &c.modes {
            match m {
                SlotMode::Live => live += 1,
                SlotMode::Warm => warm += 1,
                SlotMode::Cold => cold += 1,
                SlotMode::Booting { .. } => booting += 1,
            }
        }
        series.add_at(ci_ids.live, w, live);
        series.add_at(ci_ids.warm, w, warm);
        series.add_at(ci_ids.cold, w, cold);
        series.add_at(ci_ids.booting, w, booting);
        // DVFS operating-point distribution over live, up slots.
        for (i, &ci) in c.clocks.iter().enumerate() {
            if c.modes[i] == SlotMode::Live && insts[i].up {
                series.add_at(ci_ids.clock_live[ci as usize], w, 1);
            }
        }
    }
    if let Some([cq, cu, ca, cc]) = ids.per_cell {
        series.add_at(cq, w, queued);
        series.add_at(cu, w, up);
        series.add_at(ca, w, c.arrived - snap.arrived);
        series.add_at(cc, w, c.completed - snap.completed);
    }
    c
}

/// Lazily bills instance `i`'s idle ticks `[accrued[i], to)` at its
/// current administrative mode — the event engine's replacement for the
/// tick loop's per-tick energy walk over every instance.
///
/// Exactness rests on two facts. First, an idle instance's serve was a
/// pure no-op (`spent == 0`, no RNG draw, `carry_us` already zero), so
/// a Live idle tick billed exactly the static floor plus one
/// live/clock/phase tick and a Warm or Booting tick exactly the floor.
/// Second, every input of that per-tick amount (`up`, mode, clock,
/// clamp, phase) is constant across the span, because each mutation
/// site runs behind an accrual barrier: the failure lifecycle and
/// chaos outages accrue the instance first, control ticks, boot
/// promotions and thermal-clamp changes accrue the whole cell first,
/// and the serve path closes its own span every busy tick.
#[allow(clippy::too_many_arguments)]
fn accrue_idle_span(
    acc: &mut ShardTotals,
    power: &InstancePower,
    tick_us: u64,
    nominal_ci: u8,
    insts: &[InstanceState],
    ctl: Option<&CellCtl>,
    clamp: &[u8],
    phases: &[Phase],
    accrued: &mut [u32],
    i: usize,
    to: u32,
) {
    let from = accrued[i];
    if to <= from {
        return;
    }
    accrued[i] = to;
    let inst = &insts[i];
    if !inst.up {
        return;
    }
    let k = (to - from) as u64;
    let e = power.idle_mw * tick_us / 1000;
    match ctl.map_or(SlotMode::Live, |c| c.modes[i]) {
        SlotMode::Live => {
            acc.energy_uj += e * k;
            acc.idle_energy_uj += e * k;
            acc.live_ticks += k;
            let ci = ctl.map_or(nominal_ci, |c| c.clocks[i]).min(clamp[i]) as usize;
            acc.clock_ticks[ci] += k;
            match phases[i] {
                Phase::Prefill => acc.prefill_live_ticks += k,
                Phase::Decode => acc.decode_live_ticks += k,
                Phase::Mixed => {}
            }
        }
        SlotMode::Warm | SlotMode::Booting { .. } => {
            acc.energy_uj += e * k;
            acc.idle_energy_uj += e * k;
        }
        SlotMode::Cold => {}
    }
}

/// Inserts `i` into the busy set (idempotent). The list stays sorted:
/// busy instances must serve in index order, because concurrent prefill
/// completions share one FIFO KV link per cell and the enqueue order is
/// part of the deterministic byte contract.
fn busy_add(busy: &mut [bool], list: &mut Vec<u32>, i: usize) {
    if !busy[i] {
        busy[i] = true;
        let p = list.partition_point(|&x| (x as usize) < i);
        list.insert(p, i as u32);
    }
}

/// Drops `i` from the busy set if present.
fn busy_remove(busy: &mut [bool], list: &mut Vec<u32>, i: usize) {
    if busy[i] {
        busy[i] = false;
        if let Ok(p) = list.binary_search(&(i as u32)) {
            list.remove(p);
        }
    }
}

/// The earliest tick at which a booting slot finishes (`u32::MAX` when
/// nothing completes inside the horizon): the boot-promotion wakeup
/// channel, rescanned after every control tick and promotion.
fn next_boot_tick(modes: &[SlotMode], tick_us: u64, ticks: u32) -> u32 {
    modes
        .iter()
        .filter_map(|m| match m {
            SlotMode::Booting { until_us } => Some(until_us.div_ceil(tick_us)),
            _ => None,
        })
        .min()
        .map_or(
            u32::MAX,
            |t| {
                if t < ticks as u64 {
                    t as u32
                } else {
                    u32::MAX
                }
            },
        )
}

/// One cell's read-only state published at a fleet-tick boundary: the
/// fleet-scope observation row plus the cell's own upcoming-window
/// arrival batches `(tick, tenant, count)` that the planner may spill.
struct CellSnapshot {
    obs: FleetCellObs,
    window: Vec<(u32, u16, u64)>,
}

/// The per-cell outcome of one fleet plan, applied between windows.
/// Everything in here was computed by the pure planner from published
/// snapshots only, so applying it is deterministic for any thread count.
#[derive(Default)]
struct CellPlan {
    /// Admission budget for the coming window (`None` = unlimited).
    quota: Option<u64>,
    /// Arrival batches to shrink at the source: `(index relative to the
    /// cell's arrival cursor, requests to remove)`.
    deduct: Vec<(usize, u64)>,
    /// Per-destination spill totals booked at the source: `(dst, requests)`.
    outflow: Vec<(u32, u64)>,
    /// Redirected cohorts arriving here: `(tick, tenant, count)`, sorted
    /// by `(tick, admission order, source cell)`.
    inflow: Vec<(u32, u16, u64)>,
}

/// One cell's complete simulation state, stepped through the horizon in
/// resumable segments.
///
/// The cell-major engine ([`simulate_cells`]) runs a single segment
/// covering the whole horizon — that path is byte-identical to the
/// pre-extraction loop. The fleet-balancer engine ([`run_balanced`])
/// runs one segment per fleet window, with [`CellSim::publish`] /
/// [`CellSim::apply_plan`] at each boundary. Pausing is exact: every
/// piece of loop state (wakeup heap, accrual clocks, arrival cursor,
/// periodic channels, the current tick) lives here, and the only
/// cross-window correction needed is the series snapshot drift — other
/// cells of the same shard advance the shard accumulator while this
/// cell is paused, so the sampling snapshot is advanced by the same
/// amount on re-entry ([`CounterSnap::advance`]).
struct CellSim<'a> {
    cell_idx: u32,
    cell: CellState,
    insts: Vec<InstanceState>,
    phases: Vec<Phase>,
    kv: Option<KvLinkState>,
    traffic: CellTraffic,
    ctl: Option<CellCtl>,
    chaos: Option<&'a CellChaos>,
    outage_fired: Vec<bool>,
    partition_fired: Vec<bool>,
    thermal_fired: Vec<bool>,
    drain_fired: Vec<bool>,
    drain_restored: Vec<bool>,
    drained: Vec<bool>,
    clamp: Vec<u8>,
    chaos_outed: Vec<bool>,
    /// Request-span sampler carried between segments; the borrowing
    /// [`TraceSink`] is reassembled inside each `run_until` call.
    sampler: Option<SpanSampler>,
    series_ids: Option<SeriesIds>,
    series_every: u32,
    snap: CounterSnap,
    /// Shard-accumulator snapshot at the last segment exit, for the
    /// re-entry drift compensation (kept only when sampling series).
    pause: Option<CounterSnap>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    accrued: Vec<u32>,
    busy: Vec<bool>,
    busy_list: Vec<u32>,
    lifecycle_now: Vec<u32>,
    clamp_scratch: Vec<u8>,
    arrivals: Vec<(u32, u16, u64)>,
    arr_ptr: usize,
    /// Spilled-in cohorts from other cells, sorted by tick (appended in
    /// window order, and each window's plan is tick-sorted); consumed
    /// through a cursor like `arrivals`.
    inflow: Vec<(u32, u16, u64)>,
    inflow_ptr: usize,
    flow: FlowCtl,
    next_ctrl: u32,
    next_boot: u32,
    next_sample: u32,
    kv_next: u32,
    kv_blocked: bool,
    decode_retry: bool,
    tick: u32,
}

impl<'a> CellSim<'a> {
    fn new(
        shared: &'a Shared<'_>,
        seed: u64,
        cell_idx: u32,
        series_every: u32,
        series: Option<&mut SeriesRecorder>,
        prof: &mut ProfTimer,
        acc: &ShardTotals,
    ) -> Self {
        let cfg = shared.cfg;
        let rates = &shared.rates;
        let n_tenants = cfg.workload.tenants.len();
        let ticks = cfg.num_ticks();
        let tick_us = shared.knobs.tick_us;
        let tel = &cfg.telemetry;
        let first = cell_idx * cfg.cell_size;
        let last = (first + cfg.cell_size).min(cfg.instances);
        let cell = CellState::new(cfg.spares_per_cell, cfg.repair_crews_per_cell);
        let insts: Vec<InstanceState> = (first..last)
            .map(|g| InstanceState::new(seed, g as u64, rates, n_tenants))
            .collect();
        // Phase roles: monolithic cells are all-Mixed; split cells start
        // at the configured fraction (prefill pool on the low-indexed
        // stable primaries) and the phase-aware autoscaler rebalances.
        let phases: Vec<Phase> = match &shared.split {
            None => vec![Phase::Mixed; insts.len()],
            Some(s) => {
                let np = s.prefill_slots(insts.len());
                (0..insts.len())
                    .map(|i| {
                        if i < np {
                            Phase::Prefill
                        } else {
                            Phase::Decode
                        }
                    })
                    .collect()
            }
        };
        let kv: Option<KvLinkState> = shared
            .split
            .as_ref()
            .map(|s| KvLinkState::new(s.kv_bytes_per_s, s.kv_max_backlog_us));
        let mut traffic = CellTraffic::new(seed, cell_idx, n_tenants, insts.len());
        let ctl = cfg.ctrl.as_ref().map(|c| {
            CellCtl::new(
                c,
                seed,
                cell_idx,
                insts.len(),
                cfg.tick_s,
                shared.nominal_ci,
            )
        });
        let chaos = shared
            .chaos
            .get(cell_idx as usize)
            .filter(|c| !c.is_empty());
        // Resolve this cell's metric ids once: re-resolution across
        // cells is idempotent, and the tick loop then samples by index.
        let series_ids = series.map(|s| {
            SeriesIds::new(
                s,
                n_tenants,
                ctl.is_some().then(|| shared.lut.num_clocks()),
                shared.split.is_some(),
                tel.per_cell_series.then_some(cell_idx),
            )
        });
        let n = insts.len();
        // The wakeup heap over `(tick, local idx)`: `idx == u32::MAX`
        // is a generic "process this tick" entry (chaos window edges,
        // repair-dispatch readiness); `idx < n` requests that
        // instance's failure lifecycle at that tick.
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for (i, inst) in insts.iter().enumerate() {
            let nf = inst.next_failure_at_us();
            if nf != u64::MAX && nf / tick_us < ticks as u64 {
                heap.push(Reverse(((nf / tick_us) as u32, i as u32)));
            }
        }
        if let Some(ch) = chaos {
            // Chaos window edges are static: schedule every boundary
            // that must be observed at its exact tick. Outages fire at
            // the tick containing their start (the `start < t_end`
            // test); the other windows matter from the first tick at or
            // after each boundary (the `start <= t_start < end` test).
            let mut wake = |t: u64| {
                if t < ticks as u64 {
                    heap.push(Reverse((t as u32, u32::MAX)));
                }
            };
            for (_, start, _, _) in &ch.outages {
                wake(start / tick_us);
            }
            for &(start, _) in &ch.partitions {
                wake(start.div_ceil(tick_us));
            }
            for (start, end, _) in &ch.drains {
                wake(start.div_ceil(tick_us));
                wake(end.div_ceil(tick_us));
            }
            for (start, end, _, _) in &ch.thermals {
                wake(start.div_ceil(tick_us));
                wake(end.div_ceil(tick_us));
            }
        }
        // The whole horizon of arrivals, drawn up front (stream-exact —
        // see `precompute_arrivals`), consumed through a cursor.
        prof.reset();
        let rate_scale = cfg
            .cell_rate_multipliers
            .get(cell_idx as usize)
            .copied()
            .unwrap_or(1.0);
        let arrivals = traffic.precompute_arrivals(shared, n, ticks, rate_scale);
        prof.mark(PHASE_ROUTE);
        // Periodic wakeup channels.
        let next_ctrl = ctl.as_ref().map_or(u32::MAX, |c| c.interval_ticks);
        Self {
            cell_idx,
            cell,
            insts,
            phases,
            kv,
            traffic,
            ctl,
            chaos,
            outage_fired: vec![false; chaos.map_or(0, |c| c.outages.len())],
            partition_fired: vec![false; chaos.map_or(0, |c| c.partitions.len())],
            thermal_fired: vec![false; chaos.map_or(0, |c| c.thermals.len())],
            drain_fired: vec![false; chaos.map_or(0, |c| c.drains.len())],
            drain_restored: vec![false; chaos.map_or(0, |c| c.drains.len())],
            drained: vec![false; n],
            clamp: vec![u8::MAX; n],
            chaos_outed: vec![false; n],
            sampler: (tel.trace_every > 0).then(|| SpanSampler::new(tel.trace_every)),
            snap: CounterSnap::take(acc),
            pause: series_ids.is_some().then(|| CounterSnap::take(acc)),
            series_ids,
            series_every,
            heap,
            accrued: vec![0u32; n],
            busy: vec![false; n],
            busy_list: Vec::new(),
            lifecycle_now: Vec::new(),
            clamp_scratch: vec![u8::MAX; n],
            arrivals,
            arr_ptr: 0,
            inflow: Vec::new(),
            inflow_ptr: 0,
            flow: FlowCtl::default(),
            next_ctrl,
            next_boot: u32::MAX,
            next_sample: if series_every > 0 {
                series_every - 1
            } else {
                u32::MAX
            },
            kv_next: u32::MAX,
            kv_blocked: false,
            decode_retry: false,
            tick: 0,
        }
    }

    /// Steps this cell until its clock reaches `until` (the cell may
    /// pause *past* `until` after an idle jump — that is fine, the next
    /// segment resumes from there). Every phase of the loop body is
    /// identical to the pre-extraction cell-major loop; only the loop
    /// bound changed from the horizon to `until`.
    #[allow(clippy::too_many_arguments)]
    fn run_until(
        &mut self,
        shared: &Shared<'_>,
        until: u32,
        acc: &mut ShardTotals,
        series: &mut Option<SeriesRecorder>,
        trace_buf: &mut Vec<TraceEvent>,
        prof: &mut ProfTimer,
        tenant_scratch: &mut [u64],
    ) {
        // Re-entry drift compensation: while this cell was paused, the
        // shard's other cells advanced `acc`; shift the sampling
        // snapshot by the same amount so the next window delta counts
        // only this cell's own additions.
        if let Some(pause) = self.pause.take() {
            if self.series_ids.is_some() {
                self.snap.advance(&pause, &CounterSnap::take(acc));
            }
        }
        let cell_idx = self.cell_idx;
        let knobs = &shared.knobs;
        let rates = &shared.rates;
        let power = &shared.power;
        let ticks = shared.cfg.num_ticks();
        let tick_us = knobs.tick_us;
        let CellSim {
            cell,
            insts,
            phases,
            kv,
            traffic,
            ctl,
            chaos,
            outage_fired,
            partition_fired,
            thermal_fired,
            drain_fired,
            drain_restored,
            drained,
            clamp,
            chaos_outed,
            sampler,
            series_ids,
            series_every,
            snap: snap_ref,
            pause: pause_ref,
            heap,
            accrued,
            busy,
            busy_list,
            lifecycle_now,
            clamp_scratch,
            arrivals,
            arr_ptr: arr_ptr_ref,
            inflow,
            inflow_ptr: inflow_ptr_ref,
            flow,
            next_ctrl: next_ctrl_ref,
            next_boot: next_boot_ref,
            next_sample: next_sample_ref,
            kv_next: kv_next_ref,
            kv_blocked: kv_blocked_ref,
            decode_retry: decode_retry_ref,
            tick: tick_ref,
            ..
        } = self;
        let series_every = *series_every;
        let mut snap = core::mem::take(snap_ref);
        let mut sink = sampler.take().map(|sampler| TraceSink {
            buf: trace_buf,
            sampler,
            cell: cell_idx,
        });
        let n = insts.len();
        let mut arr_ptr = *arr_ptr_ref;
        let mut inflow_ptr = *inflow_ptr_ref;
        let mut next_ctrl = *next_ctrl_ref;
        let mut next_boot = *next_boot_ref;
        let mut next_sample = *next_sample_ref;
        let mut kv_next = *kv_next_ref;
        let mut kv_blocked = *kv_blocked_ref;
        let mut decode_retry = *decode_retry_ref;
        let mut tick = *tick_ref;
        macro_rules! accrue {
            ($i:expr, $to:expr) => {
                accrue_idle_span(
                    acc,
                    power,
                    tick_us,
                    shared.nominal_ci,
                    &insts,
                    ctl.as_ref(),
                    &clamp,
                    &phases,
                    accrued,
                    $i,
                    $to,
                )
            };
        }
        macro_rules! accrue_all {
            ($to:expr) => {
                for i in 0..n {
                    accrue!(i, $to);
                }
            };
        }
        while tick < until {
            let t_start = tick as u64 * tick_us;
            let t_end = t_start + tick_us;
            prof.reset();
            cell.reclaim_repaired(t_start);
            for job in cell.dispatch_repairs(t_start, rates.repair_us) {
                acc.repairs_dispatched += 1;
                acc.repair_wait_us += job.wait_us;
                if !job.replenish {
                    insts[job.local_idx as usize].schedule_recovery(job.done_us);
                    // The recovery can already be due this tick (a
                    // zero-length repair); the heap drains after
                    // dispatch, so a same-tick wakeup still runs.
                    let rt = job.done_us.div_ceil(tick_us).max(tick as u64);
                    if rt < ticks as u64 {
                        heap.push(Reverse((rt as u32, job.local_idx)));
                    }
                }
                if let Some(ts) = sink.as_mut() {
                    ts.buf.push(TraceEvent::complete(
                        "chaos",
                        "repair",
                        t_start,
                        job.done_us.saturating_sub(t_start),
                        cell_idx,
                        job.local_idx,
                        job.wait_us,
                    ));
                }
            }
            lifecycle_now.clear();
            while let Some(&Reverse((t, i))) = heap.peek() {
                if t > tick {
                    break;
                }
                heap.pop();
                // Dedup duplicate instance wakeups: equal entries pop
                // adjacently, and a doubled lifecycle call could
                // recover-and-refail within one tick where the tick
                // loop called it exactly once.
                if i != u32::MAX && lifecycle_now.last() != Some(&i) {
                    lifecycle_now.push(i);
                }
            }
            let mut partitioned = false;
            let mut forced_down = false;
            if let Some(ch) = chaos {
                // Correlated outages fire once, at the tick containing
                // their window start: every affected up instance goes down
                // for the window. Spares apply, but the swap can only run
                // once the domain is back, so spare recovery lands at
                // window end + swap; either way the repair crew is
                // requested for window end.
                for (e, (kind, start, end, locals)) in ch.outages.iter().enumerate() {
                    if outage_fired[e] || *start >= t_end {
                        continue;
                    }
                    outage_fired[e] = true;
                    let at = (*start).max(t_start);
                    if let Some(ts) = sink.as_mut() {
                        ts.buf.push(TraceEvent::complete(
                            "chaos",
                            if *kind == 2 {
                                "power_outage"
                            } else {
                                "rack_outage"
                            },
                            *start,
                            end - start,
                            cell_idx,
                            locals.first().copied().unwrap_or(0),
                            locals.len() as u64,
                        ));
                    }
                    for &li in locals {
                        let iu = li as usize;
                        if !insts[iu].up {
                            continue;
                        }
                        accrue!(iu, tick);
                        acc.failures += 1;
                        acc.by_kind[*kind] += 1;
                        if cell.try_take_spare() {
                            acc.spare_hits += 1;
                            insts[iu].force_down(at, end.saturating_add(rates.swap_us.max(1)), acc);
                            cell.enqueue_repair(*end, li, true);
                        } else {
                            acc.spare_misses += 1;
                            insts[iu].force_down(at, u64::MAX, acc);
                            cell.enqueue_repair(*end, li, false);
                        }
                        let du = insts[iu].down_until_at_us();
                        if du != u64::MAX {
                            let rt = du.div_ceil(tick_us);
                            if rt < ticks as u64 {
                                heap.push(Reverse((rt as u32, li)));
                            }
                        }
                        // The repair job becomes dispatchable at the
                        // first tick whose start reaches the window end.
                        let dt = end.div_ceil(tick_us).max(tick as u64 + 1);
                        if dt < ticks as u64 {
                            heap.push(Reverse((dt as u32, u32::MAX)));
                        }
                        forced_down = true;
                        busy_remove(busy, busy_list, iu);
                    }
                }
                let active = |s: u64, e: u64| s <= t_start && t_start < e;
                for (e, &(start, end)) in ch.partitions.iter().enumerate() {
                    if active(start, end) {
                        partitioned = true;
                        if !partition_fired[e] {
                            partition_fired[e] = true;
                            acc.by_kind[3] += 1; // DomainKind::Partition.
                            if let Some(ts) = sink.as_mut() {
                                ts.buf.push(TraceEvent::complete(
                                    "chaos",
                                    "partition",
                                    start,
                                    end - start,
                                    cell_idx,
                                    0,
                                    insts.len() as u64,
                                ));
                            }
                        }
                    }
                }
                drained.fill(false);
                for (e, (start, end, locals)) in ch.drains.iter().enumerate() {
                    if active(*start, *end) {
                        if !drain_fired[e] {
                            drain_fired[e] = true;
                            acc.drains += locals.len() as u64;
                            if let Some(ts) = sink.as_mut() {
                                ts.buf.push(TraceEvent::complete(
                                    "chaos",
                                    "drain",
                                    *start,
                                    end - start,
                                    cell_idx,
                                    locals.first().copied().unwrap_or(0),
                                    locals.len() as u64,
                                ));
                            }
                        }
                        for &li in locals {
                            drained[li as usize] = true;
                        }
                    } else if drain_fired[e] && !drain_restored[e] && t_start >= *end {
                        drain_restored[e] = true;
                        acc.drain_restores += locals.len() as u64;
                        if let Some(ts) = sink.as_mut() {
                            ts.buf.push(TraceEvent::instant(
                                "chaos",
                                "drain_restore",
                                *end,
                                cell_idx,
                                locals.first().copied().unwrap_or(0),
                                locals.len() as u64,
                            ));
                        }
                    }
                }
                clamp_scratch.fill(u8::MAX);
                for (e, (start, end, cci, locals)) in ch.thermals.iter().enumerate() {
                    if active(*start, *end) {
                        if !thermal_fired[e] {
                            thermal_fired[e] = true;
                            acc.by_kind[4] += 1; // DomainKind::Thermal.
                            if let Some(ts) = sink.as_mut() {
                                ts.buf.push(TraceEvent::complete(
                                    "chaos",
                                    "thermal",
                                    *start,
                                    end - start,
                                    cell_idx,
                                    locals.first().copied().unwrap_or(0),
                                    locals.len() as u64,
                                ));
                            }
                        }
                        for &li in locals {
                            clamp_scratch[li as usize] = clamp_scratch[li as usize].min(*cci);
                        }
                    }
                }
                if clamp_scratch != clamp {
                    // A clamp change re-prices Live idle ticks (the
                    // clock-tick attribution): close every open accrual
                    // span at the old operating points before
                    // committing the new clamps.
                    accrue_all!(tick);
                    clamp.copy_from_slice(clamp_scratch);
                }
                chaos_outed.fill(false);
                for (_, start, end, locals) in &ch.outages {
                    if active(*start, *end) {
                        for &li in locals {
                            chaos_outed[li as usize] = true;
                        }
                    }
                }
            }
            prof.mark(PHASE_CHAOS);
            for &i in lifecycle_now.iter() {
                let iu = i as usize;
                let was_up = insts[iu].up;
                accrue!(iu, tick);
                insts[iu].lifecycle(i, t_start, tick_us, rates, cell, acc);
                let inst = &insts[iu];
                if was_up && !inst.up {
                    forced_down = true;
                    let du = inst.down_until_at_us();
                    if du != u64::MAX {
                        let rt = du.div_ceil(tick_us);
                        if rt < ticks as u64 {
                            heap.push(Reverse((rt as u32, i)));
                        }
                    }
                    // The failure enqueued a repair job, dispatchable at
                    // the next tick at the earliest (this tick's
                    // dispatch phase already ran).
                    if tick + 1 < ticks {
                        heap.push(Reverse((tick + 1, u32::MAX)));
                    }
                    busy_remove(busy, busy_list, iu);
                } else if !was_up && inst.up {
                    // Recovered. The lifecycle returns after a recovery,
                    // so a next-failure time already in the past still
                    // fails no earlier than the next tick.
                    let nf = inst.next_failure_at_us();
                    if nf != u64::MAX {
                        let ft = (nf / tick_us).max(tick as u64 + 1);
                        if ft < ticks as u64 {
                            heap.push(Reverse((ft as u32, i)));
                        }
                    }
                    if !inst.is_idle() {
                        busy_add(busy, busy_list, iu);
                    }
                }
            }
            // A failed decode instance's requeued work (KV lost) must go
            // back through the prefill pool — decode slots never prefill,
            // so anything the lifecycle parked on their queue re-routes.
            // Decode-side queues only ever appear through a force-down
            // flush, so the sweep is due exactly on force-down ticks and
            // while a previous sweep left work unplaced (`decode_retry`
            // then forces every tick until the pool can take it).
            if shared.split.is_some() && (forced_down || decode_retry) {
                decode_retry = false;
                for i in 0..n {
                    if phases[i] == Phase::Decode && insts[i].queued() > 0 {
                        if let Some(tgt) = reroute_decode_retries(insts, phases, ctl.as_ref(), i) {
                            if tgt != i {
                                busy_add(busy, busy_list, tgt);
                            }
                        }
                        if insts[i].queued() > 0 {
                            decode_retry = true;
                        }
                    }
                }
            }
            prof.mark(PHASE_LIFECYCLE);
            // `next_boot`/`next_ctrl` stay at `u32::MAX` without a
            // control plane, so these fire only when `ctl` is present.
            if tick >= next_boot {
                // Booting → Live changes the billing mode: close every
                // open span first.
                accrue_all!(tick);
                if let Some(c) = ctl.as_mut() {
                    c.finish_boots(t_start);
                    next_boot = next_boot_tick(&c.modes, tick_us, ticks);
                }
            }
            if tick == next_ctrl {
                // The control plane observes announced chaos state
                // (active outage windows + drains) so the autoscaler
                // can hold replacement capacity live instead of
                // parking it into the blast radius.
                let chaos_down = drained
                    .iter()
                    .zip(chaos_outed.iter())
                    .filter(|(&d, &o)| d || o)
                    .count() as u32;
                // Control may change modes, clocks and phases — all
                // accrual inputs.
                accrue_all!(tick);
                if let Some(c) = ctl.as_mut() {
                    c.control(
                        tick,
                        t_start,
                        insts,
                        phases,
                        kv.as_ref(),
                        shared,
                        chaos_down,
                        sink.as_mut(),
                        acc,
                    );
                    next_ctrl = next_ctrl.saturating_add(c.interval_ticks);
                    next_boot = next_boot_tick(&c.modes, tick_us, ticks);
                }
            }
            prof.mark(PHASE_CONTROL);
            // `kv_next` stays at `u32::MAX` (and `kv_blocked` false)
            // without a KV link, so this fires only when one exists.
            if let Some(link) = kv.as_mut().filter(|_| kv_blocked || tick >= kv_next) {
                deliver_transfers(
                    link,
                    t_start,
                    insts,
                    phases,
                    ctl.as_ref(),
                    drained,
                    shared.lut.max_batch,
                    knobs,
                    sink.as_mut(),
                    acc,
                    |i| busy_add(busy, busy_list, i),
                );
                // A landed head with no decode room blocks FIFO: the
                // next tick must process another delivery attempt.
                kv_blocked = link.peek_landed(t_start).is_some();
            }
            prof.mark(PHASE_KV);
            if arrivals.get(arr_ptr).is_some_and(|&(t, _, _)| t == tick) {
                let lo = arr_ptr;
                while arrivals.get(arr_ptr).is_some_and(|&(t, _, _)| t == tick) {
                    arr_ptr += 1;
                }
                traffic.route_event(
                    tick,
                    shared,
                    ctl.as_mut(),
                    phases,
                    insts,
                    partitioned,
                    drained,
                    acc,
                    flow,
                    &arrivals[lo..arr_ptr],
                    |i| busy_add(busy, busy_list, i),
                );
            }
            // Cross-cell spill-over: cohorts other cells redirected here
            // land after the cell's own same-tick arrivals (a fixed,
            // deterministic admission order) and go through the exact
            // same routing/admission path.
            if inflow.get(inflow_ptr).is_some_and(|&(t, _, _)| t == tick) {
                let lo = inflow_ptr;
                while inflow.get(inflow_ptr).is_some_and(|&(t, _, _)| t == tick) {
                    inflow_ptr += 1;
                }
                traffic.route_event(
                    tick,
                    shared,
                    ctl.as_mut(),
                    phases,
                    insts,
                    partitioned,
                    drained,
                    acc,
                    flow,
                    &inflow[lo..inflow_ptr],
                    |i| busy_add(busy, busy_list, i),
                );
            }
            prof.mark(PHASE_ROUTE);
            let mut keep = 0usize;
            for r in 0..busy_list.len() {
                let iu = busy_list[r] as usize;
                accrue!(iu, tick);
                let mode = ctl.as_ref().map_or(SlotMode::Live, |c| c.modes[iu]);
                // A thermal excursion caps the slot's operating point
                // below whatever DVFS (or nominal) asked for; the grid is
                // priced whenever any thermal event exists.
                let ci = ctl
                    .as_ref()
                    .map_or(shared.nominal_ci, |c| c.clocks[iu])
                    .min(clamp[iu]) as usize;
                let inst = &mut insts[iu];
                let (spent, nominal_spent) = if mode == SlotMode::Live {
                    inst.serve(
                        tick,
                        shared.lut,
                        knobs,
                        phases[iu],
                        ci as u8,
                        kv.as_mut(),
                        sink.as_mut(),
                        acc,
                    )
                } else {
                    (0, 0)
                };
                // Energy: powered states only. A down instance draws
                // nothing (its unit is out for swap/repair); a gated
                // (cold) instance draws nothing — that is the §3 win.
                // Dynamic power bills at the slot's operating point; the
                // nominal-clock counterfactual of the same served work
                // accumulates beside it, so the report can state exactly
                // what serving-time DVFS saved.
                if inst.up {
                    match mode {
                        SlotMode::Live => {
                            let dyn_uj = power.dyn_mw[ci] * spent / 1000;
                            acc.energy_uj += (power.idle_mw * tick_us) / 1000 + dyn_uj;
                            acc.idle_energy_uj +=
                                power.idle_mw * (tick_us - spent.min(tick_us)) / 1000;
                            acc.live_ticks += 1;
                            acc.clock_ticks[ci] += 1;
                            acc.dvfs_dyn_uj += dyn_uj;
                            acc.dvfs_nominal_dyn_uj +=
                                power.dyn_mw[shared.nominal_ci as usize] * nominal_spent / 1000;
                            match phases[iu] {
                                Phase::Prefill => acc.prefill_live_ticks += 1,
                                Phase::Decode => acc.decode_live_ticks += 1,
                                Phase::Mixed => {}
                            }
                        }
                        SlotMode::Warm | SlotMode::Booting { .. } => {
                            let e = power.idle_mw * tick_us / 1000;
                            acc.energy_uj += e;
                            acc.idle_energy_uj += e;
                        }
                        SlotMode::Cold => {}
                    }
                }
                accrued[iu] = tick + 1;
                if insts[iu].up && !insts[iu].is_idle() {
                    busy_list[keep] = iu as u32;
                    keep += 1;
                } else {
                    busy[iu] = false;
                }
            }
            busy_list.truncate(keep);
            prof.mark(PHASE_SERVE);
            if let Some(link) = kv.as_ref() {
                kv_next = match link.head_complete_us() {
                    Some(c) => {
                        let t = c.div_ceil(tick_us);
                        if t < ticks as u64 {
                            t as u32
                        } else {
                            u32::MAX
                        }
                    }
                    None => u32::MAX,
                };
            }
            if tick == next_sample {
                // Sampling reads the energy counter: bill this tick's
                // idle instances into the closing window first.
                accrue_all!(tick + 1);
                if let Some(s) = series.as_mut() {
                    let w = ((tick + 1) / series_every - 1) as usize;
                    let t_end = (tick as u64 + 1) * tick_us;
                    snap = sample_series(
                        s,
                        series_ids.as_ref().expect("ids resolved with the recorder"),
                        w,
                        t_end,
                        &snap,
                        acc,
                        insts,
                        ctl.as_ref(),
                        phases,
                        kv.as_ref(),
                        cell,
                        drained,
                        tenant_scratch,
                    );
                }
                next_sample = next_sample.saturating_add(series_every);
            }
            prof.mark(PHASE_SAMPLE);
            if !busy_list.is_empty() || kv_blocked || decode_retry {
                // Work (or a blocked KV head, or unplaced decode
                // retries) forces the very next tick.
                tick += 1;
            } else {
                // Idle: jump to the earliest due channel. `max(tick+1)`
                // guards against stale already-passed channel values.
                let mut nxt = ticks;
                if let Some(&Reverse((t, _))) = heap.peek() {
                    nxt = nxt.min(t);
                }
                if let Some(&(t, _, _)) = arrivals.get(arr_ptr) {
                    nxt = nxt.min(t);
                }
                if let Some(&(t, _, _)) = inflow.get(inflow_ptr) {
                    nxt = nxt.min(t);
                }
                nxt = nxt
                    .min(next_ctrl)
                    .min(next_boot)
                    .min(next_sample)
                    .min(kv_next);
                tick = nxt.max(tick + 1);
            }
        }
        // Write the segment's loop state back for the next segment (or
        // `finalize`).
        *arr_ptr_ref = arr_ptr;
        *inflow_ptr_ref = inflow_ptr;
        *next_ctrl_ref = next_ctrl;
        *next_boot_ref = next_boot;
        *next_sample_ref = next_sample;
        *kv_next_ref = kv_next;
        *kv_blocked_ref = kv_blocked;
        *decode_retry_ref = decode_retry;
        *tick_ref = tick;
        *snap_ref = snap;
        *sampler = sink.map(|ts| ts.sampler);
        *pause_ref = series_ids.is_some().then(|| CounterSnap::take(acc));
    }

    /// Publishes this cell's fleet-scope observation at a window
    /// boundary at `now_us`, together with the upcoming window's
    /// arrival batches (`tick < b_next`) the planner may spill.
    fn publish(&mut self, now_us: u64, b_next: u32) -> CellSnapshot {
        let mut obs = FleetCellObs::new();
        for inst in &self.insts {
            obs.queued += inst.queued();
            obs.active += inst.active() as u64;
            obs.up += u32::from(inst.up);
        }
        obs.live = match self.ctl.as_ref() {
            Some(c) => c
                .modes
                .iter()
                .zip(&self.insts)
                .filter(|(m, inst)| **m == SlotMode::Live && inst.up)
                .count() as u32,
            None => obs.up,
        };
        obs.arrived_window = core::mem::take(&mut self.flow.window_arrived);
        obs.kv_backlog_us = self.kv.as_ref().map_or(0, |k| k.backlog_us(now_us));
        obs.chaos_down = self
            .drained
            .iter()
            .zip(&self.chaos_outed)
            .filter(|(&d, &o)| d || o)
            .count() as u32;
        // Everything still pending with `tick < b_next` is exactly the
        // coming window: `run_until` consumed every batch due before
        // the boundary.
        let end = self.arrivals[self.arr_ptr..].partition_point(|&(t, _, _)| t < b_next);
        CellSnapshot {
            obs,
            window: self.arrivals[self.arr_ptr..self.arr_ptr + end].to_vec(),
        }
    }

    /// Applies one window's fleet directives: resets the admission
    /// quota, removes spilled requests from this cell's pending
    /// arrivals, and lands cohorts other cells redirected here. Spill
    /// accounting books the outflow at the source and the inflow at the
    /// destination, each into its own shard's accumulator, so the
    /// merged flow matrix conserves exactly.
    fn apply_plan(&mut self, plan: CellPlan, acc: &mut ShardTotals) {
        self.flow.quota_left = plan.quota.unwrap_or(u64::MAX);
        for &(rel, n) in &plan.deduct {
            self.arrivals[self.arr_ptr + rel].2 -= n;
        }
        for &(dst, n) in &plan.outflow {
            acc.spill_out += n;
            *acc.spill_flow.entry((self.cell_idx, dst)).or_insert(0) += n;
        }
        if !plan.inflow.is_empty() {
            acc.spilled_cohorts += plan.inflow.len() as u64;
            for &(_, _, n) in &plan.inflow {
                acc.spill_in += n;
            }
            let first = plan.inflow[0].0;
            self.inflow.extend_from_slice(&plan.inflow);
            // Rewind the idle jump if the cell had already skipped past
            // the first redirected cohort: between the rewound tick and
            // the previously computed jump target nothing else is due
            // (the jump was the minimum over every channel), so the
            // extra processed ticks only route the new inflow.
            self.tick = self.tick.min(first);
        }
    }

    /// End-of-horizon accounting: closes every remaining idle span and
    /// books pending downtime and in-flight KV bytes.
    fn finalize(&mut self, shared: &Shared<'_>, acc: &mut ShardTotals) {
        let ticks = shared.cfg.num_ticks();
        let tick_us = shared.knobs.tick_us;
        for i in 0..self.insts.len() {
            accrue_idle_span(
                acc,
                &shared.power,
                tick_us,
                shared.nominal_ci,
                &self.insts,
                self.ctl.as_ref(),
                &self.clamp,
                &self.phases,
                &mut self.accrued,
                i,
                ticks,
            );
        }
        let horizon_us = ticks as u64 * tick_us;
        for inst in &self.insts {
            acc.downtime_us += inst.pending_downtime_us(horizon_us);
        }
        if let Some(link) = &self.kv {
            acc.kv_bytes_inflight_end += link.inflight_bytes();
        }
    }
}

/// The pure fleet planner: turns the published snapshots into one
/// [`CellPlan`] per cell. Runs on exactly one thread per window, reads
/// only the snapshots, and is deterministic in them — which is what
/// keeps balanced runs byte-identical at any `(shards, threads)`.
///
/// Spill split: for each source directive the planner walks the source's
/// window events with a cumulative permille floor
/// (`take_j = ⌊cum_j·p/1000⌋ − ⌊cum_{j−1}·p/1000⌋`, so the total spilled
/// is exactly `⌊total·p/1000⌋` regardless of how arrivals batch), and
/// assigns each taken cohort to the destination whose share of the
/// spill so far lags its weight the most (largest `w·spilled − given·Σw`,
/// ties to the lowest index).
fn plan_fleet(
    shared: &Shared<'_>,
    controller: &mut (dyn FleetController + Send),
    bal_window_s: f64,
    b: u32,
    snaps: Vec<CellSnapshot>,
) -> Vec<CellPlan> {
    let cells = snaps.len();
    let mut obs = FleetObs::new(b, bal_window_s);
    obs.phase_split = shared.split.is_some();
    obs.capacity_rps_per_instance = shared.cap_rps;
    obs.max_queue = shared.knobs.max_queue;
    let mut windows: Vec<Vec<(u32, u16, u64)>> = Vec::with_capacity(cells);
    for s in snaps {
        obs.cells.push(s.obs);
        windows.push(s.window);
    }
    let directives = controller.plan(&obs);
    let mut plans: Vec<CellPlan> = (0..cells).map(|_| CellPlan::default()).collect();
    // Admission-order position per tenant, for the destination-side sort.
    let mut pos_of = vec![0u16; shared.classes.len()];
    for (pos, &ti) in shared.priority_order.iter().enumerate() {
        pos_of[ti as usize] = pos as u16;
    }
    // Directives are sanitized here, not trusted: unknown cells are
    // dropped, the last directive per cell wins, self/unknown spill
    // targets are filtered, and the permille is capped at 1000.
    let mut chosen: Vec<Option<usize>> = vec![None; cells];
    for (i, d) in directives.iter().enumerate() {
        if (d.cell as usize) < cells {
            chosen[d.cell as usize] = Some(i);
        }
    }
    let mut staged: Vec<(u32, u16, u32, u32, u16, u64)> = Vec::new();
    for (src, pick) in chosen.iter().enumerate() {
        let Some(di) = pick else { continue };
        let d = &directives[*di];
        plans[src].quota = d.admission_quota;
        let p = u64::from(d.spill_permille.min(1000));
        if p == 0 {
            continue;
        }
        let targets: Vec<(u32, u64)> = d
            .spill_to
            .iter()
            .copied()
            .filter(|&(dst, w)| (dst as usize) < cells && dst != d.cell && w > 0)
            .collect();
        if targets.is_empty() {
            continue;
        }
        let wsum: u64 = targets.iter().map(|&(_, w)| w).sum();
        let mut given = vec![0u64; targets.len()];
        let mut spilled = 0u64;
        let mut cum = 0u64;
        for (rel, &(t, ti, c)) in windows[src].iter().enumerate() {
            let prev = cum * p / 1000;
            cum += c;
            let take = cum * p / 1000 - prev;
            if take == 0 {
                continue;
            }
            spilled += take;
            let mut best = 0usize;
            let mut best_score = i128::MIN;
            for (j, &(_, w)) in targets.iter().enumerate() {
                let score = w as i128 * spilled as i128 - given[j] as i128 * wsum as i128;
                if score > best_score {
                    best_score = score;
                    best = j;
                }
            }
            given[best] += take;
            plans[src].deduct.push((rel, take));
            staged.push((t, pos_of[ti as usize], d.cell, targets[best].0, ti, take));
        }
        for (j, &(dst, _)) in targets.iter().enumerate() {
            if given[j] > 0 {
                plans[src].outflow.push((dst, given[j]));
            }
        }
    }
    // Destination inflow in `(tick, admission order, source)` order: a
    // fixed total order, so every dest routes its spilled cohorts
    // identically at any thread count.
    staged.sort_unstable();
    for (t, _, _, dst, ti, n) in staged {
        plans[dst as usize].inflow.push((t, ti, n));
    }
    plans
}

/// Steps the whole fleet window-by-window under a fleet-scope balancer.
///
/// Each fleet tick is a snapshot → pure function → commands cycle:
/// every cell runs to the boundary ([`CellSim::run_until`]), publishes
/// a read-only snapshot, exactly one thread runs the
/// [`FleetController`] over the assembled [`FleetObs`] (cells still
/// never read each other's state — only the planner sees the fleet),
/// and every cell applies its own directive before the next window.
/// Per-shard accumulators and telemetry are built exactly as in the
/// cell-major path, so the fixed-order merge — and with it the
/// byte-identity guarantee over `(shards, threads)` — is unchanged.
fn run_balanced(
    shared: &Shared<'_>,
    seed: u64,
    shards: u32,
    threads: u32,
    bal: &BalancerConfig,
    slots: &mut [Option<(ShardTotals, ShardTelemetry)>],
) {
    let cfg = shared.cfg;
    let cells = cfg.num_cells();
    let ticks = cfg.num_ticks();
    let tick_us = shared.knobs.tick_us;
    let n_tenants = cfg.workload.tenants.len();
    let tel = &cfg.telemetry;
    let series_every = if tel.series_dt_us > 0 {
        (((tel.series_dt_us + tick_us / 2) / tick_us) as u32).max(1)
    } else {
        0
    };
    let bal_ticks = ((bal.interval_s / cfg.tick_s).round() as u32).max(1);
    let bal_window_s = bal_ticks as f64 * cfg.tick_s;
    let bounds = |s: u32| (s as u64 * cells as u64 / shards as u64) as u32;
    // Fleet-tick rendezvous state: one slot per cell for the published
    // snapshot and the returned plan. Each cell's slot is written and
    // read by its owning worker only (plus the leader), so the locks
    // are uncontended; they exist to make the handoff race-free.
    let snaps: Vec<Mutex<Option<CellSnapshot>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    let plans: Vec<Mutex<Option<CellPlan>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    let controller: Mutex<Box<dyn FleetController + Send>> = Mutex::new(bal.build());
    let barrier = Barrier::new(threads as usize);
    struct BalCtx<'a> {
        shard: u32,
        acc: ShardTotals,
        series: Option<SeriesRecorder>,
        trace_buf: Vec<TraceEvent>,
        prof: ProfTimer,
        tenant_scratch: Vec<u64>,
        sims: Vec<CellSim<'a>>,
    }
    let worker = |w: u32| -> Vec<(u32, (ShardTotals, ShardTelemetry))> {
        // Per-owned-shard contexts, cells constructed in index order
        // (metric-registration order is part of the series bytes).
        let mut ctxs: Vec<BalCtx<'_>> = Vec::new();
        let mut s = w;
        while s < shards {
            let acc = ShardTotals::new(n_tenants, shared.lut.num_clocks());
            let mut series = (series_every > 0).then(|| {
                SeriesRecorder::new(
                    series_every as u64 * tick_us,
                    (ticks / series_every.max(1)) as usize,
                )
            });
            let mut prof = ProfTimer::new(tel.profile);
            let sims: Vec<CellSim<'_>> = (bounds(s)..bounds(s + 1))
                .map(|c| {
                    CellSim::new(
                        shared,
                        seed,
                        c,
                        series_every,
                        series.as_mut(),
                        &mut prof,
                        &acc,
                    )
                })
                .collect();
            ctxs.push(BalCtx {
                shard: s,
                acc,
                series,
                trace_buf: Vec::new(),
                prof,
                tenant_scratch: vec![0u64; n_tenants],
                sims,
            });
            s += threads;
        }
        // One sweep through the owned cells per window: apply the
        // previous window's plan, run to the boundary, and publish —
        // per cell, while its state is hot in cache. Sweeping the fleet
        // once per window instead of three times is what keeps the
        // balancer's overhead small at 100k-instance scale, where a
        // full pass over cell state is memory-bound.
        let mut have_plans = false;
        let mut b = bal_ticks.min(ticks);
        loop {
            let b_next = b.saturating_add(bal_ticks).min(ticks);
            let now_us = b as u64 * tick_us;
            let publishing = b < ticks;
            for cx in ctxs.iter_mut() {
                for sim in cx.sims.iter_mut() {
                    if have_plans {
                        let plan = plans[sim.cell_idx as usize]
                            .lock()
                            .unwrap()
                            .take()
                            .expect("leader planned every cell");
                        sim.apply_plan(plan, &mut cx.acc);
                    }
                    sim.run_until(
                        shared,
                        b,
                        &mut cx.acc,
                        &mut cx.series,
                        &mut cx.trace_buf,
                        &mut cx.prof,
                        &mut cx.tenant_scratch,
                    );
                    if publishing {
                        let snap = sim.publish(now_us, b_next);
                        *snaps[sim.cell_idx as usize].lock().unwrap() = Some(snap);
                    }
                }
            }
            if !publishing {
                break;
            }
            if barrier.wait().is_leader() {
                let published: Vec<CellSnapshot> = snaps
                    .iter()
                    .map(|m| m.lock().unwrap().take().expect("every cell published"))
                    .collect();
                let mut ctl = controller.lock().unwrap();
                let fleet_plans = plan_fleet(shared, ctl.as_mut(), bal_window_s, b, published);
                for (c, p) in fleet_plans.into_iter().enumerate() {
                    *plans[c].lock().unwrap() = Some(p);
                }
            }
            barrier.wait();
            have_plans = true;
            b = b_next;
        }
        ctxs.into_iter()
            .map(|mut cx| {
                for sim in cx.sims.iter_mut() {
                    sim.finalize(shared, &mut cx.acc);
                }
                cx.trace_buf.sort_unstable();
                (
                    cx.shard,
                    (
                        cx.acc,
                        ShardTelemetry {
                            series: cx.series,
                            trace: cx.trace_buf,
                            profile: cx.prof.p,
                        },
                    ),
                )
            })
            .collect()
    };
    if threads == 1 {
        for (s, out) in worker(0) {
            slots[s as usize] = Some(out);
        }
    } else {
        let out: Vec<Vec<(u32, (ShardTotals, ShardTelemetry))>> = std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (0..threads)
                .map(|w| scope.spawn(move || worker(w)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("balanced shard worker panicked"))
                .collect()
        });
        for chunk in out {
            for (s, r) in chunk {
                slots[s as usize] = Some(r);
            }
        }
    }
}

/// Steps every cell in `[cell_lo, cell_hi)` through the whole horizon
/// on the event-queue scheduler.
///
/// Instead of walking every instance every tick, each cell keeps a
/// min-heap of *wakeups* — `(tick, instance)` failure/recovery events
/// plus generic "process this tick" entries for chaos window edges and
/// repair-dispatch readiness — alongside periodic channels (control
/// interval, boot completions, series sampling, next KV-transfer
/// landing) and the precomputed arrival schedule. A tick is *processed*
/// only when some channel is due or an instance holds work; between
/// processed ticks the cell provably does nothing, and idle energy is
/// billed lazily per instance when its span closes. Spurious wakeups
/// are byte-safe by construction (every phase below no-ops when nothing
/// is due — the tick loop ran all of them every tick); only a missing
/// wakeup could diverge, which the engine-equivalence goldens pin.
fn simulate_cells(
    shared: &Shared<'_>,
    seed: u64,
    cell_lo: u32,
    cell_hi: u32,
) -> (ShardTotals, ShardTelemetry) {
    let cfg = shared.cfg;
    let n_tenants = cfg.workload.tenants.len();
    let mut acc = ShardTotals::new(n_tenants, shared.lut.num_clocks());
    let ticks = cfg.num_ticks();
    let tick_us = shared.knobs.tick_us;
    let tel = &cfg.telemetry;
    // The series grid: whole ticks per window, trailing partial window
    // dropped. Integer-derived once, so every shard agrees on the grid.
    let series_every = if tel.series_dt_us > 0 {
        (((tel.series_dt_us + tick_us / 2) / tick_us) as u32).max(1)
    } else {
        0
    };
    let mut series = (series_every > 0).then(|| {
        SeriesRecorder::new(
            series_every as u64 * tick_us,
            (ticks / series_every.max(1)) as usize,
        )
    });
    let mut trace_buf: Vec<TraceEvent> = Vec::new();
    let mut prof = ProfTimer::new(tel.profile);
    let mut tenant_scratch = vec![0u64; n_tenants];
    for cell_idx in cell_lo..cell_hi {
        let mut sim = CellSim::new(
            shared,
            seed,
            cell_idx,
            series_every,
            series.as_mut(),
            &mut prof,
            &acc,
        );
        sim.run_until(
            shared,
            ticks,
            &mut acc,
            &mut series,
            &mut trace_buf,
            &mut prof,
            &mut tenant_scratch,
        );
        sim.finalize(shared, &mut acc);
    }
    // Pre-sort this shard's events on the worker thread: the main-thread
    // merge then sees one sorted run per shard, which the stable sort
    // there merges in O(n log shards) instead of a full re-sort.
    trace_buf.sort_unstable();
    (
        acc,
        ShardTelemetry {
            series,
            trace: trace_buf,
            profile: prof.p,
        },
    )
}

/// A fleet run together with whatever telemetry the config asked for.
///
/// The `report` is byte-identical for any `(shards, threads)` and for
/// any [`TelemetryConfig`]; `series` and `trace` are themselves
/// shard/thread-invariant (deterministic merges over deterministic
/// shard-local recordings). Only `profile` is wall-clock and varies
/// between runs — it must never feed back into simulation state.
#[derive(Debug)]
pub struct FleetRun {
    /// The deterministic fleet report.
    pub report: FleetReport,
    /// Merged time-series recorder (present when `series_dt_us > 0`).
    pub series: Option<SeriesRecorder>,
    /// Merged, totally-ordered trace events (present when `trace_every > 0`).
    pub trace: Option<Vec<TraceEvent>>,
    /// Engine self-profile (present when `profile` was requested).
    pub profile: Option<PhaseProfile>,
}

/// Runs the fleet partitioned into `shards` shards on up to `threads`
/// OS threads. The partition affects wall-clock only: the report is
/// byte-identical for any `(shards, threads)`.
///
/// # Examples
///
/// ```
/// use litegpu_fleet::engine::{run_sharded, FleetConfig};
///
/// let mut cfg = FleetConfig::lite_demo();
/// cfg.instances = 16;
/// cfg.cell_size = 8;
/// cfg.horizon_s = 600.0;
/// // Same seed ⇒ the same report for any shard/thread partition.
/// let serial = run_sharded(&cfg, 42, 1, 1).unwrap();
/// let sharded = run_sharded(&cfg, 42, 4, 2).unwrap();
/// assert_eq!(serial.to_json(), sharded.to_json());
/// ```
pub fn run_sharded(cfg: &FleetConfig, seed: u64, shards: u32, threads: u32) -> Result<FleetReport> {
    Ok(run_sharded_full(cfg, seed, shards, threads)?.report)
}

/// [`run_sharded`] plus the telemetry artefacts requested by
/// `cfg.telemetry`: merged series, merged trace, and the engine
/// self-profile.
pub fn run_sharded_full(
    cfg: &FleetConfig,
    seed: u64,
    shards: u32,
    threads: u32,
) -> Result<FleetRun> {
    cfg.validate()?;
    // A DVFS-controlled fleet prices the full SLO_MIN_CLOCK..=1.0
    // operating-point grid; so does any run with thermal-excursion chaos
    // (the clamp needs sub-nominal rows to land on). Everything else
    // prices nominal only (same table, one clock row).
    let clocks: Vec<f64> = if cfg.dvfs_enabled() || cfg.chaos.has_thermal() {
        power_mgmt::operating_points()
    } else {
        vec![1.0]
    };
    let lut = StepCostTable::build_with_clocks(
        &cfg.gpu,
        &cfg.arch,
        cfg.gpus_per_instance,
        &cfg.params,
        &clocks,
    )?;
    let ticks = cfg.num_ticks();
    let knobs = cfg.knobs();
    let tenants_meta = cfg.tenant_meta(&knobs);
    let shared = Shared {
        cfg,
        lut: &lut,
        rates: cfg.failure_rates(),
        power: cfg.instance_power(lut.clock_points()),
        cap_rps: cfg.capacity_rps(&lut),
        clock_points: cfg.clock_obs(&lut, &knobs),
        nominal_ci: lut.nominal_clock_idx() as u8,
        split: match &cfg.serving {
            ServingMode::Monolithic => None,
            ServingMode::PhaseSplit {
                prefill_fraction,
                kv_link,
            } => Some(SplitShared {
                prefill_fraction: *prefill_fraction,
                kv_bytes_per_s: (kv_link.bandwidth_gbps * 1e9).round() as u64,
                kv_max_backlog_us: (kv_link.max_backlog_s * 1e6).round() as u64,
                prefill_capacity_rps: cfg.prefill_capacity_rps_at(&lut, lut.nominal_clock_idx()),
                decode_capacity_rps: cfg.decode_capacity_rps_at(&lut, lut.nominal_clock_idx()),
            }),
        },
        priority_order: cfg.workload.priority_order(),
        classes: cfg.workload.tenants.iter().map(|t| t.priority).collect(),
        lambda: cfg
            .workload
            .share_fractions()
            .iter()
            .zip(&cfg.workload.tenants)
            .map(|(share, t)| {
                let base = cfg.workload.rate_per_instance_s * share * cfg.tick_s;
                (0..ticks)
                    .map(|k| base * t.pattern.multiplier_at((k as f64 + 0.5) * cfg.tick_s))
                    .collect()
            })
            .collect(),
        arr_plans: Vec::new(),
        chaos: compile_cell_chaos(cfg, lut.clock_points()),
        knobs,
    };
    let mut shared = shared;
    shared.arr_plans = plan_arrivals(&shared.lambda, cfg.cell_size as f64);
    let shared = shared;
    let cells = cfg.num_cells();
    let shards = shards.clamp(1, cells);
    let threads = threads.clamp(1, shards);
    // Shard s owns cells [s·cells/shards, (s+1)·cells/shards).
    let bounds = |s: u32| (s as u64 * cells as u64 / shards as u64) as u32;

    let mut slots: Vec<Option<(ShardTotals, ShardTelemetry)>> = (0..shards).map(|_| None).collect();
    if let Some(bal) = cfg.ctrl.as_ref().and_then(|c| c.balancer.as_ref()) {
        run_balanced(&shared, seed, shards, threads, bal, &mut slots);
    } else if threads == 1 {
        for (s, slot) in slots.iter_mut().enumerate() {
            let s = s as u32;
            *slot = Some(simulate_cells(&shared, seed, bounds(s), bounds(s + 1)));
        }
    } else {
        std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut s = w;
                        while s < shards {
                            out.push((s, simulate_cells(shared, seed, bounds(s), bounds(s + 1))));
                            s += threads;
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (s, acc) in h.join().expect("shard worker panicked") {
                    slots[s as usize] = Some(acc);
                }
            }
        });
    }

    // Merge in fixed shard order so series/trace bytes are invariant
    // to the thread schedule. Series merging is elementwise addition
    // (commutative), and the trace gets a total-order sort afterwards,
    // but fixed order keeps the invariant self-evident.
    let merge_start = Instant::now();
    let tel = &cfg.telemetry;
    let mut totals = ShardTotals::new(cfg.workload.tenants.len(), lut.num_clocks());
    let mut series: Option<SeriesRecorder> = None;
    let mut trace: Option<Vec<TraceEvent>> = (tel.trace_every > 0).then(Vec::new);
    let mut profile: Option<PhaseProfile> = tel.profile.then(PhaseProfile::new);
    for slot in &mut slots {
        let (acc, shard_tel) = slot.take().expect("every shard simulated");
        totals.merge(&acc);
        if let Some(s) = shard_tel.series {
            match series.as_mut() {
                Some(m) => m.merge(&s),
                None => series = Some(s),
            }
        }
        if let Some(t) = trace.as_mut() {
            t.extend(shard_tel.trace);
        }
        if let (Some(p), Some(sp)) = (profile.as_mut(), shard_tel.profile.as_ref()) {
            p.merge(sp);
        }
    }
    // Sort into the schema's total order (field order is the sort key),
    // making the byte stream independent of shard boundaries. Each shard
    // arrives pre-sorted, so the stable (run-merging) sort only pays the
    // k-way merge of the per-shard runs.
    if let Some(t) = trace.as_mut() {
        t.sort();
    }
    if let Some(p) = profile.as_mut() {
        p.record(PHASE_MERGE, merge_start.elapsed().as_nanos() as u64);
    }
    let horizon_s_eff = cfg.num_ticks() as f64 * cfg.tick_s;
    let report = FleetReport::finalize(
        &totals,
        RunMeta {
            gpu: cfg.gpu.name.clone(),
            model: cfg.arch.name.clone(),
            controller: cfg
                .ctrl
                .as_ref()
                .map_or_else(|| "none".to_string(), |c| c.label()),
            serving: cfg.serving.label(),
            phase_split: !matches!(cfg.serving, ServingMode::Monolithic),
            clock_points: if cfg.dvfs_enabled() {
                lut.clock_points().to_vec()
            } else {
                Vec::new()
            },
            instances: cfg.instances,
            gpus_per_instance: cfg.gpus_per_instance,
            cells,
            spares: cells * cfg.spares_per_cell,
            crews_per_cell: cfg.repair_crews_per_cell,
            chaos: !cfg.chaos.events.is_empty(),
            balancer: cfg.ctrl.as_ref().is_some_and(|c| c.balancer.is_some()),
            horizon_s: horizon_s_eff,
            tick_s: cfg.tick_s,
            tenants: tenants_meta,
        },
    );
    Ok(FleetRun {
        report,
        series,
        trace,
        profile,
    })
}

/// Runs the fleet with maximum parallelism (one shard per cell, one
/// thread per available core). Same result as any other sharding.
pub fn run(cfg: &FleetConfig, seed: u64) -> Result<FleetReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    run_sharded(cfg, seed, cfg.num_cells(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrafficPattern;

    fn small_cfg() -> FleetConfig {
        let mut c = FleetConfig::h100_demo();
        c.instances = 24;
        c.cell_size = 4;
        c.horizon_s = 900.0;
        c.failure_acceleration = 100_000.0;
        c
    }

    fn small_ctrl_cfg() -> FleetConfig {
        let mut c = FleetConfig::lite_ctrl_demo();
        c.instances = 24;
        c.cell_size = 4;
        c.horizon_s = 900.0;
        c.failure_acceleration = 100_000.0;
        c
    }

    #[test]
    fn small_fleet_serves_and_fails() {
        let r = run_sharded(&small_cfg(), 7, 1, 1).unwrap();
        assert!(r.arrived > 0);
        assert!(r.completed > 0);
        assert!(r.generated_tokens > r.completed);
        assert!(r.failures > 0, "acceleration should inject failures");
        assert!(r.availability < 1.0 && r.availability > 0.5);
        assert!(r.ttft_p50_s > 0.0);
        assert_eq!(r.controller, "none");
        // Energy is first-class even without a controller.
        assert!(r.energy_j > 0);
        assert!(r.idle_energy_j > 0);
        assert!(r.energy_per_token_j > 0.0);
        assert!(r.avg_live_instances > 0.0 && r.avg_live_instances <= 24.0);
        // Arrivals route at the cell level even without a control plane;
        // only scaling stays off.
        assert_eq!(r.scale_ups + r.scale_downs, 0);
        assert_eq!(r.routed + r.rejected, r.arrived);
        // The single default tenant owns the whole fleet's numbers.
        assert_eq!(r.per_tenant.len(), 1);
        let t = &r.per_tenant[0];
        assert_eq!(t.name, "default");
        assert_eq!(t.priority, "interactive");
        assert_eq!(t.arrived, r.arrived);
        assert_eq!(t.completed, r.completed);
        assert_eq!(t.generated_tokens, r.generated_tokens);
        assert!((t.ttft_attainment - r.ttft_attainment).abs() < 1e-12);
    }

    #[test]
    fn shard_and_thread_counts_do_not_change_the_report() {
        let cfg = small_cfg();
        let base = run_sharded(&cfg, 42, 1, 1).unwrap();
        for (shards, threads) in [(2, 1), (3, 2), (6, 4), (6, 8)] {
            let r = run_sharded(&cfg, 42, shards, threads).unwrap();
            assert_eq!(r, base, "shards={shards} threads={threads}");
            assert_eq!(r.to_json(), base.to_json());
        }
        let auto = run(&cfg, 42).unwrap();
        assert_eq!(auto, base);
    }

    #[test]
    fn controlled_fleet_scales_routes_and_stays_deterministic() {
        let cfg = small_ctrl_cfg();
        let base = run_sharded(&cfg, 11, 1, 1).unwrap();
        assert_eq!(base.controller, "autoscale+gate(GateToEfficiency)+route");
        assert!(base.completed > 0);
        assert!(base.routed > 0, "arrivals must flow through the router");
        assert!(base.scale_downs > 0, "quiet midnight load must park");
        assert!(base.energy_j > 0);
        for (shards, threads) in [(3, 1), (6, 4)] {
            let r = run_sharded(&cfg, 11, shards, threads).unwrap();
            assert_eq!(r.to_json(), base.to_json(), "shards={shards}");
        }
    }

    #[test]
    fn parking_reduces_idle_energy() {
        // Gated autoscaling at low load must burn less idle energy than
        // the same fleet pinned fully live.
        let mut quiet = small_ctrl_cfg();
        quiet.failure_acceleration = 0.0;
        quiet.workload.rate_per_instance_s = 0.1;
        let controlled = run_sharded(&quiet, 3, 2, 2).unwrap();
        let mut fixed = quiet.clone();
        fixed.ctrl = None;
        let uncontrolled = run_sharded(&fixed, 3, 2, 2).unwrap();
        assert!(
            controlled.idle_energy_j < uncontrolled.idle_energy_j / 2,
            "controlled {} vs uncontrolled {}",
            controlled.idle_energy_j,
            uncontrolled.idle_energy_j
        );
        assert!(controlled.avg_live_instances < uncontrolled.avg_live_instances);
    }

    #[test]
    fn parking_without_a_gater_keeps_paying_the_idle_floor() {
        // An autoscaler with no power module must not grant zero-draw
        // parking: parked slots stay warm (idle floor, warm boots), so
        // idle energy sits well above the gated fleet's.
        let mut quiet = small_ctrl_cfg();
        quiet.failure_acceleration = 0.0;
        quiet.workload.rate_per_instance_s = 0.1;
        let gated = run_sharded(&quiet, 3, 2, 2).unwrap();
        let mut ungated = quiet.clone();
        ungated.ctrl.as_mut().unwrap().power = None;
        let warm_parked = run_sharded(&ungated, 3, 2, 2).unwrap();
        assert_eq!(warm_parked.controller, "autoscale+route");
        assert!(warm_parked.scale_downs > 0);
        assert!(
            warm_parked.idle_energy_j > 2 * gated.idle_energy_j,
            "ungated parking {} J should pay the floor vs gated {} J",
            warm_parked.idle_energy_j,
            gated.idle_energy_j
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let a = run_sharded(&cfg, 1, 2, 2).unwrap();
        let b = run_sharded(&cfg, 2, 2, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn overload_sheds_best_effort_and_shields_interactive() {
        // A controlled multi-tenant fleet driven well past its capacity:
        // admission control must shed best-effort arrivals (and only
        // those), leaving the interactive tenant a far larger served
        // fraction than the scavenger.
        let mut cfg = small_ctrl_cfg();
        cfg.failure_acceleration = 0.0;
        cfg.workload = WorkloadSpec::multi_tenant_demo(12.0);
        let r = run_sharded(&cfg, 5, 2, 2).unwrap();
        assert_eq!(r.per_tenant.len(), 3);
        assert!(r.admission_shed > 0, "overload must trigger admission shed");
        let by_name = |n: &str| r.per_tenant.iter().find(|t| t.name == n).unwrap();
        let (chat, scavenge) = (by_name("chat"), by_name("scavenge"));
        assert_eq!(chat.priority, "interactive");
        assert_eq!(scavenge.priority, "best-effort");
        // Admission control never touches the guaranteed classes.
        assert_eq!(chat.shed, 0);
        assert!(scavenge.shed > 0);
        let served = |t: &crate::report::TenantReport| t.completed as f64 / t.arrived as f64;
        assert!(
            served(chat) > 4.0 * served(scavenge),
            "chat {} vs scavenge {}",
            served(chat),
            served(scavenge)
        );
        // Conservation: every arrival is routed or rejected, and the
        // rejects decompose into the two shed kinds plus queue overflow.
        assert_eq!(r.routed + r.rejected, r.arrived);
        assert!(r.rejected >= r.routing_shed + r.admission_shed);
        for t in &r.per_tenant {
            assert_eq!(t.routed + t.rejected + t.shed, t.arrived, "{}", t.name);
        }
    }

    fn small_split_cfg() -> FleetConfig {
        let mut c = FleetConfig::h100_demo().with_phase_split();
        c.instances = 24;
        c.cell_size = 8;
        c.horizon_s = 900.0;
        c.failure_acceleration = 0.0;
        c.workload.rate_per_instance_s = 3.0;
        c
    }

    #[test]
    fn phase_split_serves_and_accounts_kv() {
        let split = run_sharded(&small_split_cfg(), 7, 1, 1).unwrap();
        assert!(split.serving.starts_with("phase-split"));
        assert!(split.completed > 0);
        let kv = split
            .kv_transfer
            .as_ref()
            .expect("split run has kv section");
        assert!(kv.transfers > 0);
        assert_eq!(
            kv.bytes_queued,
            kv.bytes_delivered + kv.bytes_inflight_at_end,
            "KV byte conservation"
        );
        assert!(kv.link_utilization > 0.0 && kv.link_utilization < 1.0);
        assert!(kv.delay_p99_s > 0.0, "transfer delay must be visible");
        assert_eq!(kv.backpressure_stalls, 0, "default link must not saturate");
        // 8-slot cells at the 25% demo fraction: 2 prefill + 6 decode.
        assert!((kv.prefill_pool_mean - 6.0).abs() < 1e-9);
        assert!((kv.decode_pool_mean - 18.0).abs() < 1e-9);
        // Transfer delay lands in TTFT: the split fleet pays more than
        // the monolithic twin on first-token latency...
        let mut mono_cfg = small_split_cfg();
        mono_cfg.serving = ServingMode::Monolithic;
        let mono = run_sharded(&mono_cfg, 7, 1, 1).unwrap();
        assert!(mono.kv_transfer.is_none());
        assert!(split.ttft_p50_s > mono.ttft_p50_s);
        // ...but decode books are isolated from prefill interference:
        // the monolithic twin's p99 token gap carries whole prefills.
        assert!(
            split.tbt_p99_s < mono.tbt_p99_s * 0.5,
            "split p99 TBT {} vs mono {}",
            split.tbt_p99_s,
            mono.tbt_p99_s
        );
        // Phase splitting reshuffles work, not volume.
        assert!(split.completed as f64 > 0.99 * mono.completed as f64);
    }

    #[test]
    fn phase_split_report_is_sharding_invariant() {
        let cfg = small_split_cfg();
        let base = run_sharded(&cfg, 42, 1, 1).unwrap();
        for (shards, threads) in [(2, 1), (3, 2), (3, 8)] {
            let r = run_sharded(&cfg, 42, shards, threads).unwrap();
            assert_eq!(
                r.to_json(),
                base.to_json(),
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn saturated_kv_link_backpressures_ttft_not_tbt() {
        let generous = run_sharded(&small_split_cfg(), 9, 3, 2).unwrap();
        let mut starved_cfg = small_split_cfg();
        starved_cfg.serving = ServingMode::PhaseSplit {
            prefill_fraction: 0.25,
            kv_link: KvLink {
                bandwidth_gbps: 2.0,
                max_backlog_s: 0.25,
            },
        };
        let starved = run_sharded(&starved_cfg, 9, 3, 2).unwrap();
        let kv = starved.kv_transfer.as_ref().unwrap();
        assert!(
            kv.backpressure_stalls > 0,
            "starved link must stall prefill"
        );
        assert!(kv.link_utilization > generous.kv_transfer.as_ref().unwrap().link_utilization);
        // The stall queues prompts, so TTFT explodes...
        assert!(
            starved.ttft_p99_s > 10.0 * generous.ttft_p99_s,
            "starved {} vs generous {}",
            starved.ttft_p99_s,
            generous.ttft_p99_s
        );
        // ...while the decode pool's token gaps stay tight (isolation).
        assert!(starved.tbt_p99_s < generous.tbt_p99_s * 1.5);
    }

    #[test]
    fn oversized_prefill_batch_configs_still_deliver() {
        // A prefill launch cap beyond the decode batch limit must not
        // produce undeliverable cohorts that would wedge the KV FIFO:
        // the prefill-phase cap clamps to lut.max_batch.
        let mut cfg = small_split_cfg();
        cfg.max_prefill_batch = 10_000;
        let r = run_sharded(&cfg, 3, 2, 2).unwrap();
        let kv = r.kv_transfer.as_ref().unwrap();
        assert!(r.completed > 0);
        assert!(kv.transfers > 0);
        assert!(
            kv.bytes_delivered > kv.bytes_queued / 2,
            "cohorts must keep fitting decode batches: {} delivered of {}",
            kv.bytes_delivered,
            kv.bytes_queued
        );
    }

    #[test]
    fn phase_split_survives_failures_and_conserves_arrivals() {
        let mut cfg = small_split_cfg();
        cfg.failure_acceleration = 100_000.0;
        let r = run_sharded(&cfg, 5, 3, 2).unwrap();
        assert!(r.failures > 0);
        assert!(r.completed > 0);
        assert!(r.retried > 0, "decode failures must requeue work");
        assert_eq!(r.routed + r.rejected, r.arrived);
        for t in &r.per_tenant {
            assert_eq!(t.routed + t.rejected + t.shed, t.arrived, "{}", t.name);
        }
        let kv = r.kv_transfer.as_ref().unwrap();
        assert_eq!(
            kv.bytes_queued,
            kv.bytes_delivered + kv.bytes_inflight_at_end
        );
    }

    #[test]
    fn controlled_phase_split_is_phase_aware_and_deterministic() {
        let mut cfg = FleetConfig::lite_ctrl_demo().with_phase_split();
        cfg.instances = 24;
        cfg.cell_size = 8;
        cfg.horizon_s = 900.0;
        cfg.failure_acceleration = 50_000.0;
        cfg.workload.rate_per_instance_s = 3.0;
        let base = run_sharded(&cfg, 11, 1, 1).unwrap();
        assert_eq!(base.controller, "autoscale+gate(GateToEfficiency)+route");
        assert!(base.serving.starts_with("phase-split"));
        assert!(base.completed > 0);
        assert!(base.routed > 0);
        let kv = base.kv_transfer.as_ref().unwrap();
        assert!(kv.transfers > 0);
        assert!(kv.prefill_pool_mean > 0.0 && kv.decode_pool_mean > 0.0);
        for (shards, threads) in [(3, 1), (3, 4)] {
            let r = run_sharded(&cfg, 11, shards, threads).unwrap();
            assert_eq!(r.to_json(), base.to_json(), "shards={shards}");
        }
    }

    #[test]
    fn invalid_phase_split_configs_rejected() {
        let bad_fraction = |f: f64| {
            let mut c = small_split_cfg();
            c.serving = ServingMode::PhaseSplit {
                prefill_fraction: f,
                kv_link: KvLink::for_instance(&c.gpu, c.gpus_per_instance),
            };
            run_sharded(&c, 1, 1, 1)
        };
        assert!(bad_fraction(0.0).is_err());
        assert!(bad_fraction(1.0).is_err());
        assert!(bad_fraction(f64::NAN).is_err());
        let mut c = small_split_cfg();
        c.serving = ServingMode::PhaseSplit {
            prefill_fraction: 0.25,
            kv_link: KvLink {
                bandwidth_gbps: 0.0,
                max_backlog_s: 0.25,
            },
        };
        assert!(run_sharded(&c, 1, 1, 1).is_err());
        // A one-instance cell cannot hold both pools.
        let mut c = small_split_cfg();
        c.instances = 25; // 3 cells of 8 + 1 cell of 1
        assert!(run_sharded(&c, 1, 1, 1).is_err());
        let mut c = small_split_cfg();
        c.cell_size = 1;
        assert!(run_sharded(&c, 1, 1, 1).is_err());
    }

    fn small_dvfs_cfg() -> FleetConfig {
        let mut c = small_ctrl_cfg();
        c.ctrl = c.ctrl.map(|ctrl| ctrl.with_dvfs());
        c
    }

    #[test]
    fn dvfs_fleet_saves_energy_and_reports_its_clocks() {
        let nominal = run_sharded(&small_ctrl_cfg(), 9, 2, 2).unwrap();
        assert!(nominal.dvfs.is_none(), "no dvfs policy, no dvfs section");
        let dvfs = run_sharded(&small_dvfs_cfg(), 9, 2, 2).unwrap();
        assert_eq!(
            dvfs.controller,
            "autoscale+dvfs+gate(GateToEfficiency)+route"
        );
        let d = dvfs.dvfs.as_ref().expect("dvfs run has a dvfs section");
        // The grid spans SLO_MIN_CLOCK..=1.0 and the quiet demo fleet
        // spends real time below nominal.
        assert_eq!(d.clock_points.last(), Some(&1.0));
        assert!(d.clock_points.len() >= 3);
        assert!((d.clock_tick_share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(d.downclocked_share > 0.5, "share {}", d.downclocked_share);
        assert!(d.mean_clock < 1.0 && d.mean_clock >= d.clock_points[0]);
        assert!(d.retunes > 0);
        // Down-clocking buys real energy at near-equal served volume...
        assert!(d.energy_saved_j > 0);
        assert_eq!(d.nominal_dyn_energy_j, d.dyn_energy_j + d.energy_saved_j);
        assert!(
            dvfs.energy_per_token_j < 0.9 * nominal.energy_per_token_j,
            "dvfs {} vs nominal {}",
            dvfs.energy_per_token_j,
            nominal.energy_per_token_j
        );
        assert!(dvfs.completed as f64 > 0.99 * nominal.completed as f64);
        // ...without giving up interactive SLO attainment.
        assert!(dvfs.ttft_attainment > nominal.ttft_attainment - 0.005);
    }

    #[test]
    fn dvfs_report_is_sharding_invariant() {
        let cfg = small_dvfs_cfg();
        let base = run_sharded(&cfg, 17, 1, 1).unwrap();
        for (shards, threads) in [(2, 1), (3, 2), (6, 8)] {
            let r = run_sharded(&cfg, 17, shards, threads).unwrap();
            assert_eq!(
                r.to_json(),
                base.to_json(),
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn dvfs_composes_with_phase_split_pools() {
        let mut cfg = small_dvfs_cfg();
        cfg.instances = 24;
        cfg.cell_size = 8;
        cfg.failure_acceleration = 0.0;
        cfg.workload.rate_per_instance_s = 3.0;
        cfg = cfg.with_phase_split();
        let r = run_sharded(&cfg, 13, 3, 2).unwrap();
        assert!(r.serving.starts_with("phase-split"));
        let d = r.dvfs.as_ref().expect("dvfs section");
        assert!(d.downclocked_share > 0.0);
        assert!(r.kv_transfer.is_some());
        assert!(r.completed > 0);
        let base = run_sharded(&cfg, 13, 1, 1).unwrap();
        assert_eq!(r.to_json(), base.to_json());
    }

    #[test]
    fn dvfs_demand_pressure_raises_clocks() {
        // The same fleet under crushing demand must serve closer to
        // nominal than the quiet fleet: the EWMA + backlog guard refuses
        // operating points whose throughput cannot cover demand.
        let mut quiet = small_dvfs_cfg();
        quiet.failure_acceleration = 0.0;
        quiet.workload.rate_per_instance_s = 0.5;
        let mut busy = quiet.clone();
        busy.workload.rate_per_instance_s = 20.0;
        let q = run_sharded(&quiet, 7, 2, 2).unwrap();
        let b = run_sharded(&busy, 7, 2, 2).unwrap();
        let (qd, bd) = (q.dvfs.unwrap(), b.dvfs.unwrap());
        assert!(
            bd.mean_clock > qd.mean_clock + 0.05,
            "busy {} vs quiet {}",
            bd.mean_clock,
            qd.mean_clock
        );
    }

    #[test]
    fn spares_absorb_failures_and_raise_availability() {
        let mut cfg = small_cfg();
        cfg.spares_per_cell = 0;
        let none = run_sharded(&cfg, 5, 2, 2).unwrap();
        cfg.spares_per_cell = 2;
        let some = run_sharded(&cfg, 5, 2, 2).unwrap();
        assert_eq!(none.spare_hits, 0);
        assert!(some.spare_hits > 0);
        assert!(
            some.availability > none.availability,
            "with spares {} vs without {}",
            some.availability,
            none.availability
        );
    }

    #[test]
    fn lite_fleet_spare_overhead_is_quarter_of_h100() {
        // Same spare-unit count per cell; Lite spare units are ¼-size
        // dies, so the fleet-fraction cost is 4x smaller — §3's cheap
        // hot spares.
        let h = FleetConfig::h100_demo();
        let l = FleetConfig::lite_demo();
        let oh = h.spares_per_cell as f64 * h.num_cells() as f64
            / (h.instances * h.gpus_per_instance) as f64;
        let ol = l.spares_per_cell as f64 * l.num_cells() as f64
            / (l.instances * l.gpus_per_instance) as f64;
        assert!((oh / ol - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_failures_means_full_availability() {
        let mut cfg = small_cfg();
        cfg.failure_acceleration = 0.0;
        let r = run_sharded(&cfg, 3, 2, 2).unwrap();
        assert_eq!(r.failures, 0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.retried, 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = small_cfg();
        c.instances = 0;
        assert!(run_sharded(&c, 1, 1, 1).is_err());
        let mut c = small_cfg();
        c.tick_s = 0.0;
        assert!(run_sharded(&c, 1, 1, 1).is_err());
        let mut c = small_cfg();
        c.horizon_s = f64::NAN;
        assert!(run_sharded(&c, 1, 1, 1).is_err());
        // Workload validation is wired through.
        let mut c = small_cfg();
        c.workload.rate_per_instance_s = f64::NAN;
        let err = run_sharded(&c, 1, 1, 1).unwrap_err();
        assert!(matches!(err, FleetError::Workload(_)));
        let mut c = small_cfg();
        c.workload.tenants[0].pattern = TrafficPattern::Trace(vec![(9.0, 1.0), (1.0, 1.0)]);
        assert!(matches!(
            run_sharded(&c, 1, 1, 1).unwrap_err(),
            FleetError::Workload(_)
        ));
        // Control-plane validation is wired through too.
        let mut c = small_ctrl_cfg();
        c.ctrl.as_mut().unwrap().router = None;
        let err = run_sharded(&c, 1, 1, 1).unwrap_err();
        assert!(matches!(err, FleetError::Ctrl(_)));
    }
}

//! Fleet traffic: diurnal and trace-driven arrival-rate modulation with
//! deterministic Poisson sampling.
//!
//! Production serving fleets see strong diurnal swings (the paper's §3
//! power-management argument leans on them), so the fleet simulator
//! modulates a base per-instance Poisson rate by a time-varying
//! multiplier: a cosine diurnal curve, a replayable piecewise-linear
//! trace, or a constant. All sampling draws from per-instance RNG
//! streams, which is what keeps the sharded engine's results independent
//! of shard and thread counts.

use rand::rngs::StdRng;
use rand::Rng;

/// Shape of the rate modulation over time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TrafficPattern {
    /// Flat load: multiplier 1 at all times.
    Constant,
    /// Cosine diurnal swing with a 24 h period:
    /// `1 + amplitude·cos(2π·(t − peak_hour)/24h)`.
    Diurnal {
        /// Swing around the mean, typically in `[0, 1]` (0.6 → peak
        /// 1.6×, trough 0.4×). Larger amplitudes are allowed; the
        /// multiplier clamps at 0, flattening the trough.
        amplitude: f64,
        /// Hour of day (0–24) at which load peaks.
        peak_hour: f64,
    },
    /// Replayable trace: `(time_s, multiplier)` points, piecewise-linear,
    /// clamped at both ends. Points must be sorted by non-decreasing time
    /// (a duplicate time is a step change) with finite, non-negative
    /// multipliers — build through [`TrafficPattern::trace`] to have that
    /// checked, or call [`TrafficPattern::validate`] before running (the
    /// fleet engine validates every pattern it is given).
    Trace(Vec<(f64, f64)>),
}

impl TrafficPattern {
    /// Builds a validated [`TrafficPattern::Trace`]: points must be
    /// non-empty, sorted by non-decreasing finite time, with finite
    /// non-negative multipliers.
    ///
    /// ```
    /// use litegpu_fleet::TrafficPattern;
    ///
    /// let ramp = TrafficPattern::trace(vec![(0.0, 0.2), (600.0, 1.6)]).unwrap();
    /// assert!(ramp.validate().is_ok());
    /// assert!(TrafficPattern::trace(vec![(600.0, 1.0), (0.0, 2.0)]).is_err());
    /// ```
    pub fn trace(points: Vec<(f64, f64)>) -> Result<Self, &'static str> {
        let p = TrafficPattern::Trace(points);
        p.validate()?;
        Ok(p)
    }

    /// Checks the pattern's structural contract (see each variant's
    /// documentation). `Constant` always passes; `Diurnal` requires a
    /// finite non-negative amplitude and a finite peak hour; `Trace`
    /// requires the [`TrafficPattern::trace`] invariants.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            TrafficPattern::Constant => Ok(()),
            TrafficPattern::Diurnal {
                amplitude,
                peak_hour,
            } => {
                if !(amplitude.is_finite() && *amplitude >= 0.0) {
                    return Err("diurnal amplitude must be finite and non-negative");
                }
                if !peak_hour.is_finite() {
                    return Err("diurnal peak_hour must be finite");
                }
                Ok(())
            }
            TrafficPattern::Trace(points) => {
                if points.is_empty() {
                    return Err("trace must have at least one point");
                }
                for w in points.windows(2) {
                    if w[1].0 < w[0].0 {
                        return Err("trace times must be sorted (non-decreasing)");
                    }
                }
                for &(t, m) in points {
                    if !t.is_finite() {
                        return Err("trace times must be finite");
                    }
                    if !(m.is_finite() && m >= 0.0) {
                        return Err("trace multipliers must be finite and non-negative");
                    }
                }
                Ok(())
            }
        }
    }

    /// Rate multiplier at simulated time `t_s` (≥ 0, dimensionless).
    pub fn multiplier_at(&self, t_s: f64) -> f64 {
        match self {
            TrafficPattern::Constant => 1.0,
            TrafficPattern::Diurnal {
                amplitude,
                peak_hour,
            } => {
                let t_h = t_s / 3600.0;
                let phase = (t_h - peak_hour) / 24.0 * core::f64::consts::TAU;
                (1.0 + amplitude * phase.cos()).max(0.0)
            }
            TrafficPattern::Trace(points) => {
                if points.is_empty() {
                    return 1.0;
                }
                let first = points[0];
                let last = points[points.len() - 1];
                if t_s <= first.0 {
                    return first.1.max(0.0);
                }
                if t_s >= last.0 {
                    return last.1.max(0.0);
                }
                let i = points.partition_point(|&(t, _)| t <= t_s);
                let (t0, m0) = points[i - 1];
                let (t1, m1) = points[i];
                let f = if t1 > t0 { (t_s - t0) / (t1 - t0) } else { 0.0 };
                (m0 + f * (m1 - m0)).max(0.0)
            }
        }
    }
}

/// A per-instance request source.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrafficModel {
    /// Mean arrival rate per instance at multiplier 1, requests/second.
    pub rate_per_instance_s: f64,
    /// Time-varying modulation.
    pub pattern: TrafficPattern,
    /// Mean output length, tokens (geometric-tailed per cohort).
    pub output_len_mean: u32,
}

impl TrafficModel {
    /// The paper-flavoured default: diurnal swing peaking mid-afternoon,
    /// ~500-token outputs.
    pub fn diurnal_demo(rate_per_instance_s: f64) -> Self {
        Self {
            rate_per_instance_s,
            pattern: TrafficPattern::Diurnal {
                amplitude: 0.6,
                peak_hour: 15.0,
            },
            output_len_mean: 500,
        }
    }

    /// Flat traffic at the given per-instance rate.
    pub fn constant(rate_per_instance_s: f64) -> Self {
        Self {
            rate_per_instance_s,
            pattern: TrafficPattern::Constant,
            output_len_mean: 500,
        }
    }

    /// Rate multiplier at simulated time `t_s` (≥ 0, dimensionless).
    pub fn multiplier_at(&self, t_s: f64) -> f64 {
        self.pattern.multiplier_at(t_s)
    }

    /// Arrival rate per instance at time `t_s`, requests/second.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        self.rate_per_instance_s * self.multiplier_at(t_s)
    }
}

/// Draws a Poisson-distributed count with mean `lambda`.
///
/// Knuth's product method for small means; larger means split into
/// sub-draws (a sum of Poissons is Poisson), which keeps the sampler
/// exact — no normal approximation — at any rate.
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda.is_nan() || lambda <= 0.0 {
        return 0;
    }
    const CHUNK: f64 = 16.0;
    let mut remaining = lambda;
    let mut count = 0u64;
    while remaining > CHUNK {
        count += poisson_small(rng, CHUNK);
        remaining -= CHUNK;
    }
    count + poisson_small(rng, remaining)
}

fn poisson_small(rng: &mut StdRng, lambda: f64) -> u64 {
    knuth(rng, (-lambda).exp())
}

/// Knuth's product method given the precomputed threshold `l = e^-λ`.
fn knuth(rng: &mut StdRng, l: f64) -> u64 {
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// A pre-resolved [`poisson`] call for one fixed mean: the chunk count
/// and the final sub-draw's `e^-λ` threshold, both computed once so the
/// hot path never calls `exp` for the (dominant) remainder draw.
///
/// [`PoissonPlan::draw`] consumes the RNG stream exactly as
/// `poisson(rng, lambda)` would — same number of uniforms, same count —
/// which `plan_matches_poisson_draws_and_stream` pins. That equivalence
/// is what lets the event-driven engine draw a whole horizon of
/// arrivals per tenant up front without perturbing any stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoissonPlan {
    /// Number of full-`CHUNK` sub-draws; `u32::MAX` is the λ ≤ 0 (or
    /// NaN) sentinel, which returns 0 without touching the RNG.
    chunks: u32,
    /// `e^-remainder` for the final sub-draw.
    l_rem: f64,
}

impl PoissonPlan {
    const CHUNK: f64 = 16.0;

    pub fn new(lambda: f64) -> Self {
        if lambda.is_nan() || lambda <= 0.0 {
            return Self {
                chunks: u32::MAX,
                l_rem: 0.0,
            };
        }
        // Replicates poisson()'s repeated-subtraction loop exactly: the
        // remainder must be bit-identical to what sequential `remaining
        // -= CHUNK` leaves behind, or `e^-remainder` drifts.
        let mut remaining = lambda;
        let mut chunks = 0u32;
        while remaining > Self::CHUNK {
            chunks += 1;
            remaining -= Self::CHUNK;
        }
        Self {
            chunks,
            l_rem: (-remaining).exp(),
        }
    }

    /// Draws one count, consuming the identical RNG stream
    /// `poisson(rng, lambda)` would consume (nothing at all for λ ≤ 0).
    pub fn draw(&self, rng: &mut StdRng) -> u64 {
        if self.chunks == u32::MAX {
            return 0;
        }
        let mut count = 0u64;
        for _ in 0..self.chunks {
            count += poisson_small(rng, Self::CHUNK);
        }
        count + knuth(rng, self.l_rem)
    }
}

/// A seedable per-tenant output-length distribution.
///
/// Today this is the geometric-tailed sampler the fleet always used
/// (mirroring `litegpu_sim`'s `LengthDist::GeometricMean`), packaged so
/// each [`crate::workload::Tenant`] carries its own distribution and
/// every draw comes from an explicit RNG stream. The mean is preserved
/// exactly by construction, so the single-tenant
/// `TrafficModel → WorkloadSpec` conversion samples the same lengths the
/// legacy sampler would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LengthDist {
    /// Mean length, tokens (clamped to ≥ 1 at sampling time).
    mean: u32,
}

impl LengthDist {
    /// A geometric-tailed distribution around `mean` tokens.
    pub fn geometric(mean: u32) -> Self {
        Self { mean }
    }

    /// The configured mean, tokens.
    pub fn mean(&self) -> u32 {
        self.mean
    }

    /// Draws one length (≥ 1 token, clamped at 16× the mean) from `rng`.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let mean = self.mean.max(1) as f64;
        let u: f64 = rng.random::<f64>().max(1e-12);
        ((-u.ln()) * mean).round().clamp(1.0, 16.0 * mean) as u32
    }
}

/// Draws a geometric-tailed output length around `mean` (≥ 1 token).
/// Thin wrapper over [`LengthDist::geometric`] kept for call sites that
/// don't hold a distribution.
pub fn sample_output_len(rng: &mut StdRng, mean: u32) -> u32 {
    LengthDist::geometric(mean).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_pattern_is_flat() {
        let t = TrafficModel::constant(2.0);
        assert_eq!(t.rate_at(0.0), 2.0);
        assert_eq!(t.rate_at(1e6), 2.0);
    }

    #[test]
    fn diurnal_peaks_at_peak_hour_and_means_one() {
        let t = TrafficModel::diurnal_demo(1.0);
        let peak = t.multiplier_at(15.0 * 3600.0);
        let trough = t.multiplier_at(3.0 * 3600.0);
        assert!((peak - 1.6).abs() < 1e-9, "peak = {peak}");
        assert!((trough - 0.4).abs() < 1e-9, "trough = {trough}");
        // Mean multiplier over a day is 1.
        let n = 24 * 60;
        let mean: f64 = (0..n)
            .map(|i| t.multiplier_at(i as f64 * 60.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean = {mean}");
    }

    #[test]
    fn trace_interpolates_and_clamps() {
        let t = TrafficModel {
            rate_per_instance_s: 1.0,
            pattern: TrafficPattern::trace(vec![(100.0, 1.0), (200.0, 3.0)]).unwrap(),
            output_len_mean: 500,
        };
        assert_eq!(t.multiplier_at(0.0), 1.0);
        assert_eq!(t.multiplier_at(300.0), 3.0);
        assert!((t.multiplier_at(150.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trace_constructor_rejects_malformed_traces() {
        // Empty.
        assert!(TrafficPattern::trace(vec![]).is_err());
        // Unsorted times.
        assert!(TrafficPattern::trace(vec![(10.0, 1.0), (5.0, 1.0)]).is_err());
        // Non-finite time or multiplier.
        assert!(TrafficPattern::trace(vec![(f64::NAN, 1.0)]).is_err());
        assert!(TrafficPattern::trace(vec![(0.0, 1.0), (f64::INFINITY, 1.0)]).is_err());
        assert!(TrafficPattern::trace(vec![(0.0, f64::NAN)]).is_err());
        assert!(TrafficPattern::trace(vec![(0.0, f64::INFINITY)]).is_err());
        // Negative multiplier.
        assert!(TrafficPattern::trace(vec![(0.0, -0.5)]).is_err());
        // A well-formed trace passes: single point, ramp, and a
        // duplicate time (a step change — `multiplier_at` handles the
        // zero-width segment explicitly, so it stays legal).
        assert!(TrafficPattern::trace(vec![(0.0, 0.0)]).is_ok());
        assert!(TrafficPattern::trace(vec![(0.0, 0.2), (60.0, 1.6)]).is_ok());
        assert!(TrafficPattern::trace(vec![(10.0, 1.0), (10.0, 2.0)]).is_ok());
    }

    #[test]
    fn validate_covers_every_pattern_variant() {
        assert!(TrafficPattern::Constant.validate().is_ok());
        assert!(TrafficPattern::Diurnal {
            amplitude: 0.6,
            peak_hour: 15.0
        }
        .validate()
        .is_ok());
        // Amplitude beyond 1 stays legal (the multiplier clamps at 0);
        // negative or non-finite values do not.
        assert!(TrafficPattern::Diurnal {
            amplitude: 1.5,
            peak_hour: 15.0
        }
        .validate()
        .is_ok());
        assert!(TrafficPattern::Diurnal {
            amplitude: -0.1,
            peak_hour: 15.0
        }
        .validate()
        .is_err());
        assert!(TrafficPattern::Diurnal {
            amplitude: f64::NAN,
            peak_hour: 15.0
        }
        .validate()
        .is_err());
        assert!(TrafficPattern::Diurnal {
            amplitude: 0.5,
            peak_hour: f64::NAN
        }
        .validate()
        .is_err());
        // A hand-built (constructor-bypassing) bad trace is still caught.
        assert!(TrafficPattern::Trace(vec![(1.0, 1.0), (0.0, 1.0)])
            .validate()
            .is_err());
    }

    #[test]
    fn length_dist_matches_legacy_sampler_under_the_same_seed() {
        // The satellite contract: packaging the sampler as a seedable
        // per-tenant distribution must not move the draws — same seed,
        // same mean, byte-identical sequence.
        let dist = LengthDist::geometric(500);
        assert_eq!(dist.mean(), 500);
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            assert_eq!(dist.sample(&mut a), sample_output_len(&mut b, 500));
        }
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(11);
        for lambda in [0.3, 2.0, 9.0, 40.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / n as f64;
            let tol = 4.0 * (lambda / n as f64).sqrt();
            assert!((mean - lambda).abs() < tol, "lambda {lambda}: mean {mean}");
        }
    }

    #[test]
    fn poisson_deterministic_per_seed_across_both_branches() {
        // Small means take the single Knuth draw; large means exercise
        // the chunked sub-draw branch. Both must replay exactly under a
        // seed and diverge across seeds.
        for lambda in [0.05, 3.0, 16.0, 200.0] {
            let draw = |seed: u64| {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..200)
                    .map(|_| poisson(&mut rng, lambda))
                    .collect::<Vec<_>>()
            };
            assert_eq!(draw(7), draw(7), "lambda {lambda}");
            assert_ne!(draw(7), draw(8), "lambda {lambda}");
        }
    }

    #[test]
    fn poisson_mean_preserved_at_small_and_large_lambda() {
        let mut rng = StdRng::seed_from_u64(23);
        // Small λ: also check P[0] ≈ e^{-λ} so the small-mean branch is
        // genuinely Poisson, not just mean-matched.
        let lambda = 0.05;
        let n = 200_000u64;
        let draws: Vec<u64> = (0..n).map(|_| poisson(&mut rng, lambda)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - lambda).abs() < 4.0 * (lambda / n as f64).sqrt());
        let zero_frac = draws.iter().filter(|&&k| k == 0).count() as f64 / n as f64;
        assert!((zero_frac - (-lambda).exp()).abs() < 5e-3);
        // Large λ (chunked branch): mean and variance both track λ.
        let lambda = 200.0;
        let n = 20_000u64;
        let draws: Vec<u64> = (0..n).map(|_| poisson(&mut rng, lambda)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        assert!(
            (mean - lambda).abs() < 4.0 * (lambda / n as f64).sqrt(),
            "mean = {mean}"
        );
        let var = draws
            .iter()
            .map(|&k| (k as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var / lambda - 1.0).abs() < 0.1, "variance = {var}");
    }

    #[test]
    fn poisson_zero_and_negative_lambda_yield_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn plan_matches_poisson_draws_and_stream() {
        // The event engine's pre-planned draws must consume the exact
        // RNG stream `poisson` consumes — counts AND stream position —
        // across the sentinel, single-Knuth, chunk-boundary and chunked
        // branches. Interleaving a marker draw after every count pins
        // the stream position, not just the values.
        for lambda in [-1.0, 0.0, 0.05, 3.0, 16.0, 16.5, 200.0, f64::NAN] {
            let plan = PoissonPlan::new(lambda);
            let mut a = StdRng::seed_from_u64(11);
            let mut b = StdRng::seed_from_u64(11);
            for i in 0..200 {
                assert_eq!(
                    poisson(&mut a, lambda),
                    plan.draw(&mut b),
                    "lambda {lambda} draw {i}"
                );
                assert_eq!(
                    a.random::<u64>(),
                    b.random::<u64>(),
                    "stream drifted at lambda {lambda} draw {i}"
                );
            }
        }
    }

    #[test]
    fn output_lengths_center_on_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| sample_output_len(&mut rng, 500) as f64)
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean = {mean}");
        assert!(sample_output_len(&mut rng, 0) >= 1);
    }

    #[test]
    fn output_lengths_deterministic_and_bounded_at_extremes() {
        let draw = |seed: u64, mean: u32| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200)
                .map(|_| sample_output_len(&mut rng, mean))
                .collect::<Vec<_>>()
        };
        for mean in [1u32, 10, 2000] {
            assert_eq!(draw(5, mean), draw(5, mean), "mean {mean}");
            assert!(draw(5, mean).iter().all(|&l| l >= 1 && l <= 16 * mean));
        }
        assert_ne!(draw(5, 10), draw(6, 10));
        // Mean preservation holds at a large mean too (the clamp at
        // 16×mean trims a negligible e^-16 tail).
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let sum: f64 = (0..n)
            .map(|_| sample_output_len(&mut rng, 2000) as f64)
            .sum();
        let mean = sum / n as f64;
        assert!((mean / 2000.0 - 1.0).abs() < 0.05, "mean = {mean}");
    }
}

//! Fleet-level spare-provisioning search: the fleet analogue of
//! [`litegpu_cluster::failure::spares_for_target`].
//!
//! The cluster-level search answers "how many shared spares does a small
//! Monte-Carlo fleet need"; this one asks the full fleet simulator, so
//! the answer reflects per-cell spare pools, the finite repair-crew
//! queues (`FleetConfig::repair_crews_per_cell` crews work an integer-µs
//! queue per cell, so spare replenishment waits behind the repair
//! backlog), diurnal traffic, correlated chaos events when the config
//! carries a campaign, and (when configured) the control plane. Because
//! every run is deterministic under its seed, the sweep itself is
//! deterministic.

use crate::engine::{run, FleetConfig};
use crate::report::FleetReport;
use crate::{FleetError, Result};

/// Result of a spare-provisioning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SpareSearch {
    /// Smallest per-cell spare pool meeting the target.
    pub spares_per_cell: u32,
    /// The full report of the winning configuration.
    pub report: FleetReport,
}

/// Sweeps `spares_per_cell` upward from zero until instance availability
/// reaches `target`, running the whole fleet simulation at each step.
///
/// Returns the smallest pool that meets the target, or
/// [`FleetError::TargetUnreachable`] if even `max_spares_per_cell` per
/// cell falls short (for example when repairs, not spare starvation,
/// dominate downtime).
pub fn spares_for_target(
    cfg: &FleetConfig,
    target: f64,
    max_spares_per_cell: u32,
    seed: u64,
) -> Result<SpareSearch> {
    if !(0.0..=1.0).contains(&target) || !target.is_finite() {
        return Err(FleetError::InvalidParameter {
            name: "target",
            value: target,
        });
    }
    let mut best = 0.0f64;
    for spares_per_cell in 0..=max_spares_per_cell {
        let mut c = cfg.clone();
        c.spares_per_cell = spares_per_cell;
        let report = run(&c, seed)?;
        if report.availability >= target {
            return Ok(SpareSearch {
                spares_per_cell,
                report,
            });
        }
        best = best.max(report.availability);
    }
    Err(FleetError::TargetUnreachable { target, best })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetConfig {
        let mut c = FleetConfig::h100_demo();
        c.instances = 24;
        c.cell_size = 8;
        c.horizon_s = 1800.0;
        c.failure_acceleration = 30_000.0;
        c
    }

    #[test]
    fn finds_minimal_pool_meeting_target() {
        let c = cfg();
        // Pick a target between the 0-spare and max-spare availability so
        // the search has real work to do.
        let none = run(
            &{
                let mut c = c.clone();
                c.spares_per_cell = 0;
                c
            },
            9,
        )
        .unwrap();
        let target = (none.availability + 1.0) / 2.0;
        let found = spares_for_target(&c, target, 8, 9).unwrap();
        assert!(found.report.availability >= target);
        // Minimality: one fewer spare (if any) missed the target.
        if found.spares_per_cell > 0 {
            let mut below = c.clone();
            below.spares_per_cell = found.spares_per_cell - 1;
            assert!(run(&below, 9).unwrap().availability < target);
        }
    }

    #[test]
    fn unreachable_target_reports_best_seen() {
        let c = cfg();
        match spares_for_target(&c, 1.0, 1, 9) {
            Err(FleetError::TargetUnreachable { target, best }) => {
                assert_eq!(target, 1.0);
                assert!(best > 0.0 && best < 1.0);
            }
            other => panic!("expected TargetUnreachable, got {other:?}"),
        }
    }

    #[test]
    fn invalid_target_rejected() {
        assert!(spares_for_target(&cfg(), 1.5, 2, 1).is_err());
        assert!(spares_for_target(&cfg(), f64::NAN, 2, 1).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        const MAX_SPARES: u32 = 3;

        fn prop_cfg() -> FleetConfig {
            let mut c = cfg();
            c.instances = 16;
            c.horizon_s = 900.0;
            c
        }

        /// Availability at each pool size, simulated once (every run is
        /// deterministic under the seed) and shared by all cases.
        fn availability_ladder() -> &'static [f64] {
            static LADDER: OnceLock<Vec<f64>> = OnceLock::new();
            LADDER.get_or_init(|| {
                (0..=MAX_SPARES)
                    .map(|s| {
                        let mut c = prop_cfg();
                        c.spares_per_cell = s;
                        run(&c, 9).expect("run").availability
                    })
                    .collect()
            })
        }

        /// Spares needed for a target, totalized: an unreachable target
        /// costs more than any reachable pool.
        fn spares_needed(target: f64) -> u32 {
            match spares_for_target(&prop_cfg(), target, MAX_SPARES, 9) {
                Ok(found) => found.spares_per_cell,
                Err(FleetError::TargetUnreachable { .. }) => MAX_SPARES + 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }

        proptest! {
            #[test]
            fn pool_size_monotone_in_availability_target(
                t1 in 0.85..0.9995f64,
                dt in 0.0..0.12f64,
            ) {
                let ladder = availability_ladder();
                // Independent oracle: the first pool size whose simulated
                // availability meets the target. First-index-meeting is
                // monotone in the threshold for *any* ladder shape.
                let oracle = |t: f64| -> u32 {
                    ladder
                        .iter()
                        .position(|&a| a >= t)
                        .map_or(MAX_SPARES + 1, |i| i as u32)
                };
                let (lo, hi) = (t1, (t1 + dt).min(0.9995));
                prop_assert!(
                    oracle(lo) <= oracle(hi),
                    "target {lo} needs {} spares but stricter {hi} needs {}",
                    oracle(lo),
                    oracle(hi)
                );
                // The search agrees with the oracle, so tightening the
                // target can never shrink the pool it returns.
                prop_assert_eq!(spares_needed(hi), oracle(hi));
            }
        }
    }
}

//! Fleet-run reporting: integer shard totals finalized into one
//! `FleetReport`, including a per-tenant SLO section.
//!
//! Every derived metric is computed *once*, from the merged integer
//! totals — never per shard and averaged — so the report is bit-identical
//! for any shard/thread partition of the same simulation. JSON rendering
//! goes through the workspace's deterministic serializer, making the
//! serialized report byte-identical too.
//!
//! The event-queue engine feeds the same totals the per-tick engine
//! did: counters accumulate at processed ticks, and idle-span billing
//! (energy, live ticks, clock residency) lands lazily in closed form —
//! the merge and finalization here are agnostic to *when* a shard
//! accrued a number, only to the integer sums, which is what keeps the
//! report byte-identical across engines and partitions.

use crate::state::{ShardTotals, TenantTotals};
use litegpu_ctrl::PriorityClass;

/// Per-tenant metadata threaded from the config into the report.
#[derive(Debug, Clone)]
pub(crate) struct TenantMeta {
    /// Tenant name.
    pub name: String,
    /// Scheduling class.
    pub priority: PriorityClass,
    /// Effective TTFT SLO target, seconds (after engine-default
    /// fallback).
    pub ttft_slo_s: f64,
    /// Effective TBT SLO target, seconds.
    pub tbt_slo_s: f64,
}

/// Run-level metadata threaded from the config into the report.
#[derive(Debug, Clone)]
pub(crate) struct RunMeta {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// Control-plane label (`"none"` when no controller ran).
    pub controller: String,
    /// Serving-mode label (`monolithic` or `phase-split(...)`).
    pub serving: String,
    /// Whether the run served phase-split (gates the `kv_transfer`
    /// report section).
    pub phase_split: bool,
    /// The DVFS operating-point grid the run priced (empty on
    /// nominal-only runs; gates the `dvfs` report section).
    pub clock_points: Vec<f64>,
    /// Model instances simulated.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Repair cells.
    pub cells: u32,
    /// GPU-sized hot spares across the fleet.
    pub spares: u32,
    /// Repair crews per cell.
    pub crews_per_cell: u32,
    /// Whether the run carried a chaos campaign (gates the `chaos`
    /// report section).
    pub chaos: bool,
    /// Whether the fleet-scope balancer ran (gates the `balancer`
    /// report section).
    pub balancer: bool,
    /// Effective simulated horizon, seconds.
    pub horizon_s: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
    /// One entry per workload tenant, in tenant-id order.
    pub tenants: Vec<TenantMeta>,
}

/// One tenant's slice of a fleet run: volumes, shed counts, latency
/// percentiles and SLO attainment against the tenant's *own* targets.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Scheduling class label (`interactive` / `batch` / `best-effort`).
    pub priority: String,
    /// Effective TTFT SLO target, seconds.
    pub ttft_slo_s: f64,
    /// Effective TBT SLO target, seconds.
    pub tbt_slo_s: f64,
    /// Requests that arrived for this tenant.
    pub arrived: u64,
    /// Arrivals placed on an instance queue.
    pub routed: u64,
    /// Arrivals dropped at a full instance queue.
    pub rejected: u64,
    /// Arrivals shed at the cell boundary (admission control or no live
    /// routing target).
    pub shed: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Output tokens generated.
    pub generated_tokens: u64,
    /// Median time to first token, seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub ttft_p99_s: f64,
    /// Fraction of first tokens meeting this tenant's TTFT SLO.
    pub ttft_attainment: f64,
    /// Fraction of this tenant's tokens produced by decode steps meeting
    /// its TBT SLO.
    pub tbt_attainment: f64,
    /// Median end-to-end request latency, seconds.
    pub e2e_p50_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub e2e_p99_s: f64,
}

impl TenantReport {
    fn finalize(totals: &TenantTotals, meta: &TenantMeta) -> Self {
        Self {
            name: meta.name.clone(),
            priority: meta.priority.label().to_string(),
            ttft_slo_s: meta.ttft_slo_s,
            tbt_slo_s: meta.tbt_slo_s,
            arrived: totals.arrived,
            routed: totals.routed,
            rejected: totals.rejected,
            shed: totals.shed,
            completed: totals.completed,
            generated_tokens: totals.generated_tokens,
            ttft_p50_s: totals.ttft.percentile_s(50.0),
            ttft_p99_s: totals.ttft.percentile_s(99.0),
            ttft_attainment: frac(totals.ttft_slo_ok, totals.ttft_recorded),
            tbt_attainment: frac(totals.tbt_slo_ok_tokens, totals.generated_tokens),
            e2e_p50_s: totals.e2e.percentile_s(50.0),
            e2e_p99_s: totals.e2e.percentile_s(99.0),
        }
    }
}

/// `num / den`, defined as 1 when the denominator is empty (no demand ⇒
/// vacuous attainment).
fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// The KV-transfer section of a phase-split fleet run: what the
/// prefill→decode hand-off cost on the cell links, and how the two pools
/// were occupied. Present only under
/// [`crate::engine::ServingMode::PhaseSplit`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KvTransferReport {
    /// KV hand-off cohorts enqueued on cell links.
    pub transfers: u64,
    /// KV bytes enqueued (prompt length × bytes-per-token, exact).
    pub bytes_queued: u64,
    /// KV bytes delivered into the decode pool.
    pub bytes_delivered: u64,
    /// KV bytes still in flight (or awaiting decode capacity) at the end
    /// of the horizon. Conservation: `queued = delivered + inflight`.
    pub bytes_inflight_at_end: u64,
    /// Decimal gigabytes moved over the horizon.
    pub gb_moved: f64,
    /// Fraction of total cell-link time spent serializing transfers.
    pub link_utilization: f64,
    /// Median transfer delay (queueing + serialization), seconds.
    pub delay_p50_s: f64,
    /// 99th-percentile transfer delay, seconds.
    pub delay_p99_s: f64,
    /// Prefill launches deferred because the link was backlogged
    /// (back-pressure events).
    pub backpressure_stalls: u64,
    /// `SetPhase` pool rebalances the data plane applied.
    pub phase_rebalances: u64,
    /// Mean instances live in the prefill pool over the run.
    pub prefill_pool_mean: f64,
    /// Mean instances live in the decode pool over the run.
    pub decode_pool_mean: f64,
}

/// The DVFS section of a clock-aware fleet run: where the live pool
/// actually served on the operating-point grid, and what that bought
/// against the nominal-clock counterfactual of the same served work.
/// Present only when the control plane ran the DVFS policy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DvfsReport {
    /// The priced operating points (clock factors), ascending, last
    /// nominal.
    pub clock_points: Vec<f64>,
    /// Fraction of live instance-ticks served at each point (the clock
    /// histogram; sums to 1 over a run with any live time).
    pub clock_tick_share: Vec<f64>,
    /// Live-tick-weighted mean clock factor.
    pub mean_clock: f64,
    /// Fraction of live instance-ticks spent below the nominal clock.
    pub downclocked_share: f64,
    /// `SetClock` retunes applied by the data plane.
    pub retunes: u64,
    /// Dynamic serving energy actually drawn, joules.
    pub dyn_energy_j: u64,
    /// Dynamic energy the same served work would have drawn at the
    /// nominal clock, joules.
    pub nominal_dyn_energy_j: u64,
    /// Energy saved versus the nominal-clock counterfactual, joules
    /// (the idle floor is identical in both worlds, so this is exactly
    /// `nominal_dyn − dyn`).
    pub energy_saved_j: u64,
    /// Saved fraction of the counterfactual total
    /// (`saved / (energy + saved)`).
    pub energy_saved_frac: f64,
}

/// Instance-down attribution by failure-domain kind, in
/// `litegpu_cluster::domain::DomainKind` order. Always present, so
/// availability claims are attributable even on chaos-free runs (where
/// everything lands in `independent`).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailureBreakdown {
    /// I.i.d. per-instance AFR failures.
    pub independent: u64,
    /// Instances downed by rack-loss events (incl. straddle collateral).
    pub rack: u64,
    /// Instances downed by power-domain trips.
    pub power: u64,
    /// Network-partition windows observed (per affected cell).
    pub partition_events: u64,
    /// Thermal-excursion windows observed (per affected cell).
    pub thermal_events: u64,
}

/// The chaos section of a fleet run under a correlated-failure campaign:
/// lifecycle events, front-door shed attribution, and the repair-crew
/// queue's behaviour. Present only when the config carried a
/// [`crate::engine::ChaosSpec`] with events.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosSection {
    /// Instances drained by rolling-drain waves.
    pub drains: u64,
    /// Drained instances restored within the horizon.
    pub drain_restores: u64,
    /// Arrivals shed at the front door of partitioned cells (a subset of
    /// `routing_shed`).
    pub partition_shed: u64,
    /// Repair jobs a crew started within the horizon.
    pub repairs_dispatched: u64,
    /// Mean wait for a free crew across dispatched jobs, seconds — the
    /// repair backlog the finite-crew model makes visible.
    pub repair_wait_mean_s: f64,
    /// Down instances restored to service within the horizon.
    pub restores: u64,
    /// Mean time to restore across those restores, seconds (spare swaps
    /// and crew repairs alike).
    pub mttr_s: f64,
    /// Repair crews per cell.
    pub crews_per_cell: u32,
}

/// One directed edge of the cross-cell spill-over flow matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlowEntry {
    /// Source cell (the hot cell the cohort was deducted from).
    pub src: u32,
    /// Destination cell (the under-loaded cell that admitted it).
    pub dst: u32,
    /// Requests redirected along this edge over the run.
    pub requests: u64,
}

/// The fleet-scope balancer section: spill-over volumes, admission-quota
/// clamps, and the per-cell flow matrix. Present only when the control
/// plane carried a [`litegpu_ctrl::BalancerConfig`]. Conservation holds
/// exactly on the reported integers: `spilled_out == spilled_in ==
/// sum(flow[].requests)`, and every spilled request is counted arrived
/// exactly once (at its destination), so fleet arrival totals match the
/// balancer-off run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BalancerSection {
    /// Requests deducted from hot cells' arrival schedules (source side
    /// of the flow matrix).
    pub spilled_out: u64,
    /// Requests admitted at destination cells via spill-over routing
    /// (destination side; equals `spilled_out` by construction).
    pub spilled_in: u64,
    /// Redirected cohorts (tick-grouped arrival batches) delivered to
    /// destination cells.
    pub spilled_cohorts: u64,
    /// Requests shed by fleet-issued admission quotas (a subset of
    /// `admission_shed`).
    pub quota_clamped: u64,
    /// Directed `src -> dst` spill volumes, in canonical `(src, dst)`
    /// order — the exact-conservation ledger.
    pub flow: Vec<FlowEntry>,
}

/// Aggregated results of a fleet run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// Control-plane policies that ran (e.g.
    /// `autoscale+gate(GateToEfficiency)+route`), or `none`.
    pub controller: String,
    /// Serving mode (`monolithic`, or `phase-split(...)` with the
    /// prefill fraction and cell KV-link budget).
    pub serving: String,
    /// Model instances simulated.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Repair cells (each with its own hot-spare pool).
    pub cells: u32,
    /// GPU-sized hot spares across the fleet (a failure consumes one
    /// spare unit — this is where Lite-GPU spares get cheap, §3).
    pub spares: u32,
    /// Fleet-cost overhead of the spare pool (spare GPUs / serving GPUs).
    pub spare_overhead: f64,
    /// Simulated horizon, hours.
    pub simulated_hours: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests not admitted to any queue: full-queue drops plus both
    /// shed kinds (`routing_shed`, `admission_shed`).
    pub rejected: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Requests requeued by instance failures (KV lost, prefill redone).
    pub retried: u64,
    /// Output tokens generated.
    pub generated_tokens: u64,
    /// Decode steps executed fleet-wide.
    pub decode_steps: u64,
    /// Output tokens per second over the horizon (the goodput the §3
    /// available-FLOPS claim cashes out as).
    pub goodput_tps: f64,
    /// Fraction of instance-time up.
    pub availability: f64,
    /// Failures injected (independent + correlated instance-downs).
    pub failures: u64,
    /// Instance-down attribution by failure-domain kind.
    pub failure_breakdown: FailureBreakdown,
    /// Failures absorbed by a hot spare.
    pub spare_hits: u64,
    /// Failures that had to wait for a full repair.
    pub spare_misses: u64,
    /// Total fleet energy over the horizon, joules (integer accumulators;
    /// static floors plus utilization-proportional dynamic power; powered
    /// states only — gated and failed instances draw nothing).
    pub energy_j: u64,
    /// Energy drawn while powered but not serving, joules: live
    /// instances' static floor during unutilized time plus warm-parked
    /// and booting instances. The §3 elasticity waste per-unit power
    /// gating attacks.
    pub idle_energy_j: u64,
    /// Total energy per generated token, joules/token.
    pub energy_per_token_j: f64,
    /// Mean instances live (serving-eligible) over the run — under an
    /// autoscaler this is the fleet's effective size.
    pub avg_live_instances: f64,
    /// Autoscaler activations applied (warm or cold).
    pub scale_ups: u64,
    /// Autoscaler parks applied.
    pub scale_downs: u64,
    /// Arrivals placed on an instance by the cell-level split.
    pub routed: u64,
    /// Arrivals shed because no live instance was routable.
    pub routing_shed: u64,
    /// Best-effort arrivals shed by priority-aware admission control.
    pub admission_shed: u64,
    /// Median time to first token, seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub ttft_p99_s: f64,
    /// Fraction of first tokens meeting each tenant's own TTFT SLO
    /// (tenant-weighted aggregate of the per-tenant attainments).
    pub ttft_attainment: f64,
    /// Median decode-step time, seconds.
    pub tbt_p50_s: f64,
    /// 99th-percentile decode-step time, seconds.
    pub tbt_p99_s: f64,
    /// Fraction of generated tokens produced by decode steps meeting
    /// their tenant's TBT SLO (token-weighted across tenants).
    pub tbt_attainment: f64,
    /// Median end-to-end request latency, seconds.
    pub e2e_p50_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub e2e_p99_s: f64,
    /// Per-tenant volumes, latency and SLO attainment, in tenant-id
    /// order.
    pub per_tenant: Vec<TenantReport>,
    /// KV-transfer accounting (phase-split runs only; `null` under
    /// monolithic serving).
    pub kv_transfer: Option<KvTransferReport>,
    /// DVFS accounting (clock histogram + energy saved vs nominal;
    /// `null` unless the control plane ran the DVFS policy).
    pub dvfs: Option<DvfsReport>,
    /// Chaos-campaign accounting (drains, partition shed, repair-crew
    /// queue, MTTR; `null` on campaign-free runs).
    pub chaos: Option<ChaosSection>,
    /// Fleet-scope balancer accounting (spill-over flow matrix + quota
    /// clamps; `null` unless the control plane ran the balancer).
    pub balancer: Option<BalancerSection>,
}

impl FleetReport {
    /// Finalizes merged totals into the public report.
    pub(crate) fn finalize(totals: &ShardTotals, meta: RunMeta) -> Self {
        let instance_time_us = meta.instances as u128 * (meta.horizon_s * 1e6) as u128;
        let availability = if instance_time_us == 0 {
            1.0
        } else {
            1.0 - (totals.downtime_us as f64 / instance_time_us as f64).min(1.0)
        };
        let ticks = (meta.horizon_s / meta.tick_s).round().max(1.0);
        let per_tenant: Vec<TenantReport> = totals
            .per_tenant
            .iter()
            .zip(&meta.tenants)
            .map(|(t, m)| TenantReport::finalize(t, m))
            .collect();
        // Fleet-level attainments aggregate the per-tenant books (each
        // against its own SLO target).
        let sum = |f: fn(&TenantTotals) -> u64| totals.per_tenant.iter().map(f).sum::<u64>();
        let dvfs = (!meta.clock_points.is_empty()).then(|| {
            let live = totals.live_ticks.max(1) as f64;
            let nominal_idx = meta.clock_points.len() - 1;
            // Round to joules first so `saved = nominal − dyn` holds
            // exactly on the reported integers.
            let dyn_j = totals.dvfs_dyn_uj / 1_000_000;
            let nominal_dyn_j = totals.dvfs_nominal_dyn_uj / 1_000_000;
            let saved_j = nominal_dyn_j.saturating_sub(dyn_j);
            let counterfactual_j = totals.energy_uj / 1_000_000 + saved_j;
            DvfsReport {
                clock_points: meta.clock_points.clone(),
                clock_tick_share: totals
                    .clock_ticks
                    .iter()
                    .map(|&t| t as f64 / live)
                    .collect(),
                mean_clock: meta
                    .clock_points
                    .iter()
                    .zip(&totals.clock_ticks)
                    .map(|(c, &t)| c * t as f64)
                    .sum::<f64>()
                    / live,
                downclocked_share: totals.clock_ticks[..nominal_idx]
                    .iter()
                    .map(|&t| t as f64 / live)
                    .sum(),
                retunes: totals.clock_retunes,
                dyn_energy_j: dyn_j,
                nominal_dyn_energy_j: nominal_dyn_j,
                energy_saved_j: saved_j,
                energy_saved_frac: if counterfactual_j == 0 {
                    0.0
                } else {
                    saved_j as f64 / counterfactual_j as f64
                },
            }
        });
        let chaos = meta.chaos.then(|| ChaosSection {
            drains: totals.drains,
            drain_restores: totals.drain_restores,
            partition_shed: totals.partition_shed,
            repairs_dispatched: totals.repairs_dispatched,
            repair_wait_mean_s: if totals.repairs_dispatched == 0 {
                0.0
            } else {
                totals.repair_wait_us as f64 / totals.repairs_dispatched as f64 / 1e6
            },
            restores: totals.restores,
            mttr_s: if totals.restores == 0 {
                0.0
            } else {
                totals.restore_us as f64 / totals.restores as f64 / 1e6
            },
            crews_per_cell: meta.crews_per_cell,
        });
        let balancer = meta.balancer.then(|| BalancerSection {
            spilled_out: totals.spill_out,
            spilled_in: totals.spill_in,
            spilled_cohorts: totals.spilled_cohorts,
            quota_clamped: totals.quota_clamped,
            flow: totals
                .spill_flow
                .iter()
                .map(|(&(src, dst), &requests)| FlowEntry { src, dst, requests })
                .collect(),
        });
        let kv_transfer = meta.phase_split.then(|| {
            let link_time_us = meta.cells as u128 * (meta.horizon_s * 1e6) as u128;
            KvTransferReport {
                transfers: totals.kv_transfers,
                bytes_queued: totals.kv_bytes_queued,
                bytes_delivered: totals.kv_bytes_delivered,
                bytes_inflight_at_end: totals.kv_bytes_inflight_end,
                gb_moved: totals.kv_bytes_queued as f64 / 1e9,
                link_utilization: if link_time_us == 0 {
                    0.0
                } else {
                    totals.kv_link_busy_us as f64 / link_time_us as f64
                },
                delay_p50_s: totals.kv_delay.percentile_s(50.0),
                delay_p99_s: totals.kv_delay.percentile_s(99.0),
                backpressure_stalls: totals.kv_backpressure_stalls,
                phase_rebalances: totals.phase_rebalances,
                prefill_pool_mean: totals.prefill_live_ticks as f64 / ticks,
                decode_pool_mean: totals.decode_live_ticks as f64 / ticks,
            }
        });
        Self {
            gpu: meta.gpu,
            model: meta.model,
            controller: meta.controller,
            serving: meta.serving,
            instances: meta.instances,
            gpus_per_instance: meta.gpus_per_instance,
            cells: meta.cells,
            spares: meta.spares,
            spare_overhead: meta.spares as f64
                / (meta.instances as f64 * meta.gpus_per_instance as f64),
            simulated_hours: meta.horizon_s / 3600.0,
            tick_s: meta.tick_s,
            arrived: totals.arrived,
            rejected: totals.rejected,
            completed: totals.completed,
            retried: totals.retried,
            generated_tokens: totals.generated_tokens,
            decode_steps: totals.decode_steps,
            goodput_tps: totals.generated_tokens as f64 / meta.horizon_s,
            availability,
            failures: totals.failures,
            failure_breakdown: FailureBreakdown {
                independent: totals.by_kind[0],
                rack: totals.by_kind[1],
                power: totals.by_kind[2],
                partition_events: totals.by_kind[3],
                thermal_events: totals.by_kind[4],
            },
            spare_hits: totals.spare_hits,
            spare_misses: totals.spare_misses,
            energy_j: totals.energy_uj / 1_000_000,
            idle_energy_j: totals.idle_energy_uj / 1_000_000,
            energy_per_token_j: if totals.generated_tokens == 0 {
                0.0
            } else {
                (totals.energy_uj / 1_000_000) as f64 / totals.generated_tokens as f64
            },
            avg_live_instances: totals.live_ticks as f64 / ticks,
            scale_ups: totals.scale_ups,
            scale_downs: totals.scale_downs,
            routed: totals.routed,
            routing_shed: totals.routing_shed,
            admission_shed: totals.admission_shed,
            ttft_p50_s: totals.ttft.percentile_s(50.0),
            ttft_p99_s: totals.ttft.percentile_s(99.0),
            ttft_attainment: frac(sum(|t| t.ttft_slo_ok), sum(|t| t.ttft_recorded)),
            tbt_p50_s: totals.tbt.percentile_s(50.0),
            tbt_p99_s: totals.tbt.percentile_s(99.0),
            tbt_attainment: frac(sum(|t| t.tbt_slo_ok_tokens), sum(|t| t.generated_tokens)),
            e2e_p50_s: totals.e2e.percentile_s(50.0),
            e2e_p99_s: totals.e2e.percentile_s(99.0),
            per_tenant,
            kv_transfer,
            dvfs,
            chaos,
            balancer,
        }
    }

    /// Deterministic pretty-JSON rendering (byte-identical for identical
    /// reports).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} x{} ({} GPUs/inst, ctrl {}, {}): {:.1} h, {} tenants, {} arrived, {} completed, \
             goodput {:.0} tok/s, availability {:.4}, TTFT p99 {:.3} s, \
             {} failures ({} spare hits), {:.1} MJ ({:.0}% idle)",
            self.gpu,
            self.instances,
            self.gpus_per_instance,
            self.controller,
            self.serving,
            self.simulated_hours,
            self.per_tenant.len(),
            self.arrived,
            self.completed,
            self.goodput_tps,
            self.availability,
            self.ttft_p99_s,
            self.failures,
            self.spare_hits,
            self.energy_j as f64 / 1e6,
            if self.energy_j == 0 {
                0.0
            } else {
                100.0 * self.idle_energy_j as f64 / self.energy_j as f64
            },
        )
    }

    /// One-line KV-transfer summary (phase-split runs), or a note that
    /// the run was monolithic.
    pub fn kv_summary(&self) -> String {
        match &self.kv_transfer {
            None => "kv: n/a (monolithic serving)".to_string(),
            Some(kv) => format!(
                "kv: {} transfers, {:.1} GB moved, link util {:.2}%, delay p50/p99 \
                 {:.1}/{:.1} ms, {} back-pressure stalls, pools {:.1} prefill / {:.1} decode",
                kv.transfers,
                kv.gb_moved,
                100.0 * kv.link_utilization,
                kv.delay_p50_s * 1e3,
                kv.delay_p99_s * 1e3,
                kv.backpressure_stalls,
                kv.prefill_pool_mean,
                kv.decode_pool_mean,
            ),
        }
    }

    /// One-line balancer summary (two-level control-plane runs), or a
    /// note that cells ran isolated.
    pub fn balancer_summary(&self) -> String {
        match &self.balancer {
            None => "balancer: n/a (isolated cells)".to_string(),
            Some(b) => format!(
                "balancer: {} requests spilled cross-cell in {} cohorts over {} flow edges \
                 ({:.2}% of arrivals), {} quota-clamped",
                b.spilled_out,
                b.spilled_cohorts,
                b.flow.len(),
                if self.arrived == 0 {
                    0.0
                } else {
                    100.0 * b.spilled_out as f64 / self.arrived as f64
                },
                b.quota_clamped,
            ),
        }
    }

    /// `(TTFT, TBT)` attainment of the first [`PriorityClass::Interactive`]
    /// tenant — the pair the DVFS energy-vs-latency headlines compare at —
    /// or `None` when the workload has no interactive tenant (callers must
    /// not fabricate a vacuous 1.0).
    pub fn interactive_attainment(&self) -> Option<(f64, f64)> {
        self.per_tenant
            .iter()
            .find(|t| t.priority == PriorityClass::Interactive.label())
            .map(|t| (t.ttft_attainment, t.tbt_attainment))
    }

    /// One-line DVFS summary (clock-aware runs), or a note that the run
    /// served at the nominal clock only.
    pub fn dvfs_summary(&self) -> String {
        match &self.dvfs {
            None => "dvfs: n/a (nominal clock)".to_string(),
            Some(d) => format!(
                "dvfs: mean clock {:.3}, {:.1}% of live ticks down-clocked, {} retunes, \
                 saved {:.2} MJ vs nominal ({:.1}%)",
                d.mean_clock,
                100.0 * d.downclocked_share,
                d.retunes,
                d.energy_saved_j as f64 / 1e6,
                100.0 * d.energy_saved_frac,
            ),
        }
    }

    /// One-line chaos summary (campaign runs), or a note that the run
    /// carried no campaign.
    pub fn chaos_summary(&self) -> String {
        match &self.chaos {
            None => "chaos: n/a (no campaign)".to_string(),
            Some(c) => {
                let b = &self.failure_breakdown;
                format!(
                    "chaos: downs {} independent / {} rack / {} power, {} partition + {} \
                     thermal windows, {} drained ({} restored), {} partition-shed, {} repairs \
                     dispatched (mean crew wait {:.1} s, {} crews/cell), MTTR {:.1} s over {} \
                     restores",
                    b.independent,
                    b.rack,
                    b.power,
                    b.partition_events,
                    b.thermal_events,
                    c.drains,
                    c.drain_restores,
                    c.partition_shed,
                    c.repairs_dispatched,
                    c.repair_wait_mean_s,
                    c.crews_per_cell,
                    c.mttr_s,
                    c.restores,
                )
            }
        }
    }

    /// Multi-line per-tenant SLO table (name, class, volumes, shed and
    /// attainment), for binaries and examples.
    pub fn tenant_summary(&self) -> String {
        let mut out = String::from(
            "tenant          class        arrived   completed   shed      TTFT-SLO  TBT-SLO\n",
        );
        for t in &self.per_tenant {
            out.push_str(&format!(
                "{:<15} {:<12} {:<9} {:<11} {:<9} {:<9.4} {:.4}\n",
                t.name,
                t.priority,
                t.arrived,
                t.completed,
                t.shed,
                t.ttft_attainment,
                t.tbt_attainment,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals() -> ShardTotals {
        let mut t = ShardTotals::new(2, 1);
        t.arrived = 100;
        t.completed = 90;
        t.generated_tokens = 45_000;
        t.decode_steps = 1000;
        t.failures = 3;
        t.by_kind = [3, 0, 0, 0, 0];
        t.spare_hits = 2;
        t.spare_misses = 1;
        t.downtime_us = 3_600_000_000; // One instance-hour.
        t.energy_uj = 9_000_000_000; // 9 kJ.
        t.idle_energy_uj = 3_000_000_000;
        t.live_ticks = 18_000_000; // 500 instances mean over 36 000 ticks.
        t.scale_ups = 12;
        t.scale_downs = 15;
        t.routed = 95;
        t.routing_shed = 1;
        t.admission_shed = 4;
        t.rejected = 5;
        t.ttft.record(200_000, 95);
        t.tbt.record(30_000, 1000);
        t.e2e.record(5_000_000, 90);
        // Tenant 0: interactive, meets SLOs on 80/95 firsts and 90% of
        // tokens; tenant 1: best effort, sheds.
        let a = &mut t.per_tenant[0];
        a.arrived = 70;
        a.routed = 70;
        a.completed = 65;
        a.generated_tokens = 30_000;
        a.tbt_slo_ok_tokens = 27_000;
        a.ttft_recorded = 70;
        a.ttft_slo_ok = 60;
        a.ttft.record(150_000, 70);
        a.e2e.record(4_000_000, 65);
        let b = &mut t.per_tenant[1];
        b.arrived = 30;
        b.routed = 25;
        b.shed = 5;
        b.completed = 25;
        b.generated_tokens = 15_000;
        b.tbt_slo_ok_tokens = 13_500;
        b.ttft_recorded = 25;
        b.ttft_slo_ok = 20;
        b.ttft.record(400_000, 25);
        b.e2e.record(8_000_000, 25);
        t
    }

    fn meta() -> RunMeta {
        RunMeta {
            gpu: "H100".into(),
            model: "llama3-70b".into(),
            controller: "autoscale+gate(DvfsAll)+route".into(),
            serving: "monolithic".into(),
            phase_split: false,
            clock_points: Vec::new(),
            instances: 100,
            gpus_per_instance: 2,
            cells: 10,
            spares: 10,
            crews_per_cell: 2,
            chaos: false,
            balancer: false,
            horizon_s: 36_000.0,
            tick_s: 1.0,
            tenants: vec![
                TenantMeta {
                    name: "chat".into(),
                    priority: PriorityClass::Interactive,
                    ttft_slo_s: 2.0,
                    tbt_slo_s: 0.05,
                },
                TenantMeta {
                    name: "scavenge".into(),
                    priority: PriorityClass::BestEffort,
                    ttft_slo_s: 60.0,
                    tbt_slo_s: 0.2,
                },
            ],
        }
    }

    #[test]
    fn finalize_derives_metrics_from_integers() {
        let r = FleetReport::finalize(&totals(), meta());
        assert_eq!(r.arrived, 100);
        assert!((r.goodput_tps - 1.25).abs() < 1e-12);
        // 1 instance-hour down out of 1000 instance-hours.
        assert!((r.availability - 0.999).abs() < 1e-9);
        assert!((r.spare_overhead - 0.05).abs() < 1e-12);
        assert!(r.ttft_p50_s > 0.1 && r.ttft_p50_s < 0.3);
        assert_eq!(r.energy_j, 9_000);
        assert_eq!(r.idle_energy_j, 3_000);
        assert!((r.energy_per_token_j - 0.2).abs() < 1e-12);
        assert!((r.avg_live_instances - 500.0).abs() < 1e-9);
        assert_eq!(r.scale_ups, 12);
        assert_eq!(r.scale_downs, 15);
        assert_eq!((r.routed, r.routing_shed, r.admission_shed), (95, 1, 4));
        // Fleet attainments aggregate the per-tenant books: TTFT
        // (60+20)/(70+25), TBT (27000+13500)/45000.
        assert!((r.ttft_attainment - 80.0 / 95.0).abs() < 1e-12);
        assert!((r.tbt_attainment - 0.9).abs() < 1e-12);
    }

    #[test]
    fn per_tenant_section_reports_each_tenants_own_slo() {
        let r = FleetReport::finalize(&totals(), meta());
        assert_eq!(r.per_tenant.len(), 2);
        let a = &r.per_tenant[0];
        assert_eq!(a.name, "chat");
        assert_eq!(a.priority, "interactive");
        assert_eq!(a.ttft_slo_s, 2.0);
        assert_eq!((a.arrived, a.completed, a.shed), (70, 65, 0));
        assert!((a.ttft_attainment - 60.0 / 70.0).abs() < 1e-12);
        assert!((a.tbt_attainment - 0.9).abs() < 1e-12);
        assert!(a.ttft_p50_s > 0.1 && a.ttft_p50_s < 0.2);
        let b = &r.per_tenant[1];
        assert_eq!(b.priority, "best-effort");
        assert_eq!(b.shed, 5);
        assert!(b.e2e_p99_s > a.e2e_p99_s);
        // The headline helper resolves the interactive tenant's pair —
        // and refuses to fabricate one when no interactive tenant exists.
        assert_eq!(
            r.interactive_attainment(),
            Some((a.ttft_attainment, a.tbt_attainment))
        );
        let mut no_interactive = r.clone();
        no_interactive.per_tenant.remove(0);
        assert_eq!(no_interactive.interactive_attainment(), None);
    }

    #[test]
    fn monolithic_runs_have_no_kv_section() {
        let r = FleetReport::finalize(&totals(), meta());
        assert_eq!(r.serving, "monolithic");
        assert!(r.kv_transfer.is_none());
        assert!(r.to_json().contains("\"kv_transfer\": null"));
    }

    #[test]
    fn kv_section_derives_from_integer_totals() {
        let mut t = totals();
        t.kv_transfers = 50;
        t.kv_bytes_queued = 10_000_000_000;
        t.kv_bytes_delivered = 9_000_000_000;
        t.kv_bytes_inflight_end = 1_000_000_000;
        // 10% of 10 cells × 36 000 s of link time.
        t.kv_link_busy_us = 36_000_000_000;
        t.kv_backpressure_stalls = 7;
        t.phase_rebalances = 3;
        t.prefill_live_ticks = 9_000_000; // 250 mean over 36 000 ticks.
        t.decode_live_ticks = 18_000_000;
        t.kv_delay.record(5_000, 50);
        let mut m = meta();
        m.serving = "phase-split(prefill=0.25,kv=90GB/s)".into();
        m.phase_split = true;
        let r = FleetReport::finalize(&t, m);
        let kv = r.kv_transfer.as_ref().expect("phase-split has kv section");
        assert_eq!(kv.transfers, 50);
        assert_eq!(
            kv.bytes_queued,
            kv.bytes_delivered + kv.bytes_inflight_at_end
        );
        assert!((kv.gb_moved - 10.0).abs() < 1e-9);
        assert!((kv.link_utilization - 0.1).abs() < 1e-9);
        assert!(kv.delay_p50_s > 0.004 && kv.delay_p50_s < 0.006);
        assert_eq!(kv.backpressure_stalls, 7);
        assert_eq!(kv.phase_rebalances, 3);
        assert!((kv.prefill_pool_mean - 250.0).abs() < 1e-9);
        assert!((kv.decode_pool_mean - 500.0).abs() < 1e-9);
        let json = r.to_json();
        for key in [
            "kv_transfer",
            "link_utilization",
            "delay_p99_s",
            "phase-split",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(r.kv_summary().contains("GB moved"));
    }

    #[test]
    fn nominal_runs_have_no_dvfs_section() {
        let r = FleetReport::finalize(&totals(), meta());
        assert!(r.dvfs.is_none());
        assert!(r.to_json().contains("\"dvfs\": null"));
        assert_eq!(r.dvfs_summary(), "dvfs: n/a (nominal clock)");
    }

    #[test]
    fn campaign_free_runs_have_breakdown_but_no_chaos_section() {
        let r = FleetReport::finalize(&totals(), meta());
        // The breakdown is always present and conserves the failure
        // count on chaos-free runs (everything independent).
        assert_eq!(r.failure_breakdown.independent, 3);
        assert_eq!(
            r.failure_breakdown.independent + r.failure_breakdown.rack + r.failure_breakdown.power,
            r.failures
        );
        assert!(r.chaos.is_none());
        let json = r.to_json();
        assert!(json.contains("\"chaos\": null"));
        assert!(json.contains("failure_breakdown"));
        assert_eq!(r.chaos_summary(), "chaos: n/a (no campaign)");
    }

    #[test]
    fn chaos_section_derives_from_integer_totals() {
        let mut t = totals();
        t.failures = 9;
        t.by_kind = [3, 4, 2, 5, 1];
        t.drains = 12;
        t.drain_restores = 10;
        t.partition_shed = 7;
        t.repairs_dispatched = 4;
        t.repair_wait_us = 8_000_000; // 2 s mean over 4 jobs.
        t.restores = 5;
        t.restore_us = 30_000_000; // 6 s mean.
        let mut m = meta();
        m.chaos = true;
        let r = FleetReport::finalize(&t, m);
        assert_eq!(r.failure_breakdown.rack, 4);
        assert_eq!(r.failure_breakdown.power, 2);
        assert_eq!(r.failure_breakdown.partition_events, 5);
        assert_eq!(r.failure_breakdown.thermal_events, 1);
        let c = r.chaos.as_ref().expect("campaign run has chaos section");
        assert_eq!((c.drains, c.drain_restores), (12, 10));
        assert_eq!(c.partition_shed, 7);
        assert_eq!(c.repairs_dispatched, 4);
        assert!((c.repair_wait_mean_s - 2.0).abs() < 1e-12);
        assert_eq!(c.restores, 5);
        assert!((c.mttr_s - 6.0).abs() < 1e-12);
        assert_eq!(c.crews_per_cell, 2);
        let s = r.chaos_summary();
        assert!(s.contains("4 rack"));
        assert!(s.contains("MTTR 6.0 s"));
        for key in ["partition_shed", "repair_wait_mean_s", "mttr_s"] {
            assert!(r.to_json().contains(key), "missing {key}");
        }
    }

    #[test]
    fn dvfs_section_derives_from_integer_totals() {
        let mut t = totals();
        t.clock_ticks = vec![9_000_000, 3_000_000, 6_000_000];
        t.live_ticks = 18_000_000;
        t.clock_retunes = 40;
        t.dvfs_dyn_uj = 4_000_000_000; // 4 kJ drawn...
        t.dvfs_nominal_dyn_uj = 7_000_000_000; // ...vs 7 kJ at nominal.
        let mut m = meta();
        m.clock_points = vec![0.75, 0.9, 1.0];
        let r = FleetReport::finalize(&t, m);
        let d = r.dvfs.as_ref().expect("clock-aware run has dvfs section");
        assert_eq!(d.clock_points, vec![0.75, 0.9, 1.0]);
        assert_eq!(d.clock_tick_share, vec![0.5, 1.0 / 6.0, 1.0 / 3.0]);
        // 0.5×0.75 + (1/6)×0.9 + (1/3)×1.0.
        assert!((d.mean_clock - (0.375 + 0.15 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((d.downclocked_share - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.retunes, 40);
        assert_eq!(d.dyn_energy_j, 4_000);
        assert_eq!(d.nominal_dyn_energy_j, 7_000);
        assert_eq!(d.energy_saved_j, 3_000);
        // Counterfactual total = 9 kJ actual + 3 kJ saved.
        assert!((d.energy_saved_frac - 0.25).abs() < 1e-12);
        assert!(r.dvfs_summary().contains("saved"));
        for key in ["clock_tick_share", "mean_clock", "energy_saved_frac"] {
            assert!(r.to_json().contains(key), "missing {key}");
        }
    }

    #[test]
    fn json_rendering_is_deterministic_and_complete() {
        let r = FleetReport::finalize(&totals(), meta());
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        for key in [
            "goodput_tps",
            "availability",
            "ttft_p99_s",
            "spare_hits",
            "generated_tokens",
            "energy_j",
            "idle_energy_j",
            "energy_per_token_j",
            "scale_ups",
            "scale_downs",
            "routed",
            "admission_shed",
            "controller",
            "avg_live_instances",
            "per_tenant",
            "ttft_attainment",
            "best-effort",
            "scavenge",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }

    #[test]
    fn summary_mentions_controller_energy_and_tenants() {
        let r = FleetReport::finalize(&totals(), meta());
        let s = r.summary();
        assert!(s.contains("autoscale"));
        assert!(s.contains("MJ"));
        assert!(s.contains("2 tenants"));
        let t = r.tenant_summary();
        assert!(t.contains("chat"));
        assert!(t.contains("best-effort"));
        assert!(t.contains("scavenge"));
    }
}

//! Fleet-run reporting: integer shard totals finalized into one
//! `FleetReport`.
//!
//! Every derived metric is computed *once*, from the merged integer
//! totals — never per shard and averaged — so the report is bit-identical
//! for any shard/thread partition of the same simulation. JSON rendering
//! goes through the workspace's deterministic serializer, making the
//! serialized report byte-identical too.

use crate::state::ShardTotals;

/// Run-level metadata threaded from the config into the report.
#[derive(Debug, Clone)]
pub(crate) struct RunMeta {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// Control-plane label (`"none"` when no controller ran).
    pub controller: String,
    /// Model instances simulated.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Repair cells.
    pub cells: u32,
    /// GPU-sized hot spares across the fleet.
    pub spares: u32,
    /// Effective simulated horizon, seconds.
    pub horizon_s: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
}

/// Aggregated results of a fleet run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// Control-plane policies that ran (e.g.
    /// `autoscale+gate(GateToEfficiency)+route`), or `none`.
    pub controller: String,
    /// Model instances simulated.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Repair cells (each with its own hot-spare pool).
    pub cells: u32,
    /// GPU-sized hot spares across the fleet (a failure consumes one
    /// spare unit — this is where Lite-GPU spares get cheap, §3).
    pub spares: u32,
    /// Fleet-cost overhead of the spare pool (spare GPUs / serving GPUs).
    pub spare_overhead: f64,
    /// Simulated horizon, hours.
    pub simulated_hours: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests shed at full queues (includes router sheds).
    pub rejected: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Requests requeued by instance failures (KV lost, prefill redone).
    pub retried: u64,
    /// Output tokens generated.
    pub generated_tokens: u64,
    /// Decode steps executed fleet-wide.
    pub decode_steps: u64,
    /// Output tokens per second over the horizon (the goodput the §3
    /// available-FLOPS claim cashes out as).
    pub goodput_tps: f64,
    /// Fraction of instance-time up.
    pub availability: f64,
    /// Failures injected.
    pub failures: u64,
    /// Failures absorbed by a hot spare.
    pub spare_hits: u64,
    /// Failures that had to wait for a full repair.
    pub spare_misses: u64,
    /// Total fleet energy over the horizon, joules (integer accumulators;
    /// static floors plus utilization-proportional dynamic power; powered
    /// states only — gated and failed instances draw nothing).
    pub energy_j: u64,
    /// Energy drawn while powered but not serving, joules: live
    /// instances' static floor during unutilized time plus warm-parked
    /// and booting instances. The §3 elasticity waste per-unit power
    /// gating attacks.
    pub idle_energy_j: u64,
    /// Total energy per generated token, joules/token.
    pub energy_per_token_j: f64,
    /// Mean instances live (serving-eligible) over the run — under an
    /// autoscaler this is the fleet's effective size.
    pub avg_live_instances: f64,
    /// Autoscaler activations applied (warm or cold).
    pub scale_ups: u64,
    /// Autoscaler parks applied.
    pub scale_downs: u64,
    /// Arrivals placed on an instance by the cell router.
    pub routed: u64,
    /// Arrivals the router shed because no live instance had queue room.
    pub routing_shed: u64,
    /// Median time to first token, seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub ttft_p99_s: f64,
    /// Fraction of first tokens meeting the TTFT SLO.
    pub ttft_attainment: f64,
    /// Median decode-step time, seconds.
    pub tbt_p50_s: f64,
    /// 99th-percentile decode-step time, seconds.
    pub tbt_p99_s: f64,
    /// Fraction of decode steps meeting the TBT SLO.
    pub tbt_attainment: f64,
    /// Median end-to-end request latency, seconds.
    pub e2e_p50_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub e2e_p99_s: f64,
}

impl FleetReport {
    /// Finalizes merged totals into the public report.
    pub(crate) fn finalize(totals: &ShardTotals, meta: RunMeta) -> Self {
        let instance_time_us = meta.instances as u128 * (meta.horizon_s * 1e6) as u128;
        let availability = if instance_time_us == 0 {
            1.0
        } else {
            1.0 - (totals.downtime_us as f64 / instance_time_us as f64).min(1.0)
        };
        let frac = |num: u64, den: u64| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        let ticks = (meta.horizon_s / meta.tick_s).round().max(1.0);
        Self {
            gpu: meta.gpu,
            model: meta.model,
            controller: meta.controller,
            instances: meta.instances,
            gpus_per_instance: meta.gpus_per_instance,
            cells: meta.cells,
            spares: meta.spares,
            spare_overhead: meta.spares as f64
                / (meta.instances as f64 * meta.gpus_per_instance as f64),
            simulated_hours: meta.horizon_s / 3600.0,
            tick_s: meta.tick_s,
            arrived: totals.arrived,
            rejected: totals.rejected,
            completed: totals.completed,
            retried: totals.retried,
            generated_tokens: totals.generated_tokens,
            decode_steps: totals.decode_steps,
            goodput_tps: totals.generated_tokens as f64 / meta.horizon_s,
            availability,
            failures: totals.failures,
            spare_hits: totals.spare_hits,
            spare_misses: totals.spare_misses,
            energy_j: totals.energy_uj / 1_000_000,
            idle_energy_j: totals.idle_energy_uj / 1_000_000,
            energy_per_token_j: if totals.generated_tokens == 0 {
                0.0
            } else {
                (totals.energy_uj / 1_000_000) as f64 / totals.generated_tokens as f64
            },
            avg_live_instances: totals.live_ticks as f64 / ticks,
            scale_ups: totals.scale_ups,
            scale_downs: totals.scale_downs,
            routed: totals.routed,
            routing_shed: totals.routing_shed,
            ttft_p50_s: totals.ttft.percentile_s(50.0),
            ttft_p99_s: totals.ttft.percentile_s(99.0),
            ttft_attainment: frac(totals.ttft_slo_ok, totals.ttft_recorded),
            tbt_p50_s: totals.tbt.percentile_s(50.0),
            tbt_p99_s: totals.tbt.percentile_s(99.0),
            tbt_attainment: frac(totals.tbt_slo_ok_steps, totals.decode_steps),
            e2e_p50_s: totals.e2e.percentile_s(50.0),
            e2e_p99_s: totals.e2e.percentile_s(99.0),
        }
    }

    /// Deterministic pretty-JSON rendering (byte-identical for identical
    /// reports).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} x{} ({} GPUs/inst, ctrl {}): {:.1} h, {} arrived, {} completed, \
             goodput {:.0} tok/s, availability {:.4}, TTFT p99 {:.3} s, \
             {} failures ({} spare hits), {:.1} MJ ({:.0}% idle)",
            self.gpu,
            self.instances,
            self.gpus_per_instance,
            self.controller,
            self.simulated_hours,
            self.arrived,
            self.completed,
            self.goodput_tps,
            self.availability,
            self.ttft_p99_s,
            self.failures,
            self.spare_hits,
            self.energy_j as f64 / 1e6,
            if self.energy_j == 0 {
                0.0
            } else {
                100.0 * self.idle_energy_j as f64 / self.energy_j as f64
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals() -> ShardTotals {
        let mut t = ShardTotals::new();
        t.arrived = 100;
        t.completed = 90;
        t.generated_tokens = 45_000;
        t.decode_steps = 1000;
        t.tbt_slo_ok_steps = 900;
        t.ttft_recorded = 95;
        t.ttft_slo_ok = 80;
        t.failures = 3;
        t.spare_hits = 2;
        t.spare_misses = 1;
        t.downtime_us = 3_600_000_000; // One instance-hour.
        t.energy_uj = 9_000_000_000; // 9 kJ.
        t.idle_energy_uj = 3_000_000_000;
        t.live_ticks = 18_000_000; // 500 instances mean over 36 000 ticks.
        t.scale_ups = 12;
        t.scale_downs = 15;
        t.routed = 99;
        t.routing_shed = 1;
        t.ttft.record(200_000, 95);
        t.tbt.record(30_000, 1000);
        t.e2e.record(5_000_000, 90);
        t
    }

    fn meta() -> RunMeta {
        RunMeta {
            gpu: "H100".into(),
            model: "llama3-70b".into(),
            controller: "autoscale+gate(DvfsAll)+route".into(),
            instances: 100,
            gpus_per_instance: 2,
            cells: 10,
            spares: 10,
            horizon_s: 36_000.0,
            tick_s: 1.0,
        }
    }

    #[test]
    fn finalize_derives_metrics_from_integers() {
        let r = FleetReport::finalize(&totals(), meta());
        assert_eq!(r.arrived, 100);
        assert!((r.goodput_tps - 1.25).abs() < 1e-12);
        // 1 instance-hour down out of 1000 instance-hours.
        assert!((r.availability - 0.999).abs() < 1e-9);
        assert!((r.tbt_attainment - 0.9).abs() < 1e-12);
        assert!((r.spare_overhead - 0.05).abs() < 1e-12);
        assert!(r.ttft_p50_s > 0.1 && r.ttft_p50_s < 0.3);
        assert_eq!(r.energy_j, 9_000);
        assert_eq!(r.idle_energy_j, 3_000);
        assert!((r.energy_per_token_j - 0.2).abs() < 1e-12);
        assert!((r.avg_live_instances - 500.0).abs() < 1e-9);
        assert_eq!(r.scale_ups, 12);
        assert_eq!(r.scale_downs, 15);
        assert_eq!((r.routed, r.routing_shed), (99, 1));
    }

    #[test]
    fn json_rendering_is_deterministic_and_complete() {
        let r = FleetReport::finalize(&totals(), meta());
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        for key in [
            "goodput_tps",
            "availability",
            "ttft_p99_s",
            "spare_hits",
            "generated_tokens",
            "energy_j",
            "idle_energy_j",
            "energy_per_token_j",
            "scale_ups",
            "scale_downs",
            "routed",
            "controller",
            "avg_live_instances",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }

    #[test]
    fn summary_mentions_controller_and_energy() {
        let r = FleetReport::finalize(&totals(), meta());
        let s = r.summary();
        assert!(s.contains("autoscale"));
        assert!(s.contains("MJ"));
    }
}

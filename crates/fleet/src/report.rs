//! Fleet-run reporting: integer shard totals finalized into one
//! `FleetReport`.
//!
//! Every derived metric is computed *once*, from the merged integer
//! totals — never per shard and averaged — so the report is bit-identical
//! for any shard/thread partition of the same simulation. JSON rendering
//! goes through the workspace's deterministic serializer, making the
//! serialized report byte-identical too.

use crate::state::ShardTotals;

/// Aggregated results of a fleet run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// GPU configuration name.
    pub gpu: String,
    /// Model name.
    pub model: String,
    /// Model instances simulated.
    pub instances: u32,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
    /// Repair cells (each with its own hot-spare pool).
    pub cells: u32,
    /// GPU-sized hot spares across the fleet (a failure consumes one
    /// spare unit — this is where Lite-GPU spares get cheap, §3).
    pub spares: u32,
    /// Fleet-cost overhead of the spare pool (spare GPUs / serving GPUs).
    pub spare_overhead: f64,
    /// Simulated horizon, hours.
    pub simulated_hours: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests shed at full queues.
    pub rejected: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Requests requeued by instance failures (KV lost, prefill redone).
    pub retried: u64,
    /// Output tokens generated.
    pub generated_tokens: u64,
    /// Decode steps executed fleet-wide.
    pub decode_steps: u64,
    /// Output tokens per second over the horizon (the goodput the §3
    /// available-FLOPS claim cashes out as).
    pub goodput_tps: f64,
    /// Fraction of instance-time up.
    pub availability: f64,
    /// Failures injected.
    pub failures: u64,
    /// Failures absorbed by a hot spare.
    pub spare_hits: u64,
    /// Failures that had to wait for a full repair.
    pub spare_misses: u64,
    /// Median time to first token, seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub ttft_p99_s: f64,
    /// Fraction of first tokens meeting the TTFT SLO.
    pub ttft_attainment: f64,
    /// Median decode-step time, seconds.
    pub tbt_p50_s: f64,
    /// 99th-percentile decode-step time, seconds.
    pub tbt_p99_s: f64,
    /// Fraction of decode steps meeting the TBT SLO.
    pub tbt_attainment: f64,
    /// Median end-to-end request latency, seconds.
    pub e2e_p50_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub e2e_p99_s: f64,
}

impl FleetReport {
    /// Finalizes merged totals into the public report.
    #[allow(clippy::too_many_arguments)] // One call site, engine-internal.
    pub(crate) fn finalize(
        totals: &ShardTotals,
        gpu: String,
        model: String,
        instances: u32,
        gpus_per_instance: u32,
        cells: u32,
        spares: u32,
        horizon_s: f64,
        tick_s: f64,
    ) -> Self {
        let instance_time_us = instances as u128 * (horizon_s * 1e6) as u128;
        let availability = if instance_time_us == 0 {
            1.0
        } else {
            1.0 - (totals.downtime_us as f64 / instance_time_us as f64).min(1.0)
        };
        let frac = |num: u64, den: u64| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        Self {
            gpu,
            model,
            instances,
            gpus_per_instance,
            cells,
            spares,
            spare_overhead: spares as f64 / (instances as f64 * gpus_per_instance as f64),
            simulated_hours: horizon_s / 3600.0,
            tick_s,
            arrived: totals.arrived,
            rejected: totals.rejected,
            completed: totals.completed,
            retried: totals.retried,
            generated_tokens: totals.generated_tokens,
            decode_steps: totals.decode_steps,
            goodput_tps: totals.generated_tokens as f64 / horizon_s,
            availability,
            failures: totals.failures,
            spare_hits: totals.spare_hits,
            spare_misses: totals.spare_misses,
            ttft_p50_s: totals.ttft.percentile_s(50.0),
            ttft_p99_s: totals.ttft.percentile_s(99.0),
            ttft_attainment: frac(totals.ttft_slo_ok, totals.ttft_recorded),
            tbt_p50_s: totals.tbt.percentile_s(50.0),
            tbt_p99_s: totals.tbt.percentile_s(99.0),
            tbt_attainment: frac(totals.tbt_slo_ok_steps, totals.decode_steps),
            e2e_p50_s: totals.e2e.percentile_s(50.0),
            e2e_p99_s: totals.e2e.percentile_s(99.0),
        }
    }

    /// Deterministic pretty-JSON rendering (byte-identical for identical
    /// reports).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} x{} ({} GPUs/inst): {:.1} h, {} arrived, {} completed, \
             goodput {:.0} tok/s, availability {:.4}, TTFT p99 {:.3} s, \
             {} failures ({} spare hits)",
            self.gpu,
            self.instances,
            self.gpus_per_instance,
            self.simulated_hours,
            self.arrived,
            self.completed,
            self.goodput_tps,
            self.availability,
            self.ttft_p99_s,
            self.failures,
            self.spare_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals() -> ShardTotals {
        let mut t = ShardTotals::new();
        t.arrived = 100;
        t.completed = 90;
        t.generated_tokens = 45_000;
        t.decode_steps = 1000;
        t.tbt_slo_ok_steps = 900;
        t.ttft_recorded = 95;
        t.ttft_slo_ok = 80;
        t.failures = 3;
        t.spare_hits = 2;
        t.spare_misses = 1;
        t.downtime_us = 3_600_000_000; // One instance-hour.
        t.ttft.record(200_000, 95);
        t.tbt.record(30_000, 1000);
        t.e2e.record(5_000_000, 90);
        t
    }

    #[test]
    fn finalize_derives_metrics_from_integers() {
        let r = FleetReport::finalize(
            &totals(),
            "H100".into(),
            "llama3-70b".into(),
            100,
            2,
            10,
            10,
            36_000.0,
            1.0,
        );
        assert_eq!(r.arrived, 100);
        assert!((r.goodput_tps - 1.25).abs() < 1e-12);
        // 1 instance-hour down out of 1000 instance-hours.
        assert!((r.availability - 0.999).abs() < 1e-9);
        assert!((r.tbt_attainment - 0.9).abs() < 1e-12);
        assert!((r.spare_overhead - 0.05).abs() < 1e-12);
        assert!(r.ttft_p50_s > 0.1 && r.ttft_p50_s < 0.3);
    }

    #[test]
    fn json_rendering_is_deterministic_and_complete() {
        let r = FleetReport::finalize(
            &totals(),
            "Lite".into(),
            "llama3-70b".into(),
            64,
            8,
            4,
            4,
            7200.0,
            1.0,
        );
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        for key in [
            "goodput_tps",
            "availability",
            "ttft_p99_s",
            "spare_hits",
            "generated_tokens",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }
}

//! `litegpu-fleet` — a sharded, thread-parallel fleet-scale serving
//! simulator.
//!
//! The paper's serving-system claims (§3) — smaller blast radius, cheaper
//! hot spares, higher available FLOPS — are *fleet-scale, multi-day*
//! dynamics. `litegpu_sim`'s per-event simulator resolves individual
//! decode steps, which is the right tool for minutes of simulated time
//! and a handful of instances, but a thousand instances over days would
//! mean billions of events. This crate trades per-step events for a
//! **tick-based fluid model** that stays faithful where it matters:
//!
//! - **Step costs are exact.** Every prefill/decode step is priced by a
//!   precomputed [`litegpu_roofline::StepCostTable`] — the same roofline
//!   numbers as the small simulator, quantized to integer microseconds,
//!   with no roofline evaluation in the hot loop.
//! - **Failures are event-accurate.** Each instance draws Poisson failure
//!   times from [`litegpu_cluster::failure::FailureModel`]'s
//!   area-dependent AFR (shared unit convention: annualized rates ÷ 8760
//!   → per-hour), takes the whole instance down (the §3 blast radius),
//!   and recovers via a per-cell hot-spare pool or a slow repair.
//! - **Workloads are multi-tenant.** A [`workload::WorkloadSpec`] lists
//!   tenants with their own traffic patterns, rate shares, prompt/output
//!   shapes, priority classes and TTFT/TBT SLO targets; arrivals are
//!   tenant-tagged end to end and the report carries a per-tenant SLO
//!   section ([`report::FleetReport::per_tenant`]). Legacy single-source
//!   configs migrate with `TrafficModel::into()`.
//! - **Serving can phase-split.** [`engine::ServingMode::PhaseSplit`]
//!   partitions each cell into Splitwise-style prefill and decode pools:
//!   completed prefills stream their KV caches (prompt length ×
//!   bytes-per-token, via `litegpu_workload::kv`) over a per-cell
//!   [`engine::KvLink`] budget whose queueing delay lands in TTFT and
//!   whose saturation back-pressures the prefill pool, while decode TBT
//!   books stay isolated from prefill interference. The control plane is
//!   phase-aware (per-pool autoscaling, prefill-only routing), and the
//!   report grows a [`report::KvTransferReport`] section.
//! - **Failures can correlate.** An [`engine::ChaosSpec`] schedules
//!   rack/power-domain outages, network partitions, thermal clock clamps
//!   and rolling drains over the horizon (compiled from campaigns by the
//!   `litegpu-chaos` crate); finite per-cell repair crews work an
//!   integer-µs repair queue, and the report attributes instance downs by
//!   domain kind ([`report::FailureBreakdown`]) and grows a
//!   [`report::ChaosSection`] on campaign runs.
//! - **Determinism is total.** Every instance and every (cell, tenant)
//!   arrival stream owns its RNG stream, all accumulators are integers,
//!   and shard results merge with associative integer arithmetic — so the
//!   same seed produces a **byte-identical [`report::FleetReport`] at any
//!   shard count and any thread count**.
//!
//! Sharding: instances are grouped into fixed-size *cells* (think rack or
//! pod — each cell owns its hot-spare pool), and cells are partitioned
//! across shards which step in parallel on `std::thread` scope threads.
//! Because cells never interact, the partition is purely a parallelism
//! choice, not a modeling one.
//!
//! ```
//! use litegpu_fleet::engine::{run, FleetConfig};
//!
//! let mut cfg = FleetConfig::lite_demo();
//! cfg.instances = 16;
//! cfg.horizon_s = 600.0;
//! let report = run(&cfg, 42).unwrap();
//! assert!(report.completed > 0);
//! assert!(report.availability > 0.0);
//! ```

pub mod engine;
pub mod hist;
pub mod provision;
pub mod report;
pub mod state;
pub mod traffic;
pub mod workload;

pub use engine::{
    run, run_sharded, run_sharded_full, ChaosSpec, DomainEvent, DomainEventKind, FleetConfig,
    FleetRun, KvLink, ServingMode, TelemetryConfig,
};
pub use hist::LatencyHistogram;
pub use litegpu_ctrl as ctrl;
pub use litegpu_ctrl::Phase;
pub use provision::{spares_for_target, SpareSearch};
pub use report::{
    BalancerSection, ChaosSection, DvfsReport, FailureBreakdown, FleetReport, FlowEntry,
    KvTransferReport, TenantReport,
};
pub use traffic::{LengthDist, TrafficModel, TrafficPattern};
pub use workload::{PriorityClass, Tenant, WorkloadSpec};

/// Errors produced by the fleet simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Underlying roofline error (instance timing).
    Roofline(litegpu_roofline::RooflineError),
    /// The control-plane configuration was invalid.
    Ctrl(&'static str),
    /// The workload specification was invalid.
    Workload(&'static str),
    /// A spare-provisioning search exhausted its sweep range without
    /// reaching the availability target.
    TargetUnreachable {
        /// The requested availability target.
        target: f64,
        /// The best availability seen during the sweep.
        best: f64,
    },
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::InvalidParameter { name, value } => {
                write!(f, "invalid fleet parameter {name} = {value}")
            }
            FleetError::Roofline(e) => write!(f, "roofline error: {e}"),
            FleetError::Ctrl(msg) => write!(f, "invalid control-plane config: {msg}"),
            FleetError::Workload(msg) => write!(f, "invalid workload spec: {msg}"),
            FleetError::TargetUnreachable { target, best } => write!(
                f,
                "availability target {target} unreachable (best seen: {best})"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<litegpu_roofline::RooflineError> for FleetError {
    fn from(e: litegpu_roofline::RooflineError) -> Self {
        FleetError::Roofline(e)
    }
}

/// Result alias for fleet operations.
pub type Result<T> = core::result::Result<T, FleetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = FleetError::InvalidParameter {
            name: "instances",
            value: 0.0,
        };
        assert!(e.to_string().contains("instances"));
    }
}

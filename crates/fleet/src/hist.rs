//! Mergeable latency histograms over integer microseconds.
//!
//! Fleet runs record tens of millions of latency samples across many
//! shards; keeping raw sample vectors (as `litegpu_sim::stats::Samples`
//! does) would not scale, and merging sorted vectors across shards would
//! be order-sensitive. This histogram is HDR-style: log₂ major buckets
//! with [`LatencyHistogram::SUB_BITS`] linear sub-buckets each, bounding
//! relative quantile error at ~12.5% while supporting O(buckets)
//! order-independent merging with pure integer arithmetic — the property
//! the engine's byte-identical-at-any-shard-count guarantee rests on.

/// A fixed-shape latency histogram (values in microseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    /// Exact weighted sum of recorded values, for exact means.
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Linear sub-buckets per octave: 2^3 = 8.
    pub const SUB_BITS: u32 = 3;
    const SUB: u64 = 1 << Self::SUB_BITS;
    /// Bucket count: 64 octaves × 8 sub-buckets.
    const BUCKETS: usize = 64 * Self::SUB as usize;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; Self::BUCKETS],
            total: 0,
            sum_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us < Self::SUB {
            return us as usize; // Exact buckets below 8 µs.
        }
        let exp = 63 - us.leading_zeros() as u64;
        let sub = (us >> (exp - Self::SUB_BITS as u64)) & (Self::SUB - 1);
        (exp * Self::SUB + sub) as usize
    }

    /// Representative value (µs) for a bucket: its inclusive midpoint.
    fn bucket_value(bucket: usize) -> u64 {
        let b = bucket as u64;
        if b < Self::SUB {
            return b;
        }
        let exp = b / Self::SUB;
        let sub = b % Self::SUB;
        let lo = (1u64 << exp) + (sub << (exp - Self::SUB_BITS as u64));
        let width = 1u64 << (exp - Self::SUB_BITS as u64);
        lo + width / 2
    }

    /// Records `weight` samples of `us` microseconds.
    pub fn record(&mut self, us: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.counts[Self::bucket_of(us)] += weight;
        self.total += weight;
        self.sum_us += us as u128 * weight as u128;
    }

    /// Total recorded weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact weighted sum of recorded values, microseconds. Together
    /// with [`LatencyHistogram::total`] this is what telemetry series
    /// snapshots difference per window (count and sum deltas are
    /// additive across shards; percentiles are not).
    pub fn sum_us(&self) -> u128 {
        self.sum_us
    }

    /// Exact mean of recorded values, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.sum_us / self.total as u128) as f64 / 1e6
            + ((self.sum_us % self.total as u128) as f64 / self.total as f64) / 1e6
    }

    /// The `p`-th percentile (nearest-rank over buckets), microseconds.
    /// Returns 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Clamp the rank into [1, total]: at p = 100 with large totals the
        // f64 product can round *above* `total`, which would walk past
        // every occupied bucket and fall through to the ~2^63 µs top
        // bucket instead of the true maximum.
        let rank = (((p / 100.0) * self.total as f64).ceil().max(1.0) as u64).min(self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(Self::BUCKETS - 1)
    }

    /// The `p`-th percentile, seconds.
    pub fn percentile_s(&self, p: f64) -> f64 {
        self.percentile_us(p) as f64 / 1e6
    }

    /// Adds all of `other`'s samples into `self` (order-independent).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_us(50.0), 0);
        assert_eq!(h.mean_s(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..8u64 {
            h.record(v, 1);
        }
        assert_eq!(h.percentile_us(100.0), 7);
        assert_eq!(h.percentile_us(1.0), 0);
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1000 samples at exactly 50 ms.
        h.record(50_000, 1000);
        let p50 = h.percentile_us(50.0) as f64;
        assert!((p50 / 50_000.0 - 1.0).abs() < 0.125, "p50 = {p50}");
        // Order statistics: p99 over a two-mode distribution picks the
        // upper mode.
        h.record(500_000, 20);
        let p99 = h.percentile_us(99.0) as f64;
        assert!((p99 / 500_000.0 - 1.0).abs() < 0.125, "p99 = {p99}");
    }

    #[test]
    fn percentile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 37, 1);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let v = h.percentile_us(p);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        // The percentile-merging property the sharded engine relies on:
        // merging shard histograms gives exactly the histogram of the
        // union of samples, regardless of how samples were partitioned.
        let samples: Vec<u64> = (1..=5000u64).map(|i| i * i % 900_000 + 1).collect();
        let mut whole = LatencyHistogram::new();
        for &s in &samples {
            whole.record(s, 1);
        }
        for split in [1usize, 3, 8] {
            let mut parts: Vec<LatencyHistogram> =
                (0..split).map(|_| LatencyHistogram::new()).collect();
            for (i, &s) in samples.iter().enumerate() {
                parts[i % split].record(s, 1);
            }
            let mut merged = LatencyHistogram::new();
            // Merge in reverse order to prove order-independence.
            for p in parts.iter().rev() {
                merged.merge(p);
            }
            assert_eq!(merged, whole, "split = {split}");
        }
    }

    #[test]
    fn weighted_recording_matches_repeated() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(12_345, 100);
        for _ in 0..100 {
            b.record(12_345, 1);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000, 1);
        h.record(3_000_000, 1);
        assert!((h.mean_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_percentile_edges() {
        let h = LatencyHistogram::new();
        for p in [0.0, 50.0, 100.0, -3.0, 400.0] {
            assert_eq!(h.percentile_us(p), 0, "p = {p}");
        }
        assert_eq!(h.sum_us(), 0);
    }

    #[test]
    fn p0_and_p100_hit_min_and_max_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(100, 10);
        h.record(1_000_000, 1);
        let p0 = h.percentile_us(0.0);
        let p100 = h.percentile_us(100.0);
        assert!((p0 as f64 / 100.0 - 1.0).abs() < 0.125, "p0 = {p0}");
        assert!((p100 as f64 / 1e6 - 1.0).abs() < 0.125, "p100 = {p100}");
        // Out-of-range p clamps to the same edges.
        assert_eq!(h.percentile_us(-5.0), p0);
        assert_eq!(h.percentile_us(250.0), p100);
    }

    #[test]
    fn p100_rank_rounding_cannot_overflow_total() {
        // (2^53 + 3) is not f64-representable; the nearest double is
        // 2^53 + 4 > total, so the unclamped nearest-rank walked past
        // every occupied bucket and returned the ~2^63 µs top bucket.
        let mut h = LatencyHistogram::new();
        h.record(1_000, (1u64 << 53) + 3);
        let p100 = h.percentile_us(100.0);
        assert!((p100 as f64 / 1_000.0 - 1.0).abs() < 0.125, "p100 = {p100}");
    }

    #[test]
    fn single_bucket_histogram_is_flat_across_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(42_000, 7);
        let v = h.percentile_us(50.0);
        for p in [0.0, 1.0, 25.0, 99.0, 100.0] {
            assert_eq!(h.percentile_us(p), v, "p = {p}");
        }
        assert_eq!(h.sum_us(), 42_000u128 * 7);
    }
}

//! Per-instance fleet state: a tick-based fluid serving model with exact
//! roofline step costs, plus the per-cell hot-spare pool.
//!
//! Each instance tracks its request queue as run-length-encoded,
//! tenant-tagged arrival cohorts and its running batch as completion
//! cohorts ordered by the decode step at which they finish. A processed
//! tick advances an instance by: failure lifecycle → arrivals (routed in
//! by the cell) → serving (prefill prioritized, then decode steps until
//! the tick's time budget runs out). The engine's event loop invokes
//! these stages only when they are due — `lifecycle` at precomputed
//! integer-µs failure/recovery times, `serve` only while the instance
//! holds work — and exposes the next-event times
//! (`next_failure_at_us`, `down_until_at_us`) so the scheduler can
//! enqueue exact wakeups instead of polling. All state is integer
//! microseconds / counts, and every random draw comes from the
//! instance's own RNG stream — the two properties that make sharded
//! results independent of shard and thread counts.
//!
//! Tenancy is first-class: every queued run and running cohort carries
//! its tenant index, prefill cost scales with the tenant's prompt length,
//! output lengths come from the tenant's own [`LengthDist`], and all
//! SLO accounting (TTFT, TBT, e2e) lands in per-tenant accumulators
//! alongside the fleet totals.

use crate::hist::LatencyHistogram;
use crate::traffic::LengthDist;
use litegpu_ctrl::Phase;
use litegpu_roofline::StepCostTable;
use litegpu_telemetry::{SpanSampler, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Where a serving tick appends its sampled trace events. Span ids are
/// computed unconditionally (they are part of simulation state), but
/// events are emitted only for spans in the 1-in-`every` sample — so a
/// trace never perturbs the simulation, only observes it.
pub(crate) struct TraceSink<'a> {
    pub buf: &'a mut Vec<TraceEvent>,
    /// Division-free 1-in-`every` request-span sampler (0 disables
    /// request spans).
    pub sampler: SpanSampler,
    /// Owning cell (rendered as the trace `pid`).
    pub cell: u32,
}

/// A run of same-tenant requests that arrived in the same tick.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueRun {
    arrival_tick: u32,
    count: u32,
    /// Owning tenant (index into the workload's tenant list).
    tenant: u16,
    /// Requeued after a failure: the first token was already delivered,
    /// so TTFT is not recorded again.
    retry: bool,
}

/// Per-tenant serving knobs (derived from the workload + engine params
/// once).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TenantKnobs {
    pub ttft_slo_us: u64,
    pub tbt_slo_us: u64,
    /// Output-length distribution, sampled per prefill cohort.
    pub output_len: LengthDist,
    /// Prefill-cost scaling as an exact rational: the step-cost table is
    /// priced at the engine's default prompt length, and prefill time is
    /// ~linear in prompt tokens, so a tenant with a different mean prompt
    /// pays `cost × prefill_num / prefill_den` (integer arithmetic, ≥ 1).
    pub prefill_num: u32,
    pub prefill_den: u32,
    /// KV-cache bytes one of this tenant's requests hands from prefill to
    /// decode under phase-split serving: mean prompt length ×
    /// bytes-per-token at the engine precision (integer, so link
    /// accounting stays exact).
    pub kv_bytes_per_req: u64,
}

impl TenantKnobs {
    /// Scales a table prefill cost to this tenant's prompt length.
    pub fn prefill_cost_us(&self, table_us: u64) -> u64 {
        if self.prefill_num == self.prefill_den {
            return table_us.max(1);
        }
        (table_us as u128 * self.prefill_num as u128 / self.prefill_den.max(1) as u128).max(1)
            as u64
    }
}

/// Serving knobs shared by every instance (derived from the fleet
/// config once).
#[derive(Debug, Clone)]
pub(crate) struct ServeKnobs {
    pub tick_us: u64,
    pub max_prefill_batch: u32,
    pub max_queue: u32,
    /// One entry per workload tenant, indexed by tenant id.
    pub tenants: Vec<TenantKnobs>,
}

/// Failure/repair timing shared by every instance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FailureRates {
    /// Mean microseconds between failures of one instance (0 disables
    /// failure injection).
    pub mean_interval_us: f64,
    pub swap_us: u64,
    pub repair_us: u64,
}

impl FailureRates {
    /// Exponential inter-failure draw; `u64::MAX` when disabled.
    fn next_interval_us(&self, rng: &mut StdRng) -> u64 {
        if self.mean_interval_us <= 0.0 {
            return u64::MAX;
        }
        let u: f64 = rng.random::<f64>().max(1e-300);
        let dt = -u.ln() * self.mean_interval_us;
        if dt >= u64::MAX as f64 {
            u64::MAX
        } else {
            (dt as u64).max(1)
        }
    }
}

/// One tenant's integer accumulators within a shard. Merging is plain
/// addition, so the merge order cannot affect the result.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TenantTotals {
    /// Requests that arrived for this tenant.
    pub arrived: u64,
    /// Arrivals placed on an instance queue.
    pub routed: u64,
    /// Arrivals dropped at a full instance queue.
    pub rejected: u64,
    /// Arrivals shed at the cell boundary: admission control (best-effort
    /// revoked) or no live instance to route to.
    pub shed: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Output tokens generated for this tenant.
    pub generated_tokens: u64,
    /// Of those, tokens produced by decode steps meeting the tenant's
    /// TBT SLO.
    pub tbt_slo_ok_tokens: u64,
    /// First tokens with a recorded TTFT.
    pub ttft_recorded: u64,
    /// Of those, within the tenant's TTFT SLO.
    pub ttft_slo_ok: u64,
    pub ttft: LatencyHistogram,
    pub e2e: LatencyHistogram,
}

impl TenantTotals {
    pub fn new() -> Self {
        Self {
            ttft: LatencyHistogram::new(),
            e2e: LatencyHistogram::new(),
            ..Default::default()
        }
    }

    /// Adds `other` into `self` (associative, commutative).
    pub fn merge(&mut self, other: &Self) {
        self.arrived += other.arrived;
        self.routed += other.routed;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.completed += other.completed;
        self.generated_tokens += other.generated_tokens;
        self.tbt_slo_ok_tokens += other.tbt_slo_ok_tokens;
        self.ttft_recorded += other.ttft_recorded;
        self.ttft_slo_ok += other.ttft_slo_ok;
        self.ttft.merge(&other.ttft);
        self.e2e.merge(&other.e2e);
    }
}

/// One prefill→decode KV-cache hand-off in flight on a cell's KV link
/// (phase-split serving): a whole prefill cohort, priced at prompt-length
/// × bytes-per-token, waiting out its serialization + queueing delay
/// before the decode pool may pick it up.
#[derive(Debug, Clone)]
pub(crate) struct KvTransfer {
    /// Link time at which the transfer lands, µs.
    pub complete_us: u64,
    /// Time the hand-off entered the link, µs (TTFT measures from here
    /// until actual delivery into the decode pool).
    pub ready_us: u64,
    /// Owning tenant.
    pub tenant: u16,
    /// Requests in the cohort.
    pub count: u32,
    /// Output length sampled at prefill (decode steps to run).
    pub out_len: u64,
    /// Oldest member's arrival tick (starts the e2e clock).
    pub oldest_arrival_tick: u32,
    /// KV bytes moved.
    pub bytes: u64,
    /// Trace span id of the cohort (`(prefill instance global index
    /// << 32) | launch counter`; RNG-free, shard-invariant).
    pub span: u64,
    /// One `(queue+prefill wait µs, weight)` entry per non-retry queue
    /// run in the cohort; TTFT is recorded from these at delivery.
    pub ttfts: Vec<(u64, u64)>,
}

/// One cell's prefill→decode KV link: a serialized bandwidth budget with
/// FIFO queueing in exact integer microseconds. Transfer delay (queueing
/// plus serialization) lands in TTFT — the first decode token cannot
/// exist before the KV cache arrives — and a backlog past the configured
/// threshold back-pressures the cell's prefill pool.
#[derive(Debug)]
pub(crate) struct KvLinkState {
    /// Link bandwidth, bytes/second.
    bytes_per_s: u64,
    /// Backlog threshold (µs of link time) beyond which prefill launches
    /// stall.
    max_backlog_us: u64,
    /// Time at which the link next frees, µs.
    free_us: u64,
    /// Transfers in flight or awaiting decode capacity, completion-ordered
    /// (a single serialized link keeps FIFO = completion order).
    queue: VecDeque<KvTransfer>,
}

impl KvLinkState {
    pub fn new(bytes_per_s: u64, max_backlog_us: u64) -> Self {
        Self {
            bytes_per_s: bytes_per_s.max(1),
            max_backlog_us,
            free_us: 0,
            queue: VecDeque::new(),
        }
    }

    /// Outstanding link backlog at `now_us`, µs of link time.
    pub fn backlog_us(&self, now_us: u64) -> u64 {
        self.free_us.saturating_sub(now_us)
    }

    /// Whether the prefill pool must stall (backlog past the threshold).
    pub fn backlogged(&self, now_us: u64) -> bool {
        self.backlog_us(now_us) > self.max_backlog_us
    }

    /// Prices and enqueues one cohort's KV hand-off, recording the link
    /// accounting (bytes, busy time, queueing + serialization delay).
    /// TTFT is *not* recorded here: it waits for
    /// [`KvLinkState::record_delivery`], so time spent head-of-line for
    /// decode batch room lands in it too. `ttfts` carries one
    /// `(wait_us, weight)` entry per non-retry queue run in the cohort.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        &mut self,
        ready_us: u64,
        tenant: u16,
        count: u32,
        out_len: u64,
        oldest_arrival_tick: u32,
        bytes: u64,
        span: u64,
        ttfts: &[(u64, u64)],
        acc: &mut ShardTotals,
    ) {
        let service =
            ((bytes as u128 * 1_000_000).div_ceil(self.bytes_per_s as u128) as u64).max(1);
        let complete = self.free_us.max(ready_us) + service;
        self.free_us = complete;
        acc.kv_transfers += 1;
        acc.kv_bytes_queued += bytes;
        acc.kv_link_busy_us += service;
        acc.kv_delay.record(complete - ready_us, count as u64);
        self.queue.push_back(KvTransfer {
            complete_us: complete,
            ready_us,
            tenant,
            count,
            out_len,
            oldest_arrival_tick,
            bytes,
            span,
            ttfts: ttfts.to_vec(),
        });
    }

    /// Records a landed transfer's delivery into the decode pool at
    /// `now_us`: delivered bytes, and the cohort's TTFTs — queue wait +
    /// prefill cost + the full hand-off delay (link queueing,
    /// serialization, and any ticks spent head-of-line waiting for
    /// decode batch room) — against the tenant's SLO.
    pub fn record_delivery(job: &KvTransfer, now_us: u64, tk: &TenantKnobs, acc: &mut ShardTotals) {
        acc.kv_bytes_delivered += job.bytes;
        let delay = now_us.saturating_sub(job.ready_us);
        for &(wait_us, w) in &job.ttfts {
            let ttft = wait_us + delay;
            acc.ttft.record(ttft, w);
            let tt = &mut acc.per_tenant[job.tenant as usize];
            tt.ttft.record(ttft, w);
            tt.ttft_recorded += w;
            if ttft <= tk.ttft_slo_us {
                tt.ttft_slo_ok += w;
            }
        }
    }

    /// The next transfer already landed by `now_us`, if any (FIFO head).
    pub fn peek_landed(&self, now_us: u64) -> Option<&KvTransfer> {
        self.queue.front().filter(|t| t.complete_us <= now_us)
    }

    /// Removes the FIFO head (after a successful delivery).
    pub fn pop(&mut self) -> Option<KvTransfer> {
        self.queue.pop_front()
    }

    /// Completion time of the FIFO head, if any transfer is in flight.
    /// The event engine's next-delivery wakeup derives from this.
    pub fn head_complete_us(&self) -> Option<u64> {
        self.queue.front().map(|t| t.complete_us)
    }

    /// Bytes queued or awaiting decode capacity (conservation checks).
    pub fn inflight_bytes(&self) -> u64 {
        self.queue.iter().map(|t| t.bytes).sum()
    }
}

/// Integer accumulators for one shard. Merging is plain addition, so the
/// merge order cannot affect the result.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ShardTotals {
    pub arrived: u64,
    /// Arrivals not admitted to any queue: queue-full rejections plus
    /// both shed kinds (`routing_shed`, `admission_shed`).
    pub rejected: u64,
    pub completed: u64,
    pub retried: u64,
    pub generated_tokens: u64,
    pub decode_steps: u64,
    pub failures: u64,
    pub spare_hits: u64,
    pub spare_misses: u64,
    pub downtime_us: u64,
    /// Total energy drawn by powered instances, microjoules.
    pub energy_uj: u64,
    /// Energy drawn while powered but not serving (static floors of live
    /// instances' unutilized time, warm-parked and booting instances),
    /// microjoules — the elasticity waste power gating attacks.
    pub idle_energy_uj: u64,
    /// Instance-ticks spent live and up (for mean live-pool size).
    pub live_ticks: u64,
    /// Autoscaler activations applied.
    pub scale_ups: u64,
    /// Autoscaler parks applied.
    pub scale_downs: u64,
    /// Arrivals placed on an instance by the cell router.
    pub routed: u64,
    /// Arrivals shed by the router because no live instance existed.
    pub routing_shed: u64,
    /// Best-effort arrivals shed by admission control under pressure.
    pub admission_shed: u64,
    /// Failure breakdown by `litegpu_cluster::domain::DomainKind` index:
    /// independent / rack / power slots count instance-downs (they sum to
    /// `failures`); the partition and thermal slots count chaos events
    /// observed (those degrade service without downing instances).
    pub by_kind: [u64; 5],
    /// Of `routing_shed`, arrivals shed because the cell was partitioned.
    pub partition_shed: u64,
    /// Instances entering a rolling-drain wave.
    pub drains: u64,
    /// Drained instances restored to rotation.
    pub drain_restores: u64,
    /// Repair jobs handed to a cell repair crew.
    pub repairs_dispatched: u64,
    /// Total µs repair jobs waited for a free crew past their ready time.
    pub repair_wait_us: u64,
    /// Completed down→up restorations.
    pub restores: u64,
    /// Total µs of completed restorations (mean-time-to-restore
    /// numerator; unlike `downtime_us` it excludes still-down tail time).
    pub restore_us: u64,
    /// KV hand-off cohorts enqueued on cell links (phase-split serving).
    pub kv_transfers: u64,
    /// KV bytes enqueued on cell links.
    pub kv_bytes_queued: u64,
    /// KV bytes delivered into the decode pool.
    pub kv_bytes_delivered: u64,
    /// KV bytes still in flight (or awaiting decode capacity) at the end
    /// of the horizon. Conservation: `queued = delivered + inflight_end`.
    pub kv_bytes_inflight_end: u64,
    /// Total link time spent serializing transfers, µs (utilization).
    pub kv_link_busy_us: u64,
    /// Prefill launches deferred because the KV link was backlogged.
    pub kv_backpressure_stalls: u64,
    /// `SetPhase` rebalances the data plane actually applied.
    pub phase_rebalances: u64,
    /// Instance-ticks spent live in the prefill pool.
    pub prefill_live_ticks: u64,
    /// Instance-ticks spent live in the decode pool.
    pub decode_live_ticks: u64,
    /// Live instance-ticks spent at each DVFS operating point, indexed by
    /// clock-grid index (one slot per priced point; a single-slot vector
    /// on nominal-only runs). Sums to `live_ticks`.
    pub clock_ticks: Vec<u64>,
    /// `SetClock` retunes the data plane actually applied (commands that
    /// changed a slot's operating point).
    pub clock_retunes: u64,
    /// Dynamic serving energy actually drawn, microjoules (at each
    /// slot's operating point).
    pub dvfs_dyn_uj: u64,
    /// Counterfactual dynamic energy had the same served work run at the
    /// nominal clock, microjoules. `nominal − actual` is the energy DVFS
    /// saved; the idle floor is identical in both worlds.
    pub dvfs_nominal_dyn_uj: u64,
    /// Requests the fleet balancer redirected out of this shard's cells
    /// (deducted from their arrival schedules before routing).
    pub spill_out: u64,
    /// Requests the fleet balancer redirected *into* this shard's cells.
    /// Fleet-wide, `spill_in == spill_out` exactly (cohort conservation).
    pub spill_in: u64,
    /// Redirected cohorts (batches) received; each appears exactly once.
    pub spilled_cohorts: u64,
    /// Arrivals shed at the cell boundary by a fleet admission quota.
    pub quota_clamped: u64,
    /// The balancer flow matrix: `(src cell, dst cell) → requests`
    /// redirected, booked at the source. A `BTreeMap` so the report's
    /// flow listing has one canonical order.
    pub spill_flow: BTreeMap<(u32, u32), u64>,
    pub ttft: LatencyHistogram,
    pub tbt: LatencyHistogram,
    pub e2e: LatencyHistogram,
    /// KV transfer delay (queueing + serialization) per request.
    pub kv_delay: LatencyHistogram,
    /// One slot per workload tenant, indexed by tenant id.
    pub per_tenant: Vec<TenantTotals>,
}

impl ShardTotals {
    pub fn new(n_tenants: usize, n_clocks: usize) -> Self {
        Self {
            ttft: LatencyHistogram::new(),
            tbt: LatencyHistogram::new(),
            e2e: LatencyHistogram::new(),
            kv_delay: LatencyHistogram::new(),
            clock_ticks: vec![0; n_clocks.max(1)],
            per_tenant: (0..n_tenants).map(|_| TenantTotals::new()).collect(),
            ..Default::default()
        }
    }

    /// Adds `other` into `self` (associative, commutative).
    pub fn merge(&mut self, other: &Self) {
        self.arrived += other.arrived;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.retried += other.retried;
        self.generated_tokens += other.generated_tokens;
        self.decode_steps += other.decode_steps;
        self.failures += other.failures;
        self.spare_hits += other.spare_hits;
        self.spare_misses += other.spare_misses;
        self.downtime_us += other.downtime_us;
        self.energy_uj += other.energy_uj;
        self.idle_energy_uj += other.idle_energy_uj;
        self.live_ticks += other.live_ticks;
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
        self.routed += other.routed;
        self.routing_shed += other.routing_shed;
        self.admission_shed += other.admission_shed;
        for (a, b) in self.by_kind.iter_mut().zip(&other.by_kind) {
            *a += b;
        }
        self.partition_shed += other.partition_shed;
        self.drains += other.drains;
        self.drain_restores += other.drain_restores;
        self.repairs_dispatched += other.repairs_dispatched;
        self.repair_wait_us += other.repair_wait_us;
        self.restores += other.restores;
        self.restore_us += other.restore_us;
        self.kv_transfers += other.kv_transfers;
        self.kv_bytes_queued += other.kv_bytes_queued;
        self.kv_bytes_delivered += other.kv_bytes_delivered;
        self.kv_bytes_inflight_end += other.kv_bytes_inflight_end;
        self.kv_link_busy_us += other.kv_link_busy_us;
        self.kv_backpressure_stalls += other.kv_backpressure_stalls;
        self.phase_rebalances += other.phase_rebalances;
        self.prefill_live_ticks += other.prefill_live_ticks;
        self.decode_live_ticks += other.decode_live_ticks;
        debug_assert_eq!(self.clock_ticks.len(), other.clock_ticks.len());
        for (a, b) in self.clock_ticks.iter_mut().zip(&other.clock_ticks) {
            *a += b;
        }
        self.clock_retunes += other.clock_retunes;
        self.dvfs_dyn_uj += other.dvfs_dyn_uj;
        self.dvfs_nominal_dyn_uj += other.dvfs_nominal_dyn_uj;
        self.spill_out += other.spill_out;
        self.spill_in += other.spill_in;
        self.spilled_cohorts += other.spilled_cohorts;
        self.quota_clamped += other.quota_clamped;
        for (&k, v) in &other.spill_flow {
            *self.spill_flow.entry(k).or_insert(0) += v;
        }
        self.ttft.merge(&other.ttft);
        self.tbt.merge(&other.tbt);
        self.e2e.merge(&other.e2e);
        self.kv_delay.merge(&other.kv_delay);
        debug_assert_eq!(self.per_tenant.len(), other.per_tenant.len());
        for (a, b) in self.per_tenant.iter_mut().zip(&other.per_tenant) {
            a.merge(b);
        }
    }
}

/// A repair job finished by [`CellState::dispatch_repairs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RepairDispatch {
    /// Cell-local instance index the job belongs to.
    pub local_idx: u32,
    /// Time the assigned crew finishes the repair, µs.
    pub done_us: u64,
    /// Whether the repaired unit returns to the spare pool (a spare
    /// already replaced it) rather than restoring the instance itself.
    pub replenish: bool,
    /// Time the job waited for a free crew past its ready time, µs.
    pub wait_us: u64,
}

/// The hot-spare pool and repair-crew queue of one cell (a fixed group
/// of instances — think rack or pod). Spares are GPU-sized units, as in
/// `litegpu_cluster::failure`: a failure consumes one spare (the spare
/// replaces the failed GPU, bringing the instance back after the swap
/// delay), and the failed unit rejoins the pool once a *finite* repair
/// crew works through it. With no spare free the instance itself waits
/// on a crew, so spare starvation and repair backlog compound — the
/// interaction chaos campaigns are built to expose. This is what makes
/// Lite-GPU spare pools proportionally cheaper (§3) —
/// `FleetReport::spare_overhead` divides by total fleet GPUs.
#[derive(Debug)]
pub(crate) struct CellState {
    pub spares_free: u32,
    /// Finished-repair completion times (units en route to the pool).
    repairs: BinaryHeap<Reverse<u64>>,
    /// Each crew's next-free time; always exactly `crews` entries.
    crews: BinaryHeap<Reverse<u64>>,
    /// Repair jobs awaiting a crew: `(ready_us, seq, local_idx,
    /// replenish)`, dispatched FIFO by ready time (`seq` breaks ties
    /// deterministically in enqueue order).
    pending: BinaryHeap<Reverse<(u64, u32, u32, bool)>>,
    seq: u32,
}

impl CellState {
    pub fn new(spares: u32, crews: u32) -> Self {
        Self {
            spares_free: spares,
            repairs: BinaryHeap::new(),
            crews: (0..crews.max(1)).map(|_| Reverse(0)).collect(),
            pending: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Returns repaired units whose repair finished by `now_us` to the
    /// pool.
    pub fn reclaim_repaired(&mut self, now_us: u64) {
        while let Some(&Reverse(done)) = self.repairs.peek() {
            if done <= now_us {
                self.repairs.pop();
                self.spares_free += 1;
            } else {
                break;
            }
        }
    }

    /// Takes a spare if one is free. The failed unit's repair must be
    /// queued separately via [`CellState::enqueue_repair`] — crews, not
    /// the swap itself, bring units back.
    pub fn try_take_spare(&mut self) -> bool {
        if self.spares_free > 0 {
            self.spares_free -= 1;
            true
        } else {
            false
        }
    }

    /// Queues a repair job that becomes workable at `ready_us` (for an
    /// outage, the event's end — crews cannot enter a dark rack).
    pub fn enqueue_repair(&mut self, ready_us: u64, local_idx: u32, replenish: bool) {
        self.pending
            .push(Reverse((ready_us, self.seq, local_idx, replenish)));
        self.seq += 1;
    }

    /// Assigns every pending job that is ready by `now_us` to the
    /// earliest-available crew, FIFO by ready time. Each job starts at
    /// `max(ready, crew free)` — so a busy-crew backlog shows up as wait
    /// time — and finishes `repair_us` later. Replenish jobs feed the
    /// spare pool via [`CellState::reclaim_repaired`]; for the rest the
    /// caller must schedule the instance's own recovery at `done_us`.
    pub fn dispatch_repairs(&mut self, now_us: u64, repair_us: u64) -> Vec<RepairDispatch> {
        let mut out = Vec::new();
        while let Some(&Reverse((ready_us, _, local_idx, replenish))) = self.pending.peek() {
            if ready_us > now_us {
                break;
            }
            self.pending.pop();
            let Reverse(crew_free) = self.crews.pop().expect("crew set is never empty");
            let start_us = ready_us.max(crew_free);
            let done_us = start_us.saturating_add(repair_us);
            self.crews.push(Reverse(done_us));
            if replenish {
                self.repairs.push(Reverse(done_us));
            }
            out.push(RepairDispatch {
                local_idx,
                done_us,
                replenish,
                wait_us: start_us - ready_us,
            });
        }
        out
    }

    /// Repair jobs still waiting for a crew (telemetry gauge).
    pub fn pending_len(&self) -> u64 {
        self.pending.len() as u64
    }
}

/// One model instance's simulation state.
/// `(finish_at_step, arrival_tick, tenant, count, span)` — the min-heap
/// key for running cohorts.
type CohortKey = (u64, u32, u16, u32, u64);

#[derive(Debug)]
pub(crate) struct InstanceState {
    rng: StdRng,
    queue: VecDeque<QueueRun>,
    /// Total requests across `queue`.
    queued: u64,
    /// Running cohorts keyed by the decode step at which they finish:
    /// `(finish_at_step, arrival_tick, tenant, count, span)`. The span
    /// id rides last: it only orders cohorts whose observable fields are
    /// already equal, so adding it cannot change any report byte.
    cohorts: BinaryHeap<Reverse<CohortKey>>,
    /// Total sequences across `cohorts` (the decode batch).
    active: u32,
    /// Decoding sequences per tenant (for per-tenant token attribution).
    active_by_tenant: Vec<u32>,
    /// Monotone decode-step counter.
    steps_done: u64,
    /// Unspent serving time carried into the next tick, µs.
    carry_us: u64,
    pub up: bool,
    down_since_us: u64,
    down_until_us: u64,
    next_failure_us: u64,
    /// Global instance index (trace `tid`, high half of span ids).
    g: u32,
    /// Prefill launches so far: the low half of span ids. Incremented on
    /// every launch whether or not tracing is on, so span identity is a
    /// function of simulation state alone.
    launches: u32,
}

impl InstanceState {
    /// Builds an instance with its own RNG stream derived from
    /// `(seed, global_index)` — the derivation must not depend on the
    /// shard layout.
    pub fn new(seed: u64, global_index: u64, rates: &FailureRates, n_tenants: usize) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ global_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let next_failure_us = rates.next_interval_us(&mut rng);
        Self {
            rng,
            queue: VecDeque::new(),
            queued: 0,
            cohorts: BinaryHeap::new(),
            active: 0,
            active_by_tenant: vec![0; n_tenants],
            steps_done: 0,
            carry_us: 0,
            up: true,
            down_since_us: 0,
            down_until_us: 0,
            next_failure_us,
            g: global_index as u32,
            launches: 0,
        }
    }

    /// Global instance index (the trace `tid`).
    pub fn global_index(&self) -> u32 {
        self.g
    }

    /// Adds this instance's queued request counts into `out` (one slot
    /// per tenant). The telemetry series samples per-tenant queue depth
    /// through this — the queue itself stays module-private.
    pub fn queued_by_tenant(&self, out: &mut [u64]) {
        for run in &self.queue {
            out[run.tenant as usize] += run.count as u64;
        }
    }

    /// Failure/repair lifecycle for the tick starting at `tick_start_us`.
    /// `local_idx` is the instance's cell-local index (the handle crew
    /// dispatches use to schedule its recovery).
    pub fn lifecycle(
        &mut self,
        local_idx: u32,
        tick_start_us: u64,
        tick_us: u64,
        rates: &FailureRates,
        cell: &mut CellState,
        acc: &mut ShardTotals,
    ) {
        if !self.up {
            if tick_start_us >= self.down_until_us {
                // Recovered: account downtime, restart the failure clock.
                acc.downtime_us += self.down_until_us - self.down_since_us;
                acc.restores += 1;
                acc.restore_us += self.down_until_us - self.down_since_us;
                self.up = true;
                self.next_failure_us = self
                    .down_until_us
                    .saturating_add(rates.next_interval_us(&mut self.rng));
            }
            return;
        }
        let tick_end_us = tick_start_us + tick_us;
        if self.next_failure_us >= tick_end_us {
            return;
        }
        // The instance fails this tick. The whole instance goes down —
        // the paper's instance-wide blast radius — and its KV caches die
        // with it: running cohorts requeue for a fresh prefill. With a
        // spare free the instance returns after the swap delay and the
        // failed unit joins the crew queue as pool replenishment; with
        // none, the instance itself waits for a repair crew (recovery
        // time is set when a crew picks the job up).
        let fail_at = self.next_failure_us.max(tick_start_us);
        acc.failures += 1;
        acc.by_kind[0] += 1; // DomainKind::Independent.
        if cell.try_take_spare() {
            acc.spare_hits += 1;
            self.force_down(fail_at, fail_at.saturating_add(rates.swap_us.max(1)), acc);
            cell.enqueue_repair(fail_at, local_idx, true);
        } else {
            acc.spare_misses += 1;
            self.force_down(fail_at, u64::MAX, acc);
            cell.enqueue_repair(fail_at, local_idx, false);
        }
    }

    /// Takes the instance down at `fail_at` until `down_until_us`
    /// (`u64::MAX` = until a crew dispatch schedules recovery), flushing
    /// running cohorts back to the queue as retries.
    pub fn force_down(&mut self, fail_at: u64, down_until_us: u64, acc: &mut ShardTotals) {
        self.up = false;
        self.down_since_us = fail_at;
        self.down_until_us = down_until_us;
        self.carry_us = 0;
        let mut flushed = 0u64;
        // Keep the original arrival tick (and tenant) so end-to-end
        // latency still measures from arrival; `retry` only suppresses
        // re-recording TTFT (the first token was already delivered once).
        for Reverse((_, arrival_tick, tenant, count, _span)) in self.cohorts.drain() {
            flushed += count as u64;
            self.queue.push_back(QueueRun {
                arrival_tick,
                count,
                tenant,
                retry: true,
            });
        }
        self.queued += flushed;
        acc.retried += flushed;
        self.active = 0;
        self.active_by_tenant.fill(0);
    }

    /// Sets the recovery time of a downed instance whose repair a crew
    /// just picked up (the spare-miss path leaves it at `u64::MAX`).
    pub fn schedule_recovery(&mut self, done_us: u64) {
        self.down_until_us = done_us;
    }

    /// Admits up to `n` routed requests of `tenant` against the queue
    /// cap, shedding the rest. Returns the admitted count. Does **not**
    /// count `arrived` — the cell-level router owns that.
    pub fn push_arrivals(
        &mut self,
        tick: u32,
        n: u64,
        tenant: u16,
        knobs: &ServeKnobs,
        acc: &mut ShardTotals,
    ) -> u64 {
        let room = (knobs.max_queue as u64).saturating_sub(self.queued);
        let admitted = n.min(room);
        acc.rejected += n - admitted;
        acc.per_tenant[tenant as usize].rejected += n - admitted;
        if admitted > 0 {
            self.queue.push_back(QueueRun {
                arrival_tick: tick,
                count: admitted as u32,
                tenant,
                retry: false,
            });
            self.queued += admitted;
        }
        admitted
    }

    /// Requests waiting in the queue.
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Sequences currently decoding.
    pub fn active(&self) -> u32 {
        self.active
    }

    /// Absolute time of the next scheduled failure, µs (`u64::MAX` when
    /// failures are disabled). The event engine schedules the failure
    /// wakeup from this instead of polling `lifecycle` every tick.
    pub(crate) fn next_failure_at_us(&self) -> u64 {
        self.next_failure_us
    }

    /// Scheduled recovery time while down, µs (`u64::MAX` while waiting
    /// on a repair crew). Drives the event engine's recovery wakeup.
    pub(crate) fn down_until_at_us(&self) -> u64 {
        self.down_until_us
    }

    /// Whether the instance holds no work (parkable).
    pub fn is_idle(&self) -> bool {
        self.queued == 0 && self.active == 0
    }

    /// Serves one tick according to the instance's phase role, spending
    /// `tick_us` plus any carried budget — with every step priced at the
    /// instance's current DVFS operating point `clock` (an index into the
    /// table's clock grid; down-clocked steps take longer, which is
    /// exactly how the energy-vs-latency trade reaches TTFT/TBT).
    /// Returns `(spent, nominal_spent)`, µs: the serving time actually
    /// spent this tick (what dynamic energy accounting bills at the
    /// operating point's power) and the time the same served work would
    /// have taken at the nominal clock (the counterfactual the
    /// energy-saved accounting is measured against).
    ///
    /// - [`Phase::Mixed`] interleaves prefill (prioritized) and decode,
    ///   as a conventional continuous-batching server does; the tick's
    ///   prefill time stretches the first following decode step's token
    ///   gap (prefill interference — the Splitwise p99-TBT motivation).
    /// - [`Phase::Prefill`] runs prefill only and hands each completed
    ///   cohort to the cell's KV link (`kv` must be `Some`); a backlogged
    ///   link back-pressures the launch loop.
    /// - [`Phase::Decode`] runs pure decode steps over cohorts delivered
    ///   via [`InstanceState::admit_decode_cohort`], with no prefill
    ///   interference ever.
    #[allow(clippy::too_many_arguments)]
    pub fn serve(
        &mut self,
        tick: u32,
        lut: &StepCostTable,
        knobs: &ServeKnobs,
        phase: Phase,
        clock: u8,
        mut kv: Option<&mut KvLinkState>,
        mut trace: Option<&mut TraceSink<'_>>,
        acc: &mut ShardTotals,
    ) -> (u64, u64) {
        if !self.up {
            return (0, 0);
        }
        if self.queued == 0 && self.active == 0 {
            self.carry_us = 0;
            return (0, 0);
        }
        let ci = clock as usize;
        let nom = lut.nominal_clock_idx();
        let budget0 = knobs.tick_us + self.carry_us;
        let mut budget = budget0;
        let mut nominal_spent = 0u64;
        let t_start_us = tick as u64 * knobs.tick_us;
        let mut kv_stalled = false;

        // Prefill first, as the small simulator does. One launch serves
        // one tenant (so it prices that tenant's prompts and samples its
        // output-length distribution) but batches across *adjacent*
        // same-tenant queue runs — without that, low-rate traffic whose
        // per-tick runs are 1-2 requests would never amortize a prefill
        // launch the way the engine's capacity estimate assumes.
        let mut prefill_spent = 0u64;
        let mut ttft_scratch: Vec<(u64, u64)> = Vec::new();
        while phase != Phase::Decode
            && self.queued > 0
            && (phase == Phase::Prefill || self.active < lut.max_batch)
        {
            // A saturated KV link back-pressures the prefill pool: the
            // prompts stay queued, their wait grows, and the eventual
            // TTFT absorbs it. Stalled time is wasted, not banked.
            if let Some(link) = kv.as_deref_mut() {
                if link.backlogged(t_start_us) {
                    acc.kv_backpressure_stalls += 1;
                    kv_stalled = true;
                    break;
                }
            }
            let tenant = self.queue.front().expect("queued > 0 implies a run").tenant;
            let tk = knobs.tenants[tenant as usize];
            // Admission is bounded by the table's prefill capacity too:
            // charging a larger batch at a clamped (smaller-batch) price
            // would undercount prefill time. A dedicated prefill instance
            // holds no decode batch, so only the launch caps apply.
            let cap = if phase == Phase::Mixed {
                knobs
                    .max_prefill_batch
                    .min(lut.max_batch - self.active)
                    .min(lut.max_prefill_batch)
            } else {
                // A dedicated prefill instance holds no decode batch, but
                // its cohorts must still fit a decode instance's batch
                // limit — a larger cohort could never be delivered and
                // would wedge the cell's KV FIFO behind it forever.
                knobs
                    .max_prefill_batch
                    .min(lut.max_prefill_batch)
                    .min(lut.max_batch)
            };
            let mut b = 0u32;
            for run in &self.queue {
                if run.tenant != tenant || b >= cap {
                    break;
                }
                b += run.count.min(cap - b);
            }
            let cost = tk.prefill_cost_us(lut.prefill_us_at(ci, b));
            if budget < cost {
                break;
            }
            budget -= cost;
            prefill_spent += cost;
            nominal_spent += if ci == nom {
                cost
            } else {
                tk.prefill_cost_us(lut.prefill_us(b))
            };
            // Pop b across the runs, recording TTFT per non-retry run
            // (each run keeps its own queueing delay); the cohort's e2e
            // clock starts at the oldest popped run's arrival. Under
            // phase-split, TTFT is deferred to the KV-link hand-off so
            // the transfer delay lands in it.
            ttft_scratch.clear();
            let mut oldest = tick;
            let mut remaining = b;
            while remaining > 0 {
                let front = self.queue.front_mut().expect("b covers queued");
                let take = front.count.min(remaining);
                oldest = oldest.min(front.arrival_tick);
                if !front.retry {
                    let wait_us = (tick as u64 - front.arrival_tick as u64) * knobs.tick_us + cost;
                    if phase == Phase::Mixed {
                        acc.ttft.record(wait_us, take as u64);
                        let tt = &mut acc.per_tenant[tenant as usize];
                        tt.ttft.record(wait_us, take as u64);
                        tt.ttft_recorded += take as u64;
                        if wait_us <= tk.ttft_slo_us {
                            tt.ttft_slo_ok += take as u64;
                        }
                    } else {
                        ttft_scratch.push((wait_us, take as u64));
                    }
                }
                front.count -= take;
                remaining -= take;
                self.queued -= take as u64;
                if front.count == 0 {
                    self.queue.pop_front();
                }
            }
            let out_len = tk.output_len.sample(&mut self.rng) as u64;
            // Span identity is pure simulation state: every launch gets
            // `(global index << 32) | launch counter` whether or not a
            // trace sink is attached (so traced and untraced runs step
            // through identical states).
            let span = ((self.g as u64) << 32) | self.launches as u64;
            self.launches = self.launches.wrapping_add(1);
            if let Some(ts) = trace.as_deref_mut() {
                if ts.sampler.sampled(span) {
                    let queued_since_us = oldest as u64 * knobs.tick_us;
                    ts.buf.push(TraceEvent::complete(
                        "req",
                        "queue",
                        queued_since_us,
                        t_start_us - queued_since_us,
                        ts.cell,
                        self.g,
                        tenant as u64,
                    ));
                    ts.buf.push(TraceEvent::complete(
                        "req", "prefill", t_start_us, cost, ts.cell, self.g, b as u64,
                    ));
                    if phase == Phase::Mixed {
                        ts.buf.push(TraceEvent::async_begin(
                            "req",
                            "decode",
                            t_start_us + cost,
                            ts.cell,
                            self.g,
                            span,
                            b as u64,
                        ));
                    } else {
                        ts.buf.push(TraceEvent::async_begin(
                            "req",
                            "kv_transfer",
                            t_start_us,
                            ts.cell,
                            self.g,
                            span,
                            tk.kv_bytes_per_req * b as u64,
                        ));
                    }
                }
            }
            if phase == Phase::Mixed {
                self.cohorts.push(Reverse((
                    self.steps_done + out_len,
                    oldest,
                    tenant,
                    b,
                    span,
                )));
                self.active += b;
                self.active_by_tenant[tenant as usize] += b;
            } else {
                let link = kv
                    .as_deref_mut()
                    .expect("prefill-phase instances always have a cell KV link");
                // Hand-offs enter the link at tick-start resolution: the
                // link's backlog then measures genuine transfer queueing
                // only, never the instance's own within-tick serving
                // progression (which would spuriously trip back-pressure
                // on an idle link).
                link.enqueue(
                    t_start_us,
                    tenant,
                    b,
                    out_len,
                    oldest,
                    tk.kv_bytes_per_req * b as u64,
                    span,
                    &ttft_scratch,
                    acc,
                );
            }
        }

        // Decode: run whole steps until the budget or the batch runs out,
        // popping cohorts as they finish so the batch (and so the step
        // time) stays current. Step time is shared by the whole batch;
        // token attribution and TBT-SLO accounting are per tenant. On a
        // Mixed instance the tick's prefill launches sat between decode
        // steps, so the first step's token gap stretches by the prefill
        // time; dedicated decode instances never pay that.
        let mut stall_us = prefill_spent;
        while phase != Phase::Prefill && self.active > 0 {
            let d = lut.decode_step_us_at(ci, self.active);
            let affordable = budget / d;
            if affordable == 0 {
                break;
            }
            let next_finish = self
                .cohorts
                .peek()
                .map(|Reverse((f, _, _, _, _))| *f)
                .expect("active > 0 implies cohorts");
            let run = affordable.min(next_finish - self.steps_done).max(1);
            self.steps_done += run;
            budget -= run * d;
            nominal_spent += run
                * if ci == nom {
                    d
                } else {
                    lut.decode_step_us(self.active)
                };
            acc.generated_tokens += run * self.active as u64;
            acc.decode_steps += run;
            if stall_us > 0 {
                acc.tbt.record(d + stall_us, 1);
                if run > 1 {
                    acc.tbt.record(d, run - 1);
                }
            } else {
                acc.tbt.record(d, run);
            }
            for (t, &a) in self.active_by_tenant.iter().enumerate() {
                if a == 0 {
                    continue;
                }
                let tokens = run * a as u64;
                let tt = &mut acc.per_tenant[t];
                tt.generated_tokens += tokens;
                let slo = knobs.tenants[t].tbt_slo_us;
                // The first step of the tick carries the prefill stall.
                let stalled_tokens = if stall_us > 0 { a as u64 } else { 0 };
                if d + stall_us <= slo {
                    tt.tbt_slo_ok_tokens += stalled_tokens;
                }
                if d <= slo {
                    tt.tbt_slo_ok_tokens += tokens - stalled_tokens;
                }
            }
            stall_us = 0;
            while let Some(&Reverse((finish, arrival_tick, tenant, count, span))) =
                self.cohorts.peek()
            {
                if finish > self.steps_done {
                    break;
                }
                self.cohorts.pop();
                self.active -= count;
                self.active_by_tenant[tenant as usize] -= count;
                acc.completed += count as u64;
                let e2e_us = (tick as u64 + 1)
                    .saturating_sub(arrival_tick as u64)
                    .saturating_mul(knobs.tick_us);
                acc.e2e.record(e2e_us, count as u64);
                let tt = &mut acc.per_tenant[tenant as usize];
                tt.completed += count as u64;
                tt.e2e.record(e2e_us, count as u64);
                if let Some(ts) = trace.as_deref_mut() {
                    if ts.sampler.sampled(span) {
                        ts.buf.push(TraceEvent::async_end(
                            "req",
                            "decode",
                            (tick as u64 + 1) * knobs.tick_us,
                            ts.cell,
                            self.g,
                            span,
                            count as u64,
                        ));
                    }
                }
            }
        }
        self.carry_us = if (self.queued == 0 && self.active == 0) || kv_stalled {
            0
        } else {
            budget
        };
        (budget0 - budget, nominal_spent)
    }

    /// Admits a transferred cohort into this (decode-phase) instance's
    /// running batch. The caller checked batch capacity.
    pub fn admit_decode_cohort(&mut self, t: &KvTransfer) {
        self.cohorts.push(Reverse((
            self.steps_done + t.out_len,
            t.oldest_arrival_tick,
            t.tenant,
            t.count,
            t.span,
        )));
        self.active += t.count;
        self.active_by_tenant[t.tenant as usize] += t.count;
    }

    /// Removes and returns every queued run. The phase-split engine uses
    /// this to re-route a failed decode instance's requeued work to the
    /// prefill pool, where it can actually re-prefill.
    pub fn take_queued_runs(&mut self) -> VecDeque<QueueRun> {
        self.queued = 0;
        core::mem::take(&mut self.queue)
    }

    /// Appends runs directly (failure re-route path: these requests were
    /// already admitted once, so the queue cap does not re-apply).
    pub fn accept_requeued_runs(&mut self, runs: impl IntoIterator<Item = QueueRun>) {
        for r in runs {
            self.queued += r.count as u64;
            self.queue.push_back(r);
        }
    }

    /// Downtime not yet accounted at the end of the run (instance still
    /// down at `horizon_us`).
    pub fn pending_downtime_us(&self, horizon_us: u64) -> u64 {
        if self.up {
            0
        } else {
            horizon_us.saturating_sub(self.down_since_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::poisson;

    fn knobs() -> ServeKnobs {
        ServeKnobs {
            tick_us: 1_000_000,
            max_prefill_batch: 4,
            max_queue: 10_000,
            tenants: vec![TenantKnobs {
                ttft_slo_us: 1_000_000,
                tbt_slo_us: 50_000,
                output_len: LengthDist::geometric(100),
                prefill_num: 1,
                prefill_den: 1,
                kv_bytes_per_req: 1_000_000,
            }],
        }
    }

    fn lut() -> StepCostTable {
        StepCostTable::build(
            &litegpu_specs::catalog::h100(),
            &litegpu_workload::models::llama3_70b(),
            2,
            &litegpu_roofline::EngineParams::paper_defaults(),
        )
        .unwrap()
    }

    fn no_failures() -> FailureRates {
        FailureRates {
            mean_interval_us: 0.0,
            swap_us: 1,
            repair_us: 1,
        }
    }

    /// Draws Poisson arrivals from the instance's own RNG and pushes
    /// them, the way pre-router tests drove instances directly.
    fn poisson_arrivals(
        inst: &mut InstanceState,
        tick: u32,
        lambda: f64,
        knobs: &ServeKnobs,
        acc: &mut ShardTotals,
    ) {
        let n = poisson(&mut inst.rng, lambda);
        if n == 0 {
            return;
        }
        acc.arrived += n;
        acc.per_tenant[0].arrived += n;
        inst.push_arrivals(tick, n, 0, knobs, acc);
    }

    #[test]
    fn requests_flow_to_completion() {
        let lut = lut();
        let knobs = knobs();
        let mut acc = ShardTotals::new(1, 1);
        let mut inst = InstanceState::new(1, 0, &no_failures(), 1);
        for tick in 0..120u32 {
            poisson_arrivals(&mut inst, tick, 2.0, &knobs, &mut acc);
            inst.serve(tick, &lut, &knobs, Phase::Mixed, 0, None, None, &mut acc);
        }
        assert!(acc.arrived > 150, "arrived = {}", acc.arrived);
        assert!(acc.completed > 0, "completed = {}", acc.completed);
        assert!(acc.generated_tokens > acc.completed);
        assert_eq!(acc.rejected, 0);
        assert!(!acc.ttft.is_empty() && !acc.tbt.is_empty());
        // The single tenant owns everything the fleet served.
        let t = &acc.per_tenant[0];
        assert_eq!(t.completed, acc.completed);
        assert_eq!(t.generated_tokens, acc.generated_tokens);
        assert!(t.ttft_recorded >= t.completed);
        assert_eq!(t.ttft.total(), acc.ttft.total());
    }

    #[test]
    fn queue_cap_sheds_load() {
        let lut = lut();
        let mut knobs = knobs();
        knobs.max_queue = 5;
        let mut acc = ShardTotals::new(1, 1);
        let mut inst = InstanceState::new(2, 0, &no_failures(), 1);
        // Down instance: arrivals accumulate, nothing serves.
        inst.up = false;
        inst.down_until_us = u64::MAX;
        for tick in 0..50u32 {
            poisson_arrivals(&mut inst, tick, 5.0, &knobs, &mut acc);
            inst.serve(tick, &lut, &knobs, Phase::Mixed, 0, None, None, &mut acc);
        }
        assert!(acc.rejected > 0);
        assert_eq!(acc.per_tenant[0].rejected, acc.rejected);
        assert!(inst.queued <= 5);
    }

    #[test]
    fn tenants_keep_separate_books() {
        // Two tenants with different SLOs and output means sharing one
        // instance: arrivals, tokens and SLO accounting stay separated,
        // and fleet totals equal the tenant sums.
        let lut = lut();
        let knobs = ServeKnobs {
            tick_us: 1_000_000,
            max_prefill_batch: 4,
            max_queue: 10_000,
            tenants: vec![
                TenantKnobs {
                    ttft_slo_us: 1_000_000,
                    tbt_slo_us: 50_000,
                    output_len: LengthDist::geometric(50),
                    prefill_num: 1,
                    prefill_den: 1,
                    kv_bytes_per_req: 1_000_000,
                },
                TenantKnobs {
                    ttft_slo_us: 30_000_000,
                    tbt_slo_us: 200_000,
                    output_len: LengthDist::geometric(400),
                    prefill_num: 2,
                    prefill_den: 1,
                    kv_bytes_per_req: 2_000_000,
                },
            ],
        };
        let mut acc = ShardTotals::new(2, 1);
        let mut inst = InstanceState::new(3, 0, &no_failures(), 2);
        for tick in 0..200u32 {
            for tenant in 0..2u16 {
                acc.arrived += 1;
                acc.per_tenant[tenant as usize].arrived += 1;
                inst.push_arrivals(tick, 1, tenant, &knobs, &mut acc);
            }
            inst.serve(tick, &lut, &knobs, Phase::Mixed, 0, None, None, &mut acc);
        }
        let (a, b) = (&acc.per_tenant[0], &acc.per_tenant[1]);
        assert!(a.completed > 0 && b.completed > 0);
        assert_eq!(a.completed + b.completed, acc.completed);
        assert_eq!(
            a.generated_tokens + b.generated_tokens,
            acc.generated_tokens
        );
        // Tenant 1's outputs are ~8x longer on the same completion rate.
        assert!(b.generated_tokens > 2 * a.generated_tokens);
        // SLO books are per tenant.
        assert!(a.ttft_recorded > 0 && b.ttft_recorded > 0);
        assert!(a.ttft_slo_ok <= a.ttft_recorded);
        assert!(b.tbt_slo_ok_tokens <= b.generated_tokens);
    }

    #[test]
    fn prefill_batches_across_adjacent_same_tenant_runs() {
        // Two 1-request runs of the same tenant (e.g. arrivals from two
        // ticks) must share one prefill launch: with a budget of exactly
        // prefill_us(2), both prefill this tick. Unmerged launches would
        // cost 2·prefill_us(1) > prefill_us(2) (per-launch overhead) and
        // strand the second request.
        let lut = lut();
        let mut knobs = knobs();
        assert!(
            2 * lut.prefill_us(1) > lut.prefill_us(2),
            "precondition: launches carry overhead"
        );
        knobs.tenants[0].output_len = LengthDist::geometric(5000);
        knobs.tick_us = lut.prefill_us(2);
        let mut acc = ShardTotals::new(1, 1);
        let mut inst = InstanceState::new(8, 0, &no_failures(), 1);
        inst.push_arrivals(0, 1, 0, &knobs, &mut acc);
        inst.push_arrivals(0, 1, 0, &knobs, &mut acc);
        inst.serve(0, &lut, &knobs, Phase::Mixed, 0, None, None, &mut acc);
        assert_eq!(inst.active(), 2, "both runs must prefill in one launch");
        assert_eq!(acc.per_tenant[0].ttft_recorded, 2);

        // A different-tenant run in between is a batching boundary: the
        // same budget only covers the first tenant's launch.
        let knobs2 = ServeKnobs {
            tenants: vec![knobs.tenants[0]; 2],
            ..knobs.clone()
        };
        let mut acc = ShardTotals::new(2, 1);
        let mut inst = InstanceState::new(8, 0, &no_failures(), 2);
        inst.push_arrivals(0, 1, 0, &knobs2, &mut acc);
        inst.push_arrivals(0, 1, 1, &knobs2, &mut acc);
        inst.serve(0, &lut, &knobs2, Phase::Mixed, 0, None, None, &mut acc);
        assert_eq!(inst.active(), 1, "tenant boundary splits the launch");
        assert_eq!(inst.queued(), 1);
    }

    #[test]
    fn prefill_cost_scales_with_tenant_prompt_length() {
        let tk = TenantKnobs {
            ttft_slo_us: 1,
            tbt_slo_us: 1,
            output_len: LengthDist::geometric(10),
            prefill_num: 3,
            prefill_den: 2,
            kv_bytes_per_req: 1_000_000,
        };
        assert_eq!(tk.prefill_cost_us(1000), 1500);
        let same = TenantKnobs {
            prefill_num: 7,
            prefill_den: 7,
            ..tk
        };
        assert_eq!(same.prefill_cost_us(1000), 1000);
        // Floors at 1 µs.
        let tiny = TenantKnobs {
            prefill_num: 1,
            prefill_den: 1000,
            ..tk
        };
        assert_eq!(tiny.prefill_cost_us(10), 1);
    }

    #[test]
    fn spare_pool_accounting_hits_then_misses_then_reclaims() {
        let mut cell = CellState::new(1, 1);
        // First failure takes the only spare; the dead unit joins the
        // crew queue as pool replenishment.
        assert!(cell.try_take_spare());
        cell.enqueue_repair(1_000, 0, true);
        assert_eq!(cell.spares_free, 0);
        // Second failure while the unit repairs: miss.
        assert!(!cell.try_take_spare());
        // A crew picks the job up at the next dispatch.
        let jobs = cell.dispatch_repairs(2_000, 500_000);
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].replenish);
        assert_eq!(jobs[0].done_us, 501_000);
        // Before the repair completes nothing returns.
        cell.reclaim_repaired(400_000);
        assert_eq!(cell.spares_free, 0);
        // After repair the unit is a spare again.
        cell.reclaim_repaired(501_000);
        assert_eq!(cell.spares_free, 1);
        assert!(cell.try_take_spare());
    }

    #[test]
    fn finite_crews_serialize_repairs_fifo_by_ready_time() {
        // One crew, two jobs: the later-ready job (even if enqueued
        // first) waits for the crew to finish the earlier-ready one.
        let mut cell = CellState::new(0, 1);
        cell.enqueue_repair(5_000, 1, false);
        cell.enqueue_repair(1_000, 0, false);
        let jobs = cell.dispatch_repairs(10_000, 100_000);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].local_idx, 0);
        assert_eq!(jobs[0].done_us, 101_000);
        assert_eq!(jobs[0].wait_us, 0);
        // Job 1 was ready at 5 000 but the crew frees at 101 000.
        assert_eq!(jobs[1].local_idx, 1);
        assert_eq!(jobs[1].wait_us, 96_000);
        assert_eq!(jobs[1].done_us, 201_000);
        // Jobs not yet ready stay queued.
        cell.enqueue_repair(999_000, 2, false);
        assert!(cell.dispatch_repairs(500_000, 100_000).is_empty());
        // With two crews the same two jobs run in parallel.
        let mut wide = CellState::new(0, 2);
        wide.enqueue_repair(5_000, 1, false);
        wide.enqueue_repair(1_000, 0, false);
        let jobs = wide.dispatch_repairs(10_000, 100_000);
        assert_eq!(jobs[0].done_us, 101_000);
        assert_eq!(jobs[1].done_us, 105_000);
        assert_eq!(jobs[1].wait_us, 0);
    }

    #[test]
    fn failure_uses_spare_and_requeues_running_work() {
        let lut = lut();
        let knobs = knobs();
        let rates = FailureRates {
            mean_interval_us: 1.0, // Fail essentially immediately.
            swap_us: 1_500_000,    // 1.5 ticks.
            repair_us: 3_600_000_000,
        };
        let mut acc = ShardTotals::new(1, 1);
        let mut cell = CellState::new(1, 1);
        let mut inst = InstanceState::new(3, 0, &rates, 1);
        // Long outputs so the cohorts are still decoding when the
        // failure fires.
        let mut knobs = knobs;
        knobs.tenants[0].output_len = LengthDist::geometric(5000);
        // Get some work running before any failure fires.
        inst.next_failure_us = u64::MAX;
        acc.arrived += 8;
        acc.per_tenant[0].arrived += 8;
        inst.push_arrivals(0, 8, 0, &knobs, &mut acc);
        inst.serve(0, &lut, &knobs, Phase::Mixed, 0, None, None, &mut acc);
        assert!(inst.active > 0);
        let active_before = inst.active as u64;
        // Force the failure into tick 1.
        inst.next_failure_us = 1_200_000;
        inst.lifecycle(0, 1_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert_eq!(acc.failures, 1);
        assert_eq!(acc.by_kind[0], 1, "an independent (AFR) failure");
        assert_eq!(acc.spare_hits, 1);
        assert_eq!(acc.spare_misses, 0);
        assert_eq!(cell.spares_free, 0);
        assert!(!inst.up);
        assert_eq!(inst.active, 0);
        assert_eq!(inst.active_by_tenant[0], 0);
        assert_eq!(acc.retried, active_before);
        assert_eq!(inst.queued, active_before);
        // Swap delay: down for 1.5 ticks, up again at tick 3.
        inst.lifecycle(0, 2_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(!inst.up);
        inst.lifecycle(0, 3_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(inst.up);
        assert_eq!(acc.downtime_us, 1_500_000);
        assert_eq!(acc.restores, 1);
        assert_eq!(acc.restore_us, 1_500_000);
    }

    #[test]
    fn without_spares_a_crew_repair_dominates_downtime() {
        let rates = FailureRates {
            mean_interval_us: 1.0,
            swap_us: 1_000_000,
            repair_us: 10_000_000,
        };
        let mut acc = ShardTotals::new(1, 1);
        let mut cell = CellState::new(0, 1);
        let mut inst = InstanceState::new(4, 0, &rates, 1);
        inst.next_failure_us = 500_000;
        inst.lifecycle(0, 0, 1_000_000, &rates, &mut cell, &mut acc);
        assert_eq!(acc.spare_misses, 1);
        assert!(!inst.up);
        // No recovery time exists until a crew picks the job up.
        assert_eq!(inst.pending_downtime_us(10_000_000), 9_500_000);
        let jobs = cell.dispatch_repairs(1_000_000, rates.repair_us);
        assert_eq!(jobs.len(), 1);
        assert!(!jobs[0].replenish);
        assert_eq!(jobs[0].done_us, 10_500_000, "repair ran from fail time");
        inst.schedule_recovery(jobs[0].done_us);
        // Still down until the crew finishes at 10.5 s.
        inst.lifecycle(0, 10_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(!inst.up);
        inst.lifecycle(0, 11_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(inst.up);
        assert_eq!(acc.downtime_us, 10_000_000);
    }

    #[test]
    fn kv_link_prices_queues_and_backpressures() {
        // 1 MB/s link: a 1 MB transfer takes exactly 1 s of link time.
        let mut link = KvLinkState::new(1_000_000, 1_500_000);
        let mut acc = ShardTotals::new(1, 1);
        let tk = knobs().tenants[0];
        link.enqueue(0, 0, 1, 100, 0, 1_000_000, 0, &[(200_000, 1)], &mut acc);
        assert_eq!(acc.kv_transfers, 1);
        assert_eq!(acc.kv_bytes_queued, 1_000_000);
        assert_eq!(acc.kv_link_busy_us, 1_000_000);
        // TTFT is deferred to delivery (so decode-pool head-of-line
        // waits land in it too).
        assert_eq!(acc.per_tenant[0].ttft_recorded, 0);
        // Second transfer queues behind the first: delay 2 s.
        link.enqueue(0, 0, 1, 100, 0, 1_000_000, 0, &[], &mut acc);
        assert_eq!(link.backlog_us(0), 2_000_000);
        assert!(link.backlogged(0), "2 s backlog > 1.5 s threshold");
        assert!(!link.backlogged(1_000_000));
        // Nothing lands before its completion time; FIFO after.
        assert!(link.peek_landed(999_999).is_none());
        assert!(link.peek_landed(1_000_000).is_some());
        assert_eq!(link.inflight_bytes(), 2_000_000);
        let first = link.pop().unwrap();
        assert_eq!(first.complete_us, 1_000_000);
        assert_eq!(link.inflight_bytes(), 1_000_000);
        // Delivery one tick after landing: TTFT = queue+prefill wait
        // (0.2 s) + hand-off delay (2 s incl. the decode-room wait).
        KvLinkState::record_delivery(&first, 2_000_000, &tk, &mut acc);
        assert_eq!(acc.kv_bytes_delivered, 1_000_000);
        assert_eq!(acc.per_tenant[0].ttft_recorded, 1);
        assert_eq!(acc.per_tenant[0].ttft_slo_ok, 0, "2.2 s misses the 1 s SLO");
    }

    #[test]
    fn prefill_phase_hands_off_instead_of_decoding() {
        let lut = lut();
        let knobs = knobs();
        let mut acc = ShardTotals::new(1, 1);
        let mut link = KvLinkState::new(1_000_000_000_000, 1_000_000);
        let mut inst = InstanceState::new(5, 0, &no_failures(), 1);
        acc.arrived += 4;
        acc.per_tenant[0].arrived += 4;
        inst.push_arrivals(0, 4, 0, &knobs, &mut acc);
        let (spent, nominal_spent) = inst.serve(
            0,
            &lut,
            &knobs,
            Phase::Prefill,
            0,
            Some(&mut link),
            None,
            &mut acc,
        );
        assert!(spent > 0);
        // A nominal-only table prices both worlds identically.
        assert_eq!(spent, nominal_spent);
        // The cohort left for the link: nothing decodes locally...
        assert_eq!(inst.active(), 0);
        assert_eq!(acc.kv_transfers, 1);
        assert_eq!(acc.kv_bytes_queued, 4_000_000, "4 requests × 1 MB");
        // ...TTFT is deferred to delivery (transfer + decode-room
        // waits must land in it)...
        assert_eq!(acc.per_tenant[0].ttft_recorded, 0);
        assert_eq!(link.pop().unwrap().ttfts.len(), 1, "one non-retry run");
        // ...and no tokens were generated by the prefill instance.
        assert_eq!(acc.generated_tokens, 0);
    }

    #[test]
    fn decode_phase_admits_cohorts_and_never_prefills() {
        let lut = lut();
        let knobs = knobs();
        let mut acc = ShardTotals::new(1, 1);
        let mut inst = InstanceState::new(6, 0, &no_failures(), 1);
        // Queued prompts on a decode instance must not prefill.
        inst.push_arrivals(0, 2, 0, &knobs, &mut acc);
        inst.serve(0, &lut, &knobs, Phase::Decode, 0, None, None, &mut acc);
        assert_eq!(inst.active(), 0);
        assert_eq!(inst.queued(), 2);
        // Delivered cohorts decode to completion.
        inst.admit_decode_cohort(&KvTransfer {
            complete_us: 0,
            ready_us: 0,
            tenant: 0,
            count: 3,
            out_len: 10,
            oldest_arrival_tick: 0,
            bytes: 3_000_000,
            span: 0,
            ttfts: Vec::new(),
        });
        assert_eq!(inst.active(), 3);
        inst.serve(1, &lut, &knobs, Phase::Decode, 0, None, None, &mut acc);
        assert_eq!(acc.completed, 3);
        assert_eq!(acc.generated_tokens, 30);
        assert_eq!(acc.per_tenant[0].completed, 3);
    }

    #[test]
    fn requeued_runs_move_between_instances_without_recounting() {
        let lut = lut();
        let knobs = knobs();
        let mut acc = ShardTotals::new(1, 1);
        let mut decode = InstanceState::new(7, 0, &no_failures(), 1);
        let mut prefill = InstanceState::new(7, 1, &no_failures(), 1);
        // Failure-requeued runs sit on the decode instance's queue.
        acc.arrived += 5;
        acc.per_tenant[0].arrived += 5;
        decode.push_arrivals(3, 5, 0, &knobs, &mut acc);
        let routed_before = acc.routed;
        let runs = decode.take_queued_runs();
        assert_eq!(decode.queued(), 0);
        prefill.accept_requeued_runs(runs);
        assert_eq!(prefill.queued(), 5);
        // The move is pure plumbing: no routing counters change.
        assert_eq!(acc.routed, routed_before);
        // And the work still serves (e2e clock kept the arrival tick).
        prefill.serve(4, &lut, &knobs, Phase::Mixed, 0, None, None, &mut acc);
        assert!(prefill.active() > 0);
    }

    #[test]
    fn monolithic_prefill_stretches_first_decode_gap() {
        // A Mixed instance that prefills and decodes in one tick must
        // record one stretched token gap (prefill interference); a
        // Decode instance running the same batch must not.
        let lut = lut();
        let mut knobs = knobs();
        knobs.tick_us = 2_000_000;
        let mut acc = ShardTotals::new(1, 1);
        let mut inst = InstanceState::new(8, 0, &no_failures(), 1);
        // Seed a running batch, then add fresh prompts.
        inst.admit_decode_cohort(&KvTransfer {
            complete_us: 0,
            ready_us: 0,
            tenant: 0,
            count: 8,
            out_len: 1_000,
            oldest_arrival_tick: 0,
            bytes: 0,
            span: 0,
            ttfts: Vec::new(),
        });
        inst.push_arrivals(0, 4, 0, &knobs, &mut acc);
        inst.serve(0, &lut, &knobs, Phase::Mixed, 0, None, None, &mut acc);
        let prefill_cost = lut.prefill_us(4);
        let d = lut.decode_step_us(12);
        // The TBT histogram saw at least one sample ≥ prefill + step.
        assert!(acc.tbt.percentile_us(100.0) >= prefill_cost + d - d / 8);
        assert!(acc.decode_steps > 0);
    }

    #[test]
    fn totals_merge_is_addition() {
        let mut a = ShardTotals::new(2, 1);
        let mut b = ShardTotals::new(2, 1);
        a.arrived = 5;
        a.ttft.record(1000, 5);
        a.per_tenant[0].arrived = 3;
        a.per_tenant[1].ttft.record(500, 2);
        b.arrived = 7;
        b.ttft.record(2000, 7);
        b.per_tenant[0].arrived = 4;
        b.per_tenant[1].ttft.record(900, 1);
        let mut ab = ShardTotals::new(2, 1);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = ShardTotals::new(2, 1);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.arrived, 12);
        assert_eq!(ab.ttft.total(), 12);
        assert_eq!(ab.per_tenant[0].arrived, 7);
        assert_eq!(ab.per_tenant[1].ttft.total(), 3);
    }
}

//! Per-instance fleet state: a tick-based fluid serving model with exact
//! roofline step costs, plus the per-cell hot-spare pool.
//!
//! Each instance tracks its request queue as run-length-encoded arrival
//! cohorts and its running batch as completion cohorts ordered by the
//! decode step at which they finish. One simulation tick advances an
//! instance by: failure lifecycle → arrivals → serving (prefill
//! prioritized, then decode steps until the tick's time budget runs
//! out). All state is integer microseconds / counts, and every random
//! draw comes from the instance's own RNG stream — the two properties
//! that make sharded results independent of shard and thread counts.

use crate::hist::LatencyHistogram;
use crate::traffic::{poisson, sample_output_len};
use litegpu_roofline::StepCostTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A run of requests that arrived in the same tick.
#[derive(Debug, Clone, Copy)]
struct QueueRun {
    arrival_tick: u32,
    count: u32,
    /// Requeued after a failure: the first token was already delivered,
    /// so TTFT is not recorded again.
    retry: bool,
}

/// Serving knobs shared by every instance (derived from the fleet
/// config once).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServeKnobs {
    pub tick_us: u64,
    pub max_prefill_batch: u32,
    pub max_queue: u32,
    pub ttft_slo_us: u64,
    pub tbt_slo_us: u64,
    pub output_len_mean: u32,
}

/// Failure/repair timing shared by every instance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FailureRates {
    /// Mean microseconds between failures of one instance (0 disables
    /// failure injection).
    pub mean_interval_us: f64,
    pub swap_us: u64,
    pub repair_us: u64,
}

impl FailureRates {
    /// Exponential inter-failure draw; `u64::MAX` when disabled.
    fn next_interval_us(&self, rng: &mut StdRng) -> u64 {
        if self.mean_interval_us <= 0.0 {
            return u64::MAX;
        }
        let u: f64 = rng.random::<f64>().max(1e-300);
        let dt = -u.ln() * self.mean_interval_us;
        if dt >= u64::MAX as f64 {
            u64::MAX
        } else {
            (dt as u64).max(1)
        }
    }
}

/// Integer accumulators for one shard. Merging is plain addition, so the
/// merge order cannot affect the result.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ShardTotals {
    pub arrived: u64,
    pub rejected: u64,
    pub completed: u64,
    pub retried: u64,
    pub generated_tokens: u64,
    pub decode_steps: u64,
    pub failures: u64,
    pub spare_hits: u64,
    pub spare_misses: u64,
    pub downtime_us: u64,
    pub ttft_recorded: u64,
    pub ttft_slo_ok: u64,
    pub tbt_slo_ok_steps: u64,
    /// Total energy drawn by powered instances, microjoules.
    pub energy_uj: u64,
    /// Energy drawn while powered but not serving (static floors of live
    /// instances' unutilized time, warm-parked and booting instances),
    /// microjoules — the elasticity waste power gating attacks.
    pub idle_energy_uj: u64,
    /// Instance-ticks spent live and up (for mean live-pool size).
    pub live_ticks: u64,
    /// Autoscaler activations applied.
    pub scale_ups: u64,
    /// Autoscaler parks applied.
    pub scale_downs: u64,
    /// Arrivals placed on an instance by the cell router.
    pub routed: u64,
    /// Arrivals shed by the router because no live instance had capacity.
    pub routing_shed: u64,
    pub ttft: LatencyHistogram,
    pub tbt: LatencyHistogram,
    pub e2e: LatencyHistogram,
}

impl ShardTotals {
    pub fn new() -> Self {
        Self {
            ttft: LatencyHistogram::new(),
            tbt: LatencyHistogram::new(),
            e2e: LatencyHistogram::new(),
            ..Default::default()
        }
    }

    /// Adds `other` into `self` (associative, commutative).
    pub fn merge(&mut self, other: &Self) {
        self.arrived += other.arrived;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.retried += other.retried;
        self.generated_tokens += other.generated_tokens;
        self.decode_steps += other.decode_steps;
        self.failures += other.failures;
        self.spare_hits += other.spare_hits;
        self.spare_misses += other.spare_misses;
        self.downtime_us += other.downtime_us;
        self.ttft_recorded += other.ttft_recorded;
        self.ttft_slo_ok += other.ttft_slo_ok;
        self.tbt_slo_ok_steps += other.tbt_slo_ok_steps;
        self.energy_uj += other.energy_uj;
        self.idle_energy_uj += other.idle_energy_uj;
        self.live_ticks += other.live_ticks;
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
        self.routed += other.routed;
        self.routing_shed += other.routing_shed;
        self.ttft.merge(&other.ttft);
        self.tbt.merge(&other.tbt);
        self.e2e.merge(&other.e2e);
    }
}

/// The hot-spare pool and repair queue of one cell (a fixed group of
/// instances — think rack or pod). Spares are GPU-sized units, as in
/// `litegpu_cluster::failure`: a failure consumes one spare (the spare
/// replaces the failed GPU, bringing the instance back after the swap
/// delay), and the failed unit rejoins the pool once repaired. This is
/// what makes Lite-GPU spare pools proportionally cheaper (§3) —
/// `FleetReport::spare_overhead` divides by total fleet GPUs.
#[derive(Debug)]
pub(crate) struct CellState {
    pub spares_free: u32,
    repairs: BinaryHeap<Reverse<u64>>,
}

impl CellState {
    pub fn new(spares: u32) -> Self {
        Self {
            spares_free: spares,
            repairs: BinaryHeap::new(),
        }
    }

    /// Returns repaired units whose repair finished by `now_us` to the
    /// pool.
    pub fn reclaim_repaired(&mut self, now_us: u64) {
        while let Some(&Reverse(done)) = self.repairs.peek() {
            if done <= now_us {
                self.repairs.pop();
                self.spares_free += 1;
            } else {
                break;
            }
        }
    }

    /// Takes a spare for a failure at `now_us`; the failed unit returns
    /// to the pool after `repair_us`. Returns whether a spare was free.
    pub fn try_take_spare(&mut self, now_us: u64, repair_us: u64) -> bool {
        if self.spares_free > 0 {
            self.spares_free -= 1;
            self.repairs.push(Reverse(now_us.saturating_add(repair_us)));
            true
        } else {
            false
        }
    }
}

/// One model instance's simulation state.
#[derive(Debug)]
pub(crate) struct InstanceState {
    rng: StdRng,
    queue: VecDeque<QueueRun>,
    /// Total requests across `queue`.
    queued: u64,
    /// Running cohorts keyed by the decode step at which they finish:
    /// `(finish_at_step, arrival_tick, count)`.
    cohorts: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// Total sequences across `cohorts` (the decode batch).
    active: u32,
    /// Monotone decode-step counter.
    steps_done: u64,
    /// Unspent serving time carried into the next tick, µs.
    carry_us: u64,
    pub up: bool,
    down_since_us: u64,
    down_until_us: u64,
    next_failure_us: u64,
}

impl InstanceState {
    /// Builds an instance with its own RNG stream derived from
    /// `(seed, global_index)` — the derivation must not depend on the
    /// shard layout.
    pub fn new(seed: u64, global_index: u64, rates: &FailureRates) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ global_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let next_failure_us = rates.next_interval_us(&mut rng);
        Self {
            rng,
            queue: VecDeque::new(),
            queued: 0,
            cohorts: BinaryHeap::new(),
            active: 0,
            steps_done: 0,
            carry_us: 0,
            up: true,
            down_since_us: 0,
            down_until_us: 0,
            next_failure_us,
        }
    }

    /// Failure/repair lifecycle for the tick starting at `tick_start_us`.
    pub fn lifecycle(
        &mut self,
        tick_start_us: u64,
        tick_us: u64,
        rates: &FailureRates,
        cell: &mut CellState,
        acc: &mut ShardTotals,
    ) {
        if !self.up {
            if tick_start_us >= self.down_until_us {
                // Recovered: account downtime, restart the failure clock.
                acc.downtime_us += self.down_until_us - self.down_since_us;
                self.up = true;
                self.next_failure_us = self
                    .down_until_us
                    .saturating_add(rates.next_interval_us(&mut self.rng));
            }
            return;
        }
        let tick_end_us = tick_start_us + tick_us;
        if self.next_failure_us >= tick_end_us {
            return;
        }
        // The instance fails this tick. The whole instance goes down —
        // the paper's instance-wide blast radius — and its KV caches die
        // with it: running cohorts requeue for a fresh prefill.
        let fail_at = self.next_failure_us.max(tick_start_us);
        acc.failures += 1;
        let spare = cell.try_take_spare(fail_at, rates.repair_us);
        let delay = if spare {
            acc.spare_hits += 1;
            rates.swap_us
        } else {
            acc.spare_misses += 1;
            rates.repair_us
        };
        self.up = false;
        self.down_since_us = fail_at;
        self.down_until_us = fail_at.saturating_add(delay.max(1));
        self.carry_us = 0;
        let mut flushed = 0u64;
        // Keep the original arrival tick so end-to-end latency still
        // measures from arrival; `retry` only suppresses re-recording
        // TTFT (the first token was already delivered once).
        for Reverse((_, arrival_tick, count)) in self.cohorts.drain() {
            flushed += count as u64;
            self.queue.push_back(QueueRun {
                arrival_tick,
                count,
                retry: true,
            });
        }
        self.queued += flushed;
        acc.retried += flushed;
        self.active = 0;
    }

    /// Poisson arrivals for one tick at mean `lambda` requests (the
    /// instance-local arrival process used when no router runs).
    pub fn arrivals(&mut self, tick: u32, lambda: f64, knobs: &ServeKnobs, acc: &mut ShardTotals) {
        let n = poisson(&mut self.rng, lambda);
        if n == 0 {
            return;
        }
        acc.arrived += n;
        self.push_arrivals(tick, n, knobs, acc);
    }

    /// Admits up to `n` externally-routed requests against the queue cap,
    /// shedding the rest. Returns the admitted count. Does **not** count
    /// `arrived` — the caller (router or [`Self::arrivals`]) owns that.
    pub fn push_arrivals(
        &mut self,
        tick: u32,
        n: u64,
        knobs: &ServeKnobs,
        acc: &mut ShardTotals,
    ) -> u64 {
        let room = (knobs.max_queue as u64).saturating_sub(self.queued);
        let admitted = n.min(room);
        acc.rejected += n - admitted;
        if admitted > 0 {
            self.queue.push_back(QueueRun {
                arrival_tick: tick,
                count: admitted as u32,
                retry: false,
            });
            self.queued += admitted;
        }
        admitted
    }

    /// Requests waiting in the queue.
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Sequences currently decoding.
    pub fn active(&self) -> u32 {
        self.active
    }

    /// Whether the instance holds no work (parkable).
    pub fn is_idle(&self) -> bool {
        self.queued == 0 && self.active == 0
    }

    /// Serves one tick: prefill (prioritized) then decode steps, spending
    /// `tick_us` plus any carried budget. Returns the serving time spent
    /// this tick, µs (what dynamic energy accounting bills).
    pub fn serve(
        &mut self,
        tick: u32,
        lut: &StepCostTable,
        knobs: &ServeKnobs,
        acc: &mut ShardTotals,
    ) -> u64 {
        if !self.up {
            return 0;
        }
        if self.queued == 0 && self.active == 0 {
            self.carry_us = 0;
            return 0;
        }
        let budget0 = knobs.tick_us + self.carry_us;
        let mut budget = budget0;

        // Prefill first, as the small simulator does: a batch of queued
        // prompts up to the prefill batch cap and the KV capacity.
        while self.queued > 0 && self.active < lut.max_batch {
            // Admission is bounded by the table's prefill capacity too:
            // charging a larger batch at a clamped (smaller-batch) price
            // would undercount prefill time.
            let b = (self.queued.min(knobs.max_prefill_batch as u64) as u32)
                .min(lut.max_batch - self.active)
                .min(lut.max_prefill_batch);
            let cost = lut.prefill_us(b);
            if budget < cost {
                break;
            }
            budget -= cost;
            let batch_arrival = self.pop_queue(b, tick, cost, knobs, acc);
            let out_len = sample_output_len(&mut self.rng, knobs.output_len_mean) as u64;
            self.cohorts
                .push(Reverse((self.steps_done + out_len, batch_arrival, b)));
            self.active += b;
        }

        // Decode: run whole steps until the budget or the batch runs out,
        // popping cohorts as they finish so the batch (and so the step
        // time) stays current.
        while self.active > 0 {
            let d = lut.decode_step_us(self.active);
            let affordable = budget / d;
            if affordable == 0 {
                break;
            }
            let next_finish = self
                .cohorts
                .peek()
                .map(|Reverse((f, _, _))| *f)
                .expect("active > 0 implies cohorts");
            let run = affordable.min(next_finish - self.steps_done).max(1);
            self.steps_done += run;
            budget -= run * d;
            acc.generated_tokens += run * self.active as u64;
            acc.decode_steps += run;
            acc.tbt.record(d, run);
            if d <= knobs.tbt_slo_us {
                acc.tbt_slo_ok_steps += run;
            }
            while let Some(&Reverse((finish, arrival_tick, count))) = self.cohorts.peek() {
                if finish > self.steps_done {
                    break;
                }
                self.cohorts.pop();
                self.active -= count;
                acc.completed += count as u64;
                let e2e_us = (tick as u64 + 1)
                    .saturating_sub(arrival_tick as u64)
                    .saturating_mul(knobs.tick_us);
                acc.e2e.record(e2e_us, count as u64);
            }
        }
        self.carry_us = if self.queued == 0 && self.active == 0 {
            0
        } else {
            budget
        };
        budget0 - budget
    }

    /// Pops `b` requests from the queue, recording TTFT for non-retry
    /// runs. Returns the arrival tick of the oldest popped run (for e2e).
    fn pop_queue(
        &mut self,
        b: u32,
        tick: u32,
        prefill_cost_us: u64,
        knobs: &ServeKnobs,
        acc: &mut ShardTotals,
    ) -> u32 {
        let mut remaining = b;
        let mut oldest = tick;
        while remaining > 0 {
            let front = self.queue.front_mut().expect("queued covers b");
            let take = front.count.min(remaining);
            oldest = oldest.min(front.arrival_tick);
            if !front.retry {
                let wait_us =
                    (tick as u64 - front.arrival_tick as u64) * knobs.tick_us + prefill_cost_us;
                acc.ttft.record(wait_us, take as u64);
                acc.ttft_recorded += take as u64;
                if wait_us <= knobs.ttft_slo_us {
                    acc.ttft_slo_ok += take as u64;
                }
            }
            front.count -= take;
            remaining -= take;
            self.queued -= take as u64;
            if front.count == 0 {
                self.queue.pop_front();
            }
        }
        oldest
    }

    /// Downtime not yet accounted at the end of the run (instance still
    /// down at `horizon_us`).
    pub fn pending_downtime_us(&self, horizon_us: u64) -> u64 {
        if self.up {
            0
        } else {
            horizon_us.saturating_sub(self.down_since_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> ServeKnobs {
        ServeKnobs {
            tick_us: 1_000_000,
            max_prefill_batch: 4,
            max_queue: 10_000,
            ttft_slo_us: 1_000_000,
            tbt_slo_us: 50_000,
            output_len_mean: 100,
        }
    }

    fn lut() -> StepCostTable {
        StepCostTable::build(
            &litegpu_specs::catalog::h100(),
            &litegpu_workload::models::llama3_70b(),
            2,
            &litegpu_roofline::EngineParams::paper_defaults(),
        )
        .unwrap()
    }

    fn no_failures() -> FailureRates {
        FailureRates {
            mean_interval_us: 0.0,
            swap_us: 1,
            repair_us: 1,
        }
    }

    #[test]
    fn requests_flow_to_completion() {
        let lut = lut();
        let knobs = knobs();
        let mut acc = ShardTotals::new();
        let mut inst = InstanceState::new(1, 0, &no_failures());
        for tick in 0..120u32 {
            inst.arrivals(tick, 2.0, &knobs, &mut acc);
            inst.serve(tick, &lut, &knobs, &mut acc);
        }
        assert!(acc.arrived > 150, "arrived = {}", acc.arrived);
        assert!(acc.completed > 0, "completed = {}", acc.completed);
        assert!(acc.generated_tokens > acc.completed);
        assert_eq!(acc.rejected, 0);
        assert!(acc.ttft_recorded >= acc.completed);
        assert!(!acc.ttft.is_empty() && !acc.tbt.is_empty());
    }

    #[test]
    fn queue_cap_sheds_load() {
        let lut = lut();
        let mut knobs = knobs();
        knobs.max_queue = 5;
        let mut acc = ShardTotals::new();
        let mut inst = InstanceState::new(2, 0, &no_failures());
        // Down instance: arrivals accumulate, nothing serves.
        inst.up = false;
        inst.down_until_us = u64::MAX;
        for tick in 0..50u32 {
            inst.arrivals(tick, 5.0, &knobs, &mut acc);
            inst.serve(tick, &lut, &knobs, &mut acc);
        }
        assert!(acc.rejected > 0);
        assert!(inst.queued <= 5);
    }

    #[test]
    fn spare_pool_accounting_hits_then_misses_then_reclaims() {
        let mut cell = CellState::new(1);
        // First failure takes the only spare.
        assert!(cell.try_take_spare(1_000, 500_000));
        assert_eq!(cell.spares_free, 0);
        // Second failure while the unit repairs: miss.
        assert!(!cell.try_take_spare(2_000, 500_000));
        // Before the repair completes nothing returns.
        cell.reclaim_repaired(400_000);
        assert_eq!(cell.spares_free, 0);
        // After repair the unit is a spare again.
        cell.reclaim_repaired(501_000);
        assert_eq!(cell.spares_free, 1);
        assert!(cell.try_take_spare(600_000, 500_000));
    }

    #[test]
    fn failure_uses_spare_and_requeues_running_work() {
        let lut = lut();
        let knobs = knobs();
        let rates = FailureRates {
            mean_interval_us: 1.0, // Fail essentially immediately.
            swap_us: 1_500_000,    // 1.5 ticks.
            repair_us: 3_600_000_000,
        };
        let mut acc = ShardTotals::new();
        let mut cell = CellState::new(1);
        let mut inst = InstanceState::new(3, 0, &rates);
        // Get some work running before any failure fires.
        inst.next_failure_us = u64::MAX;
        inst.arrivals(0, 8.0, &knobs, &mut acc);
        inst.serve(0, &lut, &knobs, &mut acc);
        assert!(inst.active > 0);
        let active_before = inst.active as u64;
        // Force the failure into tick 1.
        inst.next_failure_us = 1_200_000;
        inst.lifecycle(1_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert_eq!(acc.failures, 1);
        assert_eq!(acc.spare_hits, 1);
        assert_eq!(acc.spare_misses, 0);
        assert_eq!(cell.spares_free, 0);
        assert!(!inst.up);
        assert_eq!(inst.active, 0);
        assert_eq!(acc.retried, active_before);
        assert_eq!(inst.queued, active_before);
        // Swap delay: down for 1.5 ticks, up again at tick 3.
        inst.lifecycle(2_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(!inst.up);
        inst.lifecycle(3_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(inst.up);
        assert_eq!(acc.downtime_us, 1_500_000);
    }

    #[test]
    fn without_spares_repair_time_dominates_downtime() {
        let rates = FailureRates {
            mean_interval_us: 1.0,
            swap_us: 1_000_000,
            repair_us: 10_000_000,
        };
        let mut acc = ShardTotals::new();
        let mut cell = CellState::new(0);
        let mut inst = InstanceState::new(4, 0, &rates);
        inst.next_failure_us = 500_000;
        inst.lifecycle(0, 1_000_000, &rates, &mut cell, &mut acc);
        assert_eq!(acc.spare_misses, 1);
        assert!(!inst.up);
        // Still down until repair completes at 10.5 s.
        inst.lifecycle(10_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(!inst.up);
        assert_eq!(inst.pending_downtime_us(10_000_000), 9_500_000);
        inst.lifecycle(11_000_000, 1_000_000, &rates, &mut cell, &mut acc);
        assert!(inst.up);
        assert_eq!(acc.downtime_us, 10_000_000);
    }

    #[test]
    fn totals_merge_is_addition() {
        let mut a = ShardTotals::new();
        let mut b = ShardTotals::new();
        a.arrived = 5;
        a.ttft.record(1000, 5);
        b.arrived = 7;
        b.ttft.record(2000, 7);
        let mut ab = ShardTotals::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = ShardTotals::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.arrived, 12);
        assert_eq!(ab.ttft.total(), 12);
    }
}

//! The fleet-level workload API: a multi-tenant [`WorkloadSpec`].
//!
//! The paper's fleet-granularity argument (§3) is ultimately about
//! serving many heterogeneous tenants well — elasticity, power gating and
//! routing only pay off when distinct traffic classes with distinct SLOs
//! contend for the fleet. A [`WorkloadSpec`] describes that contention:
//! a list of [`Tenant`]s, each with its own traffic pattern, share of the
//! fleet's arrival rate, prompt/output-length shape, scheduling
//! [`PriorityClass`], and per-tenant TTFT/TBT SLO targets. The engine
//! samples each tenant's Poisson arrival stream per cell from a dedicated
//! RNG stream (inside the shard partition, so reports stay byte-identical
//! at any shard/thread count), routes arrivals in priority order, and
//! reports per-tenant SLO attainment in
//! [`crate::report::FleetReport::per_tenant`].
//!
//! The legacy single-source [`TrafficModel`] converts mechanically:
//!
//! ```
//! use litegpu_fleet::{TrafficModel, WorkloadSpec};
//!
//! let spec: WorkloadSpec = TrafficModel::diurnal_demo(1.5).into();
//! assert_eq!(spec.tenants.len(), 1);
//! assert_eq!(spec.rate_per_instance_s, 1.5);
//! ```

use crate::traffic::{LengthDist, TrafficModel, TrafficPattern};
pub use litegpu_ctrl::PriorityClass;

/// One traffic source sharing the fleet.
///
/// A tenant's SLO targets default to the engine-wide constraints from
/// `EngineParams` when left `None`, which is what the single-tenant
/// [`TrafficModel`] conversion relies on.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tenant {
    /// Tenant name (report key; keep unique within a spec).
    pub name: String,
    /// Time-varying modulation of this tenant's arrival rate.
    pub pattern: TrafficPattern,
    /// Relative share of [`WorkloadSpec::rate_per_instance_s`] at
    /// multiplier 1 (normalized over the sum of all shares).
    pub rate_share: f64,
    /// Mean prompt length, tokens; `None` uses the engine's configured
    /// prompt length. Prefill time scales linearly with this relative to
    /// the engine default (the roofline prefill is compute-bound).
    pub prompt_len_mean: Option<u32>,
    /// Output-length distribution (seedable, sampled per request).
    pub output_len: LengthDist,
    /// Scheduling class: admission and routing order, and what admission
    /// control may shed under pressure.
    pub priority: PriorityClass,
    /// TTFT SLO target, seconds; `None` uses the engine constraint.
    pub ttft_slo_s: Option<f64>,
    /// TBT SLO target, seconds; `None` uses the engine constraint.
    pub tbt_slo_s: Option<f64>,
}

impl Tenant {
    /// A tenant with the given name, pattern, share and priority, using
    /// the engine-default prompt length and SLOs and a 500-token
    /// geometric output distribution.
    ///
    /// ```
    /// use litegpu_fleet::ctrl::PriorityClass;
    /// use litegpu_fleet::{LengthDist, Tenant, TrafficPattern};
    ///
    /// let mut batch = Tenant::new(
    ///     "nightly-eval",
    ///     TrafficPattern::Constant,
    ///     1.0,
    ///     PriorityClass::Batch,
    /// );
    /// batch.output_len = LengthDist::geometric(800); // long generations
    /// batch.ttft_slo_s = Some(30.0); // relaxed first-token target
    /// batch.validate().unwrap();
    /// ```
    pub fn new(
        name: impl Into<String>,
        pattern: TrafficPattern,
        rate_share: f64,
        priority: PriorityClass,
    ) -> Self {
        Self {
            name: name.into(),
            pattern,
            rate_share,
            prompt_len_mean: None,
            output_len: LengthDist::geometric(500),
            priority,
            ttft_slo_s: None,
            tbt_slo_s: None,
        }
    }

    /// Checks this tenant's structural contract.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.name.is_empty() {
            return Err("tenant name must be non-empty");
        }
        self.pattern.validate()?;
        if !(self.rate_share.is_finite() && self.rate_share > 0.0) {
            return Err("tenant rate_share must be finite and positive");
        }
        if self.prompt_len_mean == Some(0) {
            return Err("tenant prompt_len_mean must be at least 1 token");
        }
        for slo in [self.ttft_slo_s, self.tbt_slo_s].into_iter().flatten() {
            if !(slo.is_finite() && slo > 0.0) {
                return Err("tenant SLO targets must be finite and positive");
            }
        }
        Ok(())
    }
}

/// A complete fleet workload: the total base arrival rate and the tenants
/// sharing it.
///
/// # Examples
///
/// ```
/// use litegpu_fleet::ctrl::PriorityClass;
/// use litegpu_fleet::{Tenant, TrafficPattern, WorkloadSpec};
///
/// let spec = WorkloadSpec {
///     rate_per_instance_s: 2.0,
///     tenants: vec![
///         Tenant::new("chat", TrafficPattern::Constant, 3.0, PriorityClass::Interactive),
///         Tenant::new("scavenge", TrafficPattern::Constant, 1.0, PriorityClass::BestEffort),
///     ],
/// };
/// spec.validate().unwrap();
/// // Shares are relative: "chat" owns 3/4 of the 2.0 req/s base rate.
/// assert!((spec.tenant_rate_at(0, 0.0) - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// Total mean arrival rate per instance at multiplier 1,
    /// requests/second, split over the tenants by their shares.
    pub rate_per_instance_s: f64,
    /// The traffic sources sharing the fleet (at least one).
    pub tenants: Vec<Tenant>,
}

impl WorkloadSpec {
    /// The paper-flavoured single-tenant default: diurnal swing peaking
    /// mid-afternoon, ~500-token outputs, interactive priority.
    pub fn diurnal_demo(rate_per_instance_s: f64) -> Self {
        TrafficModel::diurnal_demo(rate_per_instance_s).into()
    }

    /// Flat single-tenant traffic at the given per-instance rate.
    pub fn constant(rate_per_instance_s: f64) -> Self {
        TrafficModel::constant(rate_per_instance_s).into()
    }

    /// The multi-tenant demo: three tenants with distinct shapes, SLOs
    /// and priorities contending for the fleet —
    ///
    /// - `chat` (interactive, 50% share): diurnal, short outputs, tight
    ///   TTFT;
    /// - `batch` (batch, 30% share): flat, long outputs, relaxed TTFT;
    /// - `scavenge` (best effort, 20% share): diurnal, first to be shed
    ///   when the afternoon peak outruns fleet capacity.
    pub fn multi_tenant_demo(rate_per_instance_s: f64) -> Self {
        let diurnal = TrafficPattern::Diurnal {
            amplitude: 0.6,
            peak_hour: 15.0,
        };
        let mut chat = Tenant::new("chat", diurnal.clone(), 5.0, PriorityClass::Interactive);
        chat.output_len = LengthDist::geometric(400);
        let mut batch = Tenant::new("batch", TrafficPattern::Constant, 3.0, PriorityClass::Batch);
        batch.output_len = LengthDist::geometric(800);
        batch.ttft_slo_s = Some(30.0);
        let mut scavenge = Tenant::new("scavenge", diurnal, 2.0, PriorityClass::BestEffort);
        scavenge.output_len = LengthDist::geometric(300);
        scavenge.ttft_slo_s = Some(60.0);
        Self {
            rate_per_instance_s,
            tenants: vec![chat, batch, scavenge],
        }
    }

    /// Checks the whole spec: a positive finite base rate, at least one
    /// tenant (at most `u16::MAX`), unique names, and every tenant's own
    /// contract.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.rate_per_instance_s.is_finite() && self.rate_per_instance_s >= 0.0) {
            return Err("workload rate_per_instance_s must be finite and non-negative");
        }
        if self.tenants.is_empty() {
            return Err("workload must have at least one tenant");
        }
        if self.tenants.len() > u16::MAX as usize {
            return Err("workload supports at most 65535 tenants");
        }
        for t in &self.tenants {
            t.validate()?;
        }
        for (i, a) in self.tenants.iter().enumerate() {
            if self.tenants[i + 1..].iter().any(|b| b.name == a.name) {
                return Err("tenant names must be unique");
            }
        }
        Ok(())
    }

    /// Sum of tenant shares (the normalization denominator).
    pub fn share_total(&self) -> f64 {
        self.tenants.iter().map(|t| t.rate_share).sum()
    }

    /// Every tenant's normalized share of the base rate, in `[0, 1]`,
    /// indexed by tenant id. Computes the denominator once — prefer this
    /// over per-index [`WorkloadSpec::share_fraction`] in loops.
    pub fn share_fractions(&self) -> Vec<f64> {
        let total = self.share_total();
        self.tenants
            .iter()
            .map(|t| {
                if total > 0.0 {
                    t.rate_share / total
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Tenant `idx`'s normalized share of the base rate, in `[0, 1]`.
    pub fn share_fraction(&self, idx: usize) -> f64 {
        let total = self.share_total();
        if total > 0.0 {
            self.tenants[idx].rate_share / total
        } else {
            0.0
        }
    }

    /// Tenant `idx`'s per-instance arrival rate at time `t_s`,
    /// requests/second.
    pub fn tenant_rate_at(&self, idx: usize, t_s: f64) -> f64 {
        self.rate_per_instance_s
            * self.share_fraction(idx)
            * self.tenants[idx].pattern.multiplier_at(t_s)
    }

    /// Share-weighted mean output length, tokens (capacity estimates use
    /// this; identical to the tenant mean for single-tenant specs).
    pub fn mean_output_len(&self) -> f64 {
        self.share_fractions()
            .iter()
            .zip(&self.tenants)
            .map(|(f, t)| f * t.output_len.mean().max(1) as f64)
            .sum::<f64>()
            .max(1.0)
    }

    /// Share-weighted mean prefill-cost scale relative to the engine's
    /// default prompt length: tenants that override
    /// [`Tenant::prompt_len_mean`] pay proportionally longer prefills,
    /// and capacity estimates must price that in. 1.0 when no tenant
    /// overrides its prompt.
    pub fn mean_prompt_scale(&self, default_prompt_len: u32) -> f64 {
        let den = default_prompt_len.max(1) as f64;
        self.share_fractions()
            .iter()
            .zip(&self.tenants)
            .map(|(f, t)| f * t.prompt_len_mean.unwrap_or(default_prompt_len).max(1) as f64 / den)
            .sum::<f64>()
            .max(f64::EPSILON)
    }

    /// Tenant indices in admission order: priority class first
    /// (interactive → batch → best effort), then declaration order —
    /// the order the router grants queue room in.
    pub fn priority_order(&self) -> Vec<u16> {
        let mut order: Vec<u16> = (0..self.tenants.len() as u16).collect();
        order.sort_by_key(|&i| (self.tenants[i as usize].priority, i));
        order
    }
}

impl From<TrafficModel> for WorkloadSpec {
    /// Single-tenant conversion: one `default` tenant with the model's
    /// pattern and output-length mean, interactive priority, and
    /// engine-default SLOs — the mechanical migration path for existing
    /// configs.
    fn from(m: TrafficModel) -> Self {
        let mut t = Tenant::new("default", m.pattern, 1.0, PriorityClass::Interactive);
        t.output_len = LengthDist::geometric(m.output_len_mean);
        Self {
            rate_per_instance_s: m.rate_per_instance_s,
            tenants: vec![t],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_model_converts_to_single_tenant_spec() {
        let spec: WorkloadSpec = TrafficModel::diurnal_demo(1.5).into();
        spec.validate().unwrap();
        assert_eq!(spec.tenants.len(), 1);
        assert_eq!(spec.tenants[0].name, "default");
        assert_eq!(spec.tenants[0].priority, PriorityClass::Interactive);
        assert_eq!(spec.tenants[0].output_len.mean(), 500);
        assert_eq!(spec.tenants[0].ttft_slo_s, None);
        assert!((spec.mean_output_len() - 500.0).abs() < 1e-9);
        // Rate splits reproduce the model's modulated rate exactly.
        let m = TrafficModel::diurnal_demo(1.5);
        for t_s in [0.0, 3.0 * 3600.0, 15.0 * 3600.0] {
            assert!((spec.tenant_rate_at(0, t_s) - m.rate_at(t_s)).abs() < 1e-12);
        }
    }

    #[test]
    fn shares_normalize_and_weight_rates() {
        let spec = WorkloadSpec {
            rate_per_instance_s: 2.0,
            tenants: vec![
                Tenant::new(
                    "a",
                    TrafficPattern::Constant,
                    3.0,
                    PriorityClass::Interactive,
                ),
                Tenant::new("b", TrafficPattern::Constant, 1.0, PriorityClass::Batch),
            ],
        };
        assert!((spec.share_fraction(0) - 0.75).abs() < 1e-12);
        assert!((spec.tenant_rate_at(0, 0.0) - 1.5).abs() < 1e-12);
        assert!((spec.tenant_rate_at(1, 0.0) - 0.5).abs() < 1e-12);
        // Total across tenants is the base rate.
        let total: f64 = (0..2).map(|i| spec.tenant_rate_at(i, 0.0)).sum();
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn priority_order_sorts_classes_then_declaration() {
        let spec = WorkloadSpec {
            rate_per_instance_s: 1.0,
            tenants: vec![
                Tenant::new(
                    "be",
                    TrafficPattern::Constant,
                    1.0,
                    PriorityClass::BestEffort,
                ),
                Tenant::new("b1", TrafficPattern::Constant, 1.0, PriorityClass::Batch),
                Tenant::new(
                    "i",
                    TrafficPattern::Constant,
                    1.0,
                    PriorityClass::Interactive,
                ),
                Tenant::new("b2", TrafficPattern::Constant, 1.0, PriorityClass::Batch),
            ],
        };
        assert_eq!(spec.priority_order(), vec![2, 1, 3, 0]);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let good = WorkloadSpec::multi_tenant_demo(1.5);
        good.validate().unwrap();

        let mut s = good.clone();
        s.rate_per_instance_s = f64::NAN;
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.tenants.clear();
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.tenants[0].rate_share = 0.0;
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.tenants[0].name.clear();
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.tenants[1].name = s.tenants[0].name.clone();
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.tenants[0].ttft_slo_s = Some(-1.0);
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.tenants[0].prompt_len_mean = Some(0);
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.tenants[0].pattern = TrafficPattern::Trace(vec![(5.0, 1.0), (1.0, 1.0)]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn mean_prompt_scale_weights_overrides_by_share() {
        let mut spec = WorkloadSpec {
            rate_per_instance_s: 1.0,
            tenants: vec![
                Tenant::new(
                    "a",
                    TrafficPattern::Constant,
                    3.0,
                    PriorityClass::Interactive,
                ),
                Tenant::new("b", TrafficPattern::Constant, 1.0, PriorityClass::Batch),
            ],
        };
        // No overrides: scale 1 regardless of the engine default.
        assert!((spec.mean_prompt_scale(1000) - 1.0).abs() < 1e-12);
        // Tenant b (25% share) uses 4x prompts: 0.75·1 + 0.25·4 = 1.75.
        spec.tenants[1].prompt_len_mean = Some(4000);
        assert!((spec.mean_prompt_scale(1000) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn multi_tenant_demo_covers_every_priority_class() {
        let spec = WorkloadSpec::multi_tenant_demo(2.0);
        let classes: Vec<PriorityClass> = spec.tenants.iter().map(|t| t.priority).collect();
        assert_eq!(classes, PriorityClass::ALL.to_vec());
        // Shares sum the base rate back up.
        let total: f64 = (0..3).map(|i| spec.tenant_rate_at(i, 12.0 * 3600.0)).sum();
        assert!(total > 0.0 && total.is_finite());
    }

    #[test]
    fn specs_serialize_deterministically() {
        let spec = WorkloadSpec::multi_tenant_demo(1.5);
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(json, serde_json::to_string(&spec).unwrap());
        for key in ["chat", "batch", "scavenge", "Interactive", "BestEffort"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

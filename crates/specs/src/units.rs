//! Unit conventions and conversion helpers.
//!
//! The suite stores quantities in the units the paper's Table 1 uses
//! (TFLOPS, GB, GB/s) and converts to base SI units (FLOP/s, bytes,
//! bytes/s, seconds) at computation boundaries. All conversions live here
//! so the factor-of-10⁹ conventions are written exactly once.
//!
//! Decimal (SI) prefixes are used throughout — `1 GB = 10⁹ bytes` — which
//! matches how vendors quote both HBM bandwidth and network bandwidth.

/// Bytes per gigabyte (decimal, as in vendor bandwidth/capacity specs).
pub const BYTES_PER_GB: f64 = 1e9;

/// FLOP/s per TFLOPS.
pub const FLOPS_PER_TFLOPS: f64 = 1e12;

/// Seconds per millisecond.
pub const SECONDS_PER_MS: f64 = 1e-3;

/// Converts TFLOPS to FLOP/s.
///
/// # Examples
///
/// ```
/// assert_eq!(litegpu_specs::units::tflops_to_flops(2.0), 2.0e12);
/// ```
pub fn tflops_to_flops(tflops: f64) -> f64 {
    tflops * FLOPS_PER_TFLOPS
}

/// Converts GB to bytes.
pub fn gb_to_bytes(gb: f64) -> f64 {
    gb * BYTES_PER_GB
}

/// Converts GB/s to bytes/s.
pub fn gbps_to_bytes_per_s(gbps: f64) -> f64 {
    gbps * BYTES_PER_GB
}

/// Converts seconds to milliseconds.
pub fn s_to_ms(seconds: f64) -> f64 {
    seconds / SECONDS_PER_MS
}

/// Converts milliseconds to seconds.
pub fn ms_to_s(ms: f64) -> f64 {
    ms * SECONDS_PER_MS
}

/// Formats a byte count with a binary-free, human-readable SI suffix.
///
/// # Examples
///
/// ```
/// assert_eq!(litegpu_specs::units::format_bytes(1.5e9), "1.50 GB");
/// assert_eq!(litegpu_specs::units::format_bytes(2.0e3), "2.00 KB");
/// ```
pub fn format_bytes(bytes: f64) -> String {
    const UNITS: [(&str, f64); 5] = [
        ("PB", 1e15),
        ("TB", 1e12),
        ("GB", 1e9),
        ("MB", 1e6),
        ("KB", 1e3),
    ];
    for (suffix, scale) in UNITS {
        if bytes.abs() >= scale {
            return format!("{:.2} {suffix}", bytes / scale);
        }
    }
    format!("{bytes:.0} B")
}

/// Formats a duration in seconds with an adaptive unit (s / ms / µs / ns).
///
/// # Examples
///
/// ```
/// assert_eq!(litegpu_specs::units::format_seconds(0.0123), "12.30 ms");
/// ```
pub fn format_seconds(seconds: f64) -> String {
    let abs = seconds.abs();
    if abs >= 1.0 {
        format!("{seconds:.2} s")
    } else if abs >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else if abs >= 1e-6 {
        format!("{:.2} µs", seconds * 1e6)
    } else {
        format!("{:.2} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(gb_to_bytes(80.0), 80e9);
        assert_eq!(gbps_to_bytes_per_s(3.352), 3.352e9);
        assert_eq!(tflops_to_flops(0.5), 5e11);
        assert!((ms_to_s(s_to_ms(0.42)) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn byte_formatting_covers_ranges() {
        assert_eq!(format_bytes(500.0), "500 B");
        assert_eq!(format_bytes(2.5e6), "2.50 MB");
        assert_eq!(format_bytes(3.0e12), "3.00 TB");
        assert_eq!(format_bytes(1.2e15), "1.20 PB");
    }

    #[test]
    fn seconds_formatting_covers_ranges() {
        assert_eq!(format_seconds(2.0), "2.00 s");
        assert_eq!(format_seconds(5e-5), "50.00 µs");
        assert_eq!(format_seconds(3e-9), "3.00 ns");
    }
}

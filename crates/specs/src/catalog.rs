//! Concrete GPU catalogs: the H100 baseline, the paper's Table 1
//! configurations, and the GPU-generation history behind Figure 1.

use crate::gpu::GpuSpec;
use litegpu_fab::wafer::DieGeometry;

/// H100 die area, mm² (Hopper GH100).
pub const H100_DIE_AREA_MM2: f64 = 814.0;

/// H100 die aspect ratio (width/height) used for geometry modeling.
pub const H100_DIE_ASPECT: f64 = 1.1;

fn h100_die() -> DieGeometry {
    DieGeometry::with_aspect(H100_DIE_AREA_MM2, H100_DIE_ASPECT)
        .expect("H100 die constants are valid")
}

fn lite_die() -> DieGeometry {
    h100_die()
        .shrink(4)
        .expect("shrink(4) of a valid die is valid")
}

/// NVIDIA H100 SXM, the paper's baseline GPU (Table 1 row 1).
///
/// 2000 TFLOPS is the FP8 dense figure the paper uses; 132 SMs; 80 GB HBM3
/// at 3352 GB/s; 450 GB/s per-direction NVLink; clusters of up to 8.
pub fn h100() -> GpuSpec {
    GpuSpec {
        name: "H100".to_string(),
        tflops: 2000.0,
        sms: 132,
        mem_capacity_gb: 80.0,
        mem_bw_gbps: 3352.0,
        net_bw_gbps: 450.0,
        max_gpus: 8,
        tdp_w: 700.0,
        idle_power_w: 75.0,
        die: h100_die(),
        dies_per_package: 1,
    }
}

/// "Lite" (Table 1 row 2): H100 scaled to 1/4 in every capability.
pub fn lite_base() -> GpuSpec {
    GpuSpec {
        name: "Lite".to_string(),
        tflops: 500.0,
        sms: 33,
        mem_capacity_gb: 20.0,
        mem_bw_gbps: 838.0,
        net_bw_gbps: 112.5,
        max_gpus: 32,
        tdp_w: 175.0,
        idle_power_w: 19.0,
        die: lite_die(),
        dies_per_package: 1,
    }
}

/// "Lite+NetBW" (Table 1 row 3): network bandwidth doubled to 225 GB/s.
pub fn lite_net_bw() -> GpuSpec {
    let mut s = lite_base().renamed("Lite+NetBW");
    s.net_bw_gbps = 225.0;
    s
}

/// "Lite+NetBW+FLOPS" (Table 1 row 4): network doubled, sustained FLOPS
/// raised 10% by overclocking (easier cooling), memory bandwidth halved to
/// 419 GB/s — shoreline spent on network and compute instead of HBM.
pub fn lite_net_bw_flops() -> GpuSpec {
    let mut s = lite_base().renamed("Lite+NetBW+FLOPS");
    s.tflops = 550.0;
    s.net_bw_gbps = 225.0;
    s.mem_bw_gbps = 419.0;
    // Overclocking raises sustained power draw; cubic DVFS over the
    // dynamic fraction (see crate::power) gives ~+25% at +10% clock.
    s.tdp_w = 219.0;
    s
}

/// "Lite+MemBW" (Table 1 row 5): memory bandwidth doubled to 1675 GB/s,
/// spending the extra shoreline on HBM PHYs.
pub fn lite_mem_bw() -> GpuSpec {
    let mut s = lite_base().renamed("Lite+MemBW");
    s.mem_bw_gbps = 1675.0;
    s
}

/// "Lite+MemBW+NetBW" (Table 1 row 6): memory and network both doubled —
/// the variant that uses the full 2× shoreline budget.
pub fn lite_mem_bw_net_bw() -> GpuSpec {
    let mut s = lite_base().renamed("Lite+MemBW+NetBW");
    s.mem_bw_gbps = 1675.0;
    s.net_bw_gbps = 225.0;
    s
}

/// The complete Table 1, in the paper's row order.
pub fn table1() -> Vec<GpuSpec> {
    vec![
        h100(),
        lite_base(),
        lite_net_bw(),
        lite_net_bw_flops(),
        lite_mem_bw(),
        lite_mem_bw_net_bw(),
    ]
}

/// The GPU types compared in Figure 3a (prefill).
pub fn fig3a_gpu_types() -> Vec<GpuSpec> {
    vec![h100(), lite_base(), lite_net_bw(), lite_net_bw_flops()]
}

/// The GPU types compared in Figure 3b (decode).
pub fn fig3b_gpu_types() -> Vec<GpuSpec> {
    vec![h100(), lite_base(), lite_mem_bw(), lite_mem_bw_net_bw()]
}

/// One point in the Figure 1 GPU-evolution timeline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuGeneration {
    /// Product name.
    pub name: &'static str,
    /// Launch year.
    pub year: u32,
    /// Compute dies per package.
    pub compute_dies: u32,
    /// Total transistors, billions.
    pub transistors_b: f64,
    /// Total compute-silicon area per package, mm².
    pub die_area_mm2: f64,
    /// TDP, W.
    pub tdp_w: f64,
    /// HBM capacity, GB.
    pub hbm_gb: f64,
    /// HBM bandwidth, GB/s.
    pub hbm_bw_gbps: f64,
    /// Dense FP16-class TFLOPS (for cross-generation comparability).
    pub fp16_tflops: f64,
    /// Whether the package needs liquid cooling at reference density.
    pub liquid_cooled: bool,
}

/// The GPU-evolution timeline behind Figure 1: ever larger, denser, hotter
/// packages — followed by the Lite-GPU alternative point.
pub fn generations() -> Vec<GpuGeneration> {
    vec![
        GpuGeneration {
            name: "P100",
            year: 2016,
            compute_dies: 1,
            transistors_b: 15.3,
            die_area_mm2: 610.0,
            tdp_w: 300.0,
            hbm_gb: 16.0,
            hbm_bw_gbps: 732.0,
            fp16_tflops: 21.2,
            liquid_cooled: false,
        },
        GpuGeneration {
            name: "V100",
            year: 2017,
            compute_dies: 1,
            transistors_b: 21.1,
            die_area_mm2: 815.0,
            tdp_w: 300.0,
            hbm_gb: 32.0,
            hbm_bw_gbps: 900.0,
            fp16_tflops: 125.0,
            liquid_cooled: false,
        },
        GpuGeneration {
            name: "A100",
            year: 2020,
            compute_dies: 1,
            transistors_b: 54.2,
            die_area_mm2: 826.0,
            tdp_w: 400.0,
            hbm_gb: 80.0,
            hbm_bw_gbps: 2039.0,
            fp16_tflops: 312.0,
            liquid_cooled: false,
        },
        GpuGeneration {
            name: "H100",
            year: 2022,
            compute_dies: 1,
            transistors_b: 80.0,
            die_area_mm2: 814.0,
            tdp_w: 700.0,
            hbm_gb: 80.0,
            hbm_bw_gbps: 3352.0,
            fp16_tflops: 1000.0,
            liquid_cooled: false,
        },
        GpuGeneration {
            name: "B200",
            year: 2024,
            compute_dies: 2,
            transistors_b: 208.0,
            die_area_mm2: 1600.0,
            tdp_w: 1000.0,
            hbm_gb: 192.0,
            hbm_bw_gbps: 8000.0,
            fp16_tflops: 2250.0,
            liquid_cooled: true,
        },
        GpuGeneration {
            name: "Lite-H100 (proposed)",
            year: 2027,
            compute_dies: 1,
            transistors_b: 20.0,
            die_area_mm2: 203.5,
            tdp_w: 175.0,
            hbm_gb: 20.0,
            hbm_bw_gbps: 838.0,
            fp16_tflops: 250.0,
            liquid_cooled: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_exactly() {
        let t = table1();
        let expect: [(&str, f64, f64, f64, f64, u32); 6] = [
            ("H100", 2000.0, 80.0, 3352.0, 450.0, 8),
            ("Lite", 500.0, 20.0, 838.0, 112.5, 32),
            ("Lite+NetBW", 500.0, 20.0, 838.0, 225.0, 32),
            ("Lite+NetBW+FLOPS", 550.0, 20.0, 419.0, 225.0, 32),
            ("Lite+MemBW", 500.0, 20.0, 1675.0, 112.5, 32),
            ("Lite+MemBW+NetBW", 500.0, 20.0, 1675.0, 225.0, 32),
        ];
        assert_eq!(t.len(), expect.len());
        for (spec, (name, tflops, cap, mem, net, maxg)) in t.iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.tflops, tflops, "{name} TFLOPS");
            assert_eq!(spec.mem_capacity_gb, cap, "{name} capacity");
            assert_eq!(spec.mem_bw_gbps, mem, "{name} mem BW");
            assert_eq!(spec.net_bw_gbps, net, "{name} net BW");
            assert_eq!(spec.max_gpus, maxg, "{name} max GPUs");
        }
    }

    #[test]
    fn all_catalog_specs_validate() {
        for s in table1() {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn sm_budget_matches() {
        // 32 Lite GPUs carry the same total SMs as 8 H100s (132*8 = 33*32).
        let h = h100();
        let l = lite_base();
        assert_eq!(h.sms * h.max_gpus, l.sms * l.max_gpus);
    }

    #[test]
    fn lite_variants_fit_shoreline() {
        use crate::die::ShorelineBudget;
        for s in table1().iter().skip(1) {
            let b = ShorelineBudget::for_die(&s.die);
            b.check_allocation(s.mem_bw_gbps, s.net_bw_gbps)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn figure3_groups() {
        let names: Vec<_> = fig3a_gpu_types().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["H100", "Lite", "Lite+NetBW", "Lite+NetBW+FLOPS"]);
        let names: Vec<_> = fig3b_gpu_types().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["H100", "Lite", "Lite+MemBW", "Lite+MemBW+NetBW"]);
    }

    #[test]
    fn generations_are_chronological_and_growing() {
        let g = generations();
        // Drop the final speculative Lite point for the growth check.
        let real = &g[..g.len() - 1];
        for w in real.windows(2) {
            assert!(w[0].year <= w[1].year);
            assert!(w[0].transistors_b < w[1].transistors_b);
            assert!(w[0].tdp_w <= w[1].tdp_w);
        }
        // The story of Figure 1: the newest package is multi-die and liquid
        // cooled; the Lite proposal is neither.
        let b200 = &real[real.len() - 1];
        assert!(b200.compute_dies > 1 && b200.liquid_cooled);
        let lite = g.last().unwrap();
        assert_eq!(lite.compute_dies, 1);
        assert!(!lite.liquid_cooled);
    }
}

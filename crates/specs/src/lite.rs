//! Derivation of Lite-GPU variants from a parent GPU.
//!
//! §2 of the paper defines a Lite-GPU as "a single compute-die GPU package
//! where the die area is much smaller than that of state-of-the-art". The
//! construction here is the paper's: take a parent spec, split it `n` ways
//! (compute, SMs, memory capacity/bandwidth, network bandwidth and power
//! all divide by `n`), then optionally *customize* how the now-doubled
//! shoreline budget is spent (`+MemBW`, `+NetBW`) and whether the cooling
//! headroom is spent on a sustained overclock (`+FLOPS`). Every
//! customization is validated against the physical budgets
//! ([`crate::die::ShorelineBudget`], [`crate::cooling`]).

use crate::cooling::{self, CoolingClass};
use crate::die::ShorelineBudget;
use crate::gpu::GpuSpec;
use crate::power::PowerModel;
use crate::{check_positive, Result, SpecError};

/// A parent GPU together with a split factor.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LiteDerivation {
    /// The GPU being replaced (e.g. H100).
    pub parent: GpuSpec,
    /// How many Lite-GPUs replace one parent (the paper uses 4).
    pub split: u32,
}

/// How a derived Lite-GPU spends its shoreline and thermal headroom.
///
/// Factors are relative to the *proportional* (1/n) baseline: a
/// `mem_bw_factor` of 2.0 doubles memory bandwidth versus the plain Lite,
/// which is what the Table 1 `+MemBW` variant does.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LiteCustomization {
    /// Name for the resulting configuration.
    pub name: String,
    /// Memory bandwidth multiplier vs. proportional baseline.
    pub mem_bw_factor: f64,
    /// Network bandwidth multiplier vs. proportional baseline.
    pub net_bw_factor: f64,
    /// Sustained clock multiplier (raises FLOPS linearly, power cubically).
    pub clock_factor: f64,
}

impl LiteCustomization {
    /// The identity customization (plain "Lite").
    pub fn plain(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            mem_bw_factor: 1.0,
            net_bw_factor: 1.0,
            clock_factor: 1.0,
        }
    }
}

impl LiteDerivation {
    /// Creates a derivation; `split` must be ≥ 2 and the parent must be
    /// valid.
    pub fn new(parent: GpuSpec, split: u32) -> Result<Self> {
        parent.validate()?;
        if split < 2 {
            return Err(SpecError::InvalidParameter {
                name: "split",
                value: split as f64,
            });
        }
        Ok(Self { parent, split })
    }

    /// The proportional (1/n) Lite spec: every capability divided by the
    /// split factor, die shrunk by the split factor, fleet size multiplied.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_specs::{catalog, lite::LiteDerivation};
    /// let d = LiteDerivation::new(catalog::h100(), 4).unwrap();
    /// let lite = d.base("Lite").unwrap();
    /// assert_eq!(lite.tflops, 500.0);
    /// assert_eq!(lite.max_gpus, 32);
    /// ```
    pub fn base(&self, name: impl Into<String>) -> Result<GpuSpec> {
        let n = self.split as f64;
        let p = &self.parent;
        let spec = GpuSpec {
            name: name.into(),
            tflops: p.tflops / n,
            sms: (p.sms as f64 / n).round().max(1.0) as u32,
            mem_capacity_gb: p.mem_capacity_gb / n,
            mem_bw_gbps: p.mem_bw_gbps / n,
            net_bw_gbps: p.net_bw_gbps / n,
            max_gpus: p.max_gpus * self.split,
            tdp_w: p.tdp_w / n,
            idle_power_w: p.idle_power_w / n,
            die: p.die.shrink(self.split)?,
            dies_per_package: 1,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// A customized Lite spec, validated against the shoreline budget and
    /// the forced-air cooling envelope.
    ///
    /// Power is adjusted for the overclock using the cubic DVFS model, and
    /// for bandwidth deltas using a linear PHY-power estimate.
    pub fn customized(&self, c: &LiteCustomization) -> Result<GpuSpec> {
        check_positive("mem_bw_factor", c.mem_bw_factor)?;
        check_positive("net_bw_factor", c.net_bw_factor)?;
        check_positive("clock_factor", c.clock_factor)?;
        let mut spec = self.base(c.name.clone())?;
        spec.mem_bw_gbps *= c.mem_bw_factor;
        spec.net_bw_gbps *= c.net_bw_factor;
        spec.tflops *= c.clock_factor;

        // Shoreline feasibility.
        let budget = ShorelineBudget::for_die(&spec.die);
        budget.check_allocation(spec.mem_bw_gbps, spec.net_bw_gbps)?;

        // Power: core dynamic power scales cubically with clock; I/O PHY
        // power scales linearly with provisioned bandwidth. Assume ~15% of
        // the dynamic budget is I/O at baseline.
        let model = PowerModel::for_spec(&self.base("tmp")?);
        let io_fraction = 0.15;
        let core_dyn = model.dynamic_w * (1.0 - io_fraction);
        let io_dyn = model.dynamic_w * io_fraction;
        let bw_scale = (spec.mem_bw_gbps + spec.net_bw_gbps)
            / ((self.parent.mem_bw_gbps + self.parent.net_bw_gbps) / self.split as f64);
        spec.tdp_w = model.idle_w
            + core_dyn * c.clock_factor.powf(crate::power::DVFS_EXPONENT)
            + io_dyn * bw_scale;
        spec.idle_power_w = model.idle_w;

        // Cooling feasibility: a Lite-GPU must stay within forced air -
        // that is its whole point.
        let limit = CoolingClass::ForcedAir.limit_w();
        if spec.tdp_w > limit {
            return Err(SpecError::CoolingExceeded {
                power_w: spec.tdp_w,
                limit_w: limit,
            });
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Cooling-limited sustained overclock headroom of the base Lite spec.
    pub fn overclock_headroom(&self) -> Result<f64> {
        let base = self.base("tmp")?;
        Ok(cooling::assess(&base)?.max_sustained_clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn derivation() -> LiteDerivation {
        LiteDerivation::new(catalog::h100(), 4).unwrap()
    }

    #[test]
    fn base_matches_catalog_lite() {
        let lite = derivation().base("Lite").unwrap();
        let cat = catalog::lite_base();
        assert_eq!(lite.tflops, cat.tflops);
        assert_eq!(lite.sms, cat.sms);
        assert_eq!(lite.mem_capacity_gb, cat.mem_capacity_gb);
        assert_eq!(lite.mem_bw_gbps, cat.mem_bw_gbps);
        assert_eq!(lite.net_bw_gbps, cat.net_bw_gbps);
        assert_eq!(lite.max_gpus, cat.max_gpus);
        assert!((lite.tdp_w - cat.tdp_w).abs() < 1e-9);
    }

    #[test]
    fn split_must_be_at_least_two() {
        assert!(LiteDerivation::new(catalog::h100(), 1).is_err());
        assert!(LiteDerivation::new(catalog::h100(), 0).is_err());
    }

    #[test]
    fn customization_reproduces_table1_mem_bw_variant() {
        let d = derivation();
        let c = LiteCustomization {
            name: "Lite+MemBW".into(),
            mem_bw_factor: 2.0,
            net_bw_factor: 1.0,
            clock_factor: 1.0,
        };
        let spec = d.customized(&c).unwrap();
        let cat = catalog::lite_mem_bw();
        // 2 x 838 = 1676; the paper's Table 1 rounds to 1675.
        assert!((spec.mem_bw_gbps - cat.mem_bw_gbps).abs() <= 1.0);
        assert_eq!(spec.net_bw_gbps, cat.net_bw_gbps);
    }

    #[test]
    fn customization_reproduces_flops_variant() {
        let d = derivation();
        let c = LiteCustomization {
            name: "Lite+NetBW+FLOPS".into(),
            mem_bw_factor: 0.5,
            net_bw_factor: 2.0,
            clock_factor: 1.1,
        };
        let spec = d.customized(&c).unwrap();
        assert!((spec.tflops - 550.0).abs() < 1e-9);
        assert!((spec.mem_bw_gbps - 419.0).abs() < 1.0);
        assert!((spec.net_bw_gbps - 225.0).abs() < 1e-9);
        // Overclocked variant stays within forced air.
        assert!(spec.tdp_w <= CoolingClass::ForcedAir.limit_w());
    }

    #[test]
    fn infeasible_shoreline_rejected() {
        let d = derivation();
        let c = LiteCustomization {
            name: "absurd".into(),
            mem_bw_factor: 4.0, // 3352 GB/s on a quarter die: impossible.
            net_bw_factor: 2.0,
            clock_factor: 1.0,
        };
        assert!(matches!(
            d.customized(&c),
            Err(SpecError::ShorelineExceeded { .. })
        ));
    }

    #[test]
    fn infeasible_overclock_rejected() {
        let d = derivation();
        let c = LiteCustomization {
            name: "molten".into(),
            mem_bw_factor: 1.0,
            net_bw_factor: 1.0,
            clock_factor: 1.6, // Cubic power puts this past forced air.
        };
        assert!(matches!(
            d.customized(&c),
            Err(SpecError::CoolingExceeded { .. })
        ));
    }

    #[test]
    fn headroom_allows_ten_percent() {
        let h = derivation().overclock_headroom().unwrap();
        assert!(h >= 1.1, "headroom = {h}");
    }

    #[test]
    fn plain_customization_is_identity_on_bandwidth() {
        let d = derivation();
        let spec = d.customized(&LiteCustomization::plain("Lite")).unwrap();
        let base = d.base("Lite").unwrap();
        assert_eq!(spec.mem_bw_gbps, base.mem_bw_gbps);
        assert_eq!(spec.net_bw_gbps, base.net_bw_gbps);
        assert_eq!(spec.tflops, base.tflops);
        // TDP is re-derived through the power model but stays close.
        assert!((spec.tdp_w - base.tdp_w).abs() / base.tdp_w < 0.02);
    }

    #[test]
    fn sixteen_way_split_also_works() {
        let d = LiteDerivation::new(catalog::h100(), 16).unwrap();
        let s = d.base("Micro").unwrap();
        assert_eq!(s.max_gpus, 128);
        assert!((s.tflops - 125.0).abs() < 1e-9);
        assert!(s.validate().is_ok());
    }
}

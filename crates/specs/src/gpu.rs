//! The GPU specification type.

use crate::units;
use crate::{check_positive, Result, SpecError};
use litegpu_fab::wafer::DieGeometry;

/// A data-center GPU specification, in the units of the paper's Table 1.
///
/// `tflops` is peak dense throughput at the evaluation precision (FP8 for
/// the H100 generation, matching Table 1's "2000 TFLOPS"). `net_bw_gbps` is
/// per-direction off-package interconnect bandwidth (NVLink-class for the
/// H100 baseline, co-packaged optics for Lite variants).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuSpec {
    /// Human-readable configuration name (e.g. `"Lite+MemBW"`).
    pub name: String,
    /// Peak dense compute, TFLOPS, at the evaluation precision.
    pub tflops: f64,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// HBM capacity, GB.
    pub mem_capacity_gb: f64,
    /// HBM bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// Off-package network bandwidth, GB/s per direction.
    pub net_bw_gbps: f64,
    /// Largest cluster size considered for this GPU type (Table 1 "#Max").
    pub max_gpus: u32,
    /// Thermal design power, W.
    pub tdp_w: f64,
    /// Idle power, W.
    pub idle_power_w: f64,
    /// Compute die geometry.
    pub die: DieGeometry,
    /// Number of compute dies in the package (2 for Blackwell-class).
    pub dies_per_package: u32,
}

impl GpuSpec {
    /// Validates invariants: positive rates, SMs ≥ 1, idle ≤ TDP.
    pub fn validate(&self) -> Result<()> {
        check_positive("tflops", self.tflops)?;
        check_positive("mem_capacity_gb", self.mem_capacity_gb)?;
        check_positive("mem_bw_gbps", self.mem_bw_gbps)?;
        check_positive("net_bw_gbps", self.net_bw_gbps)?;
        check_positive("tdp_w", self.tdp_w)?;
        if self.sms == 0 {
            return Err(SpecError::InvalidParameter {
                name: "sms",
                value: 0.0,
            });
        }
        if self.max_gpus == 0 {
            return Err(SpecError::InvalidParameter {
                name: "max_gpus",
                value: 0.0,
            });
        }
        if self.idle_power_w < 0.0 || self.idle_power_w > self.tdp_w {
            return Err(SpecError::InvalidParameter {
                name: "idle_power_w",
                value: self.idle_power_w,
            });
        }
        Ok(())
    }

    /// Peak compute in FLOP/s.
    pub fn flops(&self) -> f64 {
        units::tflops_to_flops(self.tflops)
    }

    /// Memory bandwidth in bytes/s.
    pub fn mem_bytes_per_s(&self) -> f64 {
        units::gbps_to_bytes_per_s(self.mem_bw_gbps)
    }

    /// Network bandwidth in bytes/s (per direction).
    pub fn net_bytes_per_s(&self) -> f64 {
        units::gbps_to_bytes_per_s(self.net_bw_gbps)
    }

    /// Memory capacity in bytes.
    pub fn mem_capacity_bytes(&self) -> f64 {
        units::gb_to_bytes(self.mem_capacity_gb)
    }

    /// Peak compute per SM, FLOP/s.
    pub fn flops_per_sm(&self) -> f64 {
        self.flops() / self.sms as f64
    }

    /// Memory bandwidth-to-compute ratio, bytes per FLOP.
    ///
    /// The paper's Lite-GPU thesis is that this ratio can double when die
    /// area is quartered (shoreline effect).
    pub fn mem_bw_per_flop(&self) -> f64 {
        self.mem_bytes_per_s() / self.flops()
    }

    /// Network bandwidth-to-compute ratio, bytes per FLOP.
    pub fn net_bw_per_flop(&self) -> f64 {
        self.net_bytes_per_s() / self.flops()
    }

    /// Arithmetic intensity (FLOP/byte) at which this GPU transitions from
    /// memory-bound to compute-bound — the roofline ridge point.
    pub fn ridge_point(&self) -> f64 {
        self.flops() / self.mem_bytes_per_s()
    }

    /// Package power density, W per mm² of compute silicon.
    pub fn power_density_w_per_mm2(&self) -> f64 {
        self.tdp_w / (self.die.area_mm2() * self.dies_per_package as f64)
    }

    /// Returns a renamed copy (for derived configurations).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    #[test]
    fn h100_derived_quantities() {
        let h = catalog::h100();
        assert_eq!(h.flops(), 2.0e15);
        assert_eq!(h.mem_bytes_per_s(), 3.352e12);
        assert_eq!(h.mem_capacity_bytes(), 80e9);
        // Ridge point for FP8 H100: 2000e12/3352e9 ~ 597 FLOP/byte.
        assert!((h.ridge_point() - 596.7).abs() < 1.0);
        assert!((h.flops_per_sm() - 2.0e15 / 132.0).abs() < 1e6);
    }

    #[test]
    fn lite_has_double_mem_bw_headroom_variant() {
        let h = catalog::h100();
        let lite_mem = catalog::lite_mem_bw();
        let ratio = lite_mem.mem_bw_per_flop() / h.mem_bw_per_flop();
        assert!(
            (ratio - 2.0).abs() < 0.01,
            "Lite+MemBW doubles BW:compute, got {ratio}"
        );
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = catalog::h100();
        s.tflops = 0.0;
        assert!(s.validate().is_err());
        let mut s = catalog::h100();
        s.sms = 0;
        assert!(s.validate().is_err());
        let mut s = catalog::h100();
        s.idle_power_w = s.tdp_w + 1.0;
        assert!(s.validate().is_err());
        let mut s = catalog::h100();
        s.max_gpus = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn power_density_similar_big_vs_lite() {
        // Power scales with area in the base Lite derivation, so density is
        // preserved; the cooling win is per-package watts, not density.
        let h = catalog::h100();
        let l = catalog::lite_base();
        let rel = (h.power_density_w_per_mm2() - l.power_density_w_per_mm2()).abs()
            / h.power_density_w_per_mm2();
        assert!(rel < 0.05, "relative density delta {rel}");
    }

    #[test]
    fn renamed_preserves_numbers() {
        let h = catalog::h100();
        let r = h.renamed("H100-prime");
        assert_eq!(r.name, "H100-prime");
        assert_eq!(r.tflops, h.tflops);
    }
}

//! GPU power and DVFS modeling.
//!
//! §3 of the paper argues Lite-GPUs enable *finer-grained* power
//! management: a big GPU can only down-clock all of its SMs at once, while
//! a Lite cluster can down-clock (or power off) a subset of its GPUs. This
//! module provides the per-GPU power model those arguments are computed
//! with: a static (idle) floor plus a dynamic component that scales with
//! utilization and cubically with clock (the classic `P ∝ C·V²·f` with
//! voltage tracking frequency).

use crate::gpu::GpuSpec;
use crate::{check_positive, Result, SpecError};

/// Exponent of the dynamic-power/clock relationship (`P_dyn ∝ f^3`).
pub const DVFS_EXPONENT: f64 = 3.0;

/// A GPU power model: static floor + utilization- and clock-dependent
/// dynamic power.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerModel {
    /// Idle (static) power, W.
    pub idle_w: f64,
    /// Dynamic power at nominal clock and full utilization, W.
    pub dynamic_w: f64,
}

impl PowerModel {
    /// Builds the power model for a GPU spec (`dynamic = TDP − idle`).
    pub fn for_spec(spec: &GpuSpec) -> Self {
        Self {
            idle_w: spec.idle_power_w,
            dynamic_w: (spec.tdp_w - spec.idle_power_w).max(0.0),
        }
    }

    /// Power draw at a relative clock (`1.0` = nominal) and utilization
    /// (`0.0..=1.0`).
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_specs::{catalog, power::PowerModel};
    /// let m = PowerModel::for_spec(&catalog::h100());
    /// assert_eq!(m.power_w(1.0, 1.0), 700.0); // TDP at full tilt.
    /// assert_eq!(m.power_w(1.0, 0.0), 75.0);  // Idle floor.
    /// ```
    pub fn power_w(&self, clock_factor: f64, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let f = clock_factor.max(0.0);
        self.idle_w + self.dynamic_w * u * f.powf(DVFS_EXPONENT)
    }

    /// The clock factor at which total power reaches `limit_w` at full
    /// utilization — the sustained-overclock headroom under a given cooling
    /// envelope.
    pub fn max_clock_factor(&self, limit_w: f64) -> Result<f64> {
        check_positive("power limit_w", limit_w)?;
        if limit_w <= self.idle_w {
            return Err(SpecError::CoolingExceeded {
                power_w: self.idle_w,
                limit_w,
            });
        }
        if self.dynamic_w == 0.0 {
            return Ok(1.0);
        }
        Ok(((limit_w - self.idle_w) / self.dynamic_w).powf(1.0 / DVFS_EXPONENT))
    }

    /// Performance-per-watt factor relative to nominal, at the given clock
    /// and full utilization (performance assumed linear in clock).
    pub fn efficiency_factor(&self, clock_factor: f64) -> f64 {
        let p_nom = self.power_w(1.0, 1.0);
        let p = self.power_w(clock_factor, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        (clock_factor / p) / (1.0 / p_nom)
    }
}

/// Energy (J) for a GPU held at an operating point for `seconds`.
pub fn energy_j(model: &PowerModel, clock_factor: f64, utilization: f64, seconds: f64) -> f64 {
    model.power_w(clock_factor, utilization) * seconds.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use proptest::prelude::*;

    fn h100_model() -> PowerModel {
        PowerModel::for_spec(&catalog::h100())
    }

    #[test]
    fn tdp_at_nominal_full_load() {
        let m = h100_model();
        assert!((m.power_w(1.0, 1.0) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_overclock_cost() {
        let m = h100_model();
        // +10% clock costs ~33% more dynamic power.
        let p = m.power_w(1.1, 1.0);
        let expected = 75.0 + 625.0 * 1.1f64.powi(3);
        assert!((p - expected).abs() < 1e-9);
    }

    #[test]
    fn max_clock_factor_inverts_power() {
        let m = h100_model();
        let f = m.max_clock_factor(900.0).unwrap();
        assert!((m.power_w(f, 1.0) - 900.0).abs() < 1e-6);
        assert!(f > 1.0);
    }

    #[test]
    fn max_clock_rejects_sub_idle_limit() {
        let m = h100_model();
        assert!(m.max_clock_factor(50.0).is_err());
        assert!(m.max_clock_factor(0.0).is_err());
    }

    #[test]
    fn down_clocking_improves_efficiency() {
        // With a static floor, efficiency peaks below nominal clock but
        // moderate down-clocking still beats nominal perf/W.
        let m = h100_model();
        assert!(m.efficiency_factor(0.8) > 1.0);
    }

    #[test]
    fn lite_gpu_has_lower_idle_floor() {
        let h = PowerModel::for_spec(&catalog::h100());
        let l = PowerModel::for_spec(&catalog::lite_base());
        // Four Lite idle floors ~ one H100 idle floor, but each can be
        // dropped independently - the finer-granularity argument.
        assert!((4.0 * l.idle_w - h.idle_w).abs() / h.idle_w < 0.05);
    }

    #[test]
    fn energy_accumulates_linearly() {
        let m = h100_model();
        let e1 = energy_j(&m, 1.0, 1.0, 10.0);
        let e2 = energy_j(&m, 1.0, 1.0, 20.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert_eq!(energy_j(&m, 1.0, 1.0, -5.0), 0.0);
    }

    proptest! {
        #[test]
        fn power_monotone_in_clock_and_util(
            f1 in 0.1..2.0f64,
            df in 0.01..1.0f64,
            u in 0.0..1.0f64,
        ) {
            let m = h100_model();
            prop_assert!(m.power_w(f1 + df, u) >= m.power_w(f1, u) - 1e-9);
            prop_assert!(m.power_w(f1, u) >= m.power_w(f1, 0.0) - 1e-9);
        }

        #[test]
        fn power_bounded_by_idle_and_oc_tdp(f in 0.0..1.0f64, u in 0.0..1.0f64) {
            let m = h100_model();
            let p = m.power_w(f, u);
            prop_assert!(p >= m.idle_w - 1e-9);
            prop_assert!(p <= m.idle_w + m.dynamic_w + 1e-9);
        }
    }
}

//! Die geometry and the shoreline bandwidth budget.
//!
//! §2 of the paper: "as the die gets larger, its area increases faster than
//! its perimeter ('shoreline') that determines the bandwidth it can
//! utilize". Off-die bandwidth (HBM PHYs + SerDes/optical I/O) is limited
//! by the escape bandwidth per millimetre of die edge. Splitting one die of
//! area `A` into `n` dies of area `A/n` multiplies the total perimeter by
//! `√n`, so a 4-way split doubles the aggregate shoreline — that is the
//! paper's "2× bandwidth-to-compute" headroom, which the Table 1 variants
//! (`+MemBW`, `+NetBW`) spend in different ways.
//!
//! [`ShorelineBudget`] turns a die geometry plus a per-mm escape-bandwidth
//! figure into a checkable budget for memory + network allocations.

use crate::{check_positive, Result, SpecError};
use litegpu_fab::wafer::DieGeometry;

/// Escape bandwidth per millimetre of die edge, in GB/s per mm.
///
/// Calibrated so that an H100-class die (~814 mm², ~114 mm perimeter)
/// supports its 3352 GB/s of HBM plus 450 GB/s of NVLink with all four
/// edges in use: `(3352 + 450) / 114 ≈ 33.4`. Co-packaged optics is
/// expected to raise this by 1–2 orders of magnitude (§1); the default is
/// deliberately the *conservative electrical* figure so the Lite variants'
/// budgets are self-consistent with today's H100.
pub const DEFAULT_ESCAPE_GBPS_PER_MM: f64 = 33.4;

/// The off-die bandwidth budget implied by a die's shoreline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShorelineBudget {
    /// Die perimeter, mm.
    pub perimeter_mm: f64,
    /// Escape bandwidth per mm of edge, GB/s.
    pub escape_gbps_per_mm: f64,
}

impl ShorelineBudget {
    /// Budget for a die with the default (electrical H100-calibrated)
    /// escape bandwidth.
    pub fn for_die(die: &DieGeometry) -> Self {
        Self {
            perimeter_mm: die.perimeter_mm(),
            escape_gbps_per_mm: DEFAULT_ESCAPE_GBPS_PER_MM,
        }
    }

    /// Budget with an explicit escape-bandwidth figure (e.g. a co-packaged
    /// optics projection).
    pub fn with_escape(die: &DieGeometry, escape_gbps_per_mm: f64) -> Result<Self> {
        Ok(Self {
            perimeter_mm: die.perimeter_mm(),
            escape_gbps_per_mm: check_positive("escape_gbps_per_mm", escape_gbps_per_mm)?,
        })
    }

    /// Total off-die bandwidth this shoreline can carry, GB/s.
    pub fn total_gbps(&self) -> f64 {
        self.perimeter_mm * self.escape_gbps_per_mm
    }

    /// Checks that a memory + network bandwidth allocation fits the budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_fab::wafer::DieGeometry;
    /// use litegpu_specs::die::ShorelineBudget;
    ///
    /// let lite_die = DieGeometry::square(814.0 / 4.0).unwrap();
    /// let budget = ShorelineBudget::for_die(&lite_die);
    /// // Lite+MemBW+NetBW (Table 1): 1675 + 225 GB/s fits the doubled shoreline.
    /// assert!(budget.check_allocation(1675.0, 225.0).is_ok());
    /// // But 4x memory bandwidth would not.
    /// assert!(budget.check_allocation(3352.0, 225.0).is_err());
    /// ```
    pub fn check_allocation(&self, mem_gbps: f64, net_gbps: f64) -> Result<()> {
        let requested = mem_gbps + net_gbps;
        let budget = self.total_gbps();
        if requested > budget * (1.0 + 1e-9) {
            Err(SpecError::ShorelineExceeded {
                requested_gbps: requested,
                budget_gbps: budget,
            })
        } else {
            Ok(())
        }
    }

    /// Fraction of the budget an allocation consumes.
    pub fn utilization(&self, mem_gbps: f64, net_gbps: f64) -> f64 {
        (mem_gbps + net_gbps) / self.total_gbps()
    }
}

/// Shoreline-to-area gain from splitting a die into `n` equal parts:
/// `total_perimeter_after / perimeter_before = √n` (aspect preserved).
///
/// # Examples
///
/// ```
/// assert!((litegpu_specs::die::split_shoreline_gain(4) - 2.0).abs() < 1e-12);
/// ```
pub fn split_shoreline_gain(n: u32) -> f64 {
    (n.max(1) as f64).sqrt()
}

/// Bandwidth-to-compute gain from a split, assuming compute scales with
/// area and off-die bandwidth scales with shoreline: also `√n`.
///
/// The paper's headline example: `n = 4` → 2× bandwidth-to-compute.
pub fn split_bandwidth_to_compute_gain(n: u32) -> f64 {
    split_shoreline_gain(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn h100_die() -> DieGeometry {
        DieGeometry::square(814.0).unwrap()
    }

    #[test]
    fn h100_budget_covers_h100_allocation() {
        let b = ShorelineBudget::for_die(&h100_die());
        assert!(b.check_allocation(3352.0, 450.0).is_ok());
        assert!(b.utilization(3352.0, 450.0) > 0.95);
    }

    #[test]
    fn quarter_die_has_half_the_budget_each() {
        let b_full = ShorelineBudget::for_die(&h100_die());
        let b_lite = ShorelineBudget::for_die(&h100_die().shrink(4).unwrap());
        let ratio = b_lite.total_gbps() / b_full.total_gbps();
        assert!(
            (ratio - 0.5).abs() < 1e-9,
            "each lite die has half, so 4 dies have 2x"
        );
    }

    #[test]
    fn table1_variants_fit_lite_shoreline() {
        // Every Lite variant in Table 1 must be physically plausible.
        let lite_die = h100_die().shrink(4).unwrap();
        let b = ShorelineBudget::for_die(&lite_die);
        for (mem, net) in [
            (838.0, 112.5),  // Lite
            (838.0, 225.0),  // Lite+NetBW
            (419.0, 225.0),  // Lite+NetBW+FLOPS
            (1675.0, 112.5), // Lite+MemBW
            (1675.0, 225.0), // Lite+MemBW+NetBW
        ] {
            assert!(
                b.check_allocation(mem, net).is_ok(),
                "({mem}, {net}) must fit"
            );
        }
        // The doubled budget is essentially fully used by the biggest variant.
        assert!(b.utilization(1675.0, 225.0) > 0.95);
    }

    #[test]
    fn overallocation_rejected() {
        let b = ShorelineBudget::for_die(&h100_die().shrink(4).unwrap());
        assert!(matches!(
            b.check_allocation(3352.0, 450.0),
            Err(SpecError::ShorelineExceeded { .. })
        ));
    }

    #[test]
    fn split_gains() {
        assert!((split_shoreline_gain(1) - 1.0).abs() < 1e-12);
        assert!((split_shoreline_gain(4) - 2.0).abs() < 1e-12);
        assert!((split_shoreline_gain(16) - 4.0).abs() < 1e-12);
        assert_eq!(split_shoreline_gain(0), 1.0);
    }

    #[test]
    fn custom_escape_bandwidth() {
        let die = h100_die();
        let optical = ShorelineBudget::with_escape(&die, 334.0).unwrap();
        let electrical = ShorelineBudget::for_die(&die);
        assert!((optical.total_gbps() / electrical.total_gbps() - 10.0).abs() < 1e-9);
        assert!(ShorelineBudget::with_escape(&die, 0.0).is_err());
    }

    proptest! {
        #[test]
        fn split_gain_is_sqrt_n(n in 1u32..64) {
            let g = split_shoreline_gain(n);
            prop_assert!((g * g - n as f64).abs() < 1e-9);
        }

        #[test]
        fn utilization_consistent_with_check(
            mem in 1.0..5000.0f64,
            net in 1.0..2000.0f64,
            area in 100.0..1000.0f64,
        ) {
            let die = DieGeometry::square(area).unwrap();
            let b = ShorelineBudget::for_die(&die);
            let fits = b.check_allocation(mem, net).is_ok();
            let util = b.utilization(mem, net);
            prop_assert_eq!(fits, util <= 1.0 + 1e-9);
        }
    }
}

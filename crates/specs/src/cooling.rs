//! Cooling feasibility modeling.
//!
//! §2/§3 of the paper: "smaller single-die GPUs can be air-cooled
//! separately and even sustain higher clock frequencies", and a Lite-GPU
//! rack "can eliminate the need for liquid cooling racks". The decisive
//! quantity is per-package heat: a 700 W H100 needs exotic airflow or cold
//! plates, while a 175 W Lite-GPU sits comfortably in a forced-air
//! envelope, leaving thermal headroom that can be spent on sustained
//! overclocking (the `Lite+...+FLOPS` Table 1 variant).

use crate::gpu::GpuSpec;
use crate::power::PowerModel;
use crate::Result;

/// Cooling technology classes, ordered by capability.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum CoolingClass {
    /// Passive or low-airflow heatsink.
    PassiveAir,
    /// Forced air: server fans and conventional heatsinks.
    ForcedAir,
    /// High-end air: oversized heatsinks, very high CFM (DGX-class).
    AdvancedAir,
    /// Direct-to-chip liquid cold plates.
    Liquid,
    /// Immersion cooling.
    Immersion,
}

impl CoolingClass {
    /// Maximum per-package power this class can sustainably remove, W.
    pub fn limit_w(&self) -> f64 {
        match self {
            CoolingClass::PassiveAir => 75.0,
            CoolingClass::ForcedAir => 350.0,
            CoolingClass::AdvancedAir => 800.0,
            CoolingClass::Liquid => 1_500.0,
            CoolingClass::Immersion => 4_000.0,
        }
    }

    /// Relative facility cost factor (1.0 = forced air), capturing the
    /// plumbing/CDU overhead the paper wants to avoid.
    pub fn facility_cost_factor(&self) -> f64 {
        match self {
            CoolingClass::PassiveAir => 0.8,
            CoolingClass::ForcedAir => 1.0,
            CoolingClass::AdvancedAir => 1.3,
            CoolingClass::Liquid => 1.8,
            CoolingClass::Immersion => 2.5,
        }
    }

    /// The cheapest class able to remove `power_w` per package.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_specs::cooling::CoolingClass;
    /// assert_eq!(CoolingClass::required_for(175.0), CoolingClass::ForcedAir);
    /// assert_eq!(CoolingClass::required_for(700.0), CoolingClass::AdvancedAir);
    /// assert_eq!(CoolingClass::required_for(1200.0), CoolingClass::Liquid);
    /// ```
    pub fn required_for(power_w: f64) -> CoolingClass {
        [
            CoolingClass::PassiveAir,
            CoolingClass::ForcedAir,
            CoolingClass::AdvancedAir,
            CoolingClass::Liquid,
            CoolingClass::Immersion,
        ]
        .into_iter()
        .find(|c| c.limit_w() >= power_w)
        .unwrap_or(CoolingClass::Immersion)
    }

    /// All classes in capability order.
    pub fn all() -> [CoolingClass; 5] {
        [
            CoolingClass::PassiveAir,
            CoolingClass::ForcedAir,
            CoolingClass::AdvancedAir,
            CoolingClass::Liquid,
            CoolingClass::Immersion,
        ]
    }
}

/// A cooling assessment for a GPU spec.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoolingAssessment {
    /// Required cooling class at TDP.
    pub class: CoolingClass,
    /// Thermal headroom: class limit minus TDP, W.
    pub headroom_w: f64,
    /// Maximum sustained clock factor the headroom permits (full load).
    pub max_sustained_clock: f64,
}

/// Assesses the cooling needs and overclock headroom of a GPU.
pub fn assess(spec: &GpuSpec) -> Result<CoolingAssessment> {
    let class = CoolingClass::required_for(spec.tdp_w);
    let model = PowerModel::for_spec(spec);
    let max_sustained_clock = model.max_clock_factor(class.limit_w())?;
    Ok(CoolingAssessment {
        class,
        headroom_w: class.limit_w() - spec.tdp_w,
        max_sustained_clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn classes_ordered_by_limit() {
        let all = CoolingClass::all();
        for w in all.windows(2) {
            assert!(w[0].limit_w() < w[1].limit_w());
            assert!(w[0].facility_cost_factor() < w[1].facility_cost_factor());
        }
    }

    #[test]
    fn required_for_extremes() {
        assert_eq!(CoolingClass::required_for(10.0), CoolingClass::PassiveAir);
        assert_eq!(CoolingClass::required_for(9999.0), CoolingClass::Immersion);
    }

    #[test]
    fn lite_gpu_stays_on_forced_air() {
        let a = assess(&catalog::lite_base()).unwrap();
        assert_eq!(a.class, CoolingClass::ForcedAir);
        assert!(a.headroom_w > 100.0);
    }

    #[test]
    fn h100_needs_advanced_air_with_little_headroom() {
        let a = assess(&catalog::h100()).unwrap();
        assert_eq!(a.class, CoolingClass::AdvancedAir);
        // The paper: cutting-edge GPUs "already throttle compute frequency
        // to avoid overheating" - headroom is thin.
        assert!(a.max_sustained_clock < 1.1);
    }

    #[test]
    fn lite_overclock_headroom_covers_table1_flops_variant() {
        // Lite+NetBW+FLOPS needs a sustained +10% clock; the forced-air
        // envelope of a 175 W package must permit it.
        let a = assess(&catalog::lite_base()).unwrap();
        assert!(
            a.max_sustained_clock >= 1.10,
            "sustained clock headroom {}",
            a.max_sustained_clock
        );
    }

    #[test]
    fn overclocked_lite_variant_still_air_cooled() {
        let a = assess(&catalog::lite_net_bw_flops()).unwrap();
        assert!(a.class <= CoolingClass::ForcedAir);
    }
}

//! GPU hardware descriptions for the `litegpu` suite.
//!
//! This crate models the *hardware vocabulary* of the Lite-GPU paper
//! (HotOS '25): GPU specifications ([`gpu::GpuSpec`]), die geometry and the
//! shoreline (perimeter) bandwidth budget ([`die`]), the derivation of
//! Lite-GPU variants from a parent GPU ([`lite`]), power/DVFS models
//! ([`power`]), cooling feasibility ([`cooling`]) and the concrete catalogs
//! used by the paper's evaluation ([`catalog`]): NVIDIA H100 as baseline,
//! the six Table 1 configurations, and the GPU-generation history behind
//! Figure 1.
//!
//! # Examples
//!
//! ```
//! use litegpu_specs::catalog;
//!
//! let h100 = catalog::h100();
//! let lite = catalog::lite_base();
//! // A Lite-GPU is 1/4 of an H100 in compute, capacity and bandwidth.
//! assert_eq!(h100.sms, 4 * lite.sms);
//! assert!((h100.mem_bw_gbps / lite.mem_bw_gbps - 4.0).abs() < 0.01);
//! ```

pub mod catalog;
pub mod cooling;
pub mod die;
pub mod gpu;
pub mod lite;
pub mod power;
pub mod units;

pub use die::ShorelineBudget;
pub use gpu::GpuSpec;
pub use lite::{LiteCustomization, LiteDerivation};

/// Errors produced by spec construction and derivation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A parameter was non-positive or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A bandwidth allocation exceeds the die's shoreline budget.
    ShorelineExceeded {
        /// Requested total off-die bandwidth, GB/s.
        requested_gbps: f64,
        /// Available shoreline budget, GB/s.
        budget_gbps: f64,
    },
    /// A requested sustained clock exceeds the cooling envelope.
    CoolingExceeded {
        /// Power the configuration would draw, W.
        power_w: f64,
        /// Maximum power removable by the cooling class, W.
        limit_w: f64,
    },
    /// Underlying fab-model error.
    Fab(litegpu_fab::FabError),
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::InvalidParameter { name, value } => {
                write!(f, "invalid spec parameter {name} = {value}")
            }
            SpecError::ShorelineExceeded {
                requested_gbps,
                budget_gbps,
            } => write!(
                f,
                "requested off-die bandwidth {requested_gbps} GB/s exceeds shoreline budget \
                 {budget_gbps} GB/s"
            ),
            SpecError::CoolingExceeded { power_w, limit_w } => {
                write!(f, "power {power_w} W exceeds cooling limit {limit_w} W")
            }
            SpecError::Fab(e) => write!(f, "fab error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<litegpu_fab::FabError> for SpecError {
    fn from(e: litegpu_fab::FabError) -> Self {
        SpecError::Fab(e)
    }
}

/// Result alias for spec operations.
pub type Result<T> = core::result::Result<T, SpecError>;

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(SpecError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SpecError::ShorelineExceeded {
            requested_gbps: 2000.0,
            budget_gbps: 1900.0,
        };
        assert!(e.to_string().contains("shoreline"));
        let e = SpecError::CoolingExceeded {
            power_w: 800.0,
            limit_w: 700.0,
        };
        assert!(e.to_string().contains("cooling"));
    }

    #[test]
    fn fab_error_converts() {
        let fab = litegpu_fab::FabError::InvalidParameter {
            name: "x",
            value: 0.0,
        };
        let spec: SpecError = fab.into();
        assert!(matches!(spec, SpecError::Fab(_)));
    }
}

//! ASCII line/scatter charts for parameter sweeps.

use crate::{PlotError, Result};

/// A multi-series line chart over a shared x axis.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    xs: Vec<f64>,
    series: Vec<(String, Vec<f64>)>,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            xs: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the shared x coordinates.
    pub fn set_x(&mut self, xs: Vec<f64>) -> &mut Self {
        self.xs = xs;
        self
    }

    /// Adds a named series of y values (same length as x).
    pub fn add_series(&mut self, name: impl Into<String>, ys: Vec<f64>) -> &mut Self {
        self.series.push((name.into(), ys));
        self
    }

    /// Validates shapes.
    pub fn validate(&self) -> Result<()> {
        if self.xs.is_empty() || self.series.is_empty() {
            return Err(PlotError::Empty);
        }
        for (_, ys) in &self.series {
            if ys.len() != self.xs.len() {
                return Err(PlotError::ShapeMismatch {
                    expected: self.xs.len(),
                    actual: ys.len(),
                });
            }
        }
        Ok(())
    }

    /// Renders the chart onto a `width`×`height` character canvas with a
    /// legend. Errors render as an inline message (see
    /// [`crate::bar::GroupedBarChart::render`] for rationale).
    pub fn render(&self, width: usize, height: usize) -> String {
        if let Err(e) = self.validate() {
            return format!("[chart error: {e}]\n");
        }
        let (width, height) = (width.max(16), height.max(4));
        let xmin = self.xs.iter().copied().fold(f64::MAX, f64::min);
        let xmax = self.xs.iter().copied().fold(f64::MIN, f64::max);
        let ys_all: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, ys)| ys.iter().copied())
            .collect();
        let ymin = ys_all.iter().copied().fold(f64::MAX, f64::min).min(0.0);
        let ymax = ys_all.iter().copied().fold(f64::MIN, f64::max);
        let xspan = (xmax - xmin).max(1e-300);
        let yspan = (ymax - ymin).max(1e-300);
        let mut canvas = vec![vec![' '; width]; height];
        for (si, (_, ys)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (&x, &y) in self.xs.iter().zip(ys) {
                let cx = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
                let cy = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                canvas[row][cx.min(width - 1)] = glyph;
            }
        }
        let mut out = format!("{}  ({} vs {})\n", self.title, self.y_label, self.x_label);
        out.push_str(&format!("{ymax:>10.3} ┤"));
        out.push_str(&canvas[0].iter().collect::<String>());
        out.push('\n');
        for row in canvas.iter().take(height - 1).skip(1) {
            out.push_str(&format!("{:>10} ┤", ""));
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!("{ymin:>10.3} ┤"));
        out.push_str(&canvas[height - 1].iter().collect::<String>());
        out.push('\n');
        out.push_str(&format!(
            "{:>11}{}{}\n",
            "",
            format_args!("{xmin:<.3}"),
            format_args!("{:>width$.3}", xmax, width = width.saturating_sub(6))
        ));
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_glyphs_and_legend() {
        let mut c = LineChart::new("sweep", "batch", "tps");
        c.set_x(vec![1.0, 2.0, 4.0, 8.0]);
        c.add_series("h100", vec![1.0, 2.0, 3.5, 5.0]);
        c.add_series("lite", vec![0.5, 1.0, 2.0, 4.5]);
        let s = c.render(40, 10);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("h100") && s.contains("lite"));
        assert!(s.contains("sweep"));
    }

    #[test]
    fn shape_mismatch_renders_error() {
        let mut c = LineChart::new("bad", "x", "y");
        c.set_x(vec![1.0, 2.0]);
        c.add_series("s", vec![1.0]);
        assert!(c.render(20, 5).contains("chart error"));
    }

    #[test]
    fn flat_series_does_not_panic() {
        let mut c = LineChart::new("flat", "x", "y");
        c.set_x(vec![1.0, 2.0, 3.0]);
        c.add_series("s", vec![2.0, 2.0, 2.0]);
        let s = c.render(20, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn single_point_does_not_panic() {
        let mut c = LineChart::new("pt", "x", "y");
        c.set_x(vec![1.0]);
        c.add_series("s", vec![1.0]);
        let _ = c.render(20, 5);
    }
}

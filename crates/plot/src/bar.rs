//! Grouped horizontal bar charts (the shape of the paper's Figure 3).

use crate::{PlotError, Result};

/// A grouped bar chart: groups on the y axis (e.g. models), one bar per
/// series (e.g. GPU types) within each group.
#[derive(Debug, Clone)]
pub struct GroupedBarChart {
    title: String,
    groups: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
}

impl GroupedBarChart {
    /// Creates an empty chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            groups: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the group labels.
    pub fn set_groups(&mut self, groups: Vec<String>) -> &mut Self {
        self.groups = groups;
        self
    }

    /// Adds a named series; its values index the groups.
    pub fn add_series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.series.push((name.into(), values));
        self
    }

    /// Validates that every series matches the group count.
    pub fn validate(&self) -> Result<()> {
        if self.groups.is_empty() || self.series.is_empty() {
            return Err(PlotError::Empty);
        }
        for (_, v) in &self.series {
            if v.len() != self.groups.len() {
                return Err(PlotError::ShapeMismatch {
                    expected: self.groups.len(),
                    actual: v.len(),
                });
            }
        }
        Ok(())
    }

    /// Renders to text with bars up to `width` characters long.
    ///
    /// Bars are scaled to the maximum value across all series; each bar
    /// shows its numeric value. Rendering never fails: shape problems
    /// render as an error string so experiment binaries keep output
    /// flowing (validate separately in tests).
    pub fn render(&self, width: usize) -> String {
        if let Err(e) = self.validate() {
            return format!("[chart error: {e}]\n");
        }
        let width = width.max(10);
        let max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::MIN, f64::max)
            .max(1e-300);
        let label_w = self
            .series
            .iter()
            .map(|(n, _)| n.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        for (gi, group) in self.groups.iter().enumerate() {
            out.push_str(&format!("{group}\n"));
            for (name, values) in &self.series {
                let v = values[gi];
                let filled = ((v / max) * width as f64).round().max(0.0) as usize;
                let bar: String = "█".repeat(filled.min(width));
                out.push_str(&format!("  {name:<label_w$} |{bar:<width$}| {v:.3}\n",));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> GroupedBarChart {
        let mut c = GroupedBarChart::new("test chart");
        c.set_groups(vec!["g1".into(), "g2".into()]);
        c.add_series("a", vec![1.0, 0.5]);
        c.add_series("b", vec![0.25, 0.75]);
        c
    }

    #[test]
    fn renders_all_groups_and_series() {
        let s = chart().render(20);
        for needle in ["test chart", "g1", "g2", "a", "b", "1.000", "0.750"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn bar_lengths_proportional() {
        let s = chart().render(20);
        let lines: Vec<&str> = s.lines().collect();
        // Series "a" in g1 (value 1.0) must have the longest bar.
        let count = |l: &str| l.chars().filter(|&c| c == '█').count();
        let a_g1 = lines
            .iter()
            .find(|l| l.contains("a ") && l.contains("1.000"))
            .unwrap();
        let b_g1 = lines
            .iter()
            .find(|l| l.contains("b ") && l.contains("0.250"))
            .unwrap();
        assert_eq!(count(a_g1), 20);
        assert_eq!(count(b_g1), 5);
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut c = GroupedBarChart::new("bad");
        c.set_groups(vec!["g1".into(), "g2".into()]);
        c.add_series("a", vec![1.0]);
        assert!(matches!(
            c.validate(),
            Err(PlotError::ShapeMismatch {
                expected: 2,
                actual: 1
            })
        ));
        assert!(c.render(20).contains("chart error"));
    }

    #[test]
    fn empty_chart_detected() {
        let c = GroupedBarChart::new("empty");
        assert!(matches!(c.validate(), Err(PlotError::Empty)));
    }
}

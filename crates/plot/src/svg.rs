//! Minimal self-contained SVG writer for grouped bar charts.
//!
//! Produces a single `<svg>` document with no external dependencies, so
//! experiment binaries can drop vector figures under
//! `target/experiments/` for inspection.

use crate::bar::GroupedBarChart;
use crate::Result;

/// Palette for series fills.
const COLORS: [&str; 6] = [
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
];

/// Renders a grouped bar chart to an SVG document string.
///
/// Layout: vertical grouped bars, y scaled to the max value, labels under
/// each group, legend on the right.
pub fn grouped_bar_svg(
    chart_title: &str,
    groups: &[String],
    series: &[(String, Vec<f64>)],
) -> Result<String> {
    // Reuse GroupedBarChart's validation.
    let mut check = GroupedBarChart::new(chart_title);
    check.set_groups(groups.to_vec());
    for (n, v) in series {
        check.add_series(n.clone(), v.clone());
    }
    check.validate()?;

    let width = 720.0;
    let height = 360.0;
    let margin = 50.0;
    let plot_w = width - 2.0 * margin - 140.0; // Legend space on the right.
    let plot_h = height - 2.0 * margin;
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::MIN, f64::max)
        .max(1e-300);
    let group_w = plot_w / groups.len() as f64;
    let bar_w = (group_w * 0.8) / series.len() as f64;

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    ));
    svg.push_str(&format!(
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14" font-family="sans-serif">{}</text>"#,
        width / 2.0,
        xml_escape(chart_title)
    ));
    // Axes.
    svg.push_str(&format!(
        r#"<line x1="{margin}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        height - margin,
        margin + plot_w,
        height - margin
    ));
    svg.push_str(&format!(
        r#"<line x1="{margin}" y1="{margin}" x2="{margin}" y2="{}" stroke="black"/>"#,
        height - margin
    ));
    // Bars.
    for (gi, group) in groups.iter().enumerate() {
        let gx = margin + gi as f64 * group_w + group_w * 0.1;
        for (si, (_, values)) in series.iter().enumerate() {
            let v = values[gi];
            let h = (v / max) * plot_h;
            let x = gx + si as f64 * bar_w;
            let y = height - margin - h;
            svg.push_str(&format!(
                r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{h:.1}" fill="{}"/>"#,
                bar_w * 0.9,
                COLORS[si % COLORS.len()]
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="8" font-family="sans-serif">{v:.2}</text>"#,
                x + bar_w * 0.45,
                y - 3.0
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="11" font-family="sans-serif">{}</text>"#,
            gx + group_w * 0.4,
            height - margin + 16.0,
            xml_escape(group)
        ));
    }
    // Legend.
    for (si, (name, _)) in series.iter().enumerate() {
        let y = margin + si as f64 * 18.0;
        let x = margin + plot_w + 16.0;
        svg.push_str(&format!(
            r#"<rect x="{x}" y="{y}" width="12" height="12" fill="{}"/>"#,
            COLORS[si % COLORS.len()]
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="11" font-family="sans-serif">{}</text>"#,
            x + 16.0,
            y + 10.0,
            xml_escape(name)
        ));
    }
    svg.push_str("</svg>");
    Ok(svg)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<String>, Vec<(String, Vec<f64>)>) {
        (
            vec!["Llama3-70B".into(), "GPT3-175B".into()],
            vec![
                ("H100".into(), vec![1.0, 1.0]),
                ("Lite".into(), vec![0.95, 0.84]),
            ],
        )
    }

    #[test]
    fn produces_valid_looking_svg() {
        let (g, s) = sample();
        let svg = grouped_bar_svg("Figure 3a", &g, &s).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 4 + 2); // 4 bars + 2 legend keys.
        assert!(svg.contains("Llama3-70B"));
    }

    #[test]
    fn escapes_xml() {
        let (g, s) = sample();
        let svg = grouped_bar_svg("a < b & c", &g, &s).unwrap();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn shape_mismatch_propagates() {
        let g = vec!["g1".into(), "g2".into()];
        let s = vec![("x".into(), vec![1.0])];
        assert!(grouped_bar_svg("bad", &g, &s).is_err());
    }
}

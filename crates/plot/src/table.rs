//! Aligned text tables.

/// A simple text table with a header row and column alignment.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given headers.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_plot::table::TextTable;
    /// let mut t = TextTable::new(&["GPU", "TFLOPS"]);
    /// t.row(&["H100", "2000"]);
    /// let s = t.render();
    /// assert!(s.contains("H100"));
    /// assert!(s.lines().count() >= 3);
    /// ```
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells are blank; extras are truncated).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut r: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        r.resize(self.headers.len(), String::new());
        r.truncate(self.headers.len());
        self.rows.push(r);
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let mut r = cells;
        r.resize(self.headers.len(), String::new());
        r.truncate(self.headers.len());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, separator, rows. The first column is
    /// left-aligned, the rest right-aligned (numeric convention).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w.saturating_sub(cell.chars().count());
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width (alignment).
        assert_eq!(lines[0].chars().count(), lines[3].chars().count());
    }

    #[test]
    fn missing_and_extra_cells_normalized() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["only-one"]);
        t.row(&["1", "2", "3", "4-extra"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains("4-extra"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn unicode_width_counted_by_chars() {
        let mut t = TextTable::new(&["µs", "val"]);
        t.row(&["1.5 µs", "2"]);
        let s = t.render();
        assert!(s.contains("µs"));
    }
}

//! Rendering substrate: text tables, ASCII charts and SVG output.
//!
//! The Rust plotting ecosystem is awkward to use offline, and the paper's
//! figures are simple grouped bar charts — so the suite ships its own
//! minimal renderer. Every experiment binary renders through this crate:
//! [`table`] for Table-1-style output, [`bar`] for Figure-3-style grouped
//! bars, [`line`](mod@line) for sweeps, and [`svg`] for self-contained vector output
//! written under `target/experiments/`.
//!
//! # Examples
//!
//! ```
//! use litegpu_plot::bar::GroupedBarChart;
//!
//! let mut c = GroupedBarChart::new("Normalized Tokens/s/SM");
//! c.add_series("H100", vec![1.0, 1.0]);
//! c.add_series("Lite", vec![0.95, 0.74]);
//! c.set_groups(vec!["Llama3-70B".into(), "Llama3-405B".into()]);
//! let text = c.render(40);
//! assert!(text.contains("Llama3-70B"));
//! assert!(text.contains('█'));
//! ```

pub mod bar;
pub mod line;
pub mod svg;
pub mod table;

pub use bar::GroupedBarChart;
pub use line::LineChart;
pub use table::TextTable;

/// Errors produced by renderers.
#[derive(Debug, Clone, PartialEq)]
pub enum PlotError {
    /// Series lengths or group counts disagree.
    ShapeMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// Nothing to render.
    Empty,
}

impl core::fmt::Display for PlotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlotError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "series shape mismatch: expected {expected}, got {actual}"
                )
            }
            PlotError::Empty => write!(f, "nothing to render"),
        }
    }
}

impl std::error::Error for PlotError {}

/// Result alias for plot operations.
pub type Result<T> = core::result::Result<T, PlotError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = PlotError::ShapeMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(PlotError::Empty.to_string().contains("nothing"));
    }
}

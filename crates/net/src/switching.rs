//! Packet vs. circuit switching models.
//!
//! §3 of the paper (citing Sirius): "Circuit switching presents the
//! following benefits over packet switching: (i) more than 50% better
//! energy efficiency, (ii) lower latency, and (iii) more ports at high
//! bandwidth, which allows for larger and flatter networks." This module
//! encodes both switch classes with public parameters so the claim is a
//! computed comparison, not an assertion.

use crate::{check_non_negative, check_positive, Result};

/// An electrical packet switch (Tomahawk/Spectrum-class).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PacketSwitch {
    /// Port count at full bandwidth.
    pub radix: u32,
    /// Per-port bandwidth, GB/s per direction.
    pub port_bw_gbps: f64,
    /// Switching energy per bit (buffers, crossbar, SerDes), pJ.
    pub energy_pj_per_bit: f64,
    /// Port-to-port forwarding latency, seconds.
    pub latency_s: f64,
}

impl PacketSwitch {
    /// A 51.2 Tb/s-class electrical packet switch: 64 ports × 100 GB/s,
    /// ~18 pJ/bit end-to-end, ~500 ns port-to-port.
    pub fn tomahawk_class() -> Self {
        Self {
            radix: 64,
            port_bw_gbps: 100.0,
            energy_pj_per_bit: 18.0,
            latency_s: 500e-9,
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        check_positive("port_bw_gbps", self.port_bw_gbps)?;
        check_positive("energy_pj_per_bit", self.energy_pj_per_bit)?;
        check_non_negative("latency_s", self.latency_s)?;
        if self.radix == 0 {
            return Err(crate::NetError::InvalidParameter {
                name: "radix",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// Aggregate bandwidth, GB/s.
    pub fn aggregate_gbps(&self) -> f64 {
        self.radix as f64 * self.port_bw_gbps
    }

    /// Power at full load, W.
    pub fn power_at_full_load_w(&self) -> f64 {
        self.aggregate_gbps() * 1e9 * 8.0 * self.energy_pj_per_bit * 1e-12
    }
}

/// An optical circuit switch (Sirius/OCS-class): no per-packet processing,
/// so the data plane adds no energy beyond the endpoint lasers; the cost
/// is a reconfiguration delay when the circuit set changes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CircuitSwitch {
    /// Port count.
    pub radix: u32,
    /// Per-port bandwidth, GB/s per direction (rate-agnostic mirrors/AWGR,
    /// so this tracks the endpoint line rate).
    pub port_bw_gbps: f64,
    /// Endpoint energy attributable to the switched path, pJ/bit (tunable
    /// laser + SerDes share).
    pub energy_pj_per_bit: f64,
    /// Pass-through latency, seconds (propagation only).
    pub latency_s: f64,
    /// Reconfiguration time to change the circuit set, seconds.
    pub reconfigure_s: f64,
}

impl CircuitSwitch {
    /// A Sirius-class nanosecond-reconfigurable optical switch: high radix,
    /// ~8 pJ/bit at the endpoints, ~50 ns pass-through, ~100 ns retune.
    pub fn sirius_class() -> Self {
        Self {
            radix: 256,
            port_bw_gbps: 100.0,
            energy_pj_per_bit: 8.0,
            latency_s: 50e-9,
            reconfigure_s: 100e-9,
        }
    }

    /// A MEMS-based OCS (TPUv4-style): very high radix but slow (ms-scale)
    /// reconfiguration.
    pub fn mems_class() -> Self {
        Self {
            radix: 320,
            port_bw_gbps: 100.0,
            energy_pj_per_bit: 8.0,
            latency_s: 30e-9,
            reconfigure_s: 10e-3,
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        check_positive("port_bw_gbps", self.port_bw_gbps)?;
        check_positive("energy_pj_per_bit", self.energy_pj_per_bit)?;
        check_non_negative("latency_s", self.latency_s)?;
        check_non_negative("reconfigure_s", self.reconfigure_s)?;
        if self.radix == 0 {
            return Err(crate::NetError::InvalidParameter {
                name: "radix",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// Aggregate bandwidth, GB/s.
    pub fn aggregate_gbps(&self) -> f64 {
        self.radix as f64 * self.port_bw_gbps
    }

    /// Power at full load, W.
    pub fn power_at_full_load_w(&self) -> f64 {
        self.aggregate_gbps() * 1e9 * 8.0 * self.energy_pj_per_bit * 1e-12
    }
}

/// The computed §3 comparison.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwitchComparison {
    /// Energy-efficiency gain of circuit over packet:
    /// `1 − pJ_circuit / pJ_packet`.
    pub energy_saving: f64,
    /// Latency advantage: packet latency − circuit latency, seconds.
    pub latency_advantage_s: f64,
    /// Radix ratio (circuit / packet).
    pub radix_ratio: f64,
}

impl SwitchComparison {
    /// Compares a circuit switch against a packet switch.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_net::switching::{CircuitSwitch, PacketSwitch, SwitchComparison};
    /// let cmp = SwitchComparison::compare(
    ///     &CircuitSwitch::sirius_class(),
    ///     &PacketSwitch::tomahawk_class(),
    /// );
    /// // The paper's §3 claim: >50% better energy efficiency.
    /// assert!(cmp.energy_saving > 0.5);
    /// ```
    pub fn compare(circuit: &CircuitSwitch, packet: &PacketSwitch) -> Self {
        Self {
            energy_saving: 1.0 - circuit.energy_pj_per_bit / packet.energy_pj_per_bit,
            latency_advantage_s: packet.latency_s - circuit.latency_s,
            radix_ratio: circuit.radix as f64 / packet.radix as f64,
        }
    }

    /// True when all three of the paper's claims hold.
    pub fn paper_claims_hold(&self) -> bool {
        self.energy_saving > 0.5 && self.latency_advantage_s > 0.0 && self.radix_ratio > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_validate() {
        PacketSwitch::tomahawk_class().validate().unwrap();
        CircuitSwitch::sirius_class().validate().unwrap();
        CircuitSwitch::mems_class().validate().unwrap();
    }

    #[test]
    fn paper_claims_hold_for_sirius_class() {
        let cmp = SwitchComparison::compare(
            &CircuitSwitch::sirius_class(),
            &PacketSwitch::tomahawk_class(),
        );
        assert!(
            cmp.energy_saving > 0.5,
            "energy saving {}",
            cmp.energy_saving
        );
        assert!(cmp.latency_advantage_s > 0.0);
        assert!(cmp.radix_ratio > 1.0);
        assert!(cmp.paper_claims_hold());
    }

    #[test]
    fn mems_tradeoff_is_reconfiguration_time() {
        // TPU-style OCS: even higher radix, but ms-scale reconfiguration -
        // the "long reconfiguration periods" §5 attributes to TPU fabrics.
        let mems = CircuitSwitch::mems_class();
        let sirius = CircuitSwitch::sirius_class();
        assert!(mems.radix >= sirius.radix);
        assert!(mems.reconfigure_s > 1e4 * sirius.reconfigure_s);
    }

    #[test]
    fn power_at_full_load() {
        let p = PacketSwitch::tomahawk_class();
        // 6400 GB/s * 8 * 18 pJ = 921.6 W.
        assert!((p.power_at_full_load_w() - 921.6).abs() < 0.1);
        let c = CircuitSwitch::sirius_class();
        let per_gbps_packet = p.power_at_full_load_w() / p.aggregate_gbps();
        let per_gbps_circuit = c.power_at_full_load_w() / c.aggregate_gbps();
        assert!(per_gbps_circuit < 0.5 * per_gbps_packet);
    }

    #[test]
    fn invalid_radix_rejected() {
        let mut s = PacketSwitch::tomahawk_class();
        s.radix = 0;
        assert!(s.validate().is_err());
        let mut c = CircuitSwitch::sirius_class();
        c.radix = 0;
        assert!(c.validate().is_err());
    }
}

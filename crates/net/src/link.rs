//! Link technologies.
//!
//! §1 of the paper: "driven by recent advances in co-packaged optics, in
//! the next decade, we expect off-package communication bandwidth to
//! improve by 1–2 orders of magnitude with much better reach (10s of
//! meters), compared to copper-based communication". The three technology
//! points below encode that comparison with public figures; they feed the
//! shoreline budget (bandwidth density), the network energy model (pJ/bit)
//! and the topology model (reach limits fan-out).

use crate::{check_positive, Result};

/// A GPU-to-GPU link technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LinkTech {
    /// Electrical SerDes over copper (NVLink-class).
    Copper,
    /// Pluggable optical modules at the faceplate.
    PluggableOptics,
    /// Co-packaged optics: the optical engine sits millimetres from the
    /// compute die.
    CoPackagedOptics,
}

impl LinkTech {
    /// Usable reach in metres.
    pub fn reach_m(&self) -> f64 {
        match self {
            LinkTech::Copper => 3.0,
            LinkTech::PluggableOptics => 100.0,
            LinkTech::CoPackagedOptics => 50.0,
        }
    }

    /// Energy per transported bit, pJ (SerDes/laser + retiming).
    pub fn energy_pj_per_bit(&self) -> f64 {
        match self {
            LinkTech::Copper => 10.0,
            LinkTech::PluggableOptics => 15.0,
            LinkTech::CoPackagedOptics => 4.0,
        }
    }

    /// Bandwidth density at the die/package edge, GB/s per mm of shoreline.
    ///
    /// CPO's 1–2 orders of magnitude claim shows up here: its escape
    /// density dwarfs what copper pins manage.
    pub fn edge_density_gbps_per_mm(&self) -> f64 {
        match self {
            LinkTech::Copper => 33.4,
            LinkTech::PluggableOptics => 33.4, // Limited by the electrical escape.
            LinkTech::CoPackagedOptics => 500.0,
        }
    }

    /// Per-hop propagation + serialization latency floor, seconds.
    pub fn hop_latency_s(&self) -> f64 {
        match self {
            LinkTech::Copper => 300e-9,
            LinkTech::PluggableOptics => 600e-9,
            LinkTech::CoPackagedOptics => 250e-9,
        }
    }
}

/// A provisioned point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Link {
    /// Technology.
    pub tech: LinkTech,
    /// Provisioned bandwidth, bytes/s per direction.
    pub bandwidth_bytes_per_s: f64,
}

impl Link {
    /// Creates a link with the given per-direction bandwidth in GB/s.
    pub fn new(tech: LinkTech, bandwidth_gbps: f64) -> Result<Self> {
        Ok(Self {
            tech,
            bandwidth_bytes_per_s: check_positive("bandwidth_gbps", bandwidth_gbps)? * 1e9,
        })
    }

    /// Time to serialize + propagate a message of `bytes`, seconds.
    pub fn transfer_time_s(&self, bytes: f64) -> f64 {
        self.tech.hop_latency_s() + bytes.max(0.0) / self.bandwidth_bytes_per_s
    }

    /// Power drawn when carrying `bytes_per_s` of traffic, W.
    pub fn power_w(&self, bytes_per_s: f64) -> f64 {
        let bits_per_s = bytes_per_s.max(0.0) * 8.0;
        bits_per_s * self.tech.energy_pj_per_bit() * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpo_beats_copper_on_reach_and_energy() {
        // The paper's premise for Lite-GPU fabrics.
        assert!(LinkTech::CoPackagedOptics.reach_m() > 10.0 * LinkTech::Copper.reach_m());
        assert!(
            LinkTech::CoPackagedOptics.energy_pj_per_bit() < LinkTech::Copper.energy_pj_per_bit()
        );
        assert!(
            LinkTech::CoPackagedOptics.edge_density_gbps_per_mm()
                > 10.0 * LinkTech::Copper.edge_density_gbps_per_mm()
        );
    }

    #[test]
    fn pluggable_pays_energy_tax() {
        assert!(
            LinkTech::PluggableOptics.energy_pj_per_bit() > LinkTech::Copper.energy_pj_per_bit()
        );
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let l = Link::new(LinkTech::Copper, 450.0).unwrap();
        let t0 = l.transfer_time_s(0.0);
        assert!((t0 - 300e-9).abs() < 1e-15);
        let t1 = l.transfer_time_s(450e9);
        assert!((t1 - (300e-9 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn link_power_scales_with_traffic() {
        let l = Link::new(LinkTech::CoPackagedOptics, 225.0).unwrap();
        // 225 GB/s * 8 bits * 4 pJ/bit = 7.2 W at line rate.
        let p = l.power_w(225e9);
        assert!((p - 7.2).abs() < 1e-9);
        assert_eq!(l.power_w(-5.0), 0.0);
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        assert!(Link::new(LinkTech::Copper, 0.0).is_err());
        assert!(Link::new(LinkTech::Copper, f64::NAN).is_err());
    }
}

//! Cluster network topologies.
//!
//! §3 of the paper sketches the options for a Lite-GPU fabric: (a) a
//! direct-connect group replacing each big GPU ("an approximation to the
//! original network, though it eliminates the benefits of the smaller
//! blast radius"), (b) a flat switched network over the whole cluster, or
//! (c) a hierarchical fabric. This module models hop counts, switch
//! counts, bisection and blast-radius coupling for each.

use crate::{NetError, Result};

/// A Lite-GPU cluster fabric.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Topology {
    /// Full mesh among the `group_size` Lite-GPUs replacing one big GPU;
    /// inter-group traffic uses the pre-existing fabric.
    DirectGroup {
        /// Lite-GPUs per group (the replacement ratio, 4 in the paper).
        group_size: u32,
    },
    /// One flat switching stage over the whole cluster (possible with
    /// high-radix optical circuit switches).
    FlatSwitched {
        /// Switch radix.
        radix: u32,
    },
    /// Two-tier leaf/spine fabric.
    Hierarchical {
        /// Leaf switch radix.
        leaf_radix: u32,
        /// Spine switch radix.
        spine_radix: u32,
        /// Downlinks:uplinks oversubscription ratio (1.0 = non-blocking).
        oversubscription: f64,
    },
}

impl Topology {
    /// Validates structural parameters.
    pub fn validate(&self) -> Result<()> {
        match self {
            Topology::DirectGroup { group_size } => {
                if *group_size < 2 {
                    return Err(NetError::InvalidParameter {
                        name: "group_size",
                        value: *group_size as f64,
                    });
                }
            }
            Topology::FlatSwitched { radix } => {
                if *radix < 2 {
                    return Err(NetError::InvalidParameter {
                        name: "radix",
                        value: *radix as f64,
                    });
                }
            }
            Topology::Hierarchical {
                leaf_radix,
                spine_radix,
                oversubscription,
            } => {
                if *leaf_radix < 2 || *spine_radix < 2 {
                    return Err(NetError::InvalidParameter {
                        name: "leaf/spine radix",
                        value: *leaf_radix.min(spine_radix) as f64,
                    });
                }
                if !oversubscription.is_finite() || *oversubscription < 1.0 {
                    return Err(NetError::InvalidParameter {
                        name: "oversubscription",
                        value: *oversubscription,
                    });
                }
            }
        }
        Ok(())
    }

    /// Maximum endpoints the topology supports in one fabric instance.
    pub fn max_endpoints(&self) -> u32 {
        match self {
            Topology::DirectGroup { group_size } => *group_size,
            Topology::FlatSwitched { radix } => *radix,
            Topology::Hierarchical {
                leaf_radix,
                spine_radix,
                oversubscription,
            } => {
                // Each leaf splits its ports between hosts and uplinks
                // according to the oversubscription ratio; spines connect
                // one port per leaf.
                let down =
                    (*leaf_radix as f64 * oversubscription / (1.0 + oversubscription)).floor();
                (down as u32).saturating_mul(*spine_radix)
            }
        }
    }

    /// Switch hops between two endpoints (worst case).
    pub fn max_hops(&self) -> u32 {
        match self {
            Topology::DirectGroup { .. } => 0, // Point-to-point links.
            Topology::FlatSwitched { .. } => 1,
            Topology::Hierarchical { .. } => 3, // leaf -> spine -> leaf.
        }
    }

    /// Number of switches needed to connect `endpoints`.
    pub fn switch_count(&self, endpoints: u32) -> Result<u32> {
        self.validate()?;
        if endpoints > self.max_endpoints() {
            return Err(NetError::TopologyTooSmall {
                endpoints,
                capacity: self.max_endpoints(),
            });
        }
        Ok(match self {
            Topology::DirectGroup { .. } => 0,
            Topology::FlatSwitched { .. } => 1,
            Topology::Hierarchical {
                leaf_radix,
                oversubscription,
                ..
            } => {
                let down =
                    (*leaf_radix as f64 * oversubscription / (1.0 + oversubscription)).floor();
                let leaves = (endpoints as f64 / down).ceil() as u32;
                let uplinks_per_leaf = *leaf_radix - down as u32;
                leaves + uplinks_per_leaf.min(leaves.max(1))
            }
        })
    }

    /// Effective per-endpoint bandwidth fraction under a uniform all-to-all
    /// pattern (1.0 = full bisection).
    pub fn bisection_fraction(&self) -> f64 {
        match self {
            Topology::DirectGroup { .. } => 1.0,
            Topology::FlatSwitched { .. } => 1.0,
            Topology::Hierarchical {
                oversubscription, ..
            } => 1.0 / oversubscription,
        }
    }

    /// Whether a single endpoint failure can degrade endpoints outside its
    /// own group — the paper's blast-radius coupling: a direct-connect
    /// group dies together (its links are point-to-point), a switched
    /// fabric isolates failures.
    pub fn failure_couples_group(&self) -> bool {
        matches!(self, Topology::DirectGroup { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Topology::DirectGroup { group_size: 1 }.validate().is_err());
        assert!(Topology::FlatSwitched { radix: 1 }.validate().is_err());
        assert!(Topology::Hierarchical {
            leaf_radix: 32,
            spine_radix: 32,
            oversubscription: 0.5
        }
        .validate()
        .is_err());
        assert!(Topology::Hierarchical {
            leaf_radix: 32,
            spine_radix: 32,
            oversubscription: 1.0
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn direct_group_properties() {
        let t = Topology::DirectGroup { group_size: 4 };
        assert_eq!(t.max_hops(), 0);
        assert_eq!(t.switch_count(4).unwrap(), 0);
        assert!(t.failure_couples_group());
        assert_eq!(t.max_endpoints(), 4);
    }

    #[test]
    fn flat_switched_hosts_up_to_radix() {
        let t = Topology::FlatSwitched { radix: 256 };
        assert_eq!(t.max_endpoints(), 256);
        assert_eq!(t.switch_count(256).unwrap(), 1);
        assert!(t.switch_count(257).is_err());
        assert!(!t.failure_couples_group());
    }

    #[test]
    fn hierarchical_scales_beyond_flat() {
        let t = Topology::Hierarchical {
            leaf_radix: 64,
            spine_radix: 64,
            oversubscription: 1.0,
        };
        assert!(t.max_endpoints() > 1000);
        assert_eq!(t.max_hops(), 3);
        assert_eq!(t.bisection_fraction(), 1.0);
        let over = Topology::Hierarchical {
            leaf_radix: 64,
            spine_radix: 64,
            oversubscription: 2.0,
        };
        assert!(over.bisection_fraction() < 1.0);
        assert!(over.max_endpoints() > t.max_endpoints());
    }

    #[test]
    fn hierarchical_switch_count_grows_with_endpoints() {
        let t = Topology::Hierarchical {
            leaf_radix: 64,
            spine_radix: 64,
            oversubscription: 1.0,
        };
        let small = t.switch_count(64).unwrap();
        let big = t.switch_count(1024).unwrap();
        assert!(big > small);
    }

    #[test]
    fn high_radix_circuit_switch_flattens_the_lite_cluster() {
        // 32 Lite-GPUs (one H100 8-GPU cluster replaced) fit a single
        // Sirius-class switch: the flat network of §3.
        let ocs = crate::switching::CircuitSwitch::sirius_class();
        let t = Topology::FlatSwitched { radix: ocs.radix };
        assert!(t.max_endpoints() >= 32);
        assert_eq!(t.max_hops(), 1);
    }
}

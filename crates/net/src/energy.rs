//! Network energy accounting.
//!
//! §3: "the total traffic in a cluster and the total power consumption of
//! the network can be higher" with Lite-GPUs. This module converts traffic
//! volumes into joules/watts for a given link + switching technology so
//! that cluster-level energy comparisons (GPU savings vs. network
//! overhead) are computable.

use crate::link::LinkTech;
use crate::switching::{CircuitSwitch, PacketSwitch};
use crate::{check_non_negative, Result};

/// A network technology stack: endpoint links plus a switching layer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FabricTech {
    /// Electrical packet-switched fabric.
    PacketSwitched {
        /// Endpoint link technology.
        link: LinkTech,
        /// Switch model.
        switch: PacketSwitch,
    },
    /// Optical circuit-switched fabric.
    CircuitSwitched {
        /// Endpoint link technology.
        link: LinkTech,
        /// Switch model.
        switch: CircuitSwitch,
    },
}

impl FabricTech {
    /// Today's NVLink-class electrical fabric.
    pub fn electrical_packet() -> Self {
        FabricTech::PacketSwitched {
            link: LinkTech::Copper,
            switch: PacketSwitch::tomahawk_class(),
        }
    }

    /// The paper's proposal: co-packaged optics into an optical circuit
    /// switch.
    pub fn cpo_circuit() -> Self {
        FabricTech::CircuitSwitched {
            link: LinkTech::CoPackagedOptics,
            switch: CircuitSwitch::sirius_class(),
        }
    }

    /// Total energy per transported bit, pJ (endpoint + switching layer).
    pub fn energy_pj_per_bit(&self) -> f64 {
        match self {
            FabricTech::PacketSwitched { link, switch } => {
                link.energy_pj_per_bit() + switch.energy_pj_per_bit
            }
            FabricTech::CircuitSwitched { link, switch } => {
                link.energy_pj_per_bit() + switch.energy_pj_per_bit
            }
        }
    }

    /// Energy to move `bytes` across the fabric once, joules.
    pub fn transfer_energy_j(&self, bytes: f64) -> Result<f64> {
        check_non_negative("bytes", bytes)?;
        Ok(bytes * 8.0 * self.energy_pj_per_bit() * 1e-12)
    }

    /// Power at a sustained traffic rate, W.
    pub fn power_w(&self, bytes_per_s: f64) -> Result<f64> {
        self.transfer_energy_j(bytes_per_s)
    }
}

/// Cluster-level network energy summary for a workload interval.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkEnergy {
    /// Total bytes moved.
    pub bytes: f64,
    /// Total joules consumed by the fabric.
    pub joules: f64,
    /// Average power over the interval, W.
    pub avg_power_w: f64,
}

/// Computes fabric energy for `bytes` moved over `duration_s`.
pub fn network_energy(tech: &FabricTech, bytes: f64, duration_s: f64) -> Result<NetworkEnergy> {
    check_non_negative("duration_s", duration_s)?;
    let joules = tech.transfer_energy_j(bytes)?;
    let avg_power_w = if duration_s > 0.0 {
        joules / duration_s
    } else {
        0.0
    };
    Ok(NetworkEnergy {
        bytes,
        joules,
        avg_power_w,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpo_circuit_beats_electrical_packet_per_bit() {
        let old = FabricTech::electrical_packet();
        let new = FabricTech::cpo_circuit();
        // Paper: >50% energy-efficiency improvement fabric-wide.
        let saving = 1.0 - new.energy_pj_per_bit() / old.energy_pj_per_bit();
        assert!(saving > 0.5, "saving = {saving}");
    }

    #[test]
    fn transfer_energy_scales_linearly() {
        let f = FabricTech::cpo_circuit();
        let e1 = f.transfer_energy_j(1e9).unwrap();
        let e2 = f.transfer_energy_j(2e9).unwrap();
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
        assert!(f.transfer_energy_j(-1.0).is_err());
    }

    #[test]
    fn network_energy_summary() {
        let f = FabricTech::electrical_packet();
        let e = network_energy(&f, 1e12, 10.0).unwrap();
        assert!(e.joules > 0.0);
        assert!((e.avg_power_w - e.joules / 10.0).abs() < 1e-12);
        let z = network_energy(&f, 1e12, 0.0).unwrap();
        assert_eq!(z.avg_power_w, 0.0);
    }

    #[test]
    fn power_equals_energy_rate() {
        let f = FabricTech::cpo_circuit();
        // 100 GB/s at 12 pJ/bit-class -> order 10 W.
        let p = f.power_w(100e9).unwrap();
        assert!(p > 1.0 && p < 100.0, "p = {p}");
    }
}

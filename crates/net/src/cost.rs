//! Interconnect capital cost: what attaching a fleet of GPUs to the
//! serving fabric costs in dollars.
//!
//! §3's network story has a price tag the bandwidth models alone don't
//! expose: every Lite-GPU is its own fabric endpoint, so replacing one
//! big GPU with `n` small ones multiplies endpoint count by `n` while
//! (per Table 1) keeping aggregate bandwidth constant. This module
//! prices that trade — per-endpoint attach cost, per-GB/s optics and
//! switch-port silicon, and per-switch chassis overhead derived from a
//! [`Topology`]'s switch count — so the TCO optimizer can weigh the
//! extra endpoints against the §2 silicon savings in one unit.

use crate::topology::Topology;
use crate::{check_non_negative, Result};

/// Capital-cost model for one serving fabric.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FabricCostModel {
    /// Fabric topology (sets the switch count; endpoint counts beyond
    /// one fabric instance tile into additional instances).
    pub topology: Topology,
    /// Fixed cost per attached endpoint, USD (cage, cabling, bring-up).
    pub usd_per_endpoint: f64,
    /// Cost per GB/s of per-endpoint bandwidth, USD (optics plus the
    /// switch-port silicon it terminates on — this is the term Table 1
    /// holds constant across die sizes).
    pub usd_per_gb_s: f64,
    /// Fixed cost per switch, USD (chassis, management, power shelf).
    pub usd_per_switch: f64,
}

impl FabricCostModel {
    /// The default serving-fabric pricing: a non-blocking two-tier
    /// leaf/spine fabric with public-estimate optics and switch costs.
    pub fn paper_default() -> Self {
        Self {
            topology: Topology::Hierarchical {
                leaf_radix: 64,
                spine_radix: 64,
                oversubscription: 1.0,
            },
            usd_per_endpoint: 100.0,
            usd_per_gb_s: 8.0,
            usd_per_switch: 5_000.0,
        }
    }

    /// Validates the pricing parameters and the topology.
    pub fn validate(&self) -> Result<()> {
        self.topology.validate()?;
        check_non_negative("usd_per_endpoint", self.usd_per_endpoint)?;
        check_non_negative("usd_per_gb_s", self.usd_per_gb_s)?;
        check_non_negative("usd_per_switch", self.usd_per_switch)?;
        Ok(())
    }

    /// Capital cost of attaching `endpoints` GPUs, each with
    /// `per_endpoint_gb_s` of network bandwidth, USD.
    ///
    /// Endpoint counts beyond one fabric instance's capacity tile into
    /// additional instances (each with its own switches), so the cost is
    /// defined for any fleet size.
    pub fn capex_usd(&self, endpoints: u32, per_endpoint_gb_s: f64) -> Result<f64> {
        self.validate()?;
        check_non_negative("per_endpoint_gb_s", per_endpoint_gb_s)?;
        let capacity = self.topology.max_endpoints().max(1);
        let mut switches: u64 = 0;
        let mut left = endpoints;
        while left > 0 {
            let hosted = left.min(capacity);
            switches += self.topology.switch_count(hosted)? as u64;
            left -= hosted;
        }
        Ok(
            endpoints as f64 * (self.usd_per_endpoint + per_endpoint_gb_s * self.usd_per_gb_s)
                + switches as f64 * self.usd_per_switch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        FabricCostModel::paper_default().validate().unwrap();
    }

    #[test]
    fn rejects_negative_prices() {
        let mut m = FabricCostModel::paper_default();
        m.usd_per_gb_s = -1.0;
        assert!(m.validate().is_err());
        assert!(m.capex_usd(8, 450.0).is_err());
    }

    #[test]
    fn zero_endpoints_cost_nothing() {
        let m = FabricCostModel::paper_default();
        assert_eq!(m.capex_usd(0, 450.0).unwrap(), 0.0);
    }

    #[test]
    fn equal_aggregate_bandwidth_pays_for_extra_endpoints() {
        // Table 1's trade: 8 H100 endpoints at 450 GB/s vs 32 Lite
        // endpoints at 112.5 GB/s carry the same aggregate bandwidth, so
        // the bandwidth term matches exactly and the Lite fabric pays
        // only the per-endpoint attach overhead (plus any extra switch
        // share).
        let m = FabricCostModel::paper_default();
        let h100 = m.capex_usd(8, 450.0).unwrap();
        let lite = m.capex_usd(32, 112.5).unwrap();
        let bw_term = 8.0 * 450.0 * m.usd_per_gb_s;
        assert!(h100 >= bw_term && lite >= bw_term);
        assert!(
            lite > h100,
            "more endpoints must cost more: {lite} vs {h100}"
        );
        assert!(
            lite - h100 <= 24.0 * m.usd_per_endpoint + m.usd_per_switch,
            "the premium is bounded by attach cost plus one switch: {}",
            lite - h100
        );
    }

    #[test]
    fn oversized_fleets_tile_into_more_fabric_instances() {
        let m = FabricCostModel {
            topology: Topology::FlatSwitched { radix: 16 },
            ..FabricCostModel::paper_default()
        };
        // 40 endpoints on radix-16 switches need ceil(40/16) = 3 fabrics.
        let c = m.capex_usd(40, 100.0).unwrap();
        let expected =
            40.0 * (m.usd_per_endpoint + 100.0 * m.usd_per_gb_s) + 3.0 * m.usd_per_switch;
        assert!((c - expected).abs() < 1e-9, "got {c}, want {expected}");
    }

    #[test]
    fn switch_cost_scales_with_fleet() {
        let m = FabricCostModel::paper_default();
        let small = m.capex_usd(64, 112.5).unwrap();
        let big = m.capex_usd(1024, 112.5).unwrap();
        assert!(big > 16.0 * small * 0.9, "per-endpoint cost roughly flat");
    }
}

//! Collective-communication cost models.
//!
//! Tensor parallelism issues two all-reduces per transformer layer (§3,
//! §4). Their cost under the classic α-β model decides how far a model can
//! be distributed before the network — not compute — bounds throughput,
//! which is exactly the "Lite" vs. "Lite+NetBW" distinction in Figure 3a.
//!
//! Conventions: `n` = group size, `bytes` = logical payload per rank
//! (the tensor being reduced), `bw` = per-GPU injection bandwidth in
//! bytes/s per direction, `alpha` = per-hop latency in seconds.

use crate::{check_non_negative, check_positive, Result};

/// Collective operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CollectiveOp {
    /// Every rank ends with the element-wise reduction of all payloads.
    AllReduce,
    /// Every rank ends with the concatenation of all payloads.
    AllGather,
    /// Dual of all-gather: reduction scattered across ranks.
    ReduceScatter,
    /// Personalized exchange: every rank sends a distinct block to every
    /// other rank.
    AllToAll,
    /// One rank's payload delivered to all ranks.
    Broadcast,
}

/// Collective algorithm families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CollectiveAlgorithm {
    /// Bandwidth-optimal ring: `2(n−1)` steps for all-reduce.
    Ring,
    /// Latency-optimal recursive doubling/halving: `O(log n)` steps.
    Tree,
    /// Pick ring for large payloads, tree for small (the NCCL-style
    /// heuristic).
    Auto,
}

/// The cost of one collective execution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CollectiveCost {
    /// Wall-clock time, seconds.
    pub time_s: f64,
    /// Bytes injected into the network per GPU.
    pub wire_bytes_per_gpu: f64,
    /// Number of serialized communication steps.
    pub steps: u32,
}

/// Payload size (bytes) below which the tree algorithm wins under `Auto`.
pub const AUTO_TREE_THRESHOLD_BYTES: f64 = 256.0 * 1024.0;

/// Cost of a collective under the α-β model.
///
/// # Examples
///
/// ```
/// use litegpu_net::collective::{collective_cost, CollectiveAlgorithm, CollectiveOp};
/// let c = collective_cost(
///     CollectiveOp::AllReduce,
///     CollectiveAlgorithm::Ring,
///     8,
///     64.0e6,  // 64 MB gradient
///     450.0e9, // H100 NVLink per direction
///     300e-9,
/// ).unwrap();
/// // Ring all-reduce moves 2*(n-1)/n of the payload per GPU.
/// assert!((c.wire_bytes_per_gpu - 2.0 * 7.0 / 8.0 * 64.0e6).abs() < 1.0);
/// ```
pub fn collective_cost(
    op: CollectiveOp,
    algo: CollectiveAlgorithm,
    n: u32,
    bytes: f64,
    bw: f64,
    alpha: f64,
) -> Result<CollectiveCost> {
    check_non_negative("payload bytes", bytes)?;
    check_positive("bandwidth", bw)?;
    check_non_negative("alpha", alpha)?;
    if n <= 1 {
        return Ok(CollectiveCost {
            time_s: 0.0,
            wire_bytes_per_gpu: 0.0,
            steps: 0,
        });
    }
    let algo = match algo {
        CollectiveAlgorithm::Auto => {
            if bytes < AUTO_TREE_THRESHOLD_BYTES {
                CollectiveAlgorithm::Tree
            } else {
                CollectiveAlgorithm::Ring
            }
        }
        other => other,
    };
    let nf = n as f64;
    let (steps, wire_bytes) = match (op, algo) {
        (CollectiveOp::AllReduce, CollectiveAlgorithm::Ring) => {
            // Reduce-scatter + all-gather: 2(n−1) steps, each moving
            // bytes/n per GPU.
            (2 * (n - 1), 2.0 * (nf - 1.0) / nf * bytes)
        }
        (CollectiveOp::AllReduce, CollectiveAlgorithm::Tree) => {
            // Recursive halving+doubling: 2·log2(n) steps; wire traffic is
            // still ~2·bytes·(n−1)/n but pipelined in log-depth.
            (2 * log2_ceil(n), 2.0 * (nf - 1.0) / nf * bytes)
        }
        (CollectiveOp::AllGather, CollectiveAlgorithm::Ring)
        | (CollectiveOp::ReduceScatter, CollectiveAlgorithm::Ring) => {
            ((n - 1), (nf - 1.0) / nf * bytes)
        }
        (CollectiveOp::AllGather, CollectiveAlgorithm::Tree)
        | (CollectiveOp::ReduceScatter, CollectiveAlgorithm::Tree) => {
            (log2_ceil(n), (nf - 1.0) / nf * bytes)
        }
        (CollectiveOp::AllToAll, _) => {
            // Direct exchange: n−1 messages of bytes/n each.
            ((n - 1), (nf - 1.0) / nf * bytes)
        }
        (CollectiveOp::Broadcast, CollectiveAlgorithm::Ring) => ((n - 1), bytes),
        (CollectiveOp::Broadcast, CollectiveAlgorithm::Tree) => (log2_ceil(n), bytes),
        (op, CollectiveAlgorithm::Auto) => {
            unreachable!("auto resolved above for {op:?}")
        }
    };
    let time_s = steps as f64 * alpha + wire_bytes / bw;
    Ok(CollectiveCost {
        time_s,
        wire_bytes_per_gpu: wire_bytes,
        steps,
    })
}

/// Ring all-reduce wall-clock time (the common fast path).
pub fn ring_allreduce_time(n: u32, bytes: f64, bw: f64, alpha: f64) -> f64 {
    collective_cost(
        CollectiveOp::AllReduce,
        CollectiveAlgorithm::Ring,
        n,
        bytes,
        bw,
        alpha,
    )
    .map(|c| c.time_s)
    .unwrap_or(f64::INFINITY)
}

/// Auto-algorithm all-reduce time (NCCL-style heuristic) — what the
/// roofline engine uses for tensor-parallel collectives.
pub fn auto_allreduce_time(n: u32, bytes: f64, bw: f64, alpha: f64) -> f64 {
    collective_cost(
        CollectiveOp::AllReduce,
        CollectiveAlgorithm::Auto,
        n,
        bytes,
        bw,
        alpha,
    )
    .map(|c| c.time_s)
    .unwrap_or(f64::INFINITY)
}

fn log2_ceil(n: u32) -> u32 {
    32 - (n.max(1) - 1).leading_zeros()
}

/// Lower bound for any all-reduce: the payload must cross each GPU's
/// injection port at least `2(n−1)/n` times.
pub fn allreduce_lower_bound(n: u32, bytes: f64, bw: f64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    2.0 * (nf - 1.0) / nf * bytes / bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(8), 3);
        assert_eq!(log2_ceil(9), 4);
        assert_eq!(log2_ceil(32), 5);
    }

    #[test]
    fn single_rank_is_free() {
        for op in [
            CollectiveOp::AllReduce,
            CollectiveOp::AllGather,
            CollectiveOp::AllToAll,
        ] {
            let c = collective_cost(op, CollectiveAlgorithm::Ring, 1, 1e6, 1e9, 1e-6).unwrap();
            assert_eq!(c.time_s, 0.0);
            assert_eq!(c.wire_bytes_per_gpu, 0.0);
        }
    }

    #[test]
    fn ring_allreduce_matches_formula() {
        let c = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Ring,
            32,
            1e6,
            112.5e9,
            500e-9,
        )
        .unwrap();
        let expected = 62.0 * 500e-9 + 2.0 * (31.0 / 32.0) * 1e6 / 112.5e9;
        assert!((c.time_s - expected).abs() < 1e-12);
        assert_eq!(c.steps, 62);
    }

    #[test]
    fn tree_beats_ring_for_tiny_messages() {
        let small = 4096.0;
        let ring = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Ring,
            32,
            small,
            112.5e9,
            500e-9,
        )
        .unwrap();
        let tree = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Tree,
            32,
            small,
            112.5e9,
            500e-9,
        )
        .unwrap();
        assert!(tree.time_s < ring.time_s);
        // And Auto picks the tree.
        let auto = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Auto,
            32,
            small,
            112.5e9,
            500e-9,
        )
        .unwrap();
        assert_eq!(auto.steps, tree.steps);
    }

    #[test]
    fn ring_beats_tree_asymptotically_only_in_steps() {
        // Same wire bytes; ring pays more alpha.
        let big = 256e6;
        let ring = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Ring,
            16,
            big,
            450e9,
            300e-9,
        )
        .unwrap();
        let tree = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Tree,
            16,
            big,
            450e9,
            300e-9,
        )
        .unwrap();
        assert!((ring.wire_bytes_per_gpu - tree.wire_bytes_per_gpu).abs() < 1.0);
        assert!(ring.steps > tree.steps);
    }

    #[test]
    fn allgather_is_half_an_allreduce() {
        let ar = collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Ring,
            8,
            1e6,
            1e9,
            0.0,
        )
        .unwrap();
        let ag = collective_cost(
            CollectiveOp::AllGather,
            CollectiveAlgorithm::Ring,
            8,
            1e6,
            1e9,
            0.0,
        )
        .unwrap();
        assert!((ar.wire_bytes_per_gpu - 2.0 * ag.wire_bytes_per_gpu).abs() < 1e-9);
    }

    #[test]
    fn negative_payload_rejected() {
        assert!(collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Ring,
            8,
            -1.0,
            1e9,
            0.0
        )
        .is_err());
        assert!(collective_cost(
            CollectiveOp::AllReduce,
            CollectiveAlgorithm::Ring,
            8,
            1.0,
            0.0,
            0.0
        )
        .is_err());
    }

    proptest! {
        #[test]
        fn never_below_lower_bound(
            n in 2u32..64,
            bytes in 1.0..1e9f64,
            bw in 1e9..1e12f64,
            alpha in 0.0..1e-5f64,
        ) {
            for algo in [CollectiveAlgorithm::Ring, CollectiveAlgorithm::Tree, CollectiveAlgorithm::Auto] {
                let c = collective_cost(
                    CollectiveOp::AllReduce, algo, n, bytes, bw, alpha,
                ).unwrap();
                prop_assert!(c.time_s >= allreduce_lower_bound(n, bytes, bw) - 1e-15);
            }
        }

        #[test]
        fn time_monotone_in_payload(
            n in 2u32..64,
            b1 in 1.0..1e8f64,
            extra in 1.0..1e8f64,
        ) {
            let t1 = ring_allreduce_time(n, b1, 100e9, 1e-6);
            let t2 = ring_allreduce_time(n, b1 + extra, 100e9, 1e-6);
            prop_assert!(t2 > t1);
        }

        #[test]
        fn more_bandwidth_never_slower(
            n in 2u32..64,
            bytes in 1.0..1e8f64,
            bw in 1e9..1e11f64,
        ) {
            let t1 = ring_allreduce_time(n, bytes, bw, 1e-6);
            let t2 = ring_allreduce_time(n, bytes, 2.0 * bw, 1e-6);
            prop_assert!(t2 <= t1);
        }
    }
}

//! The design space: candidate Lite-GPU fleet configurations, expressed
//! in silicon-equal units so every candidate serves the same aggregate
//! demand on the same aggregate silicon.
//!
//! A [`DesignPoint`] is sized in *H100-equivalents*: a die divisor `d`
//! turns one H100-sized unit into `d` Lite-GPUs of `1/d` capability each
//! (§2's Table 1 scaling), so `instances = equiv × d`,
//! `cell_size = cell_units × d`, `spares = spare_units × d`, and each
//! instance carries `1/d` of the per-unit request rate. Comparisons
//! across die sizes therefore hold total silicon, total demand and
//! rack-level shape constant — the only things that vary are the
//! quantities the paper argues about: yield, failure blast radius, spare
//! granularity, gating granularity and fabric endpoint count.

use crate::{check, Result, TcoError};
use litegpu_cluster::power_mgmt::Policy;
use litegpu_cluster::FailureModel;
use litegpu_ctrl::CtrlConfig;
use litegpu_fleet::{FleetConfig, ServingMode, WorkloadSpec};
use litegpu_specs::{catalog, GpuSpec};

/// One candidate fleet design, in H100-equivalent units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DesignPoint {
    /// Die divisor `d`: each H100-equivalent becomes `d` GPUs of `1/d`
    /// capability (1 = the H100 baseline, 4 = the paper's Lite design).
    pub die_divisor: u32,
    /// Repair-cell size, H100-equivalents (the actual cell holds
    /// `cell_units × d` instances).
    pub cell_units: u32,
    /// Hot spares per cell, H100-equivalents (`spare_units × d` actual
    /// spare GPUs — the same spare *silicon* at every divisor).
    pub spare_units: u32,
    /// Phase-split serving (Splitwise-style prefill/decode pools) rather
    /// than monolithic continuous batching.
    pub split: bool,
    /// Serving-time DVFS on the controller (operating-point selection per
    /// pool) in addition to the power-gating policy.
    pub dvfs: bool,
}

impl DesignPoint {
    /// Stable compact label, e.g. `div4-cell8-sp2-split-dvfs`.
    pub fn label(&self) -> String {
        format!(
            "div{}-cell{}-sp{}-{}-{}",
            self.die_divisor,
            self.cell_units,
            self.spare_units,
            if self.split { "split" } else { "mono" },
            if self.dvfs { "dvfs" } else { "fixed" },
        )
    }

    /// Builds the candidate's fleet configuration over a sweep base:
    /// single-GPU Llama3-8B instances (the smallest catalog model fits
    /// one GPU of any divisor), demand and silicon scaled as described in
    /// the module docs, and the divisor-appropriate power policy —
    /// whole-fleet DVFS for the monolithic baseline, gate-to-efficiency
    /// for Lite designs (§3's granularity argument).
    pub fn fleet_config(&self, base: &SweepBase) -> Result<FleetConfig> {
        base.validate()?;
        check("cell_units", self.cell_units as f64, self.cell_units > 0)?;
        let d = self.die_divisor;
        let gpu = gpu_for_divisor(d)?;
        let mut cfg = FleetConfig::h100_demo();
        cfg.failure = FailureModel::default_for(&gpu);
        cfg.gpu = gpu;
        cfg.arch = litegpu_workload::models::llama3_8b();
        cfg.gpus_per_instance = 1;
        cfg.instances = base.equiv_instances * d;
        cfg.cell_size = self.cell_units * d;
        cfg.spares_per_cell = self.spare_units * d;
        cfg.workload = WorkloadSpec::multi_tenant_demo(base.rate_per_equiv / d as f64);
        cfg.horizon_s = base.hours * 3600.0;
        cfg.failure_acceleration = base.accel;
        let policy = if d == 1 {
            Policy::DvfsAll
        } else {
            Policy::GateToEfficiency
        };
        let ctrl = CtrlConfig::demo(policy);
        cfg.ctrl = Some(if self.dvfs { ctrl.with_dvfs() } else { ctrl });
        cfg.serving = if self.split {
            ServingMode::split_demo(&cfg.gpu, cfg.gpus_per_instance)
        } else {
            ServingMode::Monolithic
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Shared sweep parameters: the demand and horizon every candidate
/// serves, in H100-equivalent units.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepBase {
    /// Fleet size in H100-equivalent instances.
    pub equiv_instances: u32,
    /// Request rate per H100-equivalent, req/s (divisor-`d` instances
    /// each carry `1/d` of this, so total demand is constant).
    pub rate_per_equiv: f64,
    /// Simulated horizon, hours.
    pub hours: f64,
    /// Failure-rate acceleration (compresses years of AFR into the
    /// horizon).
    pub accel: f64,
}

impl SweepBase {
    /// Validates the sweep parameters.
    pub fn validate(&self) -> Result<()> {
        check(
            "equiv_instances",
            self.equiv_instances as f64,
            self.equiv_instances > 0,
        )?;
        check(
            "rate_per_equiv",
            self.rate_per_equiv,
            self.rate_per_equiv.is_finite() && self.rate_per_equiv > 0.0,
        )?;
        check(
            "hours",
            self.hours,
            self.hours.is_finite() && self.hours > 0.0,
        )?;
        check(
            "accel",
            self.accel,
            self.accel.is_finite() && self.accel >= 0.0,
        )
    }
}

/// The GPU a die divisor buys: the catalog H100 at `d = 1`, the catalog
/// Lite at `d = 4`, and for other divisors the H100 uniformly scaled to
/// `1/d` in every capability (Table 1's construction), die area included.
pub fn gpu_for_divisor(d: u32) -> Result<GpuSpec> {
    if d == 0 {
        return Err(TcoError::InvalidParameter {
            name: "die_divisor",
            value: 0.0,
        });
    }
    let spec = match d {
        1 => catalog::h100(),
        4 => catalog::lite_base(),
        _ => {
            let h = catalog::h100();
            let df = d as f64;
            GpuSpec {
                name: format!("H100/{d}"),
                tflops: h.tflops / df,
                sms: (h.sms / d).max(1),
                mem_capacity_gb: h.mem_capacity_gb / df,
                mem_bw_gbps: h.mem_bw_gbps / df,
                net_bw_gbps: h.net_bw_gbps / df,
                max_gpus: h.max_gpus * d,
                tdp_w: h.tdp_w / df,
                idle_power_w: h.idle_power_w / df,
                die: h.die.shrink(d)?,
                dies_per_package: 1,
            }
        }
    };
    spec.validate()?;
    Ok(spec)
}

/// The full cartesian design space over the given axes, in a fixed
/// deterministic order (divisor-major, dvfs-minor).
pub fn design_space(
    die_divisors: &[u32],
    cell_units: &[u32],
    spare_units: &[u32],
    splits: &[bool],
    dvfs: &[bool],
) -> Vec<DesignPoint> {
    let mut out = Vec::new();
    for &die_divisor in die_divisors {
        for &cell in cell_units {
            for &sp in spare_units {
                for &split in splits {
                    for &dv in dvfs {
                        out.push(DesignPoint {
                            die_divisor,
                            cell_units: cell,
                            spare_units: sp,
                            split,
                            dvfs: dv,
                        });
                    }
                }
            }
        }
    }
    out
}

/// The standard sweep grid: {1, 4} die divisors × {4, 8} cell shapes ×
/// {0, 1, 2} spare policies × {mono, split} × {DVFS off, on} — 48
/// candidates.
pub fn standard_grid() -> Vec<DesignPoint> {
    design_space(&[1, 4], &[4, 8], &[0, 1, 2], &[false, true], &[false, true])
}

/// The CI smoke grid: one cell shape (8 equivalents), 24 candidates —
/// still ≥ 2 die sizes × ≥ 2 spare policies × both serving modes × both
/// DVFS settings.
pub fn smoke_grid() -> Vec<DesignPoint> {
    design_space(&[1, 4], &[8], &[0, 1, 2], &[false, true], &[false, true])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SweepBase {
        SweepBase {
            equiv_instances: 8,
            rate_per_equiv: 2.0,
            hours: 0.5,
            accel: 2_000.0,
        }
    }

    #[test]
    fn divisor_endpoints_come_from_the_catalog() {
        assert_eq!(gpu_for_divisor(1).unwrap(), catalog::h100());
        assert_eq!(gpu_for_divisor(4).unwrap(), catalog::lite_base());
        assert!(gpu_for_divisor(0).is_err());
    }

    #[test]
    fn derived_divisors_scale_uniformly() {
        let h = catalog::h100();
        let g = gpu_for_divisor(2).unwrap();
        assert_eq!(g.name, "H100/2");
        assert_eq!(g.tflops, h.tflops / 2.0);
        assert_eq!(g.tdp_w, h.tdp_w / 2.0);
        assert_eq!(g.max_gpus, h.max_gpus * 2);
        assert!((g.die.area_mm2() - h.die.area_mm2() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_config_holds_silicon_and_demand_constant() {
        let p = DesignPoint {
            die_divisor: 4,
            cell_units: 8,
            spare_units: 1,
            split: false,
            dvfs: false,
        };
        let cfg = p.fleet_config(&base()).unwrap();
        assert_eq!(cfg.instances, 32);
        assert_eq!(cfg.cell_size, 32);
        assert_eq!(cfg.spares_per_cell, 4);
        assert_eq!(cfg.gpus_per_instance, 1);
        assert_eq!(cfg.gpu.name, "Lite");
        // The baseline serves the same demand on the same silicon.
        let b = DesignPoint {
            die_divisor: 1,
            ..p
        };
        let bcfg = b.fleet_config(&base()).unwrap();
        assert_eq!(bcfg.instances, 8);
        assert_eq!(bcfg.cell_size, 8);
        assert_eq!(bcfg.spares_per_cell, 1);
        // Rate per instance scales down 4x; total demand matches.
        assert!(
            (cfg.workload.rate_per_instance_s * 4.0 - bcfg.workload.rate_per_instance_s).abs()
                < 1e-12
        );
    }

    #[test]
    fn policies_follow_the_divisor() {
        let mk = |d, dvfs| {
            DesignPoint {
                die_divisor: d,
                cell_units: 8,
                spare_units: 1,
                split: false,
                dvfs,
            }
            .fleet_config(&base())
            .unwrap()
        };
        let h = mk(1, false);
        let l = mk(4, true);
        assert_eq!(
            h.ctrl.as_ref().unwrap().power.as_ref().unwrap().policy,
            Policy::DvfsAll
        );
        assert_eq!(
            l.ctrl.as_ref().unwrap().power.as_ref().unwrap().policy,
            Policy::GateToEfficiency
        );
        assert!(h.ctrl.as_ref().unwrap().dvfs.is_none());
        assert!(l.ctrl.as_ref().unwrap().dvfs.is_some());
    }

    #[test]
    fn grids_have_the_advertised_shape() {
        let std = standard_grid();
        let smoke = smoke_grid();
        assert_eq!(std.len(), 48);
        assert_eq!(smoke.len(), 24);
        for grid in [&std, &smoke] {
            let divisors: std::collections::BTreeSet<u32> =
                grid.iter().map(|p| p.die_divisor).collect();
            let spares: std::collections::BTreeSet<u32> =
                grid.iter().map(|p| p.spare_units).collect();
            assert!(divisors.len() >= 2, "≥ 2 die sizes");
            assert!(spares.len() >= 2, "≥ 2 spare policies");
            assert!(grid.iter().any(|p| p.split) && grid.iter().any(|p| !p.split));
            assert!(grid.iter().any(|p| p.dvfs) && grid.iter().any(|p| !p.dvfs));
        }
        // Labels are unique — the grid has no duplicate candidates.
        let labels: std::collections::BTreeSet<String> = std.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), std.len());
    }

    #[test]
    fn invalid_bases_rejected() {
        let mut b = base();
        b.rate_per_equiv = 0.0;
        assert!(b.validate().is_err());
        b = base();
        b.hours = f64::NAN;
        assert!(b.validate().is_err());
        b = base();
        b.equiv_instances = 0;
        assert!(b.validate().is_err());
    }
}

//! The end-to-end answer to the paper's title question: dollars per
//! delivered SLO-compliant token, across the Lite-GPU design space.
//!
//! Every other crate in the suite prices one slice of the trade —
//! `litegpu_fab` the yield-adjusted silicon, `litegpu_net` the fabric,
//! `litegpu_cluster` the power books, `litegpu_fleet` the serving
//! behaviour under failures and SLOs. This crate is the objective that
//! combines them: a deterministic design-space optimizer that sweeps die
//! size, cell shape, spare policy, serving mode and DVFS policy, prices
//! each candidate's **capex** (yield-adjusted packages, interconnect,
//! power provisioning + host amortization, spare silicon) and **opex**
//! (the simulator's integer-joule energy books at a $/kWh tariff),
//! simulates the candidate fleet under the standard multi-tenant
//! workload, and divides by the tokens that actually met their tenants'
//! SLOs.
//!
//! The sweep is embarrassingly parallel and deterministically merged:
//! candidates are evaluated by a work-stealing thread pool but results
//! are reassembled in design order, and each candidate's simulation runs
//! at a fixed shard/thread shape — so the resulting [`TcoReport`] JSON
//! is byte-identical at any `--threads` setting, the same discipline the
//! fleet engine applies to its shard merge.
//!
//! # Example
//!
//! ```
//! use litegpu_tco::{evaluate_sweep, pareto, smoke_grid, SweepBase, TcoModel};
//!
//! let base = SweepBase { equiv_instances: 4, rate_per_equiv: 2.0, hours: 0.1, accel: 2_000.0 };
//! let designs = smoke_grid();
//! let points = evaluate_sweep(&designs[..2], &base, &TcoModel::paper_default(), 42, 2).unwrap();
//! assert_eq!(points.len(), 2);
//! assert!(!pareto(&points).is_empty());
//! ```

pub mod design;
pub mod frontier;
pub mod model;

pub use design::{
    design_space, gpu_for_divisor, smoke_grid, standard_grid, DesignPoint, SweepBase,
};
pub use frontier::{
    evaluate_sweep, evaluate_sweep_with, pareto, FrontierPoint, Headline, TcoReport,
};
pub use model::{slo_tokens, CostBreakdown, TcoModel};

/// Errors produced by TCO model construction and sweep evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum TcoError {
    /// A silicon-cost model rejected its parameters.
    Fab(litegpu_fab::FabError),
    /// A network-cost model rejected its parameters.
    Net(litegpu_net::NetError),
    /// A power model rejected its parameters.
    Cluster(litegpu_cluster::ClusterError),
    /// A derived GPU spec failed validation.
    Spec(litegpu_specs::SpecError),
    /// A candidate fleet failed to configure or simulate.
    Fleet(litegpu_fleet::FleetError),
    /// A TCO parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl core::fmt::Display for TcoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TcoError::Fab(e) => write!(f, "fab: {e}"),
            TcoError::Net(e) => write!(f, "net: {e}"),
            TcoError::Cluster(e) => write!(f, "cluster: {e}"),
            TcoError::Spec(e) => write!(f, "spec: {e}"),
            TcoError::Fleet(e) => write!(f, "fleet: {e}"),
            TcoError::InvalidParameter { name, value } => {
                write!(f, "invalid TCO parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for TcoError {}

impl From<litegpu_fab::FabError> for TcoError {
    fn from(e: litegpu_fab::FabError) -> Self {
        TcoError::Fab(e)
    }
}

impl From<litegpu_net::NetError> for TcoError {
    fn from(e: litegpu_net::NetError) -> Self {
        TcoError::Net(e)
    }
}

impl From<litegpu_cluster::ClusterError> for TcoError {
    fn from(e: litegpu_cluster::ClusterError) -> Self {
        TcoError::Cluster(e)
    }
}

impl From<litegpu_specs::SpecError> for TcoError {
    fn from(e: litegpu_specs::SpecError) -> Self {
        TcoError::Spec(e)
    }
}

impl From<litegpu_fleet::FleetError> for TcoError {
    fn from(e: litegpu_fleet::FleetError) -> Self {
        TcoError::Fleet(e)
    }
}

/// Result alias for TCO operations.
pub type Result<T> = core::result::Result<T, TcoError>;

pub(crate) fn check(name: &'static str, value: f64, ok: bool) -> Result<()> {
    if ok {
        Ok(())
    } else {
        Err(TcoError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_routes_sources() {
        let e = TcoError::InvalidParameter {
            name: "usd_per_kwh",
            value: -1.0,
        };
        assert!(e.to_string().contains("usd_per_kwh"));
        let e: TcoError = litegpu_net::NetError::InvalidParameter {
            name: "usd_per_gb_s",
            value: f64::NAN,
        }
        .into();
        assert!(e.to_string().starts_with("net: "));
    }
}

//! The pricing model: a candidate fleet's capex and opex over the
//! simulated horizon, and the SLO-compliant tokens that divide them.
//!
//! Capex lines come from the crates that model each physical layer:
//! yield-adjusted package cost (`litegpu_fab`, per die divisor),
//! fabric attach cost (`litegpu_net`, per endpoint and per GB/s), and
//! facility power provisioning plus host amortization
//! (`litegpu_cluster`, per provisioned IT kW). Capex is amortized
//! linearly over [`TcoModel::amortization_years`] and charged for the
//! simulated horizon's share; energy opex is the fleet engine's
//! integer-joule books priced at [`TcoModel::usd_per_kwh`] behind the
//! facility PUE. Every line lands in a [`CostBreakdown`] whose parts sum
//! exactly to its total — `tests/tco_frontier.rs` pins that
//! conservation.

use crate::{check, Result};
use litegpu_cluster::power_mgmt::{
    provisioning_capex_usd, DEFAULT_PUE, DEFAULT_USD_PER_PROVISIONED_KW,
};
use litegpu_fab::cost::package_model_for_divisor;
use litegpu_fleet::{FleetConfig, FleetReport};
use litegpu_net::FabricCostModel;

/// Seconds in an amortization year (365.25 days).
const YEAR_S: f64 = 365.25 * 24.0 * 3600.0;

/// The economic model a sweep prices candidates under.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TcoModel {
    /// Electricity tariff, USD per kWh (applied behind the PUE).
    pub usd_per_kwh: f64,
    /// Facility power-usage effectiveness (≥ 1).
    pub pue: f64,
    /// Straight-line capex amortization horizon, years.
    pub amortization_years: f64,
    /// Facility power-provisioning capex, USD per provisioned kW.
    pub usd_per_provisioned_kw: f64,
    /// Host capex (CPU, DRAM, NIC, chassis) amortized per IT kW of GPU
    /// TDP it feeds — TDP-proportional so the line is silicon-neutral
    /// across die divisors.
    pub host_usd_per_it_kw: f64,
    /// Serving-fabric cost model (per endpoint, per GB/s, per switch).
    pub fabric: FabricCostModel,
}

impl TcoModel {
    /// Default pricing: $0.08/kWh, PUE 1.2, 4-year amortization,
    /// $3000/kW provisioning, $3500/kW host share, and the default
    /// leaf/spine fabric pricing.
    pub fn paper_default() -> Self {
        Self {
            usd_per_kwh: 0.08,
            pue: DEFAULT_PUE,
            amortization_years: 4.0,
            usd_per_provisioned_kw: DEFAULT_USD_PER_PROVISIONED_KW,
            host_usd_per_it_kw: 3_500.0,
            fabric: FabricCostModel::paper_default(),
        }
    }

    /// Validates every pricing parameter.
    pub fn validate(&self) -> Result<()> {
        check(
            "usd_per_kwh",
            self.usd_per_kwh,
            self.usd_per_kwh.is_finite() && self.usd_per_kwh >= 0.0,
        )?;
        check("pue", self.pue, self.pue.is_finite() && self.pue >= 1.0)?;
        check(
            "amortization_years",
            self.amortization_years,
            self.amortization_years.is_finite() && self.amortization_years > 0.0,
        )?;
        check(
            "usd_per_provisioned_kw",
            self.usd_per_provisioned_kw,
            self.usd_per_provisioned_kw.is_finite() && self.usd_per_provisioned_kw >= 0.0,
        )?;
        check(
            "host_usd_per_it_kw",
            self.host_usd_per_it_kw,
            self.host_usd_per_it_kw.is_finite() && self.host_usd_per_it_kw >= 0.0,
        )?;
        self.fabric.validate()?;
        Ok(())
    }
}

/// A candidate's horizon-share costs, by physical layer, USD.
///
/// The first four lines are amortized capex (the horizon's share of a
/// straight-line schedule); `energy_usd` is opex incurred during the
/// horizon. [`CostBreakdown::total_usd`] is exactly the sum of the five
/// parts.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostBreakdown {
    /// Serving silicon: yield-adjusted shipped-package cost × serving
    /// GPUs.
    pub silicon_usd: f64,
    /// Spare silicon: the same package cost × hot spares.
    pub spares_usd: f64,
    /// Fabric attach: endpoints, per-endpoint bandwidth, switches.
    pub network_usd: f64,
    /// Facility power provisioning (PUE-scaled) plus host amortization,
    /// both per provisioned IT kW.
    pub provisioning_usd: f64,
    /// Energy actually drawn over the horizon, behind the PUE, at the
    /// tariff.
    pub energy_usd: f64,
}

impl CostBreakdown {
    /// Total cost, USD: the exact sum of the five parts.
    pub fn total_usd(&self) -> f64 {
        self.silicon_usd
            + self.spares_usd
            + self.network_usd
            + self.provisioning_usd
            + self.energy_usd
    }
}

/// Prices one simulated candidate under the model.
///
/// `die_divisor` selects the package-cost model; `cfg` supplies the
/// fleet shape (serving GPUs, spares, per-endpoint bandwidth, TDP) and
/// the horizon; `report` supplies the integer-joule energy books.
pub fn breakdown_for(
    model: &TcoModel,
    die_divisor: u32,
    cfg: &FleetConfig,
    report: &FleetReport,
) -> Result<CostBreakdown> {
    model.validate()?;
    let pkg = package_model_for_divisor(die_divisor)?;
    let pkg_usd = pkg.cost_per_shipped_package()?;
    let serving_gpus = cfg.instances as u64 * cfg.gpus_per_instance as u64;
    let spare_gpus = cfg.num_cells() as u64 * cfg.spares_per_cell as u64;
    let endpoints = u32::try_from(serving_gpus + spare_gpus).map_err(|_| {
        crate::TcoError::InvalidParameter {
            name: "endpoints",
            value: (serving_gpus + spare_gpus) as f64,
        }
    })?;
    let network = model.fabric.capex_usd(endpoints, cfg.gpu.net_bw_gbps)?;
    let it_kw = endpoints as f64 * cfg.gpu.tdp_w / 1000.0;
    let provisioning = provisioning_capex_usd(it_kw, model.pue, model.usd_per_provisioned_kw)?
        + it_kw * model.host_usd_per_it_kw;
    // The horizon's share of a straight-line amortization schedule.
    let amort = cfg.horizon_s / (model.amortization_years * YEAR_S);
    // Integer joules → kWh at the wall (behind the PUE), then the tariff.
    let energy = report.energy_j as f64 / 3.6e6 * model.pue * model.usd_per_kwh;
    Ok(CostBreakdown {
        silicon_usd: serving_gpus as f64 * pkg_usd * amort,
        spares_usd: spare_gpus as f64 * pkg_usd * amort,
        network_usd: network * amort,
        provisioning_usd: provisioning * amort,
        energy_usd: energy,
    })
}

/// Tokens that met their tenant's SLOs: per tenant,
/// `⌊generated × TTFT-attainment × TBT-attainment⌋`, summed. This is the
/// denominator of $/token — tokens delivered late don't count, which is
/// what makes availability, queueing and DVFS throttling show up in the
/// cost metric.
pub fn slo_tokens(report: &FleetReport) -> u64 {
    report
        .per_tenant
        .iter()
        .map(|t| (t.generated_tokens as f64 * t.ttft_attainment * t.tbt_attainment) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignPoint, SweepBase};

    fn small_run() -> (u32, FleetConfig, FleetReport) {
        let p = DesignPoint {
            die_divisor: 4,
            cell_units: 8,
            spare_units: 1,
            split: false,
            dvfs: false,
        };
        let base = SweepBase {
            equiv_instances: 4,
            rate_per_equiv: 2.0,
            hours: 0.1,
            accel: 2_000.0,
        };
        let cfg = p.fleet_config(&base).unwrap();
        let report = litegpu_fleet::run_sharded(&cfg, 7, cfg.num_cells(), 1).unwrap();
        (4, cfg, report)
    }

    #[test]
    fn breakdown_parts_sum_to_total() {
        let (d, cfg, report) = small_run();
        let b = breakdown_for(&TcoModel::paper_default(), d, &cfg, &report).unwrap();
        let sum = b.silicon_usd + b.spares_usd + b.network_usd + b.provisioning_usd + b.energy_usd;
        assert_eq!(sum, b.total_usd());
        for (name, v) in [
            ("silicon", b.silicon_usd),
            ("spares", b.spares_usd),
            ("network", b.network_usd),
            ("provisioning", b.provisioning_usd),
            ("energy", b.energy_usd),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
            if name != "spares" {
                assert!(v > 0.0, "{name} must be priced");
            }
        }
    }

    #[test]
    fn energy_line_prices_the_joule_books() {
        let (d, cfg, report) = small_run();
        let m = TcoModel::paper_default();
        let b = breakdown_for(&m, d, &cfg, &report).unwrap();
        let expected = report.energy_j as f64 / 3.6e6 * m.pue * m.usd_per_kwh;
        assert_eq!(b.energy_usd, expected);
        // Doubling the tariff doubles exactly the energy line.
        let mut m2 = m;
        m2.usd_per_kwh *= 2.0;
        let b2 = breakdown_for(&m2, d, &cfg, &report).unwrap();
        assert_eq!(b2.energy_usd, 2.0 * b.energy_usd);
        assert_eq!(b2.silicon_usd, b.silicon_usd);
    }

    #[test]
    fn amortization_scales_capex_not_opex() {
        let (d, cfg, report) = small_run();
        let m = TcoModel::paper_default();
        let mut m2 = m;
        m2.amortization_years = 8.0;
        let b = breakdown_for(&m, d, &cfg, &report).unwrap();
        let b2 = breakdown_for(&m2, d, &cfg, &report).unwrap();
        assert!((b2.silicon_usd * 2.0 - b.silicon_usd).abs() < 1e-12);
        assert!((b2.network_usd * 2.0 - b.network_usd).abs() < 1e-12);
        assert_eq!(b2.energy_usd, b.energy_usd);
    }

    #[test]
    fn slo_tokens_never_exceed_generated() {
        let (_, _, report) = small_run();
        let s = slo_tokens(&report);
        assert!(
            s <= report.generated_tokens,
            "{s} > {}",
            report.generated_tokens
        );
        assert!(
            s > 0,
            "the demo workload must deliver some compliant tokens"
        );
    }

    #[test]
    fn invalid_models_rejected() {
        let mut m = TcoModel::paper_default();
        m.pue = 0.5;
        assert!(m.validate().is_err());
        m = TcoModel::paper_default();
        m.amortization_years = 0.0;
        assert!(m.validate().is_err());
        m = TcoModel::paper_default();
        m.usd_per_kwh = f64::NAN;
        assert!(m.validate().is_err());
    }
}

//! The sweep driver and the Pareto frontier: evaluate every candidate,
//! prune dominated designs, and render the report.
//!
//! Parallelism follows the fleet engine's determinism discipline, one
//! level up: candidates are pulled off a shared atomic counter by a
//! work-stealing pool, but each candidate's simulation runs at a fixed
//! shard/thread shape (`num_cells()` shards, one thread) and results are
//! reassembled into design order before any aggregation — so the
//! [`TcoReport`] bytes are identical at any `threads` setting, and
//! `scripts/check_determinism.sh` diffs them at 1/2/8.

use crate::design::{DesignPoint, SweepBase};
use crate::model::{breakdown_for, slo_tokens, CostBreakdown, TcoModel};
use crate::Result;
use litegpu_fleet::FleetConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One evaluated design: the simulated outcome and its price.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrontierPoint {
    /// The candidate design.
    pub design: DesignPoint,
    /// Compact design label (`div4-cell8-sp2-split-dvfs`).
    pub label: String,
    /// GPU name the divisor resolved to.
    pub gpu: String,
    /// Model instances simulated.
    pub instances: u32,
    /// Repair cells.
    pub cells: u32,
    /// Hot spares fleet-wide.
    pub spares: u32,
    /// Fraction of instance-time up.
    pub availability: f64,
    /// Output tokens generated.
    pub generated_tokens: u64,
    /// Tokens that met their tenant's SLOs (the $/token denominator).
    pub slo_tokens: u64,
    /// SLO-compliant share of generated tokens (0 when none generated).
    pub slo_share: f64,
    /// Fleet energy over the horizon, joules (integer books).
    pub energy_j: u64,
    /// Energy per generated token, J/token.
    pub energy_per_token_j: f64,
    /// Horizon-share costs by layer, USD.
    pub breakdown: CostBreakdown,
    /// Total horizon-share cost, USD (sum of the breakdown parts).
    pub total_usd: f64,
    /// Dollars per million SLO-compliant tokens; `None` when the
    /// candidate delivered no compliant tokens (infinite cost).
    pub usd_per_mtoken: Option<f64>,
    /// Whether this point survives Pareto pruning (cost vs. SLO share).
    pub on_frontier: bool,
}

/// Evaluates one candidate: configure, simulate, price. `tweak` runs
/// after the design builds its fleet config — the hook the bench CLI
/// uses to stack fleet-scope policy (demand skew, spill-over balancer)
/// onto every candidate without growing the design grid itself.
fn evaluate_one(
    design: &DesignPoint,
    base: &SweepBase,
    model: &TcoModel,
    seed: u64,
    tweak: &(dyn Fn(&mut FleetConfig) + Sync),
) -> Result<FrontierPoint> {
    let mut cfg = design.fleet_config(base)?;
    tweak(&mut cfg);
    cfg.validate()?;
    // Fixed shard/thread shape: outer sweep parallelism is the only
    // threading, so per-candidate results cannot depend on the pool size.
    let report = litegpu_fleet::run_sharded(&cfg, seed, cfg.num_cells(), 1)?;
    let breakdown = breakdown_for(model, design.die_divisor, &cfg, &report)?;
    let total_usd = breakdown.total_usd();
    let slo = slo_tokens(&report);
    let slo_share = if report.generated_tokens == 0 {
        0.0
    } else {
        slo as f64 / report.generated_tokens as f64
    };
    let usd_per_mtoken = if slo == 0 {
        None
    } else {
        Some(total_usd / slo as f64 * 1e6)
    };
    Ok(FrontierPoint {
        design: *design,
        label: design.label(),
        gpu: report.gpu.clone(),
        instances: report.instances,
        cells: report.cells,
        spares: report.spares,
        availability: report.availability,
        generated_tokens: report.generated_tokens,
        slo_tokens: slo,
        slo_share,
        energy_j: report.energy_j,
        energy_per_token_j: report.energy_per_token_j,
        breakdown,
        total_usd,
        usd_per_mtoken,
        on_frontier: false,
    })
}

/// Evaluates every design over `threads` workers and marks the Pareto
/// frontier. Results are in design order and byte-stable at any thread
/// count.
pub fn evaluate_sweep(
    designs: &[DesignPoint],
    base: &SweepBase,
    model: &TcoModel,
    seed: u64,
    threads: u32,
) -> Result<Vec<FrontierPoint>> {
    evaluate_sweep_with(designs, base, model, seed, threads, &|_| {})
}

/// [`evaluate_sweep`] with a per-candidate config hook: `tweak` mutates
/// each candidate's `FleetConfig` after the design point builds it (and
/// before validation), so callers can price the same grid under
/// fleet-scope policy — e.g. skewed demand plus the spill-over
/// balancer. The hook must be deterministic; results stay in design
/// order and byte-stable at any thread count.
pub fn evaluate_sweep_with(
    designs: &[DesignPoint],
    base: &SweepBase,
    model: &TcoModel,
    seed: u64,
    threads: u32,
    tweak: &(dyn Fn(&mut FleetConfig) + Sync),
) -> Result<Vec<FrontierPoint>> {
    model.validate()?;
    base.validate()?;
    let n = designs.len();
    let workers = (threads.max(1) as usize).min(n.max(1));
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, Result<FrontierPoint>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, evaluate_one(&designs[i], base, model, seed, tweak)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tco sweep worker panicked"))
            .collect()
    });
    // Reassemble into design order, then surface the first error (by
    // design index, not completion order — identical at any pool size).
    let mut slots: Vec<Option<Result<FrontierPoint>>> = (0..n).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut points = Vec::with_capacity(n);
    for slot in slots {
        points.push(slot.expect("every design index visited")?);
    }
    for i in pareto(&points) {
        points[i].on_frontier = true;
    }
    Ok(points)
}

/// Indices of the Pareto-efficient points (minimize `usd_per_mtoken`,
/// maximize `slo_share`), sorted by cost ascending, then share
/// descending, then index. Points that delivered no compliant tokens
/// never make the frontier.
pub fn pareto(points: &[FrontierPoint]) -> Vec<usize> {
    let priced: Vec<(usize, f64, f64)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.usd_per_mtoken.map(|c| (i, c, p.slo_share)))
        .collect();
    let mut frontier: Vec<(usize, f64, f64)> = priced
        .iter()
        .filter(|(i, cost, share)| {
            !priced.iter().any(|(j, c2, s2)| {
                j != i && *c2 <= *cost && *s2 >= *share && (*c2 < *cost || *s2 > *share)
            })
        })
        .copied()
        .collect();
    frontier.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap()
            .then(b.2.partial_cmp(&a.2).unwrap())
            .then(a.0.cmp(&b.0))
    });
    frontier.into_iter().map(|(i, _, _)| i).collect()
}

/// The best (cheapest per SLO-token) H100-vs-Lite comparison a sweep
/// produced.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Headline {
    /// Best monolithic-baseline design label (die divisor 1).
    pub h100: String,
    /// Its cost, USD per million SLO-compliant tokens.
    pub h100_usd_per_mtoken: f64,
    /// Best Lite design label (die divisor > 1).
    pub lite: String,
    /// Its cost, USD per million SLO-compliant tokens.
    pub lite_usd_per_mtoken: f64,
    /// Lite cost as a fraction of H100 cost (< 1 means Lite wins).
    pub lite_over_h100: f64,
}

/// The full sweep result: every point, the frontier order, the headline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TcoReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Simulation seed every candidate ran under.
    pub seed: u64,
    /// Shared sweep base (fleet size, demand, horizon, acceleration).
    pub base: SweepBase,
    /// The economic model candidates were priced under.
    pub model: TcoModel,
    /// Every evaluated design, in sweep order.
    pub points: Vec<FrontierPoint>,
    /// Indices into `points` of the Pareto frontier, cost-ascending.
    pub frontier: Vec<u32>,
    /// Best H100-vs-Lite comparison, when both sides priced.
    pub headline: Option<Headline>,
}

impl TcoReport {
    /// Assembles the report: frontier order and headline from the
    /// evaluated points.
    pub fn new(seed: u64, base: SweepBase, model: TcoModel, points: Vec<FrontierPoint>) -> Self {
        let frontier = pareto(&points).into_iter().map(|i| i as u32).collect();
        let headline = Self::headline_of(&points);
        Self {
            schema: "litegpu.tco/1".to_string(),
            seed,
            base,
            model,
            points,
            frontier,
            headline,
        }
    }

    /// The cheapest priced point satisfying `pick`, by
    /// (cost, label) — the label tie-break keeps selection deterministic.
    fn best(
        points: &[FrontierPoint],
        pick: impl Fn(&FrontierPoint) -> bool,
    ) -> Option<&FrontierPoint> {
        points
            .iter()
            .filter(|p| pick(p) && p.usd_per_mtoken.is_some())
            .min_by(|a, b| {
                a.usd_per_mtoken
                    .partial_cmp(&b.usd_per_mtoken)
                    .unwrap()
                    .then(a.label.cmp(&b.label))
            })
    }

    fn headline_of(points: &[FrontierPoint]) -> Option<Headline> {
        let h = Self::best(points, |p| p.design.die_divisor == 1)?;
        let l = Self::best(points, |p| p.design.die_divisor > 1)?;
        let (hc, lc) = (h.usd_per_mtoken.unwrap(), l.usd_per_mtoken.unwrap());
        Some(Headline {
            h100: h.label.clone(),
            h100_usd_per_mtoken: hc,
            lite: l.label.clone(),
            lite_usd_per_mtoken: lc,
            lite_over_h100: lc / hc,
        })
    }

    /// Deterministic pretty-JSON rendering (byte-identical for identical
    /// reports).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// The frontier as CSV (one row per frontier point, cost-ascending),
    /// fixed-precision so the bytes are deterministic.
    pub fn frontier_csv(&self) -> String {
        let mut out = String::from(
            "idx,label,gpu,die_divisor,cell_units,spare_units,serving,dvfs,\
             usd_per_mtoken,slo_share,availability,silicon_usd,spares_usd,\
             network_usd,provisioning_usd,energy_usd,total_usd\n",
        );
        for &i in &self.frontier {
            let p = &self.points[i as usize];
            let b = &p.breakdown;
            out.push_str(&format!(
                "{i},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                p.label,
                p.gpu,
                p.design.die_divisor,
                p.design.cell_units,
                p.design.spare_units,
                if p.design.split { "split" } else { "mono" },
                if p.design.dvfs { "dvfs" } else { "fixed" },
                p.usd_per_mtoken.unwrap_or(f64::NAN),
                p.slo_share,
                p.availability,
                b.silicon_usd,
                b.spares_usd,
                b.network_usd,
                b.provisioning_usd,
                b.energy_usd,
                p.total_usd,
            ));
        }
        out
    }

    /// Human summary of the headline comparison.
    pub fn summary(&self) -> String {
        match &self.headline {
            Some(h) => format!(
                "tco: best H100 {} ${:.2}/Mtok vs best Lite {} ${:.2}/Mtok (ratio {:.3}); \
                 {} points, {} on frontier",
                h.h100,
                h.h100_usd_per_mtoken,
                h.lite,
                h.lite_usd_per_mtoken,
                h.lite_over_h100,
                self.points.len(),
                self.frontier.len(),
            ),
            None => format!(
                "tco: {} points, {} on frontier (no H100-vs-Lite headline)",
                self.points.len(),
                self.frontier.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(cost: Option<f64>, share: f64, divisor: u32) -> FrontierPoint {
        FrontierPoint {
            design: DesignPoint {
                die_divisor: divisor,
                cell_units: 8,
                spare_units: 1,
                split: false,
                dvfs: false,
            },
            label: format!("div{divisor}-c{cost:?}-s{share}"),
            gpu: "X".into(),
            instances: 1,
            cells: 1,
            spares: 0,
            availability: 1.0,
            generated_tokens: 100,
            slo_tokens: (share * 100.0) as u64,
            slo_share: share,
            energy_j: 1,
            energy_per_token_j: 0.01,
            breakdown: CostBreakdown {
                silicon_usd: cost.unwrap_or(0.0),
                spares_usd: 0.0,
                network_usd: 0.0,
                provisioning_usd: 0.0,
                energy_usd: 0.0,
            },
            total_usd: cost.unwrap_or(0.0),
            usd_per_mtoken: cost,
            on_frontier: false,
        }
    }

    #[test]
    fn pareto_prunes_dominated_points() {
        let pts = vec![
            synthetic(Some(1.0), 0.9, 1),  // frontier: cheapest
            synthetic(Some(2.0), 0.95, 1), // frontier: better share
            synthetic(Some(3.0), 0.9, 4),  // dominated by 0 and 1
            synthetic(Some(2.5), 0.99, 4), // frontier: best share
            synthetic(None, 1.0, 4),       // unpriced: never on frontier
        ];
        assert_eq!(pareto(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn equal_points_both_survive() {
        let pts = vec![synthetic(Some(1.0), 0.9, 1), synthetic(Some(1.0), 0.9, 4)];
        assert_eq!(pareto(&pts), vec![0, 1]);
    }

    #[test]
    fn headline_compares_cheapest_of_each_family() {
        let pts = vec![
            synthetic(Some(4.0), 0.9, 1),
            synthetic(Some(3.0), 0.8, 1),
            synthetic(Some(2.0), 0.9, 4),
            synthetic(Some(2.5), 0.99, 4),
        ];
        let r = TcoReport::new(
            1,
            SweepBase {
                equiv_instances: 1,
                rate_per_equiv: 1.0,
                hours: 1.0,
                accel: 0.0,
            },
            TcoModel::paper_default(),
            pts,
        );
        let h = r.headline.clone().expect("both families priced");
        assert_eq!(h.h100_usd_per_mtoken, 3.0);
        assert_eq!(h.lite_usd_per_mtoken, 2.0);
        assert!((h.lite_over_h100 - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.summary().contains("best H100"));
        // Frontier points are flagged and the CSV has one row each.
        let csv = r.frontier_csv();
        assert_eq!(csv.lines().count(), 1 + r.frontier.len());
        assert!(csv.starts_with("idx,label,gpu,"));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let base = SweepBase {
            equiv_instances: 4,
            rate_per_equiv: 2.0,
            hours: 0.1,
            accel: 2_000.0,
        };
        let designs = [
            DesignPoint {
                die_divisor: 1,
                cell_units: 4,
                spare_units: 1,
                split: false,
                dvfs: false,
            },
            DesignPoint {
                die_divisor: 4,
                cell_units: 4,
                spare_units: 1,
                split: true,
                dvfs: true,
            },
            DesignPoint {
                die_divisor: 2,
                cell_units: 4,
                spare_units: 0,
                split: false,
                dvfs: true,
            },
        ];
        let m = TcoModel::paper_default();
        let one = evaluate_sweep(&designs, &base, &m, 13, 1).unwrap();
        let many = evaluate_sweep(&designs, &base, &m, 13, 8).unwrap();
        assert_eq!(one, many);
        let r1 = TcoReport::new(13, base, m, one);
        let r2 = TcoReport::new(13, base, m, many);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(r1.frontier_csv(), r2.frontier_csv());
        assert!(!r1.frontier.is_empty());
        assert!(r1.points.iter().filter(|p| p.on_frontier).count() == r1.frontier.len());
    }
}

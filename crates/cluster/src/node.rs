//! Node, rack and cluster composition.

use crate::{check_positive, Result};
use litegpu_specs::cooling::CoolingClass;
use litegpu_specs::GpuSpec;

/// A homogeneous GPU cluster description.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterSpec {
    /// GPU type.
    pub gpu: GpuSpec,
    /// GPUs per server node.
    pub gpus_per_node: u32,
    /// Nodes in the cluster.
    pub nodes: u32,
    /// Non-GPU power overhead per node (CPUs, NICs, fans), W.
    pub node_overhead_w: f64,
}

impl ClusterSpec {
    /// Creates a cluster spec with validation.
    pub fn new(gpu: GpuSpec, gpus_per_node: u32, nodes: u32, node_overhead_w: f64) -> Result<Self> {
        gpu.validate()?;
        check_positive("gpus_per_node", gpus_per_node as f64)?;
        check_positive("nodes", nodes as f64)?;
        if node_overhead_w < 0.0 || !node_overhead_w.is_finite() {
            return Err(crate::ClusterError::InvalidParameter {
                name: "node_overhead_w",
                value: node_overhead_w,
            });
        }
        Ok(Self {
            gpu,
            gpus_per_node,
            nodes,
            node_overhead_w,
        })
    }

    /// The paper's baseline: one node of 8 H100s.
    pub fn h100_node() -> Self {
        Self::new(litegpu_specs::catalog::h100(), 8, 1, 800.0)
            .expect("H100 node constants are valid")
    }

    /// The paper's replacement: 32 Lite-GPUs (density allows one node or a
    /// small rack; we model one logical node).
    pub fn lite_node() -> Self {
        Self::new(litegpu_specs::catalog::lite_base(), 32, 1, 800.0)
            .expect("Lite node constants are valid")
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> u32 {
        self.gpus_per_node * self.nodes
    }

    /// Aggregate peak compute, FLOP/s.
    pub fn total_flops(&self) -> f64 {
        self.total_gpus() as f64 * self.gpu.flops()
    }

    /// Aggregate HBM capacity, bytes.
    pub fn total_mem_bytes(&self) -> f64 {
        self.total_gpus() as f64 * self.gpu.mem_capacity_bytes()
    }

    /// Aggregate HBM bandwidth, bytes/s.
    pub fn total_mem_bw(&self) -> f64 {
        self.total_gpus() as f64 * self.gpu.mem_bytes_per_s()
    }

    /// Peak power draw: GPUs at TDP plus node overheads, W.
    pub fn peak_power_w(&self) -> f64 {
        self.total_gpus() as f64 * self.gpu.tdp_w + self.nodes as f64 * self.node_overhead_w
    }

    /// Idle power draw, W.
    pub fn idle_power_w(&self) -> f64 {
        self.total_gpus() as f64 * self.gpu.idle_power_w + self.nodes as f64 * self.node_overhead_w
    }

    /// Cooling class required per GPU package.
    pub fn package_cooling(&self) -> CoolingClass {
        CoolingClass::required_for(self.gpu.tdp_w)
    }

    /// Total SMs in the cluster.
    pub fn total_sms(&self) -> u32 {
        self.total_gpus() * self.gpu.sms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_clusters_match_on_aggregates() {
        // 8 H100 vs 32 Lite: same FLOPS, memory, bandwidth, SMs.
        let h = ClusterSpec::h100_node();
        let l = ClusterSpec::lite_node();
        assert_eq!(h.total_flops(), l.total_flops());
        assert_eq!(h.total_mem_bytes(), l.total_mem_bytes());
        assert!((h.total_mem_bw() - l.total_mem_bw()).abs() / h.total_mem_bw() < 0.01);
        assert_eq!(h.total_sms(), l.total_sms());
    }

    #[test]
    fn peak_power_similar_but_cooling_differs() {
        let h = ClusterSpec::h100_node();
        let l = ClusterSpec::lite_node();
        // Same silicon, same aggregate TDP.
        assert!((h.peak_power_w() - l.peak_power_w()).abs() / h.peak_power_w() < 0.01);
        // But the H100 package needs a stronger cooling class.
        assert!(l.package_cooling() < h.package_cooling());
    }

    #[test]
    fn validation() {
        let gpu = litegpu_specs::catalog::h100();
        assert!(ClusterSpec::new(gpu.clone(), 0, 1, 0.0).is_err());
        assert!(ClusterSpec::new(gpu.clone(), 8, 0, 0.0).is_err());
        assert!(ClusterSpec::new(gpu, 8, 1, -5.0).is_err());
    }

    #[test]
    fn idle_below_peak() {
        let h = ClusterSpec::h100_node();
        assert!(h.idle_power_w() < h.peak_power_w());
    }
}

//! Correlated failure domains: instance → rack → power domain.
//!
//! §3's blast-radius argument is not only about a single die failing —
//! racks lose power feeds, power domains trip breakers, and cooling
//! excursions clamp whole shelves at once. This module maps a homogeneous
//! fleet of model instances onto a physical rack/power-domain topology so
//! a chaos engine can ask "which instances die when rack `r` goes dark?"
//!
//! The packing model is deliberately power-first: instances are laid out
//! contiguously by their power draw (instance `i` occupies the integer
//! milliwatt span `[i·inst_mw, (i+1)·inst_mw)`), and rack `r` owns the
//! span `[r·rack_mw, (r+1)·rack_mw)`. A rack loss takes out **every
//! instance whose span overlaps the rack's** — including instances that
//! straddle a rack boundary and die as collateral. That straddle
//! collateral is where granularity pays: big instances (H100-class) span
//! rack boundaries more often per watt than small ones, so at equal rack
//! power the big-die fleet strands a larger capacity fraction per rack
//! loss. The `rack_loss_strands_less_capacity_under_lite` property test
//! below pins that down, echoing `failure::blast_radius_quarter_of_h100`
//! at the domain level.
//!
//! All arithmetic is integer milliwatts so the topology is exact and
//! deterministic — the chaos engine's byte-identical-report guarantee
//! extends through domain membership.

use crate::{ClusterError, Result};

/// The kind of failure domain an event (or a failure tally) belongs to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum DomainKind {
    /// An i.i.d. per-instance failure (the AFR Poisson process).
    Independent,
    /// A whole-rack loss (power feed, top-of-rack switch).
    Rack,
    /// A power-domain loss (breaker/feeder trip spanning several racks).
    Power,
    /// A network partition isolating one or more cells.
    Partition,
    /// A thermal excursion clamping clocks below nominal.
    Thermal,
}

impl DomainKind {
    /// All kinds, in the canonical breakdown order.
    pub const ALL: [DomainKind; 5] = [
        DomainKind::Independent,
        DomainKind::Rack,
        DomainKind::Power,
        DomainKind::Partition,
        DomainKind::Thermal,
    ];

    /// Stable index into breakdown arrays (`[u64; 5]` tallies).
    pub fn index(&self) -> usize {
        match self {
            DomainKind::Independent => 0,
            DomainKind::Rack => 1,
            DomainKind::Power => 2,
            DomainKind::Partition => 3,
            DomainKind::Thermal => 4,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DomainKind::Independent => "independent",
            DomainKind::Rack => "rack",
            DomainKind::Power => "power",
            DomainKind::Partition => "partition",
            DomainKind::Thermal => "thermal",
        }
    }
}

/// A fleet's physical failure-domain topology, derived deterministically
/// from instance count and per-instance/per-rack power budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DomainTopology {
    /// Number of model instances in the fleet.
    pub instances: u32,
    /// Power draw of one instance, integer milliwatts.
    pub instance_mw: u64,
    /// Power budget of one rack, integer milliwatts.
    pub rack_mw: u64,
    /// Racks fed by one power domain (breaker group).
    pub racks_per_power_domain: u32,
}

impl DomainTopology {
    /// Builds a topology; all quantities must be positive and a rack must
    /// fit at least one instance.
    pub fn new(
        instances: u32,
        instance_mw: u64,
        rack_mw: u64,
        racks_per_power_domain: u32,
    ) -> Result<Self> {
        for (name, v) in [
            ("instances", instances as f64),
            ("instance_mw", instance_mw as f64),
            ("rack_mw", rack_mw as f64),
            ("racks_per_power_domain", racks_per_power_domain as f64),
        ] {
            if v <= 0.0 {
                return Err(ClusterError::InvalidParameter { name, value: v });
            }
        }
        if rack_mw < instance_mw {
            return Err(ClusterError::InvalidParameter {
                name: "rack_mw (must fit one instance)",
                value: rack_mw as f64,
            });
        }
        Ok(Self {
            instances,
            instance_mw,
            rack_mw,
            racks_per_power_domain,
        })
    }

    /// Total fleet power, milliwatts.
    pub fn fleet_mw(&self) -> u64 {
        self.instances as u64 * self.instance_mw
    }

    /// Number of racks needed to host the fleet.
    pub fn num_racks(&self) -> u32 {
        self.fleet_mw().div_ceil(self.rack_mw).max(1) as u32
    }

    /// Number of power domains (groups of `racks_per_power_domain` racks).
    pub fn num_power_domains(&self) -> u32 {
        self.num_racks().div_ceil(self.racks_per_power_domain)
    }

    /// Instances lost when rack `r` goes dark: every instance whose power
    /// span overlaps the rack's, including boundary-straddling collateral.
    pub fn rack_instances(&self, rack: u32) -> core::ops::Range<u32> {
        let lo = (rack as u64 * self.rack_mw) / self.instance_mw;
        let hi = ((rack as u64 + 1) * self.rack_mw).div_ceil(self.instance_mw);
        let lo = (lo.min(self.instances as u64)) as u32;
        let hi = (hi.min(self.instances as u64)) as u32;
        lo..hi.max(lo)
    }

    /// Instances lost when power domain `d` trips: the union of its racks.
    pub fn power_domain_instances(&self, domain: u32) -> core::ops::Range<u32> {
        let first = domain * self.racks_per_power_domain;
        let last = ((domain + 1) * self.racks_per_power_domain - 1).min(self.num_racks() - 1);
        let lo = self.rack_instances(first).start;
        let hi = self.rack_instances(last).end;
        lo..hi.max(lo)
    }

    /// Capacity fraction stranded by the loss of rack `r`.
    pub fn rack_stranded_fraction(&self, rack: u32) -> f64 {
        self.rack_instances(rack).len() as f64 / self.instances as f64
    }

    /// Mean stranded capacity fraction over all racks — the expected
    /// blast radius of a uniformly random rack loss.
    pub fn mean_rack_stranded_fraction(&self) -> f64 {
        let racks = self.num_racks();
        (0..racks)
            .map(|r| self.rack_stranded_fraction(r))
            .sum::<f64>()
            / racks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rack_spans_cover_the_fleet_without_gaps() {
        // 10 instances of 1.4 kW in 5 kW racks: 14 kW fleet → 3 racks.
        let t = DomainTopology::new(10, 1_400_000, 5_000_000, 2).unwrap();
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.num_power_domains(), 2);
        // Rack 0 spans [0, 5000) mW → instances 0..4 (3 straddles).
        assert_eq!(t.rack_instances(0), 0..4);
        // Rack 1 spans [5000, 10000) → instances 3..8 (3 and 7 straddle).
        assert_eq!(t.rack_instances(1), 3..8);
        // Rack 2 spans [10000, 15000) → instances 7..10 (clamped).
        assert_eq!(t.rack_instances(2), 7..10);
        // Union covers everything; adjacent racks overlap at straddles.
        let covered: std::collections::BTreeSet<u32> =
            (0..3).flat_map(|r| t.rack_instances(r)).collect();
        assert_eq!(covered.len(), 10);
    }

    #[test]
    fn power_domains_union_their_racks() {
        let t = DomainTopology::new(10, 1_400_000, 5_000_000, 2).unwrap();
        assert_eq!(t.power_domain_instances(0), 0..8);
        assert_eq!(t.power_domain_instances(1), 7..10);
    }

    #[test]
    fn aligned_packing_has_no_collateral() {
        // Rack power an exact multiple of instance power: no straddles,
        // each rack loses exactly rack_mw/inst_mw instances.
        let t = DomainTopology::new(16, 1_000_000, 4_000_000, 2).unwrap();
        for r in 0..t.num_racks() {
            assert_eq!(t.rack_instances(r).len(), 4, "rack {r}");
        }
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert!(DomainTopology::new(0, 1, 1, 1).is_err());
        assert!(DomainTopology::new(1, 0, 1, 1).is_err());
        assert!(DomainTopology::new(4, 2_000_000, 1_000_000, 1).is_err());
        assert!(DomainTopology::new(4, 1, 1, 0).is_err());
    }

    proptest! {
        /// Satellite of `failure::blast_radius_quarter_of_h100`: at equal
        /// rack power and equal total fleet power, a rack loss under the
        /// Lite fleet (4× the instances at ¼ the power each) strands a
        /// strictly smaller mean capacity fraction than under H100 —
        /// strictly, because the big instances straddle rack power
        /// boundaries and die as collateral whenever the rack budget is
        /// not an exact multiple of the H100 instance power.
        #[test]
        fn rack_loss_strands_less_capacity_under_lite(
            h100_instances in 8u32..64,
            rack_kw in 3u64..40,
            offset_w in 1u64..1_400,
        ) {
            let h100_mw = 1_400_000u64; // 2 × 700 W packages.
            let lite_mw = h100_mw / 4; // 2 × 175 W packages.
            // Keep the rack budget off the H100 instance-power lattice so
            // straddle collateral exists (an exact multiple packs both
            // fleets without straddles and the fractions tie).
            let rack_mw = rack_kw * 1_000_000 + offset_w * 1_000;
            if rack_mw % h100_mw == 0 {
                continue;
            }
            let h = DomainTopology::new(h100_instances, h100_mw, rack_mw, 4).unwrap();
            let l = DomainTopology::new(h100_instances * 4, lite_mw, rack_mw, 4).unwrap();
            // A single-rack fleet has no interior boundaries to straddle.
            if h.num_racks() < 2 {
                continue;
            }
            prop_assert_eq!(h.fleet_mw(), l.fleet_mw());
            prop_assert_eq!(h.num_racks(), l.num_racks());
            let (hf, lf) = (h.mean_rack_stranded_fraction(), l.mean_rack_stranded_fraction());
            prop_assert!(
                lf < hf,
                "lite mean stranded {} must beat h100 {} (rack {} mW)",
                lf,
                hf,
                rack_mw
            );
        }
    }
}

//! Rack- and facility-level composition.
//!
//! §3 "Data-center management": "though the number of devices per rack may
//! increase, the overall cooling requirements of the rack can be lighter
//! ... This can eliminate the need for liquid cooling racks in the
//! data-center, which comprise a significant portion of racks, and thus
//! space, in an NVIDIA B200 cluster."

use crate::node::ClusterSpec;
use crate::Result;
use litegpu_specs::cooling::CoolingClass;

/// A rack class with a power envelope.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RackClass {
    /// Power budget per rack, W.
    pub power_budget_w: f64,
    /// Cooling technology of the rack.
    pub cooling: CoolingClass,
}

impl RackClass {
    /// A conventional forced-air rack (~40 kW).
    pub fn air() -> Self {
        Self {
            power_budget_w: 40_000.0,
            cooling: CoolingClass::ForcedAir,
        }
    }

    /// A high-airflow rack (~60 kW) for DGX-class air-cooled nodes.
    pub fn advanced_air() -> Self {
        Self {
            power_budget_w: 60_000.0,
            cooling: CoolingClass::AdvancedAir,
        }
    }

    /// A direct-liquid-cooled rack (~130 kW, GB200-NVL72-class).
    pub fn liquid() -> Self {
        Self {
            power_budget_w: 130_000.0,
            cooling: CoolingClass::Liquid,
        }
    }
}

/// A facility plan for hosting a cluster.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FacilityPlan {
    /// Rack class used.
    pub rack: RackClass,
    /// Racks required.
    pub racks: u32,
    /// GPUs per rack.
    pub gpus_per_rack: u32,
    /// Relative facility cost (racks × cooling cost factor).
    pub facility_cost_units: f64,
}

/// Plans the cheapest rack class able to host the cluster: the rack's
/// cooling class must cover the GPU package, and rack power must cover the
/// housed nodes.
pub fn plan_facility(cluster: &ClusterSpec) -> Result<FacilityPlan> {
    let package_class = cluster.package_cooling();
    let candidates = [
        RackClass::air(),
        RackClass::advanced_air(),
        RackClass::liquid(),
    ];
    let rack = candidates
        .into_iter()
        .find(|r| r.cooling >= package_class)
        .unwrap_or(RackClass::liquid());
    // Node power = GPUs + overhead; nodes per rack limited by power.
    let node_power = cluster.gpus_per_node as f64 * cluster.gpu.tdp_w + cluster.node_overhead_w;
    let nodes_per_rack = (rack.power_budget_w / node_power).floor().max(1.0) as u32;
    let racks = cluster.nodes.div_ceil(nodes_per_rack);
    let gpus_per_rack = nodes_per_rack.min(cluster.nodes) * cluster.gpus_per_node;
    Ok(FacilityPlan {
        rack,
        racks,
        gpus_per_rack,
        facility_cost_units: racks as f64 * rack.cooling.facility_cost_factor(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;

    #[test]
    fn rack_classes_ordered() {
        assert!(RackClass::air().power_budget_w < RackClass::liquid().power_budget_w);
    }

    #[test]
    fn lite_cluster_fits_air_racks() {
        // 128 Lite-GPUs (4 nodes of 32) on plain air racks.
        let c = ClusterSpec::new(catalog::lite_base(), 32, 4, 800.0).unwrap();
        let plan = plan_facility(&c).unwrap();
        assert_eq!(plan.rack.cooling, CoolingClass::ForcedAir);
        assert!(plan.gpus_per_rack >= 32);
    }

    #[test]
    fn h100_cluster_needs_advanced_air() {
        let c = ClusterSpec::new(catalog::h100(), 8, 4, 800.0).unwrap();
        let plan = plan_facility(&c).unwrap();
        assert_eq!(plan.rack.cooling, CoolingClass::AdvancedAir);
    }

    #[test]
    fn equivalent_lite_facility_is_cheaper() {
        // Equal aggregate compute: 4 nodes x 8 H100 vs 4 nodes x 32 Lite.
        let h = ClusterSpec::new(catalog::h100(), 8, 4, 800.0).unwrap();
        let l = ClusterSpec::new(catalog::lite_base(), 32, 4, 800.0).unwrap();
        let ph = plan_facility(&h).unwrap();
        let pl = plan_facility(&l).unwrap();
        assert!(
            pl.facility_cost_units <= ph.facility_cost_units,
            "lite {} vs h100 {}",
            pl.facility_cost_units,
            ph.facility_cost_units
        );
        // More devices per rack - the density point of §3.
        assert!(pl.gpus_per_rack > ph.gpus_per_rack);
    }

    #[test]
    fn b200_class_needs_liquid() {
        let mut b200 = catalog::h100();
        b200.name = "B200".into();
        b200.tdp_w = 1000.0;
        b200.idle_power_w = 100.0;
        let c = ClusterSpec::new(b200, 8, 4, 1000.0).unwrap();
        let plan = plan_facility(&c).unwrap();
        assert_eq!(plan.rack.cooling, CoolingClass::Liquid);
    }
}

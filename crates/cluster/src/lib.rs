//! Cluster-management models for the `litegpu` suite: the systems
//! opportunities of §3.
//!
//! The paper argues Lite-GPUs unlock finer-grained resource management,
//! better power proportionality, and smaller failure blast radii. This
//! crate makes each argument executable:
//!
//! - [`node`]: node/rack/cluster composition and aggregate budgets.
//! - [`alloc`]: a GPU allocator that quantifies the fragmentation cost of
//!   coarse allocation units (big GPUs) vs. fine ones (Lite-GPUs).
//! - [`power_mgmt`]: load-following policies — whole-GPU DVFS vs.
//!   per-Lite-GPU gating — evaluated over diurnal load traces.
//! - [`failure`]: Monte-Carlo failure injection with area-dependent
//!   failure rates, blast-radius accounting and hot-spare provisioning.
//! - [`domain`]: correlated failure domains (instance → rack → power
//!   domain) with straddle-collateral blast-radius accounting.
//! - [`datacenter`]: rack-level power/cooling composition (the "no liquid
//!   cooling" argument).
//!
//! # Examples
//!
//! ```
//! use litegpu_cluster::failure::{ClusterReliability, FailureModel};
//! use litegpu_specs::catalog;
//!
//! let model = FailureModel::default_for(&catalog::h100());
//! let rel = ClusterReliability::new(catalog::h100(), 8, model).unwrap();
//! // A single failure in an 8-GPU H100 cluster takes out 1/8 of FLOPS.
//! assert!((rel.blast_radius_fraction() - 0.125).abs() < 1e-12);
//! ```

pub mod alloc;
pub mod datacenter;
pub mod domain;
pub mod failure;
pub mod memory_pool;
pub mod node;
pub mod power_mgmt;

pub use alloc::{AllocOutcome, Allocator, GpuRequest};
pub use domain::{DomainKind, DomainTopology};
pub use failure::{ClusterReliability, FailureModel, MonteCarloAvailability};
pub use node::ClusterSpec;

/// Errors produced by cluster-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A request exceeds the cluster's total resources.
    InsufficientCapacity {
        /// What was requested (units of GPUs or SMs, see message).
        requested: f64,
        /// What the cluster offers.
        available: f64,
    },
    /// Underlying spec error.
    Spec(litegpu_specs::SpecError),
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::InvalidParameter { name, value } => {
                write!(f, "invalid cluster parameter {name} = {value}")
            }
            ClusterError::InsufficientCapacity {
                requested,
                available,
            } => write!(f, "requested {requested} exceeds available {available}"),
            ClusterError::Spec(e) => write!(f, "spec error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<litegpu_specs::SpecError> for ClusterError {
    fn from(e: litegpu_specs::SpecError) -> Self {
        ClusterError::Spec(e)
    }
}

/// Result alias for cluster operations.
pub type Result<T> = core::result::Result<T, ClusterError>;

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(ClusterError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ClusterError::InsufficientCapacity {
            requested: 100.0,
            available: 32.0,
        };
        assert!(e.to_string().contains("100"));
    }
}

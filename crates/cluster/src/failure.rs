//! Failure modeling: blast radius, availability and hot spares.
//!
//! §3 "Fault-tolerance": "Reducing the size of the GPU naturally reduces
//! the blast radius should a GPU fail ... leading to higher available
//! FLOPS, memory capacity, and memory bandwidth at any time", and hot
//! spares become proportionally cheaper because "each additional Lite-GPU
//! \[is\] smaller and cheaper". Today's serving stacks impose instance-wide
//! blast radii (one dead GPU takes the whole model instance offline), so
//! the Monte-Carlo model here works at instance granularity with a shared
//! hot-spare pool.

use crate::{check_positive, Result};
use litegpu_specs::GpuSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hours per year (failure-rate bookkeeping).
pub const HOURS_PER_YEAR: f64 = 8760.0;

// # Unit convention (shared with `litegpu_sim::failover` and
// `litegpu_fleet`)
//
// An AFR in this suite is an *annualized Poisson rate* — expected failure
// events per GPU per year — not a probability. For the small per-hour
// rates involved the two read identically (P[fail in a year] ≈ rate), but
// rates compose: they add across GPUs and divide by [`HOURS_PER_YEAR`]
// to give the per-hour rates that event-driven simulators consume.
// Every conversion goes through [`FailureModel::failures_per_gpu_hour`] /
// [`FailureModel::failures_per_instance_hour`] so the `×/÷ 8760` never
// appears inline at call sites.

/// A per-package failure model with an area-dependent component.
///
/// `AFR = afr_per_mm2 × die_area + afr_fixed`: silicon faults scale with
/// area (more transistors, more thermal stress), while the fixed part
/// covers HBM, VRMs and board electronics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailureModel {
    /// Annualized failure probability per mm² of compute silicon.
    pub afr_per_mm2: f64,
    /// Annualized failure probability of the non-silicon package parts.
    pub afr_fixed: f64,
    /// Mean time to repair/replace a failed unit, hours.
    pub mttr_hours: f64,
    /// Time to activate a hot spare, hours.
    pub spare_swap_hours: f64,
}

impl FailureModel {
    /// Default calibration, derived from the spec's die area: an
    /// H100-class package (814 mm²) lands at ~5% AFR (fleet reports range
    /// 1–9%), three-quarters of it area-dependent. The per-mm² rate is
    /// physical (spec-independent), while the fixed board/HBM part scales
    /// with the package's silicon — a ¼-size die carries ~¼ the HBM
    /// stacks and VRM phases — so `default_for(&lite).afr(&lite)` is a
    /// quarter of the H100 default end to end, not merely 9/16 of it.
    pub fn default_for(spec: &GpuSpec) -> Self {
        let silicon_mm2 = spec.die.area_mm2() * spec.dies_per_package as f64;
        Self {
            afr_per_mm2: 0.0375 / litegpu_specs::catalog::H100_DIE_AREA_MM2,
            afr_fixed: 0.0125 * silicon_mm2 / litegpu_specs::catalog::H100_DIE_AREA_MM2,
            mttr_hours: 24.0,
            spare_swap_hours: 0.1,
        }
    }

    /// Annualized failure rate for a GPU of the given spec.
    pub fn afr(&self, spec: &GpuSpec) -> f64 {
        self.afr_per_mm2 * spec.die.area_mm2() * spec.dies_per_package as f64 + self.afr_fixed
    }

    /// Poisson failure rate of one GPU, in failures per *hour* (the unit
    /// event-driven simulators consume; see the module's unit convention).
    pub fn failures_per_gpu_hour(&self, spec: &GpuSpec) -> f64 {
        self.afr(spec) / HOURS_PER_YEAR
    }

    /// Poisson failure rate of one model instance of `gpus_per_instance`
    /// GPUs, in failures per hour. Any GPU failing takes the whole
    /// instance down (the §3 blast radius), so per-GPU rates add.
    pub fn failures_per_instance_hour(&self, spec: &GpuSpec, gpus_per_instance: u32) -> f64 {
        self.failures_per_gpu_hour(spec) * gpus_per_instance as f64
    }
}

/// Deterministic reliability figures for a homogeneous cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReliability {
    /// GPU type.
    pub gpu: GpuSpec,
    /// Cluster size.
    pub gpus: u32,
    /// Failure model.
    pub model: FailureModel,
}

impl ClusterReliability {
    /// Creates the reliability view.
    pub fn new(gpu: GpuSpec, gpus: u32, model: FailureModel) -> Result<Self> {
        gpu.validate()?;
        check_positive("gpus", gpus as f64)?;
        Ok(Self { gpu, gpus, model })
    }

    /// Fraction of cluster FLOPS lost when one GPU fails — the paper's
    /// blast radius.
    pub fn blast_radius_fraction(&self) -> f64 {
        1.0 / self.gpus as f64
    }

    /// Expected failures per year across the cluster.
    pub fn failures_per_year(&self) -> f64 {
        self.gpus as f64 * self.model.afr(&self.gpu)
    }

    /// Steady-state expected fraction of cluster FLOPS available
    /// (independent repairs, no spares).
    pub fn expected_available_flops_fraction(&self) -> f64 {
        let per_gpu_unavail = self.model.afr(&self.gpu) * self.model.mttr_hours / HOURS_PER_YEAR;
        1.0 - per_gpu_unavail.min(1.0)
    }
}

/// Result of a Monte-Carlo availability run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloAvailability {
    /// Fraction of instance-hours served.
    pub instance_availability: f64,
    /// Observed failures per simulated year.
    pub failures_per_year: f64,
    /// Fraction of failures absorbed by a hot spare.
    pub spare_hit_rate: f64,
    /// Fleet-cost overhead of the spare pool (spares / serving GPUs).
    pub spare_overhead: f64,
}

/// Simulates `instances` model instances of `gpus_per_instance` GPUs each,
/// with `spares` hot spares shared across the fleet, over `years` of
/// simulated time.
///
/// Failure process: each GPU fails as a Poisson process at the model's
/// AFR. A failure takes its instance down for `spare_swap_hours` when a
/// spare is free (the spare replaces the unit; the failed unit returns to
/// the spare pool after `mttr_hours`), or for `mttr_hours` when the pool
/// is empty — the instance-wide blast radius of today's serving stacks.
pub fn monte_carlo_availability(
    gpu: &GpuSpec,
    model: &FailureModel,
    instances: u32,
    gpus_per_instance: u32,
    spares: u32,
    years: f64,
    seed: u64,
) -> Result<MonteCarloAvailability> {
    check_positive("instances", instances as f64)?;
    check_positive("gpus_per_instance", gpus_per_instance as f64)?;
    check_positive("years", years)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let afr = model.afr(gpu);
    let horizon_h = years * HOURS_PER_YEAR;
    let total_gpus = instances * gpus_per_instance;

    // Generate all failure events (Poisson per GPU == Poisson for fleet).
    let fleet_rate_per_hour = afr * total_gpus as f64 / HOURS_PER_YEAR;
    let mut events = Vec::new();
    let mut t = 0.0f64;
    if fleet_rate_per_hour > 0.0 {
        loop {
            let u: f64 = rng.random::<f64>().max(1e-300);
            t += -u.ln() / fleet_rate_per_hour;
            if t >= horizon_h {
                break;
            }
            events.push(t);
        }
    }

    // Walk the timeline with a spare pool and a repair queue.
    let mut spare_free = spares as i64;
    let mut repairs: std::collections::BinaryHeap<std::cmp::Reverse<u64>> =
        std::collections::BinaryHeap::new();
    let to_key = |h: f64| (h * 3600.0) as u64; // Hour -> integer seconds.
    let mut downtime_h = 0.0f64;
    let mut spare_hits = 0usize;
    for &ft in &events {
        // Complete finished repairs (units return to the spare pool).
        while let Some(&std::cmp::Reverse(done)) = repairs.peek() {
            if (done as f64) / 3600.0 <= ft {
                repairs.pop();
                spare_free += 1;
            } else {
                break;
            }
        }
        let instance = rng.random_range(0..instances);
        let _ = instance; // Instances are stochastically symmetric.
        if spare_free > 0 {
            spare_free -= 1;
            spare_hits += 1;
            downtime_h += model.spare_swap_hours;
            repairs.push(std::cmp::Reverse(to_key(ft + model.mttr_hours)));
        } else {
            downtime_h += model.mttr_hours;
        }
    }
    let instance_hours = instances as f64 * horizon_h;
    Ok(MonteCarloAvailability {
        instance_availability: 1.0 - (downtime_h / instance_hours).min(1.0),
        failures_per_year: events.len() as f64 / years,
        spare_hit_rate: if events.is_empty() {
            1.0
        } else {
            spare_hits as f64 / events.len() as f64
        },
        spare_overhead: spares as f64 / total_gpus as f64,
    })
}

/// Spares needed to reach an instance-availability target, by sweeping the
/// Monte-Carlo simulation. Returns `(spares, achieved, overhead)`.
pub fn spares_for_target(
    gpu: &GpuSpec,
    model: &FailureModel,
    instances: u32,
    gpus_per_instance: u32,
    target: f64,
    years: f64,
    seed: u64,
) -> Result<(u32, f64, f64)> {
    for spares in 0..=(instances * gpus_per_instance) {
        let mc = monte_carlo_availability(
            gpu,
            model,
            instances,
            gpus_per_instance,
            spares,
            years,
            seed,
        )?;
        if mc.instance_availability >= target {
            return Ok((spares, mc.instance_availability, mc.spare_overhead));
        }
    }
    Err(crate::ClusterError::InsufficientCapacity {
        requested: target,
        available: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;

    #[test]
    fn lite_afr_below_h100_afr() {
        let h = catalog::h100();
        let l = catalog::lite_base();
        let m = FailureModel::default_for(&h);
        assert!((m.afr(&h) - 0.05).abs() < 1e-12);
        // Area-dependent part quarters; fixed part stays.
        assert!(m.afr(&l) < 0.025);
        assert!(m.afr(&l) > 0.015);
    }

    #[test]
    fn default_model_scales_with_die_area() {
        // Regression for `default_for` ignoring its spec: the Lite
        // default must actually differ from the H100 default.
        let h = FailureModel::default_for(&catalog::h100());
        let l = FailureModel::default_for(&catalog::lite_base());
        assert_ne!(h, l);
        // The per-mm² rate is physical and spec-independent...
        assert!((h.afr_per_mm2 - l.afr_per_mm2).abs() < 1e-18);
        // ...while the fixed board part scales with package silicon.
        assert!((l.afr_fixed / h.afr_fixed - 0.25).abs() < 1e-9);
        // End to end: quarter silicon ⇒ quarter AFR.
        assert!((h.afr(&catalog::h100()) - 0.05).abs() < 1e-12);
        assert!((l.afr(&catalog::lite_base()) - 0.0125).abs() < 1e-9);
    }

    #[test]
    fn hourly_rates_follow_the_unit_convention() {
        let h = catalog::h100();
        let m = FailureModel::default_for(&h);
        // 5% AFR / 8760 h per year.
        assert!((m.failures_per_gpu_hour(&h) - 0.05 / 8760.0).abs() < 1e-15);
        // Instance rate adds across GPUs.
        assert!(
            (m.failures_per_instance_hour(&h, 8) - 8.0 * m.failures_per_gpu_hour(&h)).abs() < 1e-15
        );
    }

    #[test]
    fn blast_radius_quarter_of_h100() {
        let m = FailureModel::default_for(&catalog::h100());
        let h = ClusterReliability::new(catalog::h100(), 8, m).unwrap();
        let l = ClusterReliability::new(catalog::lite_base(), 32, m).unwrap();
        assert!((h.blast_radius_fraction() / l.blast_radius_fraction() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lite_cluster_has_higher_available_flops() {
        // The §3 claim, deterministically.
        let m = FailureModel::default_for(&catalog::h100());
        let h = ClusterReliability::new(catalog::h100(), 8, m).unwrap();
        let l = ClusterReliability::new(catalog::lite_base(), 32, m).unwrap();
        assert!(l.expected_available_flops_fraction() > h.expected_available_flops_fraction());
    }

    #[test]
    fn monte_carlo_no_failures_is_fully_available() {
        let gpu = catalog::h100();
        let m = FailureModel {
            afr_per_mm2: 0.0,
            afr_fixed: 0.0,
            mttr_hours: 24.0,
            spare_swap_hours: 0.1,
        };
        let mc = monte_carlo_availability(&gpu, &m, 4, 8, 0, 1.0, 1).unwrap();
        assert_eq!(mc.instance_availability, 1.0);
        assert_eq!(mc.failures_per_year, 0.0);
    }

    #[test]
    fn monte_carlo_failure_rate_matches_model() {
        let gpu = catalog::h100();
        let m = FailureModel::default_for(&gpu);
        let mc = monte_carlo_availability(&gpu, &m, 4, 8, 0, 200.0, 42).unwrap();
        // 32 GPUs x 5% AFR = 1.6 failures/year; allow MC noise.
        assert!(
            (mc.failures_per_year - 1.6).abs() < 0.3,
            "rate = {}",
            mc.failures_per_year
        );
    }

    #[test]
    fn spares_improve_availability() {
        let gpu = catalog::h100();
        let mut m = FailureModel::default_for(&gpu);
        m.afr_fixed = 0.3; // Stress the fleet so spares matter.
        m.afr_per_mm2 = 0.0;
        let none = monte_carlo_availability(&gpu, &m, 4, 8, 0, 50.0, 7).unwrap();
        let some = monte_carlo_availability(&gpu, &m, 4, 8, 2, 50.0, 7).unwrap();
        assert!(some.instance_availability > none.instance_availability);
        assert!(some.spare_hit_rate > 0.5);
    }

    #[test]
    fn spare_overhead_cheaper_for_lite() {
        // Same serving capacity (4 instances), same number of spare
        // *units*: the Lite spare pool is a 4x smaller fleet fraction.
        let m = FailureModel::default_for(&catalog::h100());
        let h = monte_carlo_availability(&catalog::h100(), &m, 4, 8, 2, 5.0, 3).unwrap();
        let l = monte_carlo_availability(&catalog::lite_base(), &m, 4, 32, 2, 5.0, 3).unwrap();
        assert!((h.spare_overhead / l.spare_overhead - 4.0).abs() < 1e-9);
    }

    #[test]
    fn spares_for_target_finds_minimum() {
        let gpu = catalog::h100();
        let mut m = FailureModel::default_for(&gpu);
        m.afr_fixed = 0.5;
        m.afr_per_mm2 = 0.0;
        let (spares, achieved, overhead) =
            spares_for_target(&gpu, &m, 4, 8, 0.9999, 50.0, 11).unwrap();
        assert!(achieved >= 0.9999);
        assert!(overhead <= 1.0);
        // Verify minimality: one fewer spare misses the target.
        if spares > 0 {
            let below = monte_carlo_availability(&gpu, &m, 4, 8, spares - 1, 50.0, 11).unwrap();
            assert!(below.instance_availability < 0.9999);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let gpu = catalog::lite_base();
        let m = FailureModel::default_for(&gpu);
        let a = monte_carlo_availability(&gpu, &m, 8, 32, 4, 10.0, 99).unwrap();
        let b = monte_carlo_availability(&gpu, &m, 8, 32, 4, 10.0, 99).unwrap();
        assert_eq!(a, b);
    }
}

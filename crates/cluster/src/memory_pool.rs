//! Disaggregated memory for Lite-GPU clusters.
//!
//! §3 "Memory management": "Each Lite-GPU has only the fraction of the
//! memory capacity of a larger GPU. ... Another potential approach is to
//! use Lite-GPUs along with disaggregated memory \[which\] can be used to
//! provide a larger memory pool for Lite-GPUs". This module models a
//! network-attached memory pool reachable over the co-packaged-optics
//! fabric: KV cache beyond local HBM spills to the pool, and decode
//! attention pays pool bandwidth + latency for the spilled fraction.
//!
//! The interesting question it answers quantitatively: *how much batch
//! (and therefore throughput) can pooling buy before the pool link, not
//! HBM, becomes the decode bottleneck?*

use crate::{check_positive, Result};
use litegpu_specs::GpuSpec;

/// A disaggregated memory pool attached over the optical fabric.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemoryPool {
    /// Pool capacity available to one GPU, bytes.
    pub capacity_bytes: f64,
    /// Per-GPU bandwidth to the pool, bytes/s (a share of the optical
    /// shoreline; cannot exceed the GPU's network bandwidth).
    pub bandwidth_bytes_per_s: f64,
    /// Access latency, seconds (fabric + controller).
    pub latency_s: f64,
}

impl MemoryPool {
    /// A CPO-attached pool: remote HBM/DDR reachable at half the GPU's
    /// network bandwidth with ~1 µs access latency.
    pub fn cpo_attached(gpu: &GpuSpec, capacity_gb: f64) -> Result<Self> {
        Ok(Self {
            capacity_bytes: check_positive("capacity_gb", capacity_gb)? * 1e9,
            bandwidth_bytes_per_s: gpu.net_bytes_per_s() * 0.5,
            latency_s: 1.0e-6,
        })
    }

    /// Validates the pool parameters.
    pub fn validate(&self) -> Result<()> {
        check_positive("capacity_bytes", self.capacity_bytes)?;
        check_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)?;
        if self.latency_s < 0.0 || !self.latency_s.is_finite() {
            return Err(crate::ClusterError::InvalidParameter {
                name: "latency_s",
                value: self.latency_s,
            });
        }
        Ok(())
    }
}

/// Result of a tiered KV placement for one decode step.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TieredKvPlacement {
    /// KV bytes resident in local HBM.
    pub local_bytes: f64,
    /// KV bytes spilled to the pool.
    pub pooled_bytes: f64,
    /// Time to stream the local share, seconds.
    pub local_time_s: f64,
    /// Time to stream the pooled share, seconds.
    pub pool_time_s: f64,
    /// Step memory time (local and pool streams overlap), seconds.
    pub step_time_s: f64,
    /// Effective bandwidth across both tiers, bytes/s.
    pub effective_bandwidth: f64,
}

/// Places `kv_bytes` of per-step KV traffic across local HBM (budget
/// `local_budget_bytes`) and the pool, and prices one decode step's KV
/// streaming under overlapped tiers.
pub fn place_kv(
    gpu: &GpuSpec,
    pool: &MemoryPool,
    kv_bytes: f64,
    local_budget_bytes: f64,
) -> Result<TieredKvPlacement> {
    pool.validate()?;
    if kv_bytes < 0.0 || local_budget_bytes < 0.0 {
        return Err(crate::ClusterError::InvalidParameter {
            name: "kv_bytes/local_budget_bytes",
            value: kv_bytes.min(local_budget_bytes),
        });
    }
    if kv_bytes > local_budget_bytes + pool.capacity_bytes {
        return Err(crate::ClusterError::InsufficientCapacity {
            requested: kv_bytes,
            available: local_budget_bytes + pool.capacity_bytes,
        });
    }
    let local_bytes = kv_bytes.min(local_budget_bytes);
    let pooled_bytes = kv_bytes - local_bytes;
    let local_time_s = local_bytes / gpu.mem_bytes_per_s();
    let pool_time_s = if pooled_bytes > 0.0 {
        pool.latency_s + pooled_bytes / pool.bandwidth_bytes_per_s
    } else {
        0.0
    };
    let step_time_s = local_time_s.max(pool_time_s);
    Ok(TieredKvPlacement {
        local_bytes,
        pooled_bytes,
        local_time_s,
        pool_time_s,
        step_time_s,
        effective_bandwidth: if step_time_s > 0.0 {
            kv_bytes / step_time_s
        } else {
            f64::INFINITY
        },
    })
}

/// The pooled-KV fraction at which the pool stream takes exactly as long
/// as the local stream — beyond this, pooling slows the step down.
///
/// For a GPU with HBM bandwidth `B_h` and pool bandwidth `B_p`, the
/// break-even spill fraction is `B_p / (B_h + B_p)` (latency neglected).
pub fn break_even_spill_fraction(gpu: &GpuSpec, pool: &MemoryPool) -> f64 {
    let bh = gpu.mem_bytes_per_s();
    let bp = pool.bandwidth_bytes_per_s;
    bp / (bh + bp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use proptest::prelude::*;

    fn lite_pool() -> (GpuSpec, MemoryPool) {
        let gpu = catalog::lite_base();
        let pool = MemoryPool::cpo_attached(&gpu, 80.0).unwrap();
        (gpu, pool)
    }

    #[test]
    fn all_local_matches_hbm_time() {
        let (gpu, pool) = lite_pool();
        let p = place_kv(&gpu, &pool, 10e9, 19e9).unwrap();
        assert_eq!(p.pooled_bytes, 0.0);
        assert!((p.step_time_s - 10e9 / gpu.mem_bytes_per_s()).abs() < 1e-12);
        assert!((p.effective_bandwidth - gpu.mem_bytes_per_s()).abs() < 1.0);
    }

    #[test]
    fn small_spill_is_free_under_overlap() {
        // Below the break-even fraction the pool stream hides under the
        // HBM stream: pooling buys capacity at no step-time cost.
        let (gpu, pool) = lite_pool();
        let kv = 10e9;
        let frac = break_even_spill_fraction(&gpu, &pool);
        let spill = kv * frac * 0.5; // Half the break-even spill.
        let p = place_kv(&gpu, &pool, kv, kv - spill).unwrap();
        let local_only_time = kv / gpu.mem_bytes_per_s();
        assert!(
            p.step_time_s < local_only_time,
            "tiered {} >= local-only {local_only_time}",
            p.step_time_s
        );
    }

    #[test]
    fn deep_spill_is_pool_bound() {
        let (gpu, pool) = lite_pool();
        let p = place_kv(&gpu, &pool, 40e9, 5e9).unwrap();
        assert!(p.pool_time_s > p.local_time_s);
        assert!(p.effective_bandwidth < gpu.mem_bytes_per_s());
    }

    #[test]
    fn capacity_violation_rejected() {
        let (gpu, pool) = lite_pool();
        assert!(place_kv(&gpu, &pool, 200e9, 19e9).is_err());
        assert!(place_kv(&gpu, &pool, -1.0, 19e9).is_err());
    }

    #[test]
    fn break_even_fraction_reasonable_for_lite() {
        // Lite: HBM 838 GB/s, pool 56.25 GB/s -> ~6.3% of KV can spill
        // for free. Small — the paper's "different tiers of memory"
        // programming challenge, quantified.
        let (gpu, pool) = lite_pool();
        let f = break_even_spill_fraction(&gpu, &pool);
        assert!(f > 0.04 && f < 0.09, "f = {f}");
    }

    #[test]
    fn mem_bw_variant_tolerates_less_spill_net_bw_more() {
        // More HBM bandwidth -> relatively less tolerable spill; more
        // network -> more.
        let base_f = {
            let (gpu, pool) = lite_pool();
            break_even_spill_fraction(&gpu, &pool)
        };
        let membw = catalog::lite_mem_bw();
        let pool = MemoryPool::cpo_attached(&membw, 80.0).unwrap();
        assert!(break_even_spill_fraction(&membw, &pool) < base_f);
        let netbw = catalog::lite_net_bw();
        let pool = MemoryPool::cpo_attached(&netbw, 80.0).unwrap();
        assert!(break_even_spill_fraction(&netbw, &pool) > base_f);
    }

    proptest! {
        #[test]
        fn step_time_monotone_in_kv(kv1 in 1e8..3e10f64, extra in 1e8..1e10f64) {
            let (gpu, pool) = lite_pool();
            let budget = 19e9;
            if kv1 + extra <= budget + pool.capacity_bytes {
                let a = place_kv(&gpu, &pool, kv1, budget).unwrap();
                let b = place_kv(&gpu, &pool, kv1 + extra, budget).unwrap();
                prop_assert!(b.step_time_s >= a.step_time_s - 1e-12);
            }
        }

        #[test]
        fn conservation_of_bytes(kv in 1e8..9e10f64, budget in 1e9..2e10f64) {
            let (gpu, pool) = lite_pool();
            if kv <= budget + pool.capacity_bytes {
                let p = place_kv(&gpu, &pool, kv, budget).unwrap();
                prop_assert!((p.local_bytes + p.pooled_bytes - kv).abs() < 1.0);
                prop_assert!(p.local_bytes <= budget + 1.0);
            }
        }
    }
}

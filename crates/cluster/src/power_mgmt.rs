//! Load-following power management: whole-GPU DVFS vs. per-Lite-GPU
//! gating.
//!
//! §3: "Down-clocking all SMs of a large GPU can lead to wasted resources
//! or suboptimal performance. In a Lite-GPU cluster, we can control
//! down-clocking at finer granularity to achieve better power efficiency,
//! akin to down-clocking only a portion of SMs in a larger GPU." We model
//! a cluster tracking a fractional load `ρ ∈ [0, 1]`:
//!
//! - **DVFS**: all GPUs stay on and down-clock uniformly to `f = ρ^(1/1)`
//!   (throughput linear in clock), paying the full static floor and the
//!   cubic dynamic curve at reduced utilization.
//! - **Gating** (Lite-only): power off all but `⌈ρ·N⌉` GPUs, run those at
//!   nominal clock; granularity is `1/N`.
//! - **Hybrid**: gate to the nearest unit, DVFS the remainder.

use crate::node::ClusterSpec;
use crate::Result;
use litegpu_specs::power::PowerModel;

/// A load-following policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// All GPUs on, uniformly down-clocked to match load — the only
    /// option a monolithic GPU offers ("down-clocking all SMs", §3).
    DvfsAll,
    /// Power off idle GPUs; survivors run at nominal clock (naive
    /// gating — energy-inefficient because full clock sits at the top of
    /// the cubic power curve).
    GateIdle,
    /// Gate-to-efficiency: run the *fewest* GPUs that cover the load at
    /// the SLO-floor clock (the energy-optimal operating point), power
    /// the rest off. This is the policy Lite-GPU granularity enables.
    GateToEfficiency,
}

/// Lowest clock factor at which interactive latency SLOs still hold
/// (token latency ∝ 1/clock; ~33% inflation is the tolerable limit).
/// Clocks below this are *latency*-infeasible, not hardware-infeasible —
/// the "suboptimal performance" §3 attributes to whole-GPU down-clocking.
pub const SLO_MIN_CLOCK: f64 = 0.75;

/// Fraction of clocked dynamic power burned during unutilized cycles
/// (uncore, caches, scheduling — GPUs at 0% utilization but high clocks
/// draw well above their idle floor).
pub const ACTIVE_IDLE_FRAC: f64 = 0.3;

/// Clamps a per-unit load fraction to the SLO-feasible clock range: a
/// serving unit never clocks below [`SLO_MIN_CLOCK`] (latency SLOs break)
/// nor above nominal. Shared by every policy branch that converts load
/// into a clock — the single home of the efficiency-clock rule.
pub fn slo_clock(load_per_unit: f64) -> f64 {
    load_per_unit.clamp(SLO_MIN_CLOCK, 1.0)
}

/// The fewest units that cover load `rho` of an `n`-unit cluster's
/// nominal throughput when every active unit runs at the efficiency
/// clock ([`SLO_MIN_CLOCK`]): capacity per unit at that clock is
/// `SLO_MIN_CLOCK` of nominal, so `⌈rho·n / SLO_MIN_CLOCK⌉` units are
/// needed (capped at `n`). This is the gate-to-efficiency capacity
/// formula, hoisted so the policy branches and any capacity math share
/// one definition instead of a repeated magic `0.75`.
pub fn efficiency_units(rho: f64, n: f64) -> f64 {
    ((rho * n) / SLO_MIN_CLOCK).ceil().min(n)
}

/// The serving-time DVFS operating-point grid: clock factors from
/// [`SLO_MIN_CLOCK`] to nominal in 0.05 steps (exactly representable as
/// `k/20`), ascending, last entry exactly `1.0`. This is the grid
/// `litegpu_roofline::StepCostTable` prices step costs on and the
/// fleet's DVFS controller selects from.
pub fn operating_points() -> Vec<f64> {
    let first = (SLO_MIN_CLOCK * 20.0).round() as u32;
    (first..=20).map(|k| k as f64 / 20.0).collect()
}

/// Power of one GPU at `clock` delivering `util` of its clocked
/// throughput, including active-idle waste.
fn gpu_power(model: &PowerModel, clock: f64, util: f64) -> f64 {
    let u = util.clamp(0.0, 1.0);
    model.power_w(clock, u + ACTIVE_IDLE_FRAC * (1.0 - u))
}

/// Cluster power at fractional load `rho` under a policy, W.
///
/// Throughput is assumed proportional to `clock × active_gpus`; every
/// policy must deliver exactly `rho × nominal_throughput`.
pub fn power_at_load(cluster: &ClusterSpec, policy: Policy, rho: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&rho) || !rho.is_finite() {
        return Err(crate::ClusterError::InvalidParameter {
            name: "rho",
            value: rho,
        });
    }
    let n = cluster.total_gpus() as f64;
    let model = PowerModel::for_spec(&cluster.gpu);
    let overhead = cluster.nodes as f64 * cluster.node_overhead_w;
    let total = match policy {
        Policy::DvfsAll => {
            if rho == 0.0 {
                n * model.power_w(0.0, 0.0) // Idle floor on every GPU.
            } else {
                let clock = slo_clock(rho);
                let util = rho / clock;
                n * gpu_power(&model, clock, util)
            }
        }
        Policy::GateIdle => {
            let active = (rho * n).ceil();
            if active == 0.0 {
                0.0
            } else {
                let util = rho * n / active;
                active * gpu_power(&model, 1.0, util)
            }
        }
        Policy::GateToEfficiency => {
            // Activate just enough units to cover the load at the
            // efficiency clock, then clock them as low as the load
            // allows — both steps through the shared helpers.
            let active = efficiency_units(rho, n);
            if active == 0.0 {
                0.0
            } else {
                let clock = slo_clock(rho * n / active);
                let util = rho * n / active / clock;
                active * gpu_power(&model, clock, util)
            }
        }
    };
    Ok(total + overhead)
}

/// Energy (J) to serve a diurnal load trace of hourly `loads` (fractions)
/// under a policy.
pub fn trace_energy_j(cluster: &ClusterSpec, policy: Policy, loads: &[f64]) -> Result<f64> {
    let mut j = 0.0;
    for &rho in loads {
        j += power_at_load(cluster, policy, rho)? * 3600.0;
    }
    Ok(j)
}

/// A stylized diurnal load trace (24 hourly points, production-shaped:
/// quiet nights, busy afternoons).
pub fn diurnal_trace() -> Vec<f64> {
    vec![
        0.15, 0.12, 0.10, 0.10, 0.12, 0.18, 0.30, 0.45, 0.60, 0.72, 0.80, 0.85, 0.88, 0.90, 0.88,
        0.85, 0.80, 0.75, 0.68, 0.58, 0.45, 0.35, 0.25, 0.18,
    ]
}

/// Savings of gate-to-efficiency over whole-cluster DVFS on a load trace:
/// `1 − E_gate / E_dvfs`.
pub fn gating_saving(cluster: &ClusterSpec, loads: &[f64]) -> Result<f64> {
    let dvfs = trace_energy_j(cluster, Policy::DvfsAll, loads)?;
    let gate = trace_energy_j(cluster, Policy::GateToEfficiency, loads)?;
    Ok(1.0 - gate / dvfs)
}

/// Default datacenter power-usage effectiveness: total facility power per
/// watt of IT load (cooling, distribution losses). 1.2 is a modern
/// hyperscale figure.
pub const DEFAULT_PUE: f64 = 1.2;

/// Default capital cost of provisioning one kW of facility power capacity
/// (substation, UPS, distribution, cooling plant), USD/kW.
pub const DEFAULT_USD_PER_PROVISIONED_KW: f64 = 3_000.0;

/// Capital cost of provisioning power delivery and cooling for `it_kw`
/// kilowatts of IT load at the given PUE, USD.
///
/// Lite-GPU fleets change this line two ways: more GPUs of smaller TDP
/// leave the provisioned total roughly constant, but gate-to-efficiency
/// serving lets operators provision closer to the served-load peak than
/// to the nameplate sum.
pub fn provisioning_capex_usd(it_kw: f64, pue: f64, usd_per_kw: f64) -> Result<f64> {
    for (name, value) in [("it_kw", it_kw), ("pue", pue), ("usd_per_kw", usd_per_kw)] {
        if !value.is_finite() || value < 0.0 {
            return Err(crate::ClusterError::InvalidParameter { name, value });
        }
    }
    if pue < 1.0 {
        return Err(crate::ClusterError::InvalidParameter {
            name: "pue",
            value: pue,
        });
    }
    Ok(it_kw * pue * usd_per_kw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_load_equal_across_policies() {
        let c = ClusterSpec::lite_node();
        let a = power_at_load(&c, Policy::DvfsAll, 1.0).unwrap();
        let b = power_at_load(&c, Policy::GateIdle, 1.0).unwrap();
        let h = power_at_load(&c, Policy::GateToEfficiency, 1.0).unwrap();
        assert!((a - b).abs() < 1e-9);
        assert!((a - h).abs() < 1e-9);
        assert!((a - c.peak_power_w()).abs() < 1e-9);
    }

    #[test]
    fn zero_load_gating_drops_to_overhead() {
        let c = ClusterSpec::lite_node();
        let g = power_at_load(&c, Policy::GateIdle, 0.0).unwrap();
        assert!((g - c.nodes as f64 * c.node_overhead_w).abs() < 1e-9);
        let e = power_at_load(&c, Policy::GateToEfficiency, 0.0).unwrap();
        assert!((e - g).abs() < 1e-9);
        // DVFS still pays every GPU's idle floor.
        let d = power_at_load(&c, Policy::DvfsAll, 0.0).unwrap();
        assert!(d > g);
    }

    #[test]
    fn gating_beats_dvfs_at_low_load() {
        let c = ClusterSpec::lite_node();
        let d = power_at_load(&c, Policy::DvfsAll, 0.2).unwrap();
        let g = power_at_load(&c, Policy::GateToEfficiency, 0.2).unwrap();
        assert!(g < d, "gate {g} >= dvfs {d}");
    }

    #[test]
    fn gate_to_efficiency_beats_naive_gating() {
        // Running fewer units flat-out sits at the top of the cubic power
        // curve; spreading over slightly more units at the SLO-floor
        // clock wins.
        let c = ClusterSpec::lite_node();
        for rho in [0.2, 0.4, 0.6, 0.8] {
            let naive = power_at_load(&c, Policy::GateIdle, rho).unwrap();
            let eff = power_at_load(&c, Policy::GateToEfficiency, rho).unwrap();
            assert!(eff <= naive + 1e-9, "rho={rho}: eff {eff} > naive {naive}");
        }
    }

    #[test]
    fn lite_cluster_gates_finer_than_h100() {
        // Gate-to-efficiency quantizes at one GPU; Lite's quantum is 4x
        // smaller, so across a diurnal trace it wastes less.
        let h = ClusterSpec::h100_node();
        let l = ClusterSpec::lite_node();
        let eh = trace_energy_j(&h, Policy::GateToEfficiency, &diurnal_trace()).unwrap();
        let el = trace_energy_j(&l, Policy::GateToEfficiency, &diurnal_trace()).unwrap();
        assert!(el <= eh * 1.001, "lite {el} > h100 {eh}");
        // And gating saves real energy versus fleet-wide DVFS.
        let sl = gating_saving(&l, &diurnal_trace()).unwrap();
        assert!(sl > 0.05, "gating should save real energy, got {sl}");
    }

    #[test]
    fn operating_points_span_slo_min_clock_to_nominal() {
        let pts = operating_points();
        assert_eq!(pts.first(), Some(&SLO_MIN_CLOCK));
        assert_eq!(pts.last(), Some(&1.0));
        assert!(pts.len() >= 3, "grid must be a real ladder: {pts:?}");
        for w in pts.windows(2) {
            assert!(w[0] < w[1], "ascending: {pts:?}");
            assert!((w[1] - w[0] - 0.05).abs() < 1e-12, "0.05 steps: {pts:?}");
        }
    }

    #[test]
    fn efficiency_helpers_match_the_policy_branches() {
        // slo_clock clamps to [SLO_MIN_CLOCK, 1].
        assert_eq!(slo_clock(0.1), SLO_MIN_CLOCK);
        assert_eq!(slo_clock(0.9), 0.9);
        assert_eq!(slo_clock(1.7), 1.0);
        // efficiency_units: fewest units covering the load at the
        // efficiency clock, capped at the cluster size.
        assert_eq!(efficiency_units(0.0, 32.0), 0.0);
        assert_eq!(
            efficiency_units(0.3, 32.0),
            (0.3 * 32.0 / SLO_MIN_CLOCK).ceil()
        );
        assert_eq!(efficiency_units(1.0, 32.0), 32.0);
    }

    #[test]
    fn power_at_load_pinned_at_grid_endpoints() {
        // Regression pins at the DVFS grid endpoints:
        // - rho = SLO_MIN_CLOCK: every GPU at clock 0.75, full
        //   utilization => idle + dynamic × 0.75³ per GPU + overhead.
        //   Lite: 32 × (19 + 156 × 0.421875) + 800 = 3514.00 W.
        //   H100:  8 × (75 + 625 × 0.421875) + 800 = 3509.375 W.
        // - rho = 1.0: peak power, 6400 W for both.
        for (c, lo_expected) in [
            (ClusterSpec::lite_node(), 3514.0),
            (ClusterSpec::h100_node(), 3509.375),
        ] {
            for policy in [Policy::DvfsAll, Policy::GateToEfficiency] {
                let lo = power_at_load(&c, policy, SLO_MIN_CLOCK).unwrap();
                assert!((lo - lo_expected).abs() < 1e-9, "{policy:?} lo = {lo}");
                let hi = power_at_load(&c, policy, 1.0).unwrap();
                assert!((hi - 6400.0).abs() < 1e-9, "{policy:?} hi = {hi}");
            }
        }
    }

    #[test]
    fn provisioning_capex_prices_facility_watts() {
        // A 6.4 kW node at PUE 1.2 and $3000/kW: 6.4 × 1.2 × 3000.
        let c = provisioning_capex_usd(6.4, DEFAULT_PUE, DEFAULT_USD_PER_PROVISIONED_KW).unwrap();
        assert!((c - 23_040.0).abs() < 1e-9, "got {c}");
        assert_eq!(provisioning_capex_usd(0.0, 1.0, 3000.0).unwrap(), 0.0);
        // PUE below 1 is unphysical; negatives and NaN are rejected.
        assert!(provisioning_capex_usd(6.4, 0.9, 3000.0).is_err());
        assert!(provisioning_capex_usd(-1.0, 1.2, 3000.0).is_err());
        assert!(provisioning_capex_usd(6.4, 1.2, f64::NAN).is_err());
    }

    #[test]
    fn invalid_load_rejected() {
        let c = ClusterSpec::lite_node();
        assert!(power_at_load(&c, Policy::DvfsAll, -0.1).is_err());
        assert!(power_at_load(&c, Policy::DvfsAll, 1.1).is_err());
        assert!(power_at_load(&c, Policy::DvfsAll, f64::NAN).is_err());
    }

    #[test]
    fn diurnal_trace_is_24_fractions() {
        let t = diurnal_trace();
        assert_eq!(t.len(), 24);
        assert!(t.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    proptest! {
        #[test]
        fn power_monotone_in_load(r1 in 0.001..0.98f64, dr in 0.001..0.02f64) {
            let c = ClusterSpec::lite_node();
            for policy in [Policy::DvfsAll, Policy::GateIdle, Policy::GateToEfficiency] {
                let p1 = power_at_load(&c, policy, r1).unwrap();
                let p2 = power_at_load(&c, policy, (r1 + dr).min(1.0)).unwrap();
                prop_assert!(p2 >= p1 - 1e-6, "{policy:?}: {p2} < {p1}");
            }
        }

        #[test]
        fn gate_to_efficiency_never_worse_than_dvfs(rho in 0.0..1.0f64) {
            let c = ClusterSpec::lite_node();
            let d = power_at_load(&c, Policy::DvfsAll, rho).unwrap();
            let h = power_at_load(&c, Policy::GateToEfficiency, rho).unwrap();
            prop_assert!(h <= d + 1e-9);
        }
    }
}

//! Fine- vs. coarse-grained GPU allocation.
//!
//! §3: "With Lite-GPUs, we can allocate and access smaller units of
//! compute and memory, leading to greater flexibility in managing an AI
//! cluster." The cost of coarse units is *internal fragmentation*: a
//! request needing 1.25 H100s of compute must hold 2 H100s. This module
//! provides a first-fit allocator over homogeneous GPU pools and
//! fragmentation metrics, so the claim can be quantified over request
//! mixes.

use crate::{check_positive, ClusterError, Result};
use litegpu_specs::GpuSpec;

/// A tenant request, sized in *H100-equivalents* of compute (the paper's
/// reference unit): 1.0 means one full H100's worth of SMs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuRequest {
    /// Compute demand in H100-equivalents.
    pub h100_equiv: f64,
}

impl GpuRequest {
    /// Creates a request; demand must be positive.
    pub fn new(h100_equiv: f64) -> Result<Self> {
        Ok(Self {
            h100_equiv: check_positive("h100_equiv", h100_equiv)?,
        })
    }
}

/// The outcome of placing a request mix onto a pool.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AllocOutcome {
    /// Requests successfully placed.
    pub placed: usize,
    /// Requests rejected for lack of capacity.
    pub rejected: usize,
    /// GPUs actually allocated.
    pub gpus_allocated: u32,
    /// Sum of requested compute, H100-equivalents.
    pub requested_equiv: f64,
    /// Sum of allocated compute, H100-equivalents (≥ requested due to
    /// rounding up to whole GPUs).
    pub allocated_equiv: f64,
}

impl AllocOutcome {
    /// Internal fragmentation: allocated-but-unrequested compute as a
    /// fraction of allocated compute. Zero is perfect.
    pub fn fragmentation(&self) -> f64 {
        if self.allocated_equiv <= 0.0 {
            0.0
        } else {
            1.0 - self.requested_equiv_placed() / self.allocated_equiv
        }
    }

    fn requested_equiv_placed(&self) -> f64 {
        // requested_equiv tracks only placed requests.
        self.requested_equiv
    }
}

/// A first-fit allocator over a homogeneous pool of `total_gpus` GPUs of
/// type `gpu`.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocator {
    /// GPU type of the pool.
    pub gpu: GpuSpec,
    /// Pool size.
    pub total_gpus: u32,
    free_gpus: u32,
    h100_sms: f64,
}

impl Allocator {
    /// Creates an allocator; the H100 reference is fixed at 132 SMs.
    pub fn new(gpu: GpuSpec, total_gpus: u32) -> Result<Self> {
        gpu.validate()?;
        check_positive("total_gpus", total_gpus as f64)?;
        Ok(Self {
            gpu,
            total_gpus,
            free_gpus: total_gpus,
            h100_sms: 132.0,
        })
    }

    /// GPUs needed to satisfy one request (rounded up to whole GPUs).
    pub fn gpus_for(&self, req: &GpuRequest) -> u32 {
        let sms_needed = req.h100_equiv * self.h100_sms;
        (sms_needed / self.gpu.sms as f64).ceil().max(1.0) as u32
    }

    /// Remaining free GPUs.
    pub fn free(&self) -> u32 {
        self.free_gpus
    }

    /// Attempts to place one request; returns GPUs allocated.
    pub fn allocate(&mut self, req: &GpuRequest) -> Result<u32> {
        let need = self.gpus_for(req);
        if need > self.free_gpus {
            return Err(ClusterError::InsufficientCapacity {
                requested: need as f64,
                available: self.free_gpus as f64,
            });
        }
        self.free_gpus -= need;
        Ok(need)
    }

    /// Releases `gpus` back to the pool (caps at the pool size).
    pub fn release(&mut self, gpus: u32) {
        self.free_gpus = (self.free_gpus + gpus).min(self.total_gpus);
    }

    /// Places a whole request mix (first-fit in order), returning the
    /// aggregate outcome. The allocator is left holding the placements.
    pub fn place_mix(&mut self, requests: &[GpuRequest]) -> AllocOutcome {
        let mut placed = 0;
        let mut rejected = 0;
        let mut gpus_allocated = 0;
        let mut requested = 0.0;
        for r in requests {
            match self.allocate(r) {
                Ok(n) => {
                    placed += 1;
                    gpus_allocated += n;
                    requested += r.h100_equiv;
                }
                Err(_) => rejected += 1,
            }
        }
        let equiv_per_gpu = self.gpu.sms as f64 / self.h100_sms;
        AllocOutcome {
            placed,
            rejected,
            gpus_allocated,
            requested_equiv: requested,
            allocated_equiv: gpus_allocated as f64 * equiv_per_gpu,
        }
    }
}

/// Compares fragmentation of a big-GPU pool against a Lite pool of equal
/// aggregate compute on the same request mix.
pub fn fragmentation_comparison(
    big: &GpuSpec,
    lite: &GpuSpec,
    big_pool: u32,
    requests: &[GpuRequest],
) -> Result<(AllocOutcome, AllocOutcome)> {
    let ratio = (big.sms as f64 / lite.sms as f64).round() as u32;
    let mut a = Allocator::new(big.clone(), big_pool)?;
    let mut b = Allocator::new(lite.clone(), big_pool * ratio)?;
    Ok((a.place_mix(requests), b.place_mix(requests)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_specs::catalog;
    use proptest::prelude::*;

    fn fractional_mix() -> Vec<GpuRequest> {
        // Realistic multi-tenant mix: lots of sub-GPU and odd-size asks.
        [0.25, 0.5, 1.25, 0.75, 2.5, 0.3, 1.1, 0.6, 3.25, 0.4]
            .iter()
            .map(|&x| GpuRequest::new(x).unwrap())
            .collect()
    }

    #[test]
    fn lite_pool_fragments_less() {
        let (big, lite) = (catalog::h100(), catalog::lite_base());
        let (b, l) = fragmentation_comparison(&big, &lite, 24, &fractional_mix()).unwrap();
        assert_eq!(b.rejected, 0);
        assert_eq!(l.rejected, 0);
        assert!(
            l.fragmentation() < b.fragmentation(),
            "lite {} vs big {}",
            l.fragmentation(),
            b.fragmentation()
        );
    }

    #[test]
    fn whole_gpu_requests_fragment_nothing_on_big() {
        let mut a = Allocator::new(catalog::h100(), 8).unwrap();
        let reqs: Vec<_> = (0..4).map(|_| GpuRequest::new(1.0).unwrap()).collect();
        let out = a.place_mix(&reqs);
        assert_eq!(out.gpus_allocated, 4);
        assert!(out.fragmentation().abs() < 1e-12);
    }

    #[test]
    fn quarter_request_wastes_three_quarters_of_an_h100() {
        let mut a = Allocator::new(catalog::h100(), 8).unwrap();
        let out = a.place_mix(&[GpuRequest::new(0.25).unwrap()]);
        assert!((out.fragmentation() - 0.75).abs() < 1e-9);
        // The same request on Lite-GPUs wastes nothing (0.25 == 1 Lite).
        let mut l = Allocator::new(catalog::lite_base(), 32).unwrap();
        let out = l.place_mix(&[GpuRequest::new(0.25).unwrap()]);
        assert!(out.fragmentation().abs() < 1e-9);
    }

    #[test]
    fn exhaustion_rejects() {
        let mut a = Allocator::new(catalog::h100(), 2).unwrap();
        assert!(a.allocate(&GpuRequest::new(2.0).unwrap()).is_ok());
        assert!(matches!(
            a.allocate(&GpuRequest::new(0.5).unwrap()),
            Err(ClusterError::InsufficientCapacity { .. })
        ));
        a.release(1);
        assert!(a.allocate(&GpuRequest::new(0.5).unwrap()).is_ok());
    }

    #[test]
    fn release_caps_at_pool_size() {
        let mut a = Allocator::new(catalog::h100(), 4).unwrap();
        a.release(100);
        assert_eq!(a.free(), 4);
    }

    #[test]
    fn invalid_request_rejected() {
        assert!(GpuRequest::new(0.0).is_err());
        assert!(GpuRequest::new(-1.0).is_err());
        assert!(GpuRequest::new(f64::NAN).is_err());
    }

    proptest! {
        #[test]
        fn fragmentation_in_unit_interval(sizes in proptest::collection::vec(0.05..4.0f64, 1..20)) {
            let reqs: Vec<_> = sizes.iter().map(|&x| GpuRequest::new(x).unwrap()).collect();
            let mut a = Allocator::new(catalog::lite_base(), 512).unwrap();
            let out = a.place_mix(&reqs);
            prop_assert!(out.fragmentation() >= -1e-12);
            prop_assert!(out.fragmentation() <= 1.0);
        }

        #[test]
        fn finer_granularity_never_worse(sizes in proptest::collection::vec(0.05..4.0f64, 1..16)) {
            let reqs: Vec<_> = sizes.iter().map(|&x| GpuRequest::new(x).unwrap()).collect();
            // Pool sized so ceil-rounding can never exhaust it (<=16
            // requests of <=4 equivalents round to at most 5 GPUs each).
            let (b, l) = fragmentation_comparison(
                &catalog::h100(), &catalog::lite_base(), 96, &reqs,
            ).unwrap();
            // With ample capacity, the finer pool's fragmentation cannot
            // exceed the coarser pool's.
            prop_assert!(b.rejected == 0 && l.rejected == 0);
            prop_assert!(l.fragmentation() <= b.fragmentation() + 1e-12);
        }
    }
}
